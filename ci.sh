#!/usr/bin/env bash
# Local CI gate: everything a change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace (serial pipeline, GCD2_THREADS=1)"
GCD2_THREADS=1 cargo test --workspace -q

echo "==> cargo test --workspace (default parallelism)"
cargo test --workspace -q

echo "==> kernel suite on the scalar oracle (GCD2_FORCE_SCALAR=1)"
GCD2_FORCE_SCALAR=1 cargo test -q -p gcd2-kernels

echo "==> kernel suite on the auto-detected SIMD tier"
cargo test -q -p gcd2-kernels

echo "==> compile-time bench smoke (BENCH_compile.json, bit-identical check)"
cargo run --release -q -p gcd2-bench --bin compile_time -- --smoke

echo "==> inference-throughput bench smoke (BENCH_infer.json, bit-identical check)"
cargo run --release -q -p gcd2-bench --bin infer_throughput -- --smoke

echo "==> static plan analysis over the catalog (thread-invariant output)"
mkdir -p target
GCD2_THREADS=1 cargo run --release -q -p gcd2 --bin gcd2c -- --analyze \
    > target/analyze_serial.txt
cargo run --release -q -p gcd2 --bin gcd2c -- --analyze \
    > target/analyze_parallel.txt
diff target/analyze_serial.txt target/analyze_parallel.txt
grep -q "all 10 catalog models analyze clean" target/analyze_serial.txt

echo "==> chaos suite (fault injection, two fixed fault seeds)"
GCD2_CHAOS_SEED=2024 cargo test -q --features fault-injection --test chaos
GCD2_CHAOS_SEED=7 cargo test -q --features fault-injection --test chaos

echo "==> runtime chaos suite (fault injection, two fixed fault seeds)"
GCD2_RT_CHAOS_SEED=2024 cargo test -q --features fault-injection --test runtime_chaos
GCD2_RT_CHAOS_SEED=7 cargo test -q --features fault-injection --test runtime_chaos

echo "==> gateway chaos suite (fault injection, two fixed fault seeds)"
GCD2_GW_CHAOS_SEED=2024 cargo test -q --features fault-injection --test gateway_chaos
GCD2_GW_CHAOS_SEED=7 cargo test -q --features fault-injection --test gateway_chaos

echo "==> supervisor chaos suite (fault injection, two fixed fault seeds)"
GCD2_SUP_CHAOS_SEED=2024 cargo test -q --features fault-injection --test supervisor_chaos
GCD2_SUP_CHAOS_SEED=7 cargo test -q --features fault-injection --test supervisor_chaos

echo "==> circuit-breaker property suite (reference-model equivalence)"
cargo test -q --test breaker_property

echo "==> artifact chaos suite (fault injection, two fixed fault seeds)"
GCD2_ART_CHAOS_SEED=2024 cargo test -q --features fault-injection --test artifact_chaos
GCD2_ART_CHAOS_SEED=7 cargo test -q --features fault-injection --test artifact_chaos

echo "==> artifact round-trip + hostile-corpus suites"
cargo test -q --test artifact_roundtrip
cargo test -q --test artifact_hostile

echo "==> serving-gateway bench smoke (BENCH_serve.json, bit-identical + multi-worker check)"
cargo run --release -q -p gcd2-bench --bin serve_throughput -- --smoke

echo "==> clippy unwrap/expect deny gate (gcd2 + gcd2-globalopt + gcd2-kernels + gcd2-analyze + gcd2-artifact lib paths)"
cargo clippy -q -p gcd2 -p gcd2-globalopt -p gcd2-kernels -p gcd2-analyze -p gcd2-artifact --lib -- -D warnings

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
