#!/usr/bin/env bash
# Local CI gate: everything a change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
