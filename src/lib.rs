//! Facade crate: re-exports every GCD2 sub-crate for examples and integration tests.
pub use gcd2 as compiler;
pub use gcd2_analyze as analyze;
pub use gcd2_artifact as artifact;
pub use gcd2_baselines as baselines;
pub use gcd2_bench as bench;
pub use gcd2_cgraph as cgraph;
pub use gcd2_codegen as codegen;
pub use gcd2_faults as faults;
pub use gcd2_globalopt as globalopt;
pub use gcd2_hvx as hvx;
pub use gcd2_kernels as kernels;
pub use gcd2_models as models;
pub use gcd2_par as par;
pub use gcd2_tensor as tensor;
pub use gcd2_verify as verify;
pub use gcd2_vliw as vliw;
