//! Cross-crate numeric integration: scheduled kernels on the functional
//! simulator against scalar references, with schedules produced by the
//! real packer (not hand-written packets).
#![allow(clippy::needless_range_loop)]

use gcd2_repro::cgraph::GemmDims;
use gcd2_repro::hvx::{Machine, Program};
use gcd2_repro::kernels::{functional_program, matmul_ref, output_matrix_len, SimdInstr};
use gcd2_repro::tensor::{Layout, MatrixI8, MatrixU8};
use gcd2_repro::vliw::{Packer, SoftDepPolicy};

/// Re-schedules a functional program's blocks with a packer, preserving
/// semantics.
fn repack(program: &Program, policy: SoftDepPolicy) -> Program {
    let packer = Packer::new().with_policy(policy);
    program
        .blocks
        .iter()
        .map(|pb| {
            let mut block =
                gcd2_repro::hvx::Block::with_trip_count(pb.label.clone(), pb.trip_count);
            for packet in &pb.packets {
                block.extend(packet.insns().iter().cloned());
            }
            packer.pack_block(&block)
        })
        .collect()
}

#[test]
fn scheduled_matmul_kernels_stay_correct() {
    let (m, k, n) = (70, 10, 5);
    let a_rm: Vec<u8> = (0..m * k).map(|i| (i * 11 % 16) as u8).collect();
    let w_rm: Vec<i8> = (0..k * n).map(|i| ((i * 3 % 15) as i8) - 7).collect();
    for instr in SimdInstr::ALL {
        let a = MatrixU8::from_row_major(m, k, instr.layout(), &a_rm);
        let w = MatrixI8::from_row_major(k, n, &w_rm);
        let gemm = GemmDims::new(m, k, n);
        let addr_out = a.padded_len().div_ceil(128) * 128;
        let out_len = output_matrix_len(&gemm, instr);
        let base = functional_program(&a, &w, instr, 4, 0, addr_out as i64);
        let expect = matmul_ref(&a, &w, 4);

        for policy in [
            SoftDepPolicy::Sda,
            SoftDepPolicy::SoftToHard,
            SoftDepPolicy::SoftToNone,
        ] {
            let program = repack(&base, policy);
            let mut machine = Machine::new(addr_out + out_len);
            machine.mem[..a.padded_len()].copy_from_slice(a.as_bytes());
            machine.run(&program);
            let got = MatrixU8::from_raw(
                m,
                n,
                instr.layout(),
                machine.mem[addr_out..addr_out + out_len].to_vec(),
            );
            for r in 0..m {
                for c in 0..n {
                    assert_eq!(
                        got.get(r, c),
                        expect[r][c],
                        "{instr} under {policy:?} at ({r},{c})"
                    );
                }
            }
        }
    }
}

#[test]
fn layout_round_trips_through_all_formats() {
    let values: Vec<u8> = (0..200u32 * 7).map(|i| (i * 13 % 251) as u8).collect();
    let base = MatrixU8::from_row_major(200, 7, Layout::RowMajor, &values);
    // Chain of conversions covering every pair ends where it started.
    let chain = [
        Layout::Col1,
        Layout::Col4,
        Layout::Col2,
        Layout::Col1,
        Layout::RowMajor,
    ];
    let mut cur = base.clone();
    for l in chain {
        cur = cur.to_layout(l);
    }
    assert_eq!(cur.to_row_major_vec(), values);
}
