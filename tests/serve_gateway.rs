//! Gateway determinism gate: dynamic batching is a **scheduling**
//! optimization, never a numerical one.
//!
//! The stacked batch executor concatenates same-model activations into
//! one GEMM whose output rows each depend only on their own input row
//! (wrapping i32 accumulation over `k` only), and every non-stacked
//! step runs the single-shot code verbatim — so for *any* combination
//! of `max_batch`, `max_wait`, and worker count, the gateway must
//! return bytes identical to `InferencePlan::execute`. This suite is
//! the gate on that claim, plus the multi-model scatter (interleaved
//! traffic for different models never cross-contaminates).

use gcd2_repro::cgraph::{Activation, Graph, OpKind, TShape};
use gcd2_repro::compiler::{Compiler, ExecOptions, GatewayConfig, InferServer, InferencePlan};
use std::time::Duration;

const INPUT_LEN: usize = 4 * 10 * 10;

/// A conv net crossing every stacking regime: an im2col conv GEMM
/// (stacked), a depthwise kernel (per-item), elementwise/pool steps
/// (per-item), and a final FC (stacked).
fn conv_net(seed: u64) -> InferencePlan {
    let mut g = Graph::new();
    let x = g.input("x", TShape::nchw(1, 4, 10, 10));
    let conv = g.add(
        OpKind::Conv2d {
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        "conv",
    );
    let relu = g.add(OpKind::Act(Activation::Relu), &[conv], "relu");
    let dw = g.add(
        OpKind::DepthwiseConv2d {
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[relu],
        "dw",
    );
    let gap = g.add(OpKind::GlobalAvgPool, &[dw], "gap");
    let flat = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![1, 8]),
        },
        &[gap],
        "flat",
    );
    let fc = g.add(OpKind::MatMul { n: 6 }, &[flat], "fc");
    g.add(OpKind::Softmax, &[fc], "sm");
    Compiler::new().compile(&g).inference_plan(seed)
}

fn inputs(count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|s| {
            (0..INPUT_LEN)
                .map(|i| ((i * 7 + s * 11) % 16) as u8)
                .collect()
        })
        .collect()
}

#[test]
fn every_batching_configuration_is_bit_identical_to_single_shot() {
    let plan = conv_net(51);
    let ins = inputs(20);
    let expect: Vec<Vec<u8>> = ins.iter().map(|i| plan.execute(i)).collect();
    // (workers, max_batch, max_wait): batching off, aggressive
    // coalescing, mid-size batches across workers, and age-dominated
    // dispatch. The bytes must not care.
    let configs = [
        (1usize, 1usize, Duration::ZERO),
        (1, 16, Duration::from_millis(5)),
        (2, 4, Duration::from_micros(300)),
        (3, 8, Duration::from_millis(1)),
    ];
    for (workers, max_batch, max_wait) in configs {
        let server = InferServer::gateway(GatewayConfig {
            workers,
            capacity: 256,
            max_batch,
            max_wait,
            opts: ExecOptions::default(),
            ..GatewayConfig::default()
        });
        server.register("m", plan.clone()).expect("register");
        let tickets: Vec<_> = ins
            .iter()
            .map(|i| server.submit_to("m", i.clone(), 0).expect("admitted"))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                ticket.wait().expect("served"),
                expect[i],
                "workers={workers} max_batch={max_batch} max_wait={max_wait:?} request {i}"
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, ins.len() as u64);
        assert_eq!(stats.failed, 0);
    }
}

#[test]
fn interleaved_multi_model_traffic_never_cross_contaminates() {
    let plan_a = conv_net(52);
    let plan_b = conv_net(53);
    let ins = inputs(12);
    let server = InferServer::gateway(GatewayConfig {
        workers: 2,
        capacity: 128,
        max_batch: 4,
        max_wait: Duration::from_millis(2),
        opts: ExecOptions::default(),
        ..GatewayConfig::default()
    });
    server.register("a", plan_a.clone()).expect("register a");
    server.register("b", plan_b.clone()).expect("register b");
    // Strictly interleaved submissions: the scheduler must keep each
    // model's batches on that model's plan and arenas.
    let tickets: Vec<_> = ins
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let model = if i % 2 == 0 { "a" } else { "b" };
            (
                i,
                model,
                server.submit_to(model, input.clone(), 0).expect("admitted"),
            )
        })
        .collect();
    for (i, model, ticket) in tickets {
        let expect = if model == "a" {
            plan_a.execute(&ins[i])
        } else {
            plan_b.execute(&ins[i])
        };
        assert_eq!(
            ticket.wait().expect("served"),
            expect,
            "request {i} ({model})"
        );
    }
    let a = server.model_stats("a").expect("a registered");
    let b = server.model_stats("b").expect("b registered");
    assert_eq!(a.completed, 6);
    assert_eq!(b.completed, 6);
    assert_eq!(a.failed + b.failed, 0);
    server.shutdown();
}
