//! Workspace-level property tests (proptest) on the core invariants:
//! layout round-trips, packing legality and functional equivalence,
//! chain-DP optimality, and kernel numerics under random shapes.
#![allow(clippy::needless_range_loop)]

use gcd2_repro::cgraph::GemmDims;
use gcd2_repro::hvx::{
    Block, Insn, Lane, Machine, PackedBlock, ResourceModel, SReg, VPair, VReg, VBYTES,
};
use gcd2_repro::kernels::{functional_program, matmul_ref, output_matrix_len, SimdInstr};
use gcd2_repro::tensor::{Layout, MatrixI8, MatrixU8};
use gcd2_repro::vliw::{no_intra_packet_deps, pack_with_policy, Packer, SoftDepPolicy};
use proptest::prelude::*;

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::RowMajor),
        Just(Layout::Col1),
        Just(Layout::Col2),
        Just(Layout::Col4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Layout storage is a bijection: round-tripping through any layout
    /// preserves every element.
    #[test]
    fn layout_round_trip(
        rows in 1usize..200,
        cols in 1usize..12,
        from in layout_strategy(),
        to in layout_strategy(),
        seed in any::<u64>(),
    ) {
        let values: Vec<u8> =
            (0..rows * cols).map(|i| ((i as u64 ^ seed) % 251) as u8).collect();
        let m = MatrixU8::from_row_major(rows, cols, from, &values);
        prop_assert_eq!(m.to_layout(to).to_row_major_vec(), values);
    }

    /// Every SIMD matmul kernel agrees with the scalar reference on
    /// random bounded inputs and ragged shapes.
    #[test]
    fn matmul_kernels_match_reference(
        m in 1usize..80,
        k in 1usize..24,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let a_rm: Vec<u8> = (0..m * k).map(|_| (next() % 16) as u8).collect();
        let w_rm: Vec<i8> = (0..k * n).map(|_| (next() % 15) as i8 - 7).collect();
        for instr in SimdInstr::ALL {
            let a = MatrixU8::from_row_major(m, k, instr.layout(), &a_rm);
            let w = MatrixI8::from_row_major(k, n, &w_rm);
            let gemm = GemmDims::new(m, k, n);
            let addr_out = a.padded_len().div_ceil(128) * 128;
            let out_len = output_matrix_len(&gemm, instr);
            let prog = functional_program(&a, &w, instr, 4, 0, addr_out as i64);
            let mut machine = Machine::new(addr_out + out_len);
            machine.mem[..a.padded_len()].copy_from_slice(a.as_bytes());
            machine.run(&prog);
            let got = MatrixU8::from_raw(
                m, n, instr.layout(),
                machine.mem[addr_out..addr_out + out_len].to_vec(),
            );
            let expect = matmul_ref(&a, &w, 4);
            for r in 0..m {
                for c in 0..n {
                    prop_assert_eq!(got.get(r, c), expect[r][c], "{} at ({},{})", instr, r, c);
                }
            }
        }
    }
}

/// Generates a random but well-formed straight-line block: loads,
/// widening adds, narrowing shifts, stores, and pointer bumps over
/// registers chosen to create genuine hard and soft dependencies.
fn arb_block() -> impl Strategy<Value = Block> {
    let insn = (0u8..6, 0u8..4, 0u8..3).prop_map(|(kind, reg, base)| {
        let v = |i: u8| VReg::new(i % 28);
        let r = |i: u8| SReg::new(i % 8);
        match kind {
            0 => Insn::VLoad {
                dst: v(reg),
                base: r(base),
                offset: 0,
            },
            1 => Insn::VaddUbH {
                dst: VPair::new((reg % 10) * 2),
                a: v(reg),
                b: v(reg + 1),
            },
            2 => Insn::VasrHB {
                dst: v(reg + 4),
                src: VPair::new((reg % 10) * 2),
                shift: 2,
            },
            3 => Insn::VStore {
                src: v(reg),
                base: r(base + 3),
                offset: 0,
            },
            4 => Insn::AddI {
                dst: r(base),
                a: r(base),
                imm: VBYTES as i64,
            },
            _ => Insn::Vmax {
                lane: Lane::B,
                dst: v(reg + 8),
                a: v(reg),
                b: v(reg + 2),
            },
        }
    });
    proptest::collection::vec(insn, 1..24).prop_map(|insns| {
        let mut b = Block::with_trip_count("random", 2);
        b.extend(insns);
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every packing policy emits legal schedules that preserve both the
    /// instruction multiset and the functional results.
    #[test]
    fn packing_preserves_semantics(block in arb_block()) {
        let model = ResourceModel::default();
        let mem_size = 64 * 1024usize;
        let run = |pb: &PackedBlock| {
            let mut m = Machine::new(mem_size);
            for i in 0..mem_size {
                m.mem[i] = (i % 253) as u8;
            }
            for i in 0..8 {
                m.set_sreg(SReg::new(i), (i as i64) * 4096 + 1024);
            }
            m.run_block(pb);
            m.mem
        };
        let reference = run(&PackedBlock::sequential(&block));
        for policy in [SoftDepPolicy::Sda, SoftDepPolicy::SoftToHard, SoftDepPolicy::SoftToNone] {
            let packed = pack_with_policy(&block, policy);
            prop_assert!(packed.is_legal(&model), "{:?} produced an illegal schedule", policy);
            prop_assert_eq!(packed.insn_count(), block.len(), "{:?} lost instructions", policy);
            if policy == SoftDepPolicy::SoftToHard {
                prop_assert!(no_intra_packet_deps(&packed));
            }
            prop_assert_eq!(run(&packed), reference.clone(), "{:?} changed results", policy);
        }
    }

    /// SDA never schedules more cycles than issuing one instruction per
    /// packet.
    #[test]
    fn sda_never_worse_than_sequential(block in arb_block()) {
        let sda = Packer::new().pack_block(&block).body_cycles();
        let seq = PackedBlock::sequential(&block).body_cycles();
        prop_assert!(sda <= seq, "sda {} vs sequential {}", sda, seq);
    }
}
