//! End-to-end compiler fuzz: random small DAGs (branches, residuals,
//! mixed operators) compiled under every selection strategy and packing
//! mode must produce legal, internally consistent artifacts with the
//! expected quality ordering.

use gcd2_repro::cgraph::{Activation, Graph, NodeId, OpKind, TShape};
use gcd2_repro::compiler::{Compiler, Packing, Selection};
use gcd2_repro::hvx::ResourceModel;
use proptest::prelude::*;

/// A random DAG: a trunk of operators with occasional residual edges
/// back to earlier same-shaped nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec((0u8..6, any::<bool>()), 2..10),
        16usize..48,
    )
        .prop_map(|(ops, ch)| {
            let mut g = Graph::new();
            let mut cur = g.input("x", TShape::nchw(1, ch, 14, 14));
            let mut same_shape: Vec<NodeId> = Vec::new();
            for (i, (kind, residual)) in ops.into_iter().enumerate() {
                cur = match kind {
                    0 => g.add(
                        OpKind::Conv2d {
                            out_channels: ch,
                            kernel: (3, 3),
                            stride: (1, 1),
                            padding: (1, 1),
                        },
                        &[cur],
                        format!("conv{i}"),
                    ),
                    1 => g.add(
                        OpKind::Conv2d {
                            out_channels: ch,
                            kernel: (1, 1),
                            stride: (1, 1),
                            padding: (0, 0),
                        },
                        &[cur],
                        format!("pw{i}"),
                    ),
                    2 => g.add(
                        OpKind::DepthwiseConv2d {
                            kernel: (3, 3),
                            stride: (1, 1),
                            padding: (1, 1),
                        },
                        &[cur],
                        format!("dw{i}"),
                    ),
                    3 => g.add(OpKind::Act(Activation::Relu), &[cur], format!("act{i}")),
                    4 => g.add(OpKind::Act(Activation::HardSwish), &[cur], format!("hs{i}")),
                    _ => {
                        if residual && !same_shape.is_empty() {
                            let other = same_shape[same_shape.len() / 2];
                            g.add(OpKind::Add, &[cur, other], format!("add{i}"))
                        } else {
                            g.add(OpKind::Add, &[cur, cur], format!("self_add{i}"))
                        }
                    }
                };
                same_shape.push(cur);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Selection-quality ordering survives arbitrary graph shapes.
    #[test]
    fn selection_ordering_on_random_graphs(g in arb_graph()) {
        let gcd2 = Compiler::new().compile(&g);
        let local = Compiler::new().with_selection(Selection::LocalOptimal).compile(&g);
        let pbqp = Compiler::new().with_selection(Selection::Pbqp).compile(&g);
        prop_assert!(gcd2.assignment.cost <= local.assignment.cost);
        prop_assert!(pbqp.assignment.cost <= local.assignment.cost);
        prop_assert!(gcd2.cycles() > 0);
    }

    /// Every packing mode produces a legal program; SDA never loses to
    /// soft_to_hard or sequential.
    #[test]
    fn packing_legality_on_random_graphs(g in arb_graph()) {
        let model = ResourceModel::default();
        let mut cycles = Vec::new();
        for mode in [Packing::Sda, Packing::SoftToHard, Packing::SoftToNone, Packing::Sequential] {
            let compiled = Compiler::new().with_packing(mode).compile(&g);
            for block in &compiled.lowered.program.blocks {
                prop_assert!(block.is_legal(&model), "illegal block {}", block.label);
            }
            cycles.push(compiled.cycles());
        }
        let (sda, s2h, _s2n, seq) = (cycles[0], cycles[1], cycles[2], cycles[3]);
        prop_assert!(sda <= s2h, "sda {sda} vs s2h {s2h}");
        prop_assert!(sda < seq, "sda {sda} vs sequential {seq}");
    }

    /// Compilation metrics are always finite and self-consistent.
    #[test]
    fn metrics_are_consistent(g in arb_graph()) {
        let compiled = Compiler::new().compile(&g);
        let stats = compiled.stats();
        prop_assert!(stats.insns <= 4 * stats.packets);
        prop_assert!(stats.stall_cycles <= stats.cycles);
        prop_assert!(compiled.utilization() > 0.0 && compiled.utilization() <= 1.0);
        prop_assert!(compiled.power_w().is_finite() && compiled.power_w() > 0.0);
        let attributed: u64 = compiled
            .lowered
            .reports
            .iter()
            .map(|r| r.kernel_cycles + r.transform_cycles)
            .sum();
        let diff = (attributed as f64 - compiled.cycles() as f64).abs();
        let rel = diff / compiled.cycles() as f64;
        prop_assert!(rel < 0.02, "attribution off by {}", rel);
    }
}

/// Satellite of the robustness layer: no malformed serialized graph
/// text may panic the compiler. Every corpus entry must come back as a
/// structured [`gcd2::Gcd2Error`], whether it dies in the parser, in
/// shape inference, or at admission.
mod malformed_text {
    use gcd2_repro::cgraph::from_text;
    use gcd2_repro::compiler::{Compiler, Gcd2Error};

    const CORPUS: &[(&str, &str)] = &[
        ("empty text", ""),
        ("truncated input line", "input x"),
        ("truncated op line", "input x [1x8x8x8]\nop y"),
        ("missing arrow", "input x [1x8x8x8]\nop y add x, x"),
        ("garbage tokens", "\u{0}\u{1}\u{7f} ???"),
        ("unrecognized line", "flip x over"),
        ("unknown mnemonic", "input x [1x4x4x4]\nop y warp <- x"),
        (
            "unknown activation",
            "input x [1x4x4x4]\nop y act tanh <- x",
        ),
        ("duplicate input name", "input x [4]\ninput x [8]"),
        (
            "duplicate op name",
            "input x [1x4x4x4]\nop y add <- x, x\nop y add <- x, x",
        ),
        ("dangling reference", "op y add <- ghost, ghost"),
        ("bad shape brackets", "input x 1x4x4x4"),
        ("bad shape dims", "input x [1xx4]"),
        ("unparseable dim", "input x [99999999999999999999999]"),
        (
            "tensor over admission limit",
            "input x [4294967295x4294967295]",
        ),
        (
            "zero stride conv",
            "input x [1x8x8x8]\nop c conv2d out=8 k=3x3 s=0x0 p=1x1 <- x",
        ),
        (
            "kernel larger than input",
            "input x [1x8x4x4]\nop c conv2d out=8 k=9x9 s=1x1 p=0x0 <- x",
        ),
        (
            "conv on rank-2 input",
            "input x [8x8]\nop c conv2d out=8 k=3x3 s=1x1 p=1x1 <- x",
        ),
        (
            "element-changing reshape",
            "input x [1x8x4x4]\nop r reshape to=[1x8x4x5] <- x",
        ),
        (
            "non-broadcastable add",
            "input a [1x8x4x4]\ninput b [1x7x4x4]\nop y add <- a, b",
        ),
        (
            "upsample factor overflow",
            "input x [1x8x4x4]\nop u upsample f=18446744073709551615 <- x",
        ),
        ("zero dimension", "input x [1x0x4x4]\nop y add <- x, x"),
    ];

    #[test]
    fn no_malformed_text_panics_the_compiler() {
        let compiler = Compiler::new().with_threads(1);
        for (what, text) in CORPUS {
            let result = compiler.try_compile_text(text);
            assert!(
                result.is_err(),
                "corpus entry '{what}' unexpectedly compiled"
            );
        }
    }

    #[test]
    fn parser_failures_surface_as_parse_errors_with_line_numbers() {
        let compiler = Compiler::new().with_threads(1);
        match compiler.try_compile_text("input x [1x4x4x4]\nop y warp <- x") {
            Err(Gcd2Error::Parse(e)) => assert_eq!(e.line, 2, "wrong line: {e}"),
            other => panic!("expected a parse error, got {other:?}"),
        }
        // from_text alone must agree with the compiler entry point.
        assert!(from_text("op y add <- ghost, ghost").is_err());
    }

    #[test]
    fn admission_failures_surface_as_admission_errors() {
        let compiler = Compiler::new().with_threads(1);
        match compiler.try_compile_text("") {
            Err(Gcd2Error::Admission(_)) => {}
            other => panic!("expected an admission error, got {other:?}"),
        }
        match compiler.try_compile_text("input x [4294967295x4294967295]") {
            Err(Gcd2Error::Admission(_)) => {}
            other => panic!("expected an admission error, got {other:?}"),
        }
    }
}
