//! The inference runtime's hard guarantees, mirrored from the compile
//! side: for catalog models, the precompiled plan's **batched, parallel**
//! execution is bit-identical to the node-by-node interpreter reference,
//! per input, at every thread count (including the `GCD2_THREADS`/
//! default-parallelism session configuration).

use gcd2_repro::compiler::{execute_reference, Compiler};
use gcd2_repro::models::ModelId;
use gcd2_repro::par::default_threads;

const SEED: u64 = 0xBA7C4;

/// Thread counts under test: serial, small, and the session default
/// (available parallelism or `GCD2_THREADS`).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, default_threads().max(4)];
    counts.dedup();
    counts
}

fn batch_inputs(len: usize, batch: usize) -> Vec<Vec<u8>> {
    (0..batch)
        .map(|b| {
            (0..len)
                .map(|i| ((i * 11 + 5 * (b + 1)) % 16) as u8)
                .collect()
        })
        .collect()
}

/// Runs the batch-vs-interpreter check for one model.
fn check_model(id: ModelId, batch: usize, thread_counts: &[usize]) {
    let graph = id.build();
    let compiled = Compiler::new().compile(&graph);
    let plan = compiled.inference_plan(SEED);
    let inputs = batch_inputs(plan.input_len(), batch);

    // Per-input interpreter references.
    let references: Vec<Vec<u8>> = inputs
        .iter()
        .map(|input| execute_reference(&compiled, input, SEED))
        .collect();

    for &threads in thread_counts {
        let outs = plan.execute_batch(&inputs, threads);
        assert_eq!(outs.len(), references.len(), "{id}: output count");
        for (i, (out, reference)) in outs.iter().zip(&references).enumerate() {
            assert_eq!(
                out, reference,
                "{id}: batch output {i} diverges from the interpreter at {threads} threads"
            );
        }
    }
}

/// The fast default subset spans the operator vocabulary: depthwise +
/// squeeze-excite CNN, transformer (LayerNorm/Softmax/Div/Pow), and the
/// multi-scale detector (Upsample/Concat).
#[test]
fn batch_execution_matches_interpreter_on_core_models() {
    for id in [
        ModelId::MobileNetV3,
        ModelId::TinyBert,
        ModelId::EfficientDetD0,
    ] {
        check_model(id, 4, &thread_counts());
    }
}

/// The whole catalog, including the two >100-GMAC models — run with
/// `cargo test -- --ignored` (minutes of wall clock).
#[test]
#[ignore = "full catalog takes minutes; run with --ignored"]
fn batch_execution_matches_interpreter_on_every_catalog_model() {
    for id in ModelId::ALL {
        check_model(id, 2, &[1, 4]);
    }
}

/// Degenerate batch shapes: the empty batch, a batch of one, and more
/// threads than items all behave like the plain multi-item path.
#[test]
fn batch_edge_shapes_execute_cleanly() {
    let graph = ModelId::MobileNetV3.build();
    let compiled = Compiler::new().compile(&graph);
    let plan = compiled.inference_plan(SEED);

    // Empty input list: empty output, no worker machinery engaged.
    let empty: Vec<Vec<u8>> = Vec::new();
    assert!(plan.execute_batch(&empty, 4).is_empty());
    assert!(plan.try_execute_batch(&empty, 4).is_empty());

    // Batch of one matches single-shot execution at any thread count.
    let single = batch_inputs(plan.input_len(), 1);
    let direct = plan.execute(&single[0]);
    for threads in [1, 4] {
        assert_eq!(plan.execute_batch(&single, threads), vec![direct.clone()]);
    }

    // More threads than items: extra workers idle, results unchanged.
    let inputs = batch_inputs(plan.input_len(), 3);
    let reference = plan.execute_batch(&inputs, 1);
    assert_eq!(plan.execute_batch(&inputs, 8), reference);
    // The fallible form agrees per item.
    for (r, want) in plan.try_execute_batch(&inputs, 8).iter().zip(&reference) {
        assert_eq!(r.as_ref().expect("healthy batch"), want);
    }
}

/// Reused arenas across different inputs never leak state between
/// inferences, and repeated batches are reproducible.
#[test]
fn repeated_batches_are_reproducible() {
    let graph = ModelId::MobileNetV3.build();
    let compiled = Compiler::new().compile(&graph);
    let plan = compiled.inference_plan(SEED);
    let inputs = batch_inputs(plan.input_len(), 6);
    let first = plan.execute_batch(&inputs, 4);
    let second = plan.execute_batch(&inputs, 2);
    assert_eq!(first, second, "batch results must not depend on history");
    // Single-shot execution through a fresh arena agrees with the batch.
    assert_eq!(first[0], plan.execute(&inputs[0]));
}
