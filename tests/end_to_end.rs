//! Cross-crate integration tests: the paper's headline claims, asserted
//! end to end through the facade crate.

use gcd2_repro::baselines::Framework;
use gcd2_repro::compiler::{Compiler, Packing, Selection};
use gcd2_repro::models::ModelId;

/// Table IV: GCD2 beats both production frameworks on every supported
/// model.
#[test]
fn gcd2_beats_tflite_and_snpe_everywhere() {
    for id in [ModelId::MobileNetV3, ModelId::ResNet50, ModelId::WdsrB] {
        let g = id.build();
        let gcd2 = Compiler::new().compile(&g);
        let t = Framework::Tflite.run(&g).expect("supported").stats.cycles;
        let s = Framework::Snpe.run(&g).expect("supported").stats.cycles;
        assert!(
            gcd2.cycles() < t,
            "{id}: GCD2 {} vs TFLite {t}",
            gcd2.cycles()
        );
        assert!(
            gcd2.cycles() < s,
            "{id}: GCD2 {} vs SNPE {s}",
            gcd2.cycles()
        );
    }
}

/// Table IV: WDSR-b (wildly varied feature-map shapes) shows the largest
/// speedup over TFLite of the CNN suite — the paper's 6.0x headline.
#[test]
fn wdsr_shows_the_largest_tflite_speedup() {
    let speedup = |id: ModelId| {
        let g = id.build();
        let gcd2 = Compiler::new().compile(&g).cycles() as f64;
        Framework::Tflite.run(&g).expect("supported").stats.cycles as f64 / gcd2
    };
    let wdsr = speedup(ModelId::WdsrB);
    assert!(wdsr > speedup(ModelId::ResNet50), "wdsr {wdsr}");
    assert!(wdsr > speedup(ModelId::CycleGan));
    assert!(
        wdsr > 2.0,
        "WDSR speedup should be the suite's largest: {wdsr}"
    );
}

/// Table IV: the transformers run only under GCD2 ("for the first
/// time"), because TFLite/SNPE lack Pow and the MatMul variants.
#[test]
fn transformers_run_for_the_first_time() {
    for id in [ModelId::TinyBert, ModelId::Conformer] {
        let g = id.build();
        assert!(
            Framework::Tflite.run(&g).is_none(),
            "{id} must be unsupported by TFLite"
        );
        assert!(
            Framework::Snpe.run(&g).is_none(),
            "{id} must be unsupported by SNPE"
        );
        let compiled = Compiler::new().compile(&g);
        assert!(
            compiled.cycles() > 0,
            "{id} must compile and run under GCD2"
        );
    }
    // And SNPE cannot ingest EfficientDet's 800+-operator graph.
    let effdet = ModelId::EfficientDetD0.build();
    assert!(Framework::Snpe.run(&effdet).is_none());
    assert!(Framework::Tflite.run(&effdet).is_some());
}

/// Figure 11's ordering holds end to end on a full model.
#[test]
fn packing_policies_are_ordered_end_to_end() {
    let g = ModelId::EfficientNetB0.build();
    let sda = Compiler::new().compile(&g).cycles();
    let s2h = Compiler::new()
        .with_packing(Packing::SoftToHard)
        .compile(&g)
        .cycles();
    let s2n = Compiler::new()
        .with_packing(Packing::SoftToNone)
        .compile(&g)
        .cycles();
    let seq = Compiler::new()
        .with_packing(Packing::Sequential)
        .compile(&g)
        .cycles();
    assert!(sda <= s2h, "SDA {sda} vs soft_to_hard {s2h}");
    assert!(sda <= s2n, "SDA {sda} vs soft_to_none {s2n}");
    assert!(seq > s2h, "sequential must be worst: {seq} vs {s2h}");
}

/// Figure 10's ordering: local <= GCD2(13) <= global optimum costs on a
/// prefix of ResNet-50, and GCD2(13) is within a few percent of global.
#[test]
fn selection_quality_ordering() {
    use gcd2_repro::globalopt::{enumerate_plans, exhaustive, gcd2_select, local_optimal};
    use gcd2_repro::kernels::CostModel;

    let resnet = ModelId::ResNet50.build();
    // First 10 operators (prefix preserves node ids).
    let mut g = gcd2_repro::cgraph::Graph::new();
    let mut ops = 0;
    for node in resnet.nodes() {
        match node.kind {
            gcd2_repro::cgraph::OpKind::Input => {
                g.input(node.name.clone(), node.shape.clone());
            }
            _ => {
                if ops >= 10 {
                    break;
                }
                g.add(node.kind.clone(), &node.inputs, node.name.clone());
                ops += 1;
            }
        }
    }
    let model = CostModel::new();
    let plans = enumerate_plans(&g, &model);
    let local = local_optimal(&g, &plans);
    let g13 = gcd2_select(&g, &plans, 13);
    let scope: Vec<_> = g
        .nodes()
        .iter()
        .filter(|n| !matches!(n.kind, gcd2_repro::cgraph::OpKind::Input))
        .map(|n| n.id)
        .collect();
    let global = exhaustive(&g, &plans, &scope);
    assert!(g13.cost <= local.cost);
    assert!(global.cost <= g13.cost);
    assert!(
        g13.cost as f64 <= global.cost as f64 * 1.05,
        "GCD2(13) {} within 5% of global {}",
        g13.cost,
        global.cost
    );
}

/// The compiled artifact exposes coherent measurements.
#[test]
fn compiled_model_metrics_are_coherent() {
    let g = ModelId::MobileNetV3.build();
    let m = Compiler::new().compile(&g);
    let stats = m.stats();
    assert!(stats.insns <= 4 * stats.packets, "slot accounting");
    assert!(stats.stall_cycles < stats.cycles);
    assert!((m.fps() * m.latency_ms() - 1e3).abs() < 1e-6);
    assert!(m.power_w() > 0.5 && m.power_w() < 5.0);
}

/// Uniform-instruction compilation (the TFLite-style baseline) is never
/// better than GCD2's global selection.
#[test]
fn uniform_selection_never_wins() {
    use gcd2_repro::kernels::SimdInstr;
    let g = ModelId::WdsrB.build();
    let gcd2 = Compiler::new().compile(&g).cycles();
    for instr in SimdInstr::ALL {
        let uniform = Compiler::new()
            .with_selection(Selection::Uniform(instr))
            .compile(&g)
            .cycles();
        assert!(gcd2 <= uniform, "{instr}: {uniform} vs {gcd2}");
    }
}
