//! Property test of the gateway circuit breaker against an independent
//! reference model.
//!
//! [`CircuitBreaker`] is the one supervision state machine whose
//! decisions gate live traffic, so it gets the same treatment the VLIW
//! packer and the analyzer get: a second, deliberately different
//! implementation of the same contract (the reference model below
//! recomputes its error rate by scanning a plain `Vec` instead of
//! maintaining incremental counts), driven with random operation
//! sequences. Three properties:
//!
//! 1. **no panics** — any interleaving of admits, outcome records,
//!    cancels, and stale noise is safe;
//! 2. **model equivalence** — every admission decision and every
//!    observable state transition matches the reference model exactly;
//! 3. **determinism** — replaying the same sequence on a fresh breaker
//!    reproduces the identical decision trace (the property that makes
//!    seeded chaos runs reproducible).
//!
//! Runs without the `fault-injection` feature: the breaker is pure
//! state, no faults needed.

use gcd2_repro::compiler::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use proptest::prelude::*;

/// The independent model: same contract as [`CircuitBreaker`], naive
/// implementation — the window is a `Vec` truncated from the front, the
/// error rate is recomputed by scanning it, and the three states are
/// modeled with explicit probe bookkeeping.
struct ModelBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: Vec<bool>,
    opened_at: u64,
    probes_out: usize,
    probe_ok: usize,
}

impl ModelBreaker {
    fn new(cfg: BreakerConfig) -> ModelBreaker {
        ModelBreaker {
            cfg: BreakerConfig {
                window: cfg.window.max(1),
                min_samples: cfg.min_samples.max(1),
                threshold_pct: cfg.threshold_pct.min(100),
                cooldown_us: cfg.cooldown_us,
                probes: cfg.probes.max(1),
            },
            state: BreakerState::Closed,
            window: Vec::new(),
            opened_at: 0,
            probes_out: 0,
            probe_ok: 0,
        }
    }

    fn admit(&mut self, now: u64) -> Admission {
        if self.state == BreakerState::Open {
            if now.saturating_sub(self.opened_at) >= self.cfg.cooldown_us {
                self.state = BreakerState::HalfOpen;
                self.probes_out = 0;
                self.probe_ok = 0;
            } else {
                return Admission::Reject {
                    retry_after_us: self.cfg.cooldown_us - now.saturating_sub(self.opened_at),
                };
            }
        }
        if self.state == BreakerState::Closed {
            return Admission::Admit;
        }
        if self.probes_out < self.cfg.probes {
            self.probes_out += 1;
            Admission::Probe
        } else {
            Admission::Reject { retry_after_us: 0 }
        }
    }

    fn record(&mut self, error: bool, probe: bool, now: u64) {
        match self.state {
            BreakerState::Closed => {
                self.window.push(error);
                while self.window.len() > self.cfg.window {
                    self.window.remove(0);
                }
                let errors = self.window.iter().filter(|&&e| e).count();
                if self.window.len() >= self.cfg.min_samples
                    && errors * 100 >= usize::from(self.cfg.threshold_pct) * self.window.len()
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen if probe => {
                self.probes_out = self.probes_out.saturating_sub(1);
                if error {
                    self.trip(now);
                } else {
                    self.probe_ok += 1;
                    if self.probe_ok >= self.cfg.probes {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                        self.probes_out = 0;
                        self.probe_ok = 0;
                    }
                }
            }
            _ => {}
        }
    }

    fn cancel(&mut self, probe: bool) {
        if probe && self.state == BreakerState::HalfOpen {
            self.probes_out = self.probes_out.saturating_sub(1);
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.window.clear();
        self.probes_out = 0;
        self.probe_ok = 0;
    }
}

/// One step of the driver: advance logical time, then do something.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit a request; successful admissions join the pending queue.
    Admit,
    /// Resolve the oldest pending admission with this outcome.
    Record { error: bool },
    /// Cancel the oldest pending admission (shed/abandoned/orphaned).
    Cancel,
    /// A stale outcome for a request admitted before a trip: recorded
    /// with `probe = false` regardless of breaker state.
    StaleNoise { error: bool },
}

fn arb_cfg() -> impl Strategy<Value = BreakerConfig> {
    (1usize..8, 1usize..8, 0u8..=100, 1u64..2_000, 1usize..4).prop_map(
        |(window, min_samples, threshold_pct, cooldown_us, probes)| BreakerConfig {
            window,
            min_samples,
            threshold_pct,
            cooldown_us,
            probes,
        },
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<(u64, Op)>> {
    proptest::collection::vec(
        (0u64..700, 0u8..10, any::<bool>()).prop_map(|(dt, kind, error)| {
            let op = match kind {
                0..=4 => Op::Admit,
                5 | 6 => Op::Record { error },
                7 => Op::Record { error: true },
                8 => Op::Cancel,
                _ => Op::StaleNoise { error },
            };
            (dt, op)
        }),
        1..120,
    )
}

/// Drives one breaker through the op sequence, returning the full
/// observable trace: the admission decision or `None` per step, plus
/// the state after every step.
fn drive(cfg: BreakerConfig, ops: &[(u64, Op)]) -> Vec<(Option<Admission>, BreakerState)> {
    let mut b = CircuitBreaker::new(cfg);
    let mut pending: Vec<bool> = Vec::new();
    let mut now = 0u64;
    let mut trace = Vec::with_capacity(ops.len());
    for &(dt, op) in ops {
        now += dt;
        let decision = match op {
            Op::Admit => {
                let a = b.admit(now);
                match a {
                    Admission::Admit => pending.push(false),
                    Admission::Probe => pending.push(true),
                    Admission::Reject { .. } => {}
                }
                Some(a)
            }
            Op::Record { error } => {
                if !pending.is_empty() {
                    let probe = pending.remove(0);
                    b.record(error, probe, now);
                }
                None
            }
            Op::Cancel => {
                if !pending.is_empty() {
                    let probe = pending.remove(0);
                    b.cancel(probe);
                }
                None
            }
            Op::StaleNoise { error } => {
                b.record(error, false, now);
                None
            }
        };
        trace.push((decision, b.state()));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The real breaker and the reference model make identical
    /// decisions on any op sequence — and neither ever panics.
    #[test]
    fn breaker_matches_reference_model(cfg in arb_cfg(), ops in arb_ops()) {
        let mut real = CircuitBreaker::new(cfg);
        let mut model = ModelBreaker::new(cfg);
        let mut pending: Vec<bool> = Vec::new();
        let mut now = 0u64;
        for (step, &(dt, op)) in ops.iter().enumerate() {
            now += dt;
            match op {
                Op::Admit => {
                    let got = real.admit(now);
                    let want = model.admit(now);
                    prop_assert_eq!(got, want, "admit diverged at step {}", step);
                    match got {
                        Admission::Admit => pending.push(false),
                        Admission::Probe => pending.push(true),
                        Admission::Reject { .. } => {}
                    }
                }
                Op::Record { error } => {
                    if !pending.is_empty() {
                        let probe = pending.remove(0);
                        real.record(error, probe, now);
                        model.record(error, probe, now);
                    }
                }
                Op::Cancel => {
                    if !pending.is_empty() {
                        let probe = pending.remove(0);
                        real.cancel(probe);
                        model.cancel(probe);
                    }
                }
                Op::StaleNoise { error } => {
                    real.record(error, false, now);
                    model.record(error, false, now);
                }
            }
            prop_assert_eq!(
                real.state(),
                model.state,
                "state diverged at step {} ({:?})",
                step,
                op
            );
        }
    }

    /// Replaying a sequence on a fresh breaker reproduces the identical
    /// observable trace: the machine is a pure function of its calls.
    #[test]
    fn breaker_is_deterministic(cfg in arb_cfg(), ops in arb_ops()) {
        prop_assert_eq!(drive(cfg, &ops), drive(cfg, &ops));
    }

    /// A breaker that trips always recovers: after the cooldown, probes
    /// are admitted, and enough successful probes close it again.
    /// (`threshold_pct == 0` is the pathological always-trip config and
    /// is excluded: it can never stay Closed by design.)
    #[test]
    fn opened_breaker_recovers_through_probes(cfg in arb_cfg(), ops in arb_ops()) {
        let cfg = BreakerConfig {
            threshold_pct: cfg.threshold_pct.max(1),
            ..cfg
        };
        let mut b = CircuitBreaker::new(cfg);
        let mut pending: Vec<bool> = Vec::new();
        let mut now = 0u64;
        for &(dt, op) in &ops {
            now += dt;
            match op {
                Op::Admit => match b.admit(now) {
                    Admission::Admit => pending.push(false),
                    Admission::Probe => pending.push(true),
                    Admission::Reject { .. } => {}
                },
                Op::Record { error } => {
                    if !pending.is_empty() {
                        let probe = pending.remove(0);
                        b.record(error, probe, now);
                    }
                }
                Op::Cancel => {
                    if !pending.is_empty() {
                        let probe = pending.remove(0);
                        b.cancel(probe);
                    }
                }
                Op::StaleNoise { error } => b.record(error, false, now),
            }
        }
        // Resolve the storm's leftovers first: an outstanding probe
        // holds a HalfOpen slot until recorded or cancelled.
        for probe in pending.drain(..) {
            b.cancel(probe);
        }
        // Whatever state the storm left it in, drive it home: wait out
        // any cooldown, then feed successes. One more trip is possible
        // on the way (storm-era errors still in the Closed window meet
        // `min_samples` as successes land), so the loop is sized past
        // window-fill + cooldown + a full probe episode.
        for _ in 0..(cfg.window + cfg.min_samples + cfg.probes.max(1) * 3 + 4) {
            now += cfg.cooldown_us.max(1);
            match b.admit(now) {
                Admission::Admit => {
                    b.record(false, false, now);
                }
                Admission::Probe => {
                    b.record(false, true, now);
                }
                Admission::Reject { .. } => {}
            }
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
    }
}
