//! Property test of the analyzer's false-positive rate: ANY random
//! small graph the compiler accepts must yield an inference plan the
//! static analyzer proves clean. The builder and the analyzer are
//! independent implementations of the same arena and requantization
//! contracts — a divergence on a random DAG is a bug in one of them.

use gcd2_repro::analyze::Verdict;
use gcd2_repro::cgraph::{Activation, Graph, NodeId, OpKind, TShape};
use gcd2_repro::compiler::Compiler;
use proptest::prelude::*;

/// A random DAG mixing convs, activations, pooling, residuals, and the
/// host elementwise ops — the same trunk-with-residuals shape the
/// compiler fuzz suite uses, extended with the ops whose transfer
/// functions the analyzer models (Mul/Div/Softmax/LayerNorm).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec((0u8..9, any::<bool>()), 2..12),
        8usize..32,
    )
        .prop_map(|(ops, ch)| {
            let mut g = Graph::new();
            let mut cur = g.input("x", TShape::nchw(1, ch, 10, 10));
            let mut same_shape: Vec<NodeId> = Vec::new();
            for (i, (kind, residual)) in ops.into_iter().enumerate() {
                cur = match kind {
                    0 => g.add(
                        OpKind::Conv2d {
                            out_channels: ch,
                            kernel: (3, 3),
                            stride: (1, 1),
                            padding: (1, 1),
                        },
                        &[cur],
                        format!("conv{i}"),
                    ),
                    1 => g.add(
                        OpKind::DepthwiseConv2d {
                            kernel: (3, 3),
                            stride: (1, 1),
                            padding: (1, 1),
                        },
                        &[cur],
                        format!("dw{i}"),
                    ),
                    2 => g.add(OpKind::Act(Activation::Relu), &[cur], format!("act{i}")),
                    3 => g.add(OpKind::Act(Activation::HardSwish), &[cur], format!("hs{i}")),
                    4 => {
                        if residual && !same_shape.is_empty() {
                            let other = same_shape[same_shape.len() / 2];
                            g.add(OpKind::Add, &[cur, other], format!("add{i}"))
                        } else {
                            g.add(OpKind::Mul, &[cur, cur], format!("mul{i}"))
                        }
                    }
                    5 => g.add(OpKind::Div, &[cur, cur], format!("div{i}")),
                    6 => g.add(OpKind::Pow, &[cur], format!("pow{i}")),
                    7 => g.add(OpKind::LayerNorm, &[cur], format!("ln{i}")),
                    _ => g.add(OpKind::Softmax, &[cur], format!("sm{i}")),
                };
                same_shape.push(cur);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Zero false positives: whatever plan the builder emits for a
    /// random accepted graph, the analyzer proves it sound — no
    /// accumulator overflow, no arena aliasing violation, not even a
    /// warning.
    #[test]
    fn random_plans_analyze_clean(g in arb_graph()) {
        let compiled = Compiler::new().compile(&g);
        // Debug builds already run the analyzer inside try_build and
        // refuse unsound plans; analyzing again pins the verdict in
        // release test profiles too.
        let plan = match compiled.try_inference_plan(0xF00D) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("plan build failed: {e}"))),
        };
        let analysis = compiled.analyze_plan(&plan);
        prop_assert_eq!(analysis.verdict(), Verdict::Clean, "{}", analysis);
        prop_assert!(analysis.is_clean(), "warnings are false positives too: {:?}", analysis.diagnostics);
        prop_assert!(analysis.ranges.all_fit_i32());
        // Every GEMM-like graph operator earned an accumulator proof.
        let gemm_nodes = compiled.graph.nodes().iter().filter(|n| n.kind.is_gemm_like()).count();
        prop_assert_eq!(analysis.ranges.gemms().len(), gemm_nodes);
    }
}
