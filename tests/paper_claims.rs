//! The paper's headline claims, asserted in one place. Each test names
//! the claim as the paper states it and checks the reproduced shape
//! (fast models only; the full sweep lives in `gcd2-bench`).

use gcd2_repro::baselines::{compile_kernel, table5_accelerators, Framework, KernelCompiler};
use gcd2_repro::bench::geomean;
use gcd2_repro::cgraph::GemmDims;
use gcd2_repro::compiler::Compiler;
use gcd2_repro::kernels::{CostModel, SimdInstr, UnrollConfig};
use gcd2_repro::models::ModelId;

/// "GCD2 outperforms two product-level state-of-the-art end-to-end DNN
/// execution frameworks ... achieving 2.8x and 2.1x speedup (in
/// geometric mean)".
#[test]
fn headline_geomean_speedups() {
    let subset = [
        ModelId::MobileNetV3,
        ModelId::ResNet50,
        ModelId::WdsrB,
        ModelId::PixOr,
    ];
    let mut over_t = Vec::new();
    let mut over_s = Vec::new();
    for id in subset {
        let g = id.build();
        let gcd2 = Compiler::new().compile(&g).cycles() as f64;
        over_t.push(Framework::Tflite.run(&g).unwrap().stats.cycles as f64 / gcd2);
        over_s.push(Framework::Snpe.run(&g).unwrap().stats.cycles as f64 / gcd2);
    }
    let gt = geomean(&over_t);
    let gs = geomean(&over_s);
    assert!(gt > 1.5, "geomean over TFLite {gt:.2} (paper: 2.8)");
    assert!(gs > 1.3, "geomean over SNPE {gs:.2} (paper: 2.1)");
    assert!(gt > gs, "TFLite gap exceeds SNPE gap, as in Table IV");
}

/// "the instruction vmpy (and the corresponding 1-column layout)
/// provides better execution efficiency if the operands have a certain
/// length. However, for other cases, this instruction causes padding
/// overheads" — Table II's crossover structure.
#[test]
fn table2_crossovers() {
    let m = CostModel::new();
    let best = |s: usize| {
        SimdInstr::ALL
            .into_iter()
            .min_by_key(|&i| m.gemm_cycles(&GemmDims::new(s, s, s), i, UnrollConfig::new(2, 2)))
            .unwrap()
    };
    assert_eq!(best(32), SimdInstr::Vrmpy);
    assert_eq!(best(64), SimdInstr::Vmpa);
    assert_eq!(best(128), SimdInstr::Vmpy);
}

/// "our approach is able to deliver significantly higher performance"
/// than RAKE (Table III), and the full system beats Halide/TVM/RAKE on
/// kernels (Figure 7).
#[test]
fn kernel_compilers_lose_to_gcd2() {
    for gemm in [
        GemmDims::new(112 * 112, 147, 64),
        GemmDims::new(56 * 56, 576, 64),
        GemmDims::new(28 * 28, 1152, 128),
    ] {
        let gcd2 = compile_kernel(KernelCompiler::Gcd2, &gemm).cycles;
        for c in [
            KernelCompiler::Halide,
            KernelCompiler::Tvm,
            KernelCompiler::Rake,
        ] {
            let other = compile_kernel(c, &gemm).cycles;
            assert!(gcd2 < other, "{:?} beat GCD2 on {gemm}", c.name());
        }
    }
}

/// "GCD2 is also unique in supporting real-time execution of certain
/// DNNs": EfficientDet-d0 runs under 33 ms (30 FPS) where the framework
/// baseline does not reach it on the paper's hardware.
#[test]
fn efficientdet_is_real_time() {
    let g = ModelId::EfficientDetD0.build();
    let compiled = Compiler::new().compile(&g);
    assert!(
        compiled.latency_ms() < 33.0,
        "EfficientDet-d0 at {:.1} ms is not real-time",
        compiled.latency_ms()
    );
}

/// "its implementation enables two major DNNs to execute on a mobile
/// DSP for the first time."
#[test]
fn first_time_models_compile_only_under_gcd2() {
    for id in [ModelId::TinyBert, ModelId::Conformer] {
        let g = id.build();
        assert!(Framework::Tflite.run(&g).is_none());
        assert!(Framework::Snpe.run(&g).is_none());
        assert!(Compiler::new().compile(&g).cycles() > 0);
    }
}

/// Table V: "achieves 6.1x and 1.48x better energy efficiency (FPW)
/// ... over EdgeTPU and Jetson Xavier" — our simulated GCD2 row must
/// beat both on frames per Watt.
#[test]
fn best_energy_efficiency_among_accelerators() {
    let compiled = Compiler::new().compile(&ModelId::ResNet50.build());
    let ours = compiled.frames_per_watt();
    for acc in table5_accelerators() {
        assert!(
            ours > acc.fpw(),
            "GCD2 {ours:.1} FPW vs {} {:.1}",
            acc.platform,
            acc.fpw()
        );
    }
    // And the absolute row lands near the paper's 141 FPS / 2.6 W / 54.2.
    assert!(
        (compiled.fps() - 141.0).abs() < 20.0,
        "fps {:.1}",
        compiled.fps()
    );
    assert!(
        (compiled.power_w() - 2.6).abs() < 0.5,
        "power {:.2}",
        compiled.power_w()
    );
}

/// Section V-B: "GCD2 achieves up to 1.51 TOPS for an individual layer"
/// of the 3.7 TOPS practical peak — our end-to-end ResNet throughput
/// must land in the same order of magnitude, below peak.
#[test]
fn achieved_tops_in_band() {
    let compiled = Compiler::new().compile(&ModelId::ResNet50.build());
    let tops = compiled.tops();
    assert!((0.5..3.7).contains(&tops), "achieved {tops:.2} TOPS");
}
