//! Gateway chaos suite: seeded fault injection and adversarial load
//! against the dynamic-batching multi-model serving gateway.
//!
//! The robustness contract extends `tests/runtime_chaos.rs` to the
//! gateway layer: **every** ticket the gateway accepts must resolve —
//! to output bit-identical to single-shot execution, or to a clean
//! structured [`InferError`] — under mid-batch panics, registry churn,
//! shed storms, and drain races. A panic inside a batch must resolve
//! exactly that batch's tickets (and no others) with structured
//! errors, and the worker must keep serving. Run with
//! `cargo test --features fault-injection --test gateway_chaos`; the
//! suite is absent from the default (uninstrumented) build.

#![cfg(feature = "fault-injection")]

use gcd2_repro::cgraph::{Graph, OpKind, TShape};
use gcd2_repro::compiler::{
    Compiler, ExecOptions, GatewayConfig, InferError, InferServer, InferencePlan,
};
use gcd2_repro::faults::{arm, Armed, FaultKind, FaultPlan};
use std::time::Duration;

const INPUT_LEN: usize = 32;

/// A two-GEMM net: big enough to cross the `infer.gemm`/`infer.prep`
/// points inside a batch, small enough for storms of requests.
fn gateway_net(n_out: usize, seed: u64) -> InferencePlan {
    let mut g = Graph::new();
    let x = g.input("x", TShape::new(vec![1, INPUT_LEN]));
    let fc1 = g.add(OpKind::MatMul { n: 24 }, &[x], "fc1");
    let fc2 = g.add(OpKind::MatMul { n: n_out }, &[fc1], "fc2");
    g.add(OpKind::Softmax, &[fc2], "sm");
    Compiler::new().compile(&g).inference_plan(seed)
}

fn inputs(count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|s| {
            (0..INPUT_LEN)
                .map(|i| ((i * 5 + s * 3) % 16) as u8)
                .collect()
        })
        .collect()
}

/// Holds the chaos gate with an **empty** plan: serializes against other
/// armed tests so baseline runs neither consume their triggers nor get
/// hit by their faults.
fn quiet() -> Armed {
    arm(FaultPlan::new())
}

fn assert_injected(e: &InferError) {
    match e {
        InferError::Worker(p) => assert!(
            p.message.contains("injected fault"),
            "non-injected worker panic: {}",
            p.message
        ),
        InferError::Internal { message } => assert!(
            message.contains("injected fault"),
            "non-injected internal error: {message}"
        ),
        _ => {}
    }
}

/// Scenario 1: a panic mid-batch (`serve.batch`) resolves exactly that
/// batch's tickets with structured errors; the next batch — same
/// worker — serves bit-identically.
#[test]
fn mid_batch_panic_isolates_to_that_batchs_tickets() {
    let plan = gateway_net(8, 41);
    let ins = inputs(8);
    let expect: Vec<Vec<u8>> = {
        let _quiet = quiet();
        ins.iter().map(|i| plan.execute(i)).collect()
    };
    let _armed = arm(FaultPlan::new().once("serve.batch", FaultKind::Panic, 1));
    let server = InferServer::gateway(GatewayConfig {
        workers: 1,
        capacity: 64,
        max_batch: 4,
        // Generous: batches dispatch on fill (4 queued), never on age,
        // so the split into [0..4][4..8] is deterministic.
        max_wait: Duration::from_millis(250),
        opts: ExecOptions::default(),
        ..GatewayConfig::default()
    });
    server.register("m", plan).expect("register");
    let tickets: Vec<_> = ins
        .iter()
        .map(|i| server.submit_to("m", i.clone(), 0).expect("admitted"))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let r = ticket.wait();
        if i < 4 {
            let e = r.expect_err("first batch took the panic");
            assert!(matches!(e, InferError::Worker(_)), "ticket {i}: {e:?}");
            assert_injected(&e);
        } else {
            assert_eq!(
                r.expect("second batch survives its sibling's panic"),
                expect[i],
                "ticket {i}"
            );
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.failed, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.batches, 2);
}

/// Scenario 2: checksum-keyed swaps under concurrent load — every
/// request resolves bit-identical to *some* registered plan version,
/// never to a torn mixture, and a stale swap key is refused.
#[test]
fn registry_swap_under_load_stays_bit_identical() {
    let plan_a = gateway_net(8, 42);
    let plan_b = gateway_net(8, 43);
    let ins = inputs(4);
    let (expect_a, expect_b): (Vec<Vec<u8>>, Vec<Vec<u8>>) = {
        let _quiet = quiet();
        (
            ins.iter().map(|i| plan_a.execute(i)).collect(),
            ins.iter().map(|i| plan_b.execute(i)).collect(),
        )
    };
    let _quiet = quiet();
    let server = InferServer::gateway(GatewayConfig {
        workers: 2,
        capacity: 256,
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        opts: ExecOptions::default(),
        ..GatewayConfig::default()
    });
    let sum_a = server.register("m", plan_a.clone()).expect("register");
    std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..3)
            .map(|t| {
                let server = &server;
                let ins = &ins;
                let expect_a = &expect_a;
                let expect_b = &expect_b;
                scope.spawn(move || {
                    for round in 0..40 {
                        let idx = (t + round) % ins.len();
                        match server.infer_on("m", ins[idx].clone(), 0) {
                            Ok(out) => assert!(
                                out == expect_a[idx] || out == expect_b[idx],
                                "request served by neither plan version"
                            ),
                            // Queue-full backpressure is legal under storm.
                            Err(InferError::QueueFull { .. }) => {}
                            Err(e) => panic!("unexpected serve error: {e:?}"),
                        }
                    }
                })
            })
            .collect();
        // Mid-load: a stale key is refused, the real key swaps.
        let stale = server.swap("m", sum_a ^ 0xFF, plan_b.clone());
        assert!(
            matches!(stale, Err(InferError::IntegrityViolation { .. })),
            "{stale:?}"
        );
        let sum_b = server.swap("m", sum_a, plan_b.clone()).expect("keyed swap");
        assert_eq!(sum_b, plan_b.checksum());
        for s in submitters {
            s.join().expect("submitter");
        }
    });
    // After the swap settles, traffic follows the new plan exclusively.
    assert_eq!(
        server.infer_on("m", ins[0].clone(), 0).expect("served"),
        expect_b[0]
    );
    let stats = server.shutdown();
    assert_eq!(stats.failed, 0);
}

/// Scenario 3: a shed storm — floods of ascending priority against a
/// tiny parked queue. Every accepted ticket resolves exactly once
/// (served or shed), lowest priorities go first, and the books balance.
#[test]
fn shed_storm_evicts_lowest_priority_and_answers_everything() {
    let plan = gateway_net(8, 44);
    let ins = inputs(1);
    let expect = {
        let _quiet = quiet();
        plan.execute(&ins[0])
    };
    let _quiet = quiet();
    let server = InferServer::gateway(GatewayConfig {
        workers: 1,
        capacity: 4,
        max_batch: 64,
        // Parks the worker: nothing dispatches until the drain flush,
        // so the storm's shed/reject arithmetic is deterministic.
        max_wait: Duration::from_secs(30),
        opts: ExecOptions::default(),
        ..GatewayConfig::default()
    });
    server.register("m", plan).expect("register");
    let submit = |prio: u8| server.submit_to("m", ins[0].clone(), prio);
    // Fill with priority 0.
    let p0: Vec<_> = (0..4).map(|_| submit(0).expect("fills")).collect();
    // Priority-1 wave: 4 evict the p0s, 4 more bounce off a p1-only queue.
    let p1: Vec<_> = (0..4).map(|_| submit(1).expect("evicts a p0")).collect();
    for _ in 0..4 {
        assert!(matches!(
            submit(1).map(|_| ()),
            Err(InferError::QueueFull { .. })
        ));
    }
    // Priority-2 spike: evicts two p1s.
    let p2: Vec<_> = (0..2).map(|_| submit(2).expect("evicts a p1")).collect();
    // Every p0 was shed, with its own priority in the error.
    for t in p0 {
        assert_eq!(
            t.wait(),
            Err(InferError::Shed {
                priority: 0,
                capacity: 4
            })
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 10, "4 p0 + 4 p1 + 2 p2");
    assert_eq!(stats.rejected, 4);
    assert_eq!(stats.shed, 6, "4 p0 + 2 p1 evicted");
    assert_eq!(stats.completed, 4, "drain serves the surviving queue");
    // Survivors: two p1 and both p2 served bit-identically; two p1 shed.
    let mut p1_shed = 0;
    for t in p1 {
        match t.wait() {
            Ok(out) => assert_eq!(out, expect),
            Err(InferError::Shed {
                priority: 1,
                capacity: 4,
            }) => p1_shed += 1,
            other => panic!("p1 ticket resolved oddly: {other:?}"),
        }
    }
    assert_eq!(p1_shed, 2);
    for t in p2 {
        assert_eq!(t.wait().expect("top priority survives the storm"), expect);
    }
}

/// Scenario 4: a drain racing live submitters — whatever interleaving
/// the race takes, every accepted ticket is answered bit-identically
/// and post-drain submissions are refused with a structured error.
#[test]
fn drain_race_answers_every_accepted_ticket() {
    let plan = gateway_net(8, 45);
    let ins = inputs(4);
    let expect: Vec<Vec<u8>> = {
        let _quiet = quiet();
        ins.iter().map(|i| plan.execute(i)).collect()
    };
    let _quiet = quiet();
    let server = InferServer::gateway(GatewayConfig {
        workers: 2,
        capacity: 1024,
        max_batch: 8,
        max_wait: Duration::from_micros(500),
        opts: ExecOptions::default(),
        ..GatewayConfig::default()
    });
    server.register("m", plan).expect("register");
    let (served, refused) = std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..4)
            .map(|t| {
                let server = &server;
                let ins = &ins;
                let expect = &expect;
                scope.spawn(move || {
                    let mut served = 0u64;
                    let mut refused = 0u64;
                    for round in 0..50 {
                        let idx = (t + round) % ins.len();
                        match server.submit_to("m", ins[idx].clone(), 0) {
                            Ok(ticket) => {
                                // Accepted before (or during) the drain:
                                // must be served, never dropped.
                                assert_eq!(
                                    ticket.wait().expect("accepted => answered"),
                                    expect[idx]
                                );
                                served += 1;
                            }
                            Err(InferError::Draining | InferError::ServerStopped) => refused += 1,
                            Err(e) => panic!("unexpected submit error: {e:?}"),
                        }
                    }
                    (served, refused)
                })
            })
            .collect();
        // Let the storm build, then yank the gate mid-flight.
        std::thread::sleep(Duration::from_millis(2));
        server.drain();
        assert_eq!(
            server.submit_to("m", ins[0].clone(), 0).map(|_| ()),
            Err(InferError::Draining)
        );
        submitters.into_iter().fold((0, 0), |(s, r), h| {
            let (hs, hr) = h.join().expect("submitter");
            (s + hs, r + hr)
        })
    });
    let stats = server.shutdown();
    assert_eq!(stats.accepted, served, "every accepted ticket was served");
    assert_eq!(stats.completed, served);
    assert_eq!(stats.failed, 0);
    assert_eq!(served + refused, 4 * 50);
    assert!(refused >= 1, "the drain landed mid-storm");
}

/// Scenario 5: `serve.registry` faults are contained — a panic surfaces
/// as a structured error (registration refused, gateway alive), a
/// corrupt-cache injection reads as an untrustworthy checksum.
#[test]
fn registry_faults_refuse_admission_structurally() {
    let plan = gateway_net(8, 46);
    let server = InferServer::gateway(GatewayConfig {
        workers: 1,
        ..GatewayConfig::default()
    });
    {
        let _armed = arm(FaultPlan::new().once("serve.registry", FaultKind::Panic, 1));
        let e = server
            .register("m", plan.clone())
            .expect_err("panicking admission refuses");
        assert!(matches!(e, InferError::Internal { .. }), "{e:?}");
        assert_injected(&e);
    }
    {
        let _armed = arm(FaultPlan::new().sticky("serve.registry", FaultKind::CorruptCache, 1));
        let e = server
            .register("m", plan.clone())
            .expect_err("corrupt registry entry refuses");
        assert!(matches!(e, InferError::IntegrityViolation { .. }), "{e:?}");
    }
    // Faults spent/disarmed: the same gateway admits and serves.
    let _quiet = quiet();
    server.register("m", plan.clone()).expect("clean admission");
    let input = inputs(1).remove(0);
    assert_eq!(
        server.infer_on("m", input.clone(), 0).expect("served"),
        plan.execute(&input)
    );
}

/// Seed-derived gateway fault plans: every ticket under randomized
/// gateway + runtime faults resolves bit-identical or structured, and
/// the gateway survives to serve a clean request after disarming.
#[test]
fn seeded_gateway_fault_plans_terminate_bit_identical_or_structured() {
    let mut seeds = vec![2024u64, 7, 19];
    if let Ok(s) = std::env::var("GCD2_GW_CHAOS_SEED") {
        if let Ok(s) = s.parse() {
            seeds.push(s);
        }
    }
    let plan = gateway_net(8, 47);
    let ins = inputs(6);
    let expect: Vec<Vec<u8>> = {
        let _quiet = quiet();
        ins.iter().map(|i| plan.execute(i)).collect()
    };
    for seed in seeds {
        let fault_plan = FaultPlan::from_seed_gateway(seed);
        let armed = arm(fault_plan.clone());
        let server = InferServer::gateway(GatewayConfig {
            workers: 2,
            capacity: 64,
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            opts: ExecOptions::default(),
            ..GatewayConfig::default()
        });
        if server.register("m", plan.clone()).is_err() {
            // A registry fault refused admission — structured, done.
            drop(server);
            drop(armed);
            continue;
        }
        let tickets: Vec<_> = ins
            .iter()
            .map(|i| server.submit_to("m", i.clone(), 0))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            match t {
                Ok(ticket) => match ticket.wait() {
                    Ok(out) => assert_eq!(out, expect[i], "seed {seed} diverged ({fault_plan:?})"),
                    Err(e) => assert_injected(&e),
                },
                Err(e) => assert_injected(&e),
            }
        }
        server.shutdown();
        drop(armed);
        // The process (pools, caches, dispatch tables) survives to serve
        // cleanly after the chaos run.
        let _quiet = quiet();
        let clean = InferServer::start(plan.clone(), 1, 8, ExecOptions::default());
        assert_eq!(
            clean.infer(ins[0].clone()).expect("post-chaos sanity"),
            expect[0]
        );
    }
}
