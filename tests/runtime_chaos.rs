//! Runtime chaos suite: seeded fault injection against the inference
//! runtime and serving layer.
//!
//! The robustness contract mirrors `tests/chaos.rs`, but for execution
//! instead of compilation: **every** injected-fault run must terminate
//! with either
//!
//! 1. output **bit-identical** to the undisturbed baseline (the fault
//!    was transient and per-item isolation retried it), or
//! 2. a clean structured [`InferError`] (the fault was persistent),
//!
//! and a panic must never escape an execution entry point, nor may one
//! poisoned batch item contaminate its siblings. Run with
//! `cargo test --features fault-injection --test runtime_chaos`; the
//! suite is absent from the default (uninstrumented) build.

#![cfg(feature = "fault-injection")]

use gcd2_repro::cgraph::{Activation, Graph, OpKind, TShape};
use gcd2_repro::compiler::{Compiler, ExecOptions, InferError, InferServer, InferencePlan};
use gcd2_repro::faults::{arm, Armed, FaultKind, FaultPlan};
use std::time::Duration;

/// A small net crossing every runtime fault point: two real GEMMs
/// (`infer.gemm`), a depthwise direct kernel, im2col staging
/// (`infer.prep`), and a tail of elementwise/pool/normalization steps
/// (`infer.elementwise`).
fn chaos_net() -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", TShape::nchw(1, 4, 12, 12));
    let conv = g.add(
        OpKind::Conv2d {
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        "conv",
    );
    let relu = g.add(OpKind::Act(Activation::Relu), &[conv], "relu");
    let dw = g.add(
        OpKind::DepthwiseConv2d {
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[relu],
        "dw",
    );
    let pool = g.add(
        OpKind::MaxPool {
            kernel: (2, 2),
            stride: (2, 2),
        },
        &[dw],
        "pool",
    );
    let gap = g.add(OpKind::GlobalAvgPool, &[pool], "gap");
    let flat = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![1, 8]),
        },
        &[gap],
        "flat",
    );
    let fc = g.add(OpKind::MatMul { n: 6 }, &[flat], "fc");
    g.add(OpKind::Softmax, &[fc], "sm");
    g
}

const SEED: u64 = 0xFA57;
const INPUT_LEN: usize = 4 * 12 * 12;

fn plan() -> InferencePlan {
    Compiler::new().compile(&chaos_net()).inference_plan(SEED)
}

fn batch_inputs(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|s| {
            (0..INPUT_LEN)
                .map(|i| ((i * 3 + s * 7) % 16) as u8)
                .collect()
        })
        .collect()
}

/// Holds the chaos gate with an **empty** plan: serializes against other
/// armed tests so baseline runs neither consume their triggers nor get
/// hit by their faults.
fn quiet() -> Armed {
    arm(FaultPlan::new())
}

/// Fault-free outputs, computed under the quiet gate.
fn baseline(plan: &InferencePlan, inputs: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let _quiet = quiet();
    inputs.iter().map(|i| plan.execute(i)).collect()
}

/// Asserts a structured injected-fault error: `Worker`/`Internal` must
/// carry the injection marker (anything else would be a real defect
/// hiding behind the chaos test).
fn assert_injected(e: &InferError) {
    match e {
        InferError::Worker(p) => assert!(
            p.message.contains("injected fault"),
            "non-injected worker panic: {}",
            p.message
        ),
        InferError::Internal { message } => assert!(
            message.contains("injected fault"),
            "non-injected internal error: {message}"
        ),
        _ => {}
    }
}

#[test]
fn transient_prep_panic_recovers_bit_identical() {
    let plan = plan();
    let inputs = batch_inputs(6);
    let expect = baseline(&plan, &inputs);
    let _armed = arm(FaultPlan::new().once("infer.prep", FaultKind::Panic, 3));
    let results = plan.try_execute_batch(&inputs, 4);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("transient fault must recover"),
            &expect[i]
        );
    }
}

#[test]
fn sticky_gemm_panic_batch_yields_structured_errors() {
    let plan = plan();
    let inputs = batch_inputs(4);
    let _expect = baseline(&plan, &inputs);
    let _armed = arm(FaultPlan::new().sticky("infer.gemm", FaultKind::Panic, 1));
    let results = plan.try_execute_batch(&inputs, 2);
    for r in &results {
        let e = r.as_ref().expect_err("a persistent fault must error");
        assert!(matches!(e, InferError::Worker(_)), "{e:?}");
        assert_injected(e);
    }
}

#[test]
fn single_shot_transient_gemm_panic_is_structured_then_recovers() {
    let plan = plan();
    let inputs = batch_inputs(1);
    let expect = baseline(&plan, &inputs);
    let _armed = arm(FaultPlan::new().once("infer.gemm", FaultKind::Panic, 1));
    // Single-shot entry points have no retry loop: the caught panic is a
    // structured Internal, and the next call (fault spent) recovers.
    let e = plan.try_execute(&inputs[0]).expect_err("fault fires");
    assert!(matches!(e, InferError::Internal { .. }), "{e:?}");
    assert_injected(&e);
    assert_eq!(
        plan.try_execute(&inputs[0]).expect("fault spent"),
        expect[0]
    );
}

#[test]
fn poisoned_autotune_cache_falls_back_to_default_tiles_bit_identical() {
    let plan = plan();
    let inputs = batch_inputs(3);
    let expect = baseline(&plan, &inputs);
    // A corrupted tuner-cache entry must never panic or error: the
    // dispatcher falls back to the default tile plan, which is bit-exact
    // (merely untuned). Sticky, so *every* GEMM dispatch in the run sees
    // the poisoned cache.
    let _armed = arm(FaultPlan::new().sticky("autotune.cache", FaultKind::CorruptCache, 1));
    for (input, expect) in inputs.iter().zip(&expect) {
        assert_eq!(
            &plan.try_execute(input).expect("fallback, not a failure"),
            expect
        );
    }
}

#[test]
fn autotune_cache_panic_is_structured_then_recovers() {
    let plan = plan();
    let inputs = batch_inputs(1);
    let expect = baseline(&plan, &inputs);
    let _armed = arm(FaultPlan::new().once("autotune.cache", FaultKind::Panic, 1));
    // The tuner lookup runs inside the GEMM dispatch: a panic there is
    // caught by the single-shot entry point's unwind guard and surfaces
    // as a structured Internal, never a process abort. The next call
    // (fault spent) recovers bit-identically.
    let e = plan.try_execute(&inputs[0]).expect_err("fault fires");
    assert!(matches!(e, InferError::Internal { .. }), "{e:?}");
    assert_injected(&e);
    assert_eq!(
        plan.try_execute(&inputs[0]).expect("fault spent"),
        expect[0]
    );
}

#[test]
fn autotune_fault_during_plan_build_is_contained() {
    // A net whose conv GEMM is heavy enough (>= TUNE_MIN_MACS) that plan
    // build warms the tuner cache for it: 1024 x 576 x 64 = 37.7 MMACs.
    let warm_net = || {
        let mut g = Graph::new();
        let x = g.input("x", TShape::nchw(1, 64, 32, 32));
        let conv = g.add(
            OpKind::Conv2d {
                out_channels: 64,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            &[x],
            "conv",
        );
        g.add(OpKind::Act(Activation::Relu), &[conv], "relu");
        g
    };
    let input: Vec<u8> = (0..64 * 32 * 32).map(|i| (i % 16) as u8).collect();
    let expect = {
        let _quiet = quiet();
        Compiler::new()
            .compile(&warm_net())
            .inference_plan(SEED)
            .execute(&input)
    };
    // Panic on the first tuner-cache hit (the build-time warm sweep) and
    // poison every later one: the warm loop is best-effort, so the build
    // must still succeed, and execution stays bit-identical on default
    // tiles.
    let _armed = arm(FaultPlan::new()
        .once("autotune.cache", FaultKind::Panic, 1)
        .sticky("autotune.cache", FaultKind::CorruptCache, 2));
    let plan = Compiler::new().compile(&warm_net()).inference_plan(SEED);
    assert_eq!(
        plan.try_execute(&input).expect("warm faults contained"),
        expect
    );
}

#[test]
fn elementwise_delay_changes_nothing() {
    let plan = plan();
    let inputs = batch_inputs(3);
    let expect = baseline(&plan, &inputs);
    let _armed =
        arm(FaultPlan::new().sticky("infer.elementwise", FaultKind::Delay { millis: 1 }, 1));
    let results = plan.try_execute_batch(&inputs, 2);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.as_ref().expect("delays are benign"), &expect[i]);
    }
}

#[test]
fn deadline_exceeded_is_structured() {
    let plan = plan();
    let inputs = batch_inputs(1);
    let _expect = baseline(&plan, &inputs);
    let _armed =
        arm(FaultPlan::new().sticky("infer.elementwise", FaultKind::Delay { millis: 5 }, 1));
    let opts = ExecOptions {
        deadline: Some(Duration::from_millis(1)),
        ..ExecOptions::default()
    };
    // The input step alone is delayed past the deadline, so the run is
    // abandoned at the next step boundary.
    let e = plan
        .try_execute_with(&inputs[0], &opts)
        .expect_err("deadline must trip");
    match e {
        InferError::DeadlineExceeded { elapsed, deadline } => {
            assert!(elapsed > deadline);
            assert_eq!(deadline, Duration::from_millis(1));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn deadline_is_a_per_item_backstop_in_batches() {
    let plan = plan();
    let inputs = batch_inputs(3);
    let _expect = baseline(&plan, &inputs);
    let _armed =
        arm(FaultPlan::new().sticky("infer.elementwise", FaultKind::Delay { millis: 5 }, 1));
    let opts = ExecOptions {
        deadline: Some(Duration::from_millis(1)),
        ..ExecOptions::default()
    };
    for r in plan.try_execute_batch_with(&inputs, 2, &opts) {
        assert!(
            matches!(r, Err(InferError::DeadlineExceeded { .. })),
            "{r:?}"
        );
    }
}

#[test]
fn batch_worker_transient_panic_recovers_bit_identical() {
    let plan = plan();
    let inputs = batch_inputs(6);
    let expect = baseline(&plan, &inputs);
    let _armed = arm(FaultPlan::new().once("infer.batch", FaultKind::Panic, 2));
    let results = plan.try_execute_batch(&inputs, 3);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("transient worker fault must recover"),
            &expect[i]
        );
    }
}

#[test]
fn batch_worker_persistent_panic_isolates_one_item() {
    let plan = plan();
    let inputs = batch_inputs(5);
    let expect = baseline(&plan, &inputs);
    // threads=1 processes items in order with two attempts each, so the
    // `infer.batch` point fires at hits 1,2 (items 0,1), then 3 and 4
    // are item 2's two attempts: exactly item 2 fails, siblings are
    // untouched.
    let _armed = arm(FaultPlan::new()
        .once("infer.batch", FaultKind::Panic, 3)
        .once("infer.batch", FaultKind::Panic, 4));
    let results = plan.try_execute_batch(&inputs, 1);
    for (i, r) in results.iter().enumerate() {
        if i == 2 {
            let e = r.as_ref().expect_err("item 2 faults on both attempts");
            match e {
                InferError::Worker(p) => assert_eq!(p.index, 2),
                other => panic!("expected Worker, got {other:?}"),
            }
            assert_injected(e);
        } else {
            assert_eq!(
                r.as_ref().expect("siblings of a poisoned item survive"),
                &expect[i]
            );
        }
    }
}

#[test]
fn arena_fault_in_batch_recovers_bit_identical() {
    let plan = plan();
    let inputs = batch_inputs(4);
    let expect = baseline(&plan, &inputs);
    let _armed = arm(FaultPlan::new().once("infer.arena", FaultKind::Panic, 1));
    let results = plan.try_execute_batch(&inputs, 2);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("arena allocation fault must recover"),
            &expect[i]
        );
    }
}

#[test]
fn wrong_input_len_is_structured_and_does_not_contaminate() {
    let plan = plan();
    let good = batch_inputs(2);
    let expect = baseline(&plan, &good);
    let e = plan.try_execute(&good[0][..7]).expect_err("shape mismatch");
    assert_eq!(
        e,
        InferError::InputShape {
            expected: INPUT_LEN,
            got: 7
        }
    );
    let mixed = vec![good[0].clone(), vec![9; 3], good[1].clone()];
    let results = plan.try_execute_batch(&mixed, 2);
    assert_eq!(results[0].as_ref().expect("healthy item"), &expect[0]);
    assert!(matches!(
        results[1],
        Err(InferError::InputShape {
            expected: INPUT_LEN,
            got: 3
        })
    ));
    assert_eq!(results[2].as_ref().expect("healthy item"), &expect[1]);
}

#[test]
fn cross_plan_arena_is_rejected() {
    let compiled = Compiler::new().compile(&chaos_net());
    let plan_a = compiled.inference_plan(1);
    let plan_b = compiled.inference_plan(2);
    let input = batch_inputs(1).remove(0);
    let mut arena = plan_a.new_arena();
    let mut out = Vec::new();
    plan_a
        .try_execute_into(&input, &mut arena, &mut out, &ExecOptions::default())
        .expect("own arena executes");
    let e = plan_b
        .try_execute_into(&input, &mut arena, &mut out, &ExecOptions::default())
        .expect_err("foreign arena is rejected");
    assert_eq!(
        e,
        InferError::ArenaMismatch {
            plan: plan_b.checksum(),
            arena: plan_a.checksum(),
        }
    );
}

#[test]
fn weight_corruption_is_detected_by_integrity_check() {
    let mut plan = plan();
    plan.verify_integrity().expect("pristine plan verifies");
    plan.chaos_corrupt_weights();
    let e = plan.verify_integrity().expect_err("corruption is caught");
    assert!(matches!(e, InferError::IntegrityViolation { .. }), "{e:?}");
    // Paranoid execution refuses to produce (silently wrong) output.
    let input = batch_inputs(1).remove(0);
    let paranoid = ExecOptions {
        paranoid: true,
        ..ExecOptions::default()
    };
    let e = plan
        .try_execute_with(&input, &paranoid)
        .expect_err("paranoid execution refuses a corrupt plan");
    assert!(matches!(e, InferError::IntegrityViolation { .. }), "{e:?}");
}

#[test]
fn schedule_tampering_fails_every_paranoid_batch_item() {
    let mut plan = plan();
    plan.chaos_corrupt_schedule();
    let inputs = batch_inputs(3);
    let paranoid = ExecOptions {
        paranoid: true,
        ..ExecOptions::default()
    };
    for r in plan.try_execute_batch_with(&inputs, 2, &paranoid) {
        assert!(
            matches!(r, Err(InferError::IntegrityViolation { .. })),
            "{r:?}"
        );
    }
}

#[test]
fn server_backpressure_rejects_cleanly_and_serves_bit_identical() {
    let plan = plan();
    let inputs = batch_inputs(6);
    let expect = baseline(&plan, &inputs);
    // One slow worker (every elementwise step delayed) and a one-slot
    // queue: rapid submissions must hit QueueFull, and everything
    // accepted must still come back bit-identical.
    let _armed =
        arm(FaultPlan::new().sticky("infer.elementwise", FaultKind::Delay { millis: 5 }, 1));
    let server = InferServer::start(plan.clone(), 1, 1, ExecOptions::default());
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for (i, input) in inputs.iter().enumerate() {
        match server.submit(input.clone()) {
            Ok(t) => tickets.push((i, t)),
            Err(InferError::QueueFull { capacity }) => {
                assert_eq!(capacity, 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        rejected >= 1,
        "a one-slot queue under a slow worker must reject"
    );
    for (i, ticket) in tickets {
        assert_eq!(
            ticket.wait().expect("accepted requests are served"),
            expect[i]
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(stats.accepted + stats.rejected, inputs.len() as u64);
    assert_eq!(stats.completed, stats.accepted);
    assert_eq!(stats.failed, 0);
}

#[test]
fn server_survives_persistent_faults_and_recovers_after() {
    let plan = plan();
    let inputs = batch_inputs(2);
    let expect = baseline(&plan, &inputs);
    let server = InferServer::start(plan.clone(), 1, 4, ExecOptions::default());
    {
        let _armed = arm(FaultPlan::new().sticky("infer.gemm", FaultKind::Panic, 1));
        let e = server
            .infer(inputs[0].clone())
            .expect_err("faulted request errors");
        // The gateway's batch executor reports the caught panic as a
        // per-item Worker error (single-shot entry points say Internal).
        assert!(
            matches!(e, InferError::Worker(_) | InferError::Internal { .. }),
            "{e:?}"
        );
        assert_injected(&e);
    }
    // Disarmed: the same worker (it survived the panic) now serves
    // bit-identically.
    let _quiet = quiet();
    assert_eq!(
        server.infer(inputs[1].clone()).expect("server recovered"),
        expect[1]
    );
    let stats = server.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}

/// Seed-derived multi-fault plans: the ci.sh runtime chaos gate runs
/// this with two fixed seeds; `GCD2_RT_CHAOS_SEED` adds an extra
/// operator-chosen seed for ad-hoc exploration.
#[test]
fn seeded_runtime_fault_plans_terminate_bit_identical_or_structured() {
    let mut seeds = vec![2024u64, 7];
    if let Ok(s) = std::env::var("GCD2_RT_CHAOS_SEED") {
        if let Ok(s) = s.parse() {
            seeds.push(s);
        }
    }
    let plan = plan();
    let inputs = batch_inputs(5);
    let expect = baseline(&plan, &inputs);
    for seed in seeds {
        let fault_plan = FaultPlan::from_seed_runtime(seed);
        let _armed = arm(fault_plan.clone());
        for (i, r) in plan.try_execute_batch(&inputs, 4).iter().enumerate() {
            match r {
                Ok(out) => assert_eq!(
                    out, &expect[i],
                    "seed {seed} recovered to different output ({fault_plan:?})"
                ),
                Err(e) => assert_injected(e),
            }
        }
        match plan.try_execute(&inputs[0]) {
            Ok(out) => assert_eq!(out, expect[0], "seed {seed} single-shot diverged"),
            Err(e) => assert_injected(&e),
        }
    }
}
