//! The static plan analyzer's soundness guarantee, exercised end to
//! end: every catalog model compiles to an inference plan that
//! `gcd2-analyze` proves overflow-free and arena-sound with **zero**
//! diagnostics, and the exported [`RangeReport`] carries usable
//! per-GEMM accumulator-width proofs.
//!
//! The fast subset runs on every `cargo test`; the full ten-model
//! catalog rides behind `--ignored`.

use gcd2_repro::analyze::{LintCode, Verdict};
use gcd2_repro::compiler::Compiler;
use gcd2_repro::models::ModelId;

const SEED: u64 = 0xC0DE;

/// Compiles one model, builds its plan, and asserts the analyzer
/// proves it clean. Returns the proven max accumulator width.
fn assert_clean(id: ModelId) -> u8 {
    let compiled = Compiler::new().compile(&id.build());
    let plan = compiled
        .try_inference_plan(SEED)
        .unwrap_or_else(|e| panic!("{id:?}: plan construction failed: {e}"));
    let analysis = compiled.analyze_plan(&plan);
    assert_eq!(
        analysis.verdict(),
        Verdict::Clean,
        "{id:?} must analyze clean:\n{analysis}"
    );
    assert!(
        analysis.is_clean(),
        "{id:?}: zero diagnostics (no warnings either): {:?}",
        analysis.diagnostics
    );
    // The overflow proof is not vacuous: every GEMM got an interval,
    // and each fits the i32 kernel accumulator.
    assert!(
        !analysis.ranges.gemms().is_empty(),
        "{id:?} stages at least one GEMM"
    );
    assert!(analysis.ranges.all_fit_i32(), "{id:?} overflow-free");
    for g in analysis.ranges.gemms() {
        assert!(
            (8..=32).contains(&g.safe_acc_bits),
            "{id:?} {}: proven width {} out of the plausible ladder",
            g.name,
            g.safe_acc_bits
        );
        assert!(
            g.acc.lo <= g.acc.hi && g.out.lo >= 0 && g.out.hi <= 15,
            "{id:?} {}: acc {} out {}",
            g.name,
            g.acc,
            g.out
        );
    }
    analysis.ranges.max_acc_bits()
}

#[test]
fn fast_subset_analyzes_clean_with_proven_widths() {
    // Mixed coverage: depthwise CNN, transformer, multi-branch
    // detector. All three quantization-narrow models prove their
    // accumulators fit 16 bits — strictly tighter than the i32 the
    // kernels provision — which is the fact a future SIMD lowering
    // would consult to pick a narrower multiply-accumulate.
    for id in [
        ModelId::MobileNetV3,
        ModelId::TinyBert,
        ModelId::EfficientDetD0,
    ] {
        assert_eq!(assert_clean(id), 16, "{id:?} proven max width");
    }
}

#[test]
fn analyzer_is_wired_into_debug_plan_construction() {
    // In debug builds `try_build` runs the analyzer and refuses
    // unsound plans, so a successful build IS a clean verdict; this
    // pins that the hook actually runs (a plan built here and analyzed
    // again reports the same thing).
    let compiled = Compiler::new().compile(&ModelId::MobileNetV3.build());
    let plan = compiled.try_inference_plan(SEED).expect("clean build");
    let analysis = compiled.analyze_plan(&plan);
    assert_eq!(analysis.verdict(), Verdict::Clean);
    assert!(analysis.of_code(LintCode::AccOverflow).is_empty());
}

#[test]
#[ignore = "full catalog takes minutes; run with --ignored"]
fn full_catalog_analyzes_clean() {
    let mut widths = Vec::new();
    for id in ModelId::ALL {
        widths.push((id, assert_clean(id)));
    }
    // ResNet-50's 7×7 stem convolution reduces over k = 147 at full
    // weight magnitude, pushing its proven accumulator past 16 bits;
    // every other catalog model stays within 16.
    for (id, w) in widths {
        let expect = if id == ModelId::ResNet50 { 32 } else { 16 };
        assert_eq!(w, expect, "{id:?} proven max width");
    }
}
