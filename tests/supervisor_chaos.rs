//! Supervisor chaos suite: seeded fault injection against the
//! self-healing layer of the serving gateway.
//!
//! `tests/gateway_chaos.rs` proves the gateway answers every ticket
//! under mid-batch panics; this suite proves the **supervision layer
//! on top of it** — watchdog, circuit breaker, seeded retries, ISA
//! demotion — recovers from the faults that layer exists for, and
//! (just as important) stays invisible when nothing is wrong. The
//! contract per scenario:
//!
//! * a wedged worker is detected, its tickets answered with a
//!   structured [`InferError::Hung`], and a replacement keeps serving
//!   bit-identically — including when the hang lands mid-drain or
//!   races shutdown;
//! * a fault storm trips the model's breaker Open (structured
//!   [`InferError::BreakerOpen`] sheds, no queue traffic), and the
//!   breaker recovers through HalfOpen probes once the storm passes;
//! * transient faults inside the retry budget are retried to an output
//!   **bit-identical** to an undisturbed run; persistent faults
//!   exhaust the budget into a structured error;
//! * kernel-attributed fault bursts demote the model to the bit-exact
//!   scalar tier, and an elapsed quarantine re-promotes it;
//! * seed-derived supervisor fault plans (hangs + panics + delays
//!   across all three layers) always terminate with every ticket
//!   resolved bit-identical or structured;
//! * under healthy traffic every supervision counter stays zero.
//!
//! Run with `cargo test --features fault-injection --test
//! supervisor_chaos`; the suite is absent from the uninstrumented
//! build. `GCD2_SUP_CHAOS_SEED` adds a seed to the sweep.

#![cfg(feature = "fault-injection")]

use gcd2_repro::cgraph::{Graph, OpKind, TShape};
use gcd2_repro::compiler::{
    BreakerState, Compiler, ExecOptions, GatewayConfig, HealthEvent, InferError, InferServer,
    InferencePlan, SupervisorConfig,
};
use gcd2_repro::faults::{arm, Armed, FaultKind, FaultPlan};
use std::time::Duration;

const INPUT_LEN: usize = 32;

/// Same two-GEMM net the gateway chaos suite drives: crosses the
/// `infer.gemm`/`infer.prep` points inside a batch, cheap enough that
/// hang deadlines in the tens of milliseconds are generous.
fn supervised_net(n_out: usize, seed: u64) -> InferencePlan {
    let mut g = Graph::new();
    let x = g.input("x", TShape::new(vec![1, INPUT_LEN]));
    let fc1 = g.add(OpKind::MatMul { n: 24 }, &[x], "fc1");
    let fc2 = g.add(OpKind::MatMul { n: n_out }, &[fc1], "fc2");
    g.add(OpKind::Softmax, &[fc2], "sm");
    Compiler::new().compile(&g).inference_plan(seed)
}

fn inputs(count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|s| {
            (0..INPUT_LEN)
                .map(|i| ((i * 5 + s * 3) % 16) as u8)
                .collect()
        })
        .collect()
}

/// Holds the chaos gate with an **empty** plan: serializes against
/// other armed tests so baselines neither consume triggers nor get hit.
fn quiet() -> Armed {
    arm(FaultPlan::new())
}

/// Structured resolutions legal under injected supervisor chaos. The
/// supervisor adds its own structured verdicts (`Hung`, `BreakerOpen`)
/// on top of the runtime's injected panics.
fn assert_injected(e: &InferError) {
    match e {
        InferError::Worker(p) => assert!(
            p.message.contains("injected fault"),
            "non-injected worker panic: {}",
            p.message
        ),
        InferError::Internal { message } => assert!(
            message.contains("injected fault"),
            "non-injected internal error: {message}"
        ),
        _ => {}
    }
}

/// A single-worker gateway with immediate dispatch: every submission
/// becomes its own batch, so per-batch fault triggers and breaker
/// records are deterministic.
fn one_worker(supervisor: SupervisorConfig) -> GatewayConfig {
    GatewayConfig {
        workers: 1,
        capacity: 64,
        max_batch: 1,
        max_wait: Duration::ZERO,
        opts: ExecOptions::default(),
        supervisor,
    }
}

/// Scenario 1: a wedged worker. A `Delay` at `serve.hang` overruns the
/// hang deadline; the watchdog answers the ticket with a structured
/// [`InferError::Hung`], wedges the worker, and spawns a replacement
/// that serves the next request bit-identically.
#[test]
fn hung_batch_is_answered_and_worker_replaced() {
    let plan = supervised_net(8, 71);
    let ins = inputs(2);
    let expect = {
        let _quiet = quiet();
        plan.execute(&ins[1])
    };
    let _armed = arm(FaultPlan::new().once("serve.hang", FaultKind::Delay { millis: 150 }, 1));
    let server = InferServer::gateway(one_worker(SupervisorConfig {
        hang_deadline: Duration::from_millis(25),
        ..SupervisorConfig::default()
    }));
    server.register("m", plan).expect("register");
    let hung = server
        .infer_on("m", ins[0].clone(), 0)
        .expect_err("the watchdog answers the hung batch");
    match &hung {
        InferError::Hung {
            model,
            elapsed,
            deadline,
        } => {
            assert_eq!(model, "m");
            assert_eq!(*deadline, Duration::from_millis(25));
            assert!(*elapsed >= *deadline, "{elapsed:?} < {deadline:?}");
        }
        other => panic!("expected Hung, got {other:?}"),
    }
    // The replacement worker serves the follow-up bit-identically.
    assert_eq!(
        server
            .infer_on("m", ins[1].clone(), 0)
            .expect("replacement serves"),
        expect
    );
    let health = server.health();
    assert!(health.workers.iter().any(|w| w.wedged));
    assert!(health.events.iter().any(
        |(_, e)| matches!(e, HealthEvent::WorkerHung { model, in_flight, .. }
            if model == "m" && *in_flight == 1)
    ));
    assert!(health
        .events
        .iter()
        .any(|(_, e)| matches!(e, HealthEvent::WorkerReplaced { .. })));
    let stats = server.shutdown();
    assert_eq!(stats.hung, 1);
    assert_eq!(stats.workers_replaced, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}

/// Scenario 2: a batch that hangs **mid-drain**. The watchdog stays
/// alive until every worker handle is swept, so a hang that lands
/// while the gateway is draining is still answered and the drain
/// completes instead of deadlocking on the wedged thread.
#[test]
fn hung_batch_mid_drain_is_still_answered() {
    let plan = supervised_net(8, 72);
    let ins = inputs(1);
    let _armed = arm(FaultPlan::new().once("serve.hang", FaultKind::Delay { millis: 150 }, 1));
    let server = InferServer::gateway(one_worker(SupervisorConfig {
        hang_deadline: Duration::from_millis(25),
        ..SupervisorConfig::default()
    }));
    server.register("m", plan).expect("register");
    let ticket = server.submit_to("m", ins[0].clone(), 0).expect("admitted");
    // Yank the gate while the worker is (about to be) asleep inside the
    // batch; the watchdog must answer the ticket during the drain.
    server.drain();
    let resolved = std::thread::scope(|scope| {
        let waiter = scope.spawn(move || ticket.wait());
        let stats = server.shutdown();
        assert_eq!(stats.hung, 1);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.failed, 1);
        waiter.join().expect("waiter")
    });
    assert!(
        matches!(resolved, Err(InferError::Hung { .. })),
        "{resolved:?}"
    );
}

/// Scenario 3: shutdown racing a wedged worker. The drain must not
/// block on the hung thread: the watchdog answers its ticket, the
/// handle is detached, and `shutdown` returns well before the wedged
/// batch's sleep elapses.
#[test]
fn watchdog_races_shutdown_without_blocking_on_the_wedged_thread() {
    let plan = supervised_net(8, 73);
    let ins = inputs(1);
    let _armed = arm(FaultPlan::new().once("serve.hang", FaultKind::Delay { millis: 400 }, 1));
    let server = InferServer::gateway(one_worker(SupervisorConfig {
        hang_deadline: Duration::from_millis(20),
        ..SupervisorConfig::default()
    }));
    server.register("m", plan).expect("register");
    let ticket = server.submit_to("m", ins[0].clone(), 0).expect("admitted");
    let t0 = std::time::Instant::now();
    let stats = server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_millis(400),
        "shutdown waited out the wedged batch: {:?}",
        t0.elapsed()
    );
    assert_eq!(stats.hung, 1);
    assert!(matches!(ticket.wait(), Err(InferError::Hung { .. })));
}

/// Scenario 4: a sustained fault storm trips the model's circuit
/// breaker; submissions shed with a structured [`InferError::BreakerOpen`]
/// while Open, and once the storm passes the breaker recovers through
/// HalfOpen probes back to Closed — with the full transition history
/// in the health event log.
#[test]
fn breaker_trips_sheds_and_recovers_through_probes() {
    let plan = supervised_net(8, 74);
    let ins = inputs(1);
    let expect = {
        let _quiet = quiet();
        plan.execute(&ins[0])
    };
    let server = InferServer::gateway(one_worker(SupervisorConfig {
        breaker_window: 4,
        breaker_min_samples: 4,
        breaker_threshold_pct: 50,
        breaker_cooldown: Duration::from_millis(40),
        breaker_probes: 2,
        ..SupervisorConfig::default()
    }));
    server.register("m", plan).expect("register");
    {
        let _storm = arm(FaultPlan::new().sticky("serve.batch", FaultKind::Panic, 1));
        for _ in 0..4 {
            let e = server
                .infer_on("m", ins[0].clone(), 0)
                .expect_err("storm batch fails");
            assert!(matches!(e, InferError::Worker(_)), "{e:?}");
            assert_injected(&e);
        }
    }
    // Four errors in a four-sample window at a 50% threshold: Open.
    let stats = server.model_stats("m").expect("registered");
    assert_eq!(stats.breaker, BreakerState::Open);
    let shed = server
        .infer_on("m", ins[0].clone(), 0)
        .expect_err("open breaker sheds before queueing");
    match &shed {
        InferError::BreakerOpen { model, retry_after } => {
            assert_eq!(model, "m");
            assert!(*retry_after <= Duration::from_millis(40));
        }
        other => panic!("expected BreakerOpen, got {other:?}"),
    }
    // Storm disarmed, cooldown elapsed: two successful HalfOpen probes
    // close the breaker, and traffic is bit-identical again.
    let _quiet = quiet();
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..3 {
        assert_eq!(
            server.infer_on("m", ins[0].clone(), 0).expect("recovered"),
            expect
        );
    }
    let stats = server.model_stats("m").expect("registered");
    assert_eq!(stats.breaker, BreakerState::Closed);
    assert_eq!(stats.breaker_rejected, 1);
    let health = server.health();
    for want in ["BreakerOpened", "BreakerHalfOpen", "BreakerClosed"] {
        assert!(
            health.events.iter().any(|(_, e)| match e {
                HealthEvent::BreakerOpened { model } => want == "BreakerOpened" && model == "m",
                HealthEvent::BreakerHalfOpen { model } => want == "BreakerHalfOpen" && model == "m",
                HealthEvent::BreakerClosed { model } => want == "BreakerClosed" && model == "m",
                _ => false,
            }),
            "missing {want} in {:?}",
            health.events
        );
    }
    let totals = server.shutdown();
    assert_eq!(totals.breaker_rejected, 1);
    assert_eq!(totals.completed, 3);
    assert_eq!(totals.failed, 4);
}

/// Scenario 5: a transient fault inside the retry budget. The first
/// attempt panics, the seeded-backoff retry succeeds, and the retried
/// output is **bit-identical** to an undisturbed run — the property
/// that makes retries safe to enable at all.
#[test]
fn transient_fault_is_retried_bit_identical() {
    let plan = supervised_net(8, 75);
    let ins = inputs(1);
    let expect = {
        let _quiet = quiet();
        plan.execute(&ins[0])
    };
    let _armed = arm(FaultPlan::new().once("serve.batch", FaultKind::Panic, 1));
    let server = InferServer::gateway(one_worker(SupervisorConfig {
        retry_budget: 2,
        retry_backoff_base: Duration::from_micros(100),
        ..SupervisorConfig::default()
    }));
    server.register("m", plan).expect("register");
    assert_eq!(
        server
            .infer_on("m", ins[0].clone(), 0)
            .expect("retry absorbs the transient fault"),
        expect
    );
    let health = server.health();
    assert!(health.events.iter().any(
        |(_, e)| matches!(e, HealthEvent::RetrySucceeded { model, attempt }
            if model == "m" && *attempt == 1)
    ));
    let stats = server.shutdown();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.retries_exhausted, 0);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

/// Scenario 6: a persistent fault exhausts the retry budget. Every
/// attempt (including injected `serve.retry` failures) burns one of
/// `1 + retry_budget` tries; the caller gets the structured error, the
/// books record the exhaustion, and the gateway keeps serving.
#[test]
fn persistent_fault_exhausts_retry_budget_structurally() {
    let plan = supervised_net(8, 76);
    let ins = inputs(1);
    let expect = {
        let _quiet = quiet();
        plan.execute(&ins[0])
    };
    let server = InferServer::gateway(one_worker(SupervisorConfig {
        retry_budget: 2,
        retry_backoff_base: Duration::from_micros(100),
        ..SupervisorConfig::default()
    }));
    server.register("m", plan).expect("register");
    {
        let _storm = arm(FaultPlan::new().sticky("serve.batch", FaultKind::Panic, 1));
        let e = server
            .infer_on("m", ins[0].clone(), 0)
            .expect_err("every attempt fails");
        assert!(matches!(e, InferError::Worker(_)), "{e:?}");
        assert_injected(&e);
    }
    let health = server.health();
    assert!(health.events.iter().any(
        |(_, e)| matches!(e, HealthEvent::RetriesExhausted { model, attempts }
            if model == "m" && *attempts == 3)
    ));
    // Storm gone: the same worker serves cleanly.
    let _quiet = quiet();
    assert_eq!(
        server.infer_on("m", ins[0].clone(), 0).expect("serves"),
        expect
    );
    let stats = server.shutdown();
    assert_eq!(stats.retries, 2, "budget of 2 spent on the sticky fault");
    assert_eq!(stats.retries_exhausted, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}

/// Scenario 7: kernel-attributed fault bursts demote the model to the
/// bit-exact scalar tier; while quarantined it serves bit-identically
/// on the scalar oracle, and the elapsed quarantine re-promotes it.
#[test]
fn kernel_fault_burst_demotes_to_scalar_and_quarantine_repromotes() {
    let plan = supervised_net(8, 77);
    let ins = inputs(1);
    let expect = {
        let _quiet = quiet();
        plan.execute(&ins[0])
    };
    let server = InferServer::gateway(one_worker(SupervisorConfig {
        demote_after: 2,
        quarantine: Duration::from_millis(300),
        ..SupervisorConfig::default()
    }));
    server.register("m", plan).expect("register");
    {
        let _storm = arm(FaultPlan::new().sticky("infer.gemm", FaultKind::Panic, 1));
        for _ in 0..2 {
            let e = server
                .infer_on("m", ins[0].clone(), 0)
                .expect_err("kernel fault");
            assert_injected(&e);
        }
    }
    // The demotion CAS is the worker's trailing bookkeeping — it runs
    // *after* the failing ticket is answered, so give it a beat.
    let deadline = std::time::Instant::now() + Duration::from_millis(200);
    while !server.model_stats("m").expect("registered").demoted {
        assert!(
            std::time::Instant::now() < deadline,
            "two kernel-attributed faults must demote"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.model_stats("m").expect("registered");
    assert_eq!(stats.demotions, 1);
    assert!(stats.kernel_faults >= 2);
    // Quarantined: the scalar oracle serves bit-identically.
    let _quiet = quiet();
    assert_eq!(
        server
            .infer_on("m", ins[0].clone(), 0)
            .expect("scalar tier serves"),
        expect
    );
    assert!(server.model_stats("m").expect("registered").demoted);
    // Quarantine elapses: the next batch re-promotes and still matches.
    std::thread::sleep(Duration::from_millis(350));
    assert_eq!(
        server
            .infer_on("m", ins[0].clone(), 0)
            .expect("re-promoted tier serves"),
        expect
    );
    let stats = server.model_stats("m").expect("registered");
    assert!(!stats.demoted, "quarantine elapsed");
    assert_eq!(stats.kernel_faults, 0, "fault count restarts");
    let health = server.health();
    assert!(health
        .events
        .iter()
        .any(|(_, e)| matches!(e, HealthEvent::Demoted { model, .. } if model == "m")));
    assert!(health
        .events
        .iter()
        .any(|(_, e)| matches!(e, HealthEvent::Repromoted { model } if model == "m")));
    let totals = server.shutdown();
    assert_eq!(totals.demotions, 1);
    assert_eq!(totals.repromotions, 1);
}

/// Scenario 8: seed-derived supervisor fault plans — hangs, panics,
/// and delays across the supervisor, gateway, and runtime layers.
/// Whatever the plan, every ticket resolves bit-identical or
/// structured, and the process survives to serve cleanly afterwards.
#[test]
fn seeded_supervisor_fault_plans_resolve_structured_or_identical() {
    let mut seeds = vec![2024u64, 7, 19];
    if let Ok(s) = std::env::var("GCD2_SUP_CHAOS_SEED") {
        if let Ok(s) = s.parse() {
            seeds.push(s);
        }
    }
    let plan = supervised_net(8, 78);
    let ins = inputs(6);
    let expect: Vec<Vec<u8>> = {
        let _quiet = quiet();
        ins.iter().map(|i| plan.execute(i)).collect()
    };
    for seed in seeds {
        let fault_plan = FaultPlan::from_seed_supervisor(seed);
        let armed = arm(fault_plan.clone());
        let server = InferServer::gateway(GatewayConfig {
            workers: 2,
            capacity: 64,
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            opts: ExecOptions::default(),
            supervisor: SupervisorConfig {
                // Seeded delays top out at 3ms: a 100ms deadline means
                // the watchdog watches without spurious hang verdicts.
                hang_deadline: Duration::from_millis(100),
                retry_budget: 1,
                retry_backoff_base: Duration::from_micros(100),
                breaker_window: 8,
                breaker_min_samples: 4,
                breaker_threshold_pct: 75,
                breaker_cooldown: Duration::from_millis(5),
                breaker_probes: 1,
                demote_after: 3,
                quarantine: Duration::from_millis(10),
                ..SupervisorConfig::default()
            },
        });
        if server.register("m", plan.clone()).is_err() {
            // A registry fault refused admission — structured, done.
            drop(server);
            drop(armed);
            continue;
        }
        let tickets: Vec<_> = ins
            .iter()
            .map(|i| server.submit_to("m", i.clone(), 0))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            match t {
                Ok(ticket) => match ticket.wait() {
                    Ok(out) => assert_eq!(out, expect[i], "seed {seed} diverged ({fault_plan:?})"),
                    Err(e) => assert_injected(&e),
                },
                Err(e) => assert_injected(&e),
            }
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.accepted,
            stats.completed + stats.failed + stats.shed + stats.abandoned,
            "seed {seed}: the books must balance under chaos"
        );
        drop(armed);
        // The process (pools, caches, dispatch tables, scalar pins)
        // survives to serve cleanly after the chaos run.
        let _quiet = quiet();
        let clean = InferServer::start(plan.clone(), 1, 8, ExecOptions::default());
        assert_eq!(
            clean.infer(ins[0].clone()).expect("post-chaos sanity"),
            expect[0]
        );
    }
}

/// Scenario 9: healthy traffic under an **aggressive** supervisor —
/// tight breaker, retries enabled, hair-trigger demotion. With no
/// faults armed, every supervision counter stays zero, the event log
/// stays empty, and outputs are bit-identical: self-healing must cost
/// nothing when nothing is broken.
#[test]
fn healthy_traffic_leaves_the_supervisor_invisible() {
    let _quiet = quiet();
    let plan = supervised_net(8, 79);
    let ins = inputs(4);
    let expect: Vec<Vec<u8>> = ins.iter().map(|i| plan.execute(i)).collect();
    let server = InferServer::gateway(GatewayConfig {
        workers: 2,
        capacity: 64,
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        opts: ExecOptions::default(),
        supervisor: SupervisorConfig {
            hang_deadline: Duration::from_millis(250),
            retry_budget: 2,
            breaker_window: 4,
            breaker_min_samples: 2,
            breaker_threshold_pct: 25,
            demote_after: 1,
            ..SupervisorConfig::default()
        },
    });
    server.register("m", plan).expect("register");
    for round in 0..5 {
        for (i, input) in ins.iter().enumerate() {
            assert_eq!(
                server.infer_on("m", input.clone(), 0).expect("served"),
                expect[i],
                "round {round}"
            );
        }
    }
    let health = server.health();
    assert!(health.events.is_empty(), "{:?}", health.events);
    assert!(health.workers.iter().all(|w| !w.wedged));
    let stats = server.shutdown();
    assert_eq!(stats.completed, 20);
    assert_eq!(
        (
            stats.hung,
            stats.workers_replaced,
            stats.retries,
            stats.retries_exhausted,
            stats.demotions,
            stats.repromotions,
            stats.breaker_rejected,
            stats.abandoned
        ),
        (0, 0, 0, 0, 0, 0, 0, 0)
    );
}
