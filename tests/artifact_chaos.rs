//! Artifact chaos suite: seeded fault injection plus direct on-disk
//! sabotage against the AOT artifact store.
//!
//! The robustness contract: **no** artifact-path disturbance — an
//! injected panic at `artifact.encode`/`artifact.decode`/`artifact.io`,
//! a torn write, a crash between temp-write and rename, a bit-flipped
//! cache entry, a version-skewed file, or a concurrent evict — may ever
//! escape [`load_or_compile`] as a panic or produce a plan whose output
//! differs from the undisturbed baseline. Load failures must surface as
//! recorded [`ColdStartFallback`] events on a successfully compiled
//! result. Run with
//! `cargo test --features fault-injection --test artifact_chaos`.

#![cfg(feature = "fault-injection")]

use gcd2_repro::cgraph::{to_text, Activation, Graph, OpKind, TShape};
use gcd2_repro::compiler::artifact::{decode, encode, load_or_compile, ColdStartSource};
use gcd2_repro::compiler::{ArtifactCache, Compiler};
use gcd2_repro::faults::{arm, FaultPlan};
use std::time::Duration;

const SEED: u64 = 0xC0DE;

/// Small enough to compile in microseconds (the suite recompiles a
/// lot) while still exercising conv, depthwise, residual, and pool
/// steps — every section of the artifact is non-trivial.
fn chaos_net() -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", TShape::nchw(1, 4, 10, 10));
    let conv = g.add(
        OpKind::Conv2d {
            out_channels: 6,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        "conv",
    );
    let relu = g.add(OpKind::Act(Activation::Relu), &[conv], "relu");
    let dw = g.add(
        OpKind::DepthwiseConv2d {
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[relu],
        "dw",
    );
    let res = g.add(OpKind::Add, &[dw, relu], "res");
    g.add(
        OpKind::MaxPool {
            kernel: (2, 2),
            stride: (2, 2),
        },
        &[res],
        "pool",
    );
    g
}

fn temp_cache(tag: &str) -> ArtifactCache {
    let dir = std::env::temp_dir().join(format!("gcd2-artchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactCache::open(dir).expect("temp cache dir")
}

fn sample_input(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 7 + 3) % 16) as u8).collect()
}

struct Baseline {
    text: String,
    checksum: u64,
    input: Vec<u8>,
    output: Vec<u8>,
}

fn baseline() -> Baseline {
    let graph = chaos_net();
    let text = to_text(&graph);
    let plan = Compiler::new().compile(&graph).inference_plan(SEED);
    let input = sample_input(plan.input_len());
    let output = plan.execute(&input);
    Baseline {
        text,
        checksum: plan.checksum(),
        input,
        output,
    }
}

/// Asserts the invariant every chaos scenario must uphold: the cold
/// start succeeded and its plan is bit-identical to the baseline.
fn assert_sound(b: &Baseline, cold: &gcd2_repro::compiler::ColdStart, ctx: &str) {
    assert_eq!(cold.plan.checksum(), b.checksum, "{ctx}: checksum diverged");
    assert_eq!(
        cold.plan.execute(&b.input),
        b.output,
        "{ctx}: output diverged"
    );
}

/// A torn write — the artifact truncated at every possible length, as
/// if the process died mid-`write_all` and the rename still happened —
/// always degrades to a recorded fallback compile, and the rebuild
/// heals the entry.
#[test]
fn torn_writes_at_every_length_degrade_and_heal() {
    let b = baseline();
    let cache = temp_cache("torn");
    let compiler = Compiler::new();
    let cold = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("seed");
    let path = cache.path_for(&cold.key);
    let full = std::fs::read(&path).expect("stored");

    // Sweep a spread of truncation lengths (every length is covered at
    // the unit level; here we prove the end-to-end degrade path).
    for cut in (0..full.len()).step_by(97).chain([full.len() - 1]) {
        std::fs::write(&path, &full[..cut]).expect("tear");
        let healed = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("degrade");
        assert_eq!(healed.source, ColdStartSource::Compiled, "cut {cut}");
        assert!(
            healed.fallbacks.iter().any(|f| f.stage == "decode"),
            "cut {cut}: no decode fallback recorded: {:?}",
            healed.fallbacks
        );
        assert_sound(&b, &healed, &format!("cut {cut}"));
        // The rebuild re-stored a valid artifact.
        let warm = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("warm");
        assert_eq!(warm.source, ColdStartSource::ArtifactCache, "cut {cut}");
    }
}

/// A crash *between* temp-file write and rename: the stale temp must be
/// garbage-collected, and the interrupted key simply misses (compiles).
#[test]
fn mid_rename_crash_leaves_only_collectable_garbage() {
    let b = baseline();
    let cache = temp_cache("rename");
    let compiler = Compiler::new();
    let cold = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("seed");

    // Simulate the crash: a temp file exists, the final file is gone.
    let final_path = cache.path_for(&cold.key);
    let temp_path = cache.dir().join(format!(".tmp.{}.99999", cold.key));
    std::fs::rename(&final_path, &temp_path).expect("stage crash state");

    let redone = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("recover");
    assert_eq!(redone.source, ColdStartSource::Compiled);
    assert_sound(&b, &redone, "mid-rename");

    // The orphaned temp is collected once old enough (age 0 = now).
    let collected = cache.gc_stale_temps(Duration::ZERO).expect("gc");
    assert!(collected >= 1, "stale temp survived gc");
    assert!(!temp_path.exists());
    // ... and the healed final artifact was not collateral damage.
    assert!(final_path.exists());
}

/// Seeded single-bit flips across the whole stored artifact: every
/// corruption degrades to a structured fallback and a bit-identical
/// recompile. (The exhaustive every-byte sweep runs unfaulted in the
/// hostile-corpus suite; this covers the cache round trip.)
#[test]
fn bit_flips_over_every_section_degrade_to_fallback() {
    let b = baseline();
    let cache = temp_cache("flip");
    let compiler = Compiler::new();
    let cold = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("seed");
    let path = cache.path_for(&cold.key);
    let full = std::fs::read(&path).expect("stored");

    for pos in (0..full.len()).step_by(61) {
        for bit in [0x01u8, 0x80u8] {
            let mut bytes = full.clone();
            bytes[pos] ^= bit;
            std::fs::write(&path, &bytes).expect("flip");
            let healed =
                load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("degrade");
            assert_sound(&b, &healed, &format!("flip {pos}/{bit:#x}"));
            if healed.source == ColdStartSource::ArtifactCache {
                // Only possible if the flip was immaterial — but every
                // byte of the container is checksummed, so a load that
                // succeeded must mean the flip hit the (already
                // rewritten) file after healing. Rule it out:
                panic!("flip {pos}/{bit:#x}: corrupted artifact loaded");
            }
        }
        // Restore for the next position (healing already did, but be
        // explicit about the invariant).
        let warm = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("warm");
        assert_eq!(warm.source, ColdStartSource::ArtifactCache);
    }
}

/// A future-format artifact (version skew) is refused with a recorded
/// fallback — never misparsed by the current decoder.
#[test]
fn version_skew_degrades_with_recorded_fallback() {
    let b = baseline();
    let cache = temp_cache("skew");
    let compiler = Compiler::new();
    let cold = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("seed");
    let path = cache.path_for(&cold.key);
    let mut bytes = std::fs::read(&path).expect("stored");
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&path, &bytes).expect("skew");

    let healed = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("degrade");
    assert_eq!(healed.source, ColdStartSource::Compiled);
    let fallback = healed
        .fallbacks
        .iter()
        .find(|f| f.stage == "decode")
        .expect("decode fallback");
    assert!(
        fallback.detail.contains("version"),
        "skew not diagnosed as such: {}",
        fallback.detail
    );
    assert_sound(&b, &healed, "version skew");
}

/// Concurrent cold starts racing a hostile evictor: every call returns
/// a sound plan; the advisory lock and the atomic rename keep readers
/// from ever observing a half-written artifact.
#[test]
fn concurrent_load_and_evict_stay_sound() {
    let b = baseline();
    let cache = temp_cache("race");
    let compiler = Compiler::new();
    let cold = load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").expect("seed");
    let key = cold.key.clone();

    std::thread::scope(|s| {
        let evictor = s.spawn(|| {
            for _ in 0..40 {
                let _ = cache.evict(&key);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let mut workers = Vec::new();
        for w in 0..4 {
            let (b, cache, compiler) = (&b, &cache, &compiler);
            workers.push(s.spawn(move || {
                for i in 0..10 {
                    let cold = load_or_compile(compiler, &b.text, SEED, cache, "chaos")
                        .expect("race cold start");
                    assert_sound(b, &cold, &format!("worker {w} iter {i}"));
                }
            }));
        }
        for h in workers {
            h.join().expect("worker");
        }
        evictor.join().expect("evictor");
    });
}

/// Seeded multi-fault plans over the artifact points
/// (`artifact.encode`, `artifact.decode`, `artifact.io`): the ci.sh
/// artifact chaos gate runs two fixed seeds; `GCD2_ART_CHAOS_SEED`
/// adds an operator-chosen one. Injected panics and delays anywhere in
/// the artifact path must degrade to recorded fallbacks on a sound
/// compile — never escape, never corrupt.
#[test]
fn seeded_artifact_fault_plans_degrade_never_escape() {
    let b = baseline();
    let compiler = Compiler::new();
    let mut seeds: Vec<u64> = (0..16).collect();
    seeds.extend([2024, 7]);
    if let Ok(s) = std::env::var("GCD2_ART_CHAOS_SEED") {
        if let Ok(s) = s.parse() {
            seeds.push(s);
        }
    }
    for seed in seeds {
        let cache = temp_cache(&format!("seed{seed}"));
        let fault_plan = FaultPlan::from_seed_artifact(seed);
        let _armed = arm(fault_plan.clone());
        // Cold, warm, and post-fault runs all stay sound whatever the
        // injection pattern did to the store/load path.
        for round in 0..3 {
            let cold =
                load_or_compile(&compiler, &b.text, SEED, &cache, "chaos").unwrap_or_else(|e| {
                    panic!("seed {seed} round {round}: cold start failed: {e} ({fault_plan:?})")
                });
            assert_sound(&b, &cold, &format!("seed {seed} round {round}"));
        }
    }
}

/// Direct decode of fault-era bytes: artifacts *encoded while faults
/// were armed* must either have been refused at store time or be
/// perfectly valid — a fault can suppress an artifact, never mangle
/// one (the temp-file + checksum protocol has no partial-success
/// state).
#[test]
fn fault_era_artifacts_are_valid_or_absent() {
    let b = baseline();
    let compiler = Compiler::new();
    for seed in [2024u64, 7, 99] {
        let cache = temp_cache(&format!("era{seed}"));
        let key = {
            let _armed = arm(FaultPlan::from_seed_artifact(seed));
            load_or_compile(&compiler, &b.text, SEED, &cache, "chaos")
                .expect("cold start under faults")
                .key
        };
        // Faults disarmed: whatever the cache now holds must be clean.
        match cache.load(&key).expect("load") {
            None => {} // store was suppressed by the fault — fine
            Some(bytes) => {
                let loaded = decode(&bytes).expect("fault-era artifact must decode cleanly");
                assert_eq!(loaded.plan.checksum(), b.checksum);
            }
        }
    }
}

/// Encode is deterministic under chaos: two encodes of the same plan
/// with faults disarmed produce identical bytes even after a fault
/// storm interleaved arbitrary artifact traffic.
#[test]
fn encode_stays_deterministic_after_fault_storms() {
    let graph = chaos_net();
    let compiled = Compiler::new().compile(&graph);
    let plan = compiled.inference_plan(SEED);
    let before = encode(&compiled, &plan, "chaos").expect("encode");
    {
        let _armed = arm(FaultPlan::from_seed_artifact(13));
        let cache = temp_cache("storm");
        for _ in 0..3 {
            let _ = load_or_compile(&Compiler::new(), &to_text(&graph), SEED, &cache, "chaos");
        }
    }
    let after = encode(&compiled, &plan, "chaos").expect("encode");
    assert_eq!(before, after);
}

/// Regression: reclaiming a crashed holder's stale build lock must be
/// atomic. The old protocol was check-then-delete — two waiters could
/// both observe the stale file, the first reclaim and re-acquire, and
/// the second's `remove_file` then deleted the first's *fresh* lock,
/// electing two builders. The rename-based takeover admits exactly one
/// winner no matter how many contenders race, and never disturbs a
/// fresh lock.
#[test]
fn stale_lock_takeover_elects_exactly_one_winner() {
    let cache = temp_cache("lock-steal");
    let stale_age = Duration::from_millis(40);

    // A "crashed" holder: take the lock and leak the guard so the file
    // stays behind, exactly like a process that died mid-build.
    let crashed = cache.try_lock("k").expect("first take");
    std::mem::forget(crashed);
    assert!(
        cache.try_lock_with_age("k", stale_age).is_none(),
        "a young orphan still reads as held"
    );
    std::thread::sleep(Duration::from_millis(60));

    // Many simultaneous contenders race to reclaim the stale lock.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
    let winners: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    match cache.try_lock_with_age("k", stale_age) {
                        Some(lock) => {
                            // Hold the win long enough that every loser
                            // finishes its attempt while we own the key;
                            // a late check-then-delete would fire here.
                            std::thread::sleep(Duration::from_millis(20));
                            drop(lock);
                            true
                        }
                        None => false,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("contender thread"))
            .collect()
    });
    let won = winners.iter().filter(|&&w| w).count();
    assert_eq!(won, 1, "exactly one contender may reclaim: {winners:?}");

    // The winner's drop released the key: a fresh take succeeds, and a
    // fresh lock is never stolen even by an impatient contender.
    let fresh = cache
        .try_lock_with_age("k", stale_age)
        .expect("released after the winner dropped");
    assert!(
        cache.try_lock_with_age("k", stale_age).is_none(),
        "the reclaimed lock is fresh and must not be stolen"
    );
    drop(fresh);
    assert!(cache.try_lock("k").is_some(), "drop releases as before");
}
