//! The parallel pipeline's hard guarantee: for every catalog model and
//! every thread count, compilation produces **bit-identical** output —
//! the same cycle count, the same plan assignment, and a program the
//! static verifier accepts.

use gcd2_repro::compiler::Compiler;
use gcd2_repro::models::ModelId;
use gcd2_repro::par::default_threads;

/// Thread counts under test: serial, small, and the session default
/// (available parallelism or `GCD2_THREADS`).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, default_threads().max(4)];
    counts.dedup();
    counts
}

#[test]
fn every_catalog_model_is_thread_count_invariant() {
    for id in ModelId::ALL {
        let graph = id.build();
        let serial = Compiler::new().with_threads(1).compile(&graph);
        for threads in thread_counts() {
            let par = Compiler::new().with_threads(threads).compile(&graph);
            assert_eq!(
                serial.cycles(),
                par.cycles(),
                "{id}: cycles diverge at {threads} threads"
            );
            assert_eq!(
                serial.assignment.choice, par.assignment.choice,
                "{id}: plan assignment diverges at {threads} threads"
            );
            assert_eq!(
                serial.assignment.cost, par.assignment.cost,
                "{id}: assignment cost diverges at {threads} threads"
            );
        }
        // One full static-verification pass per model (the verifier is
        // deterministic, so one thread count suffices).
        let report = serial.verify();
        assert_eq!(
            report.error_count(),
            0,
            "{id}: verifier rejected the compiled program:\n{report}"
        );
    }
}

#[test]
fn pack_memo_does_not_change_output() {
    // The structural packing memo is a pure cache: disabling it (the
    // seed-equivalent slow path) must not change the compiled program.
    for id in [ModelId::WdsrB, ModelId::MobileNetV3] {
        let graph = id.build();
        let with_memo = Compiler::new().with_threads(2).compile(&graph);
        let without = Compiler::new()
            .with_threads(2)
            .with_pack_memo(false)
            .compile(&graph);
        assert_eq!(with_memo.cycles(), without.cycles(), "{id}");
        assert_eq!(
            with_memo.assignment.choice, without.assignment.choice,
            "{id}"
        );
    }
}

#[test]
fn gcd2_threads_env_is_respected_by_default_threads() {
    // `default_threads` memoizes its first read, so we only check the
    // invariant that holds regardless of environment: it is positive and
    // `with_threads` clamps to at least one worker.
    assert!(default_threads() >= 1);
    let c = Compiler::new().with_threads(0);
    assert_eq!(c.threads(), 1);
}
