//! AOT artifact round-trip guarantees: encode→decode is bit-faithful
//! (same integrity checksum, same execute output bytes) for every
//! catalog model and for arbitrary generated graphs; the on-disk cache
//! degrades, never aborts; and a pinned golden artifact pins the wire
//! format against silent drift.

use gcd2_repro::cgraph::{to_text, Activation, Graph, NodeId, OpKind, TShape};
use gcd2_repro::compiler::artifact::{decode, encode, load_or_compile, ColdStartSource};
use gcd2_repro::compiler::{ArtifactCache, Compiler, Gcd2Error};
use gcd2_repro::models::ModelId;
use proptest::prelude::*;

const SEED: u64 = 0xA07_1FAC;

fn sample_input(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 7 + 3) % 16) as u8).collect()
}

fn temp_cache(tag: &str) -> ArtifactCache {
    let dir = std::env::temp_dir().join(format!("gcd2-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactCache::open(dir).expect("temp cache dir")
}

/// Every catalog model round-trips emit→load bit-identically: the
/// decoded plan carries the same integrity checksum and produces the
/// same output bytes as the plan that was serialized.
#[test]
fn catalog_models_round_trip_bit_identically() {
    for id in ModelId::ALL {
        let graph = id.build();
        let compiled = Compiler::new().compile(&graph);
        let plan = compiled.inference_plan(SEED);
        let bytes = encode(&compiled, &plan, &id.to_string()).expect("encode");
        let loaded = decode(&bytes).unwrap_or_else(|e| panic!("{id}: decode failed: {e}"));

        assert_eq!(
            loaded.plan.checksum(),
            plan.checksum(),
            "{id}: checksum drift"
        );
        assert_eq!(loaded.label, id.to_string());
        assert_eq!(loaded.seed, SEED);
        assert_eq!(
            loaded.stats.cycles,
            compiled.stats().cycles,
            "{id}: stats drift"
        );

        let input = sample_input(plan.input_len());
        assert_eq!(
            loaded.plan.execute(&input),
            plan.execute(&input),
            "{id}: loaded plan output differs"
        );
    }
}

/// Re-encoding a decoded artifact reproduces the original bytes
/// whenever the tuner memo is unchanged between the two encodes — the
/// codec adds or loses nothing. (Run on a below-tune-threshold model so
/// the TUNE section is deterministically empty.)
#[test]
fn reencode_of_decoded_artifact_is_byte_identical() {
    let graph = golden_graph();
    let compiled = Compiler::new().compile(&graph);
    let plan = compiled.inference_plan(SEED);
    let bytes = encode(&compiled, &plan, "golden").expect("encode");
    let loaded = decode(&bytes).expect("decode");
    let again = encode(&compiled, &loaded.plan, "golden").expect("re-encode");
    assert_eq!(bytes, again);
}

/// Arbitrary small graphs (same generator family as the compiler fuzz
/// suite) round-trip with identical checksums and output bytes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec((0u8..6, any::<bool>()), 2..8),
        16usize..40,
    )
        .prop_map(|(ops, ch)| {
            let mut g = Graph::new();
            let mut cur = g.input("x", TShape::nchw(1, ch, 14, 14));
            let mut same_shape: Vec<NodeId> = Vec::new();
            for (i, (kind, residual)) in ops.into_iter().enumerate() {
                cur = match kind {
                    0 => g.add(
                        OpKind::Conv2d {
                            out_channels: ch,
                            kernel: (3, 3),
                            stride: (1, 1),
                            padding: (1, 1),
                        },
                        &[cur],
                        format!("conv{i}"),
                    ),
                    1 => g.add(
                        OpKind::Conv2d {
                            out_channels: ch,
                            kernel: (1, 1),
                            stride: (1, 1),
                            padding: (0, 0),
                        },
                        &[cur],
                        format!("pw{i}"),
                    ),
                    2 => g.add(
                        OpKind::DepthwiseConv2d {
                            kernel: (3, 3),
                            stride: (1, 1),
                            padding: (1, 1),
                        },
                        &[cur],
                        format!("dw{i}"),
                    ),
                    3 => g.add(OpKind::Act(Activation::Relu), &[cur], format!("act{i}")),
                    4 => g.add(OpKind::Act(Activation::HardSwish), &[cur], format!("hs{i}")),
                    _ => {
                        if residual && !same_shape.is_empty() {
                            let other = same_shape[same_shape.len() / 2];
                            g.add(OpKind::Add, &[cur, other], format!("add{i}"))
                        } else {
                            g.add(OpKind::Add, &[cur, cur], format!("self_add{i}"))
                        }
                    }
                };
                same_shape.push(cur);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_plans_round_trip(graph in arb_graph()) {
        let compiled = Compiler::new().compile(&graph);
        let plan = compiled.inference_plan(SEED);
        let bytes = encode(&compiled, &plan, "fuzz").expect("encode");
        let loaded = decode(&bytes).expect("decode");
        prop_assert_eq!(loaded.plan.checksum(), plan.checksum());
        let input = sample_input(plan.input_len());
        prop_assert_eq!(loaded.plan.execute(&input), plan.execute(&input));
    }
}

/// The pinned golden model: small enough that every GEMM sits far below
/// the autotune threshold, so the TUNE section is deterministically
/// empty and the emitted bytes are stable across machines, thread
/// counts, and process history.
fn golden_graph() -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", TShape::nchw(1, 5, 6, 6));
    let c1 = g.add(
        OpKind::Conv2d {
            out_channels: 5,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        "c1",
    );
    let a1 = g.add(OpKind::Act(Activation::Relu), &[c1], "a1");
    let d1 = g.add(
        OpKind::DepthwiseConv2d {
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[a1],
        "d1",
    );
    g.add(OpKind::Add, &[d1, a1], "res");
    g
}

const GOLDEN_PATH: &str = "tests/data/golden.gcd2art";

/// Format-drift tripwire: the golden model must emit byte-for-byte the
/// checked-in artifact. Any codec change that shifts the wire format —
/// intentional or not — trips this; intentional changes regenerate with
/// `GCD2_REGEN_GOLDEN=1 cargo test --test artifact_roundtrip` and bump
/// the container format version.
#[test]
fn golden_artifact_is_byte_stable() {
    let graph = golden_graph();
    let compiled = Compiler::new().compile(&graph);
    let plan = compiled.inference_plan(SEED);
    let bytes = encode(&compiled, &plan, "golden").expect("encode");

    if std::env::var("GCD2_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &bytes).expect("write golden");
    }
    let pinned = std::fs::read(GOLDEN_PATH)
        .expect("missing tests/data/golden.gcd2art; regenerate with GCD2_REGEN_GOLDEN=1");
    assert_eq!(
        bytes, pinned,
        "artifact wire format drifted from the pinned golden"
    );

    // And the pinned file itself loads and executes like a fresh compile.
    let loaded = decode(&pinned).expect("golden decode");
    assert_eq!(loaded.plan.checksum(), plan.checksum());
    let input = sample_input(plan.input_len());
    assert_eq!(loaded.plan.execute(&input), plan.execute(&input));
}

/// `load_or_compile` cold→warm: the first call compiles and stores, the
/// second loads the artifact and yields a bit-identical plan.
#[test]
fn load_or_compile_warm_start_is_bit_identical() {
    let cache = temp_cache("warm");
    let graph = golden_graph();
    let text = to_text(&graph);
    let compiler = Compiler::new();

    let cold = load_or_compile(&compiler, &text, SEED, &cache, "golden").expect("cold");
    assert_eq!(cold.source, ColdStartSource::Compiled);
    assert!(cold.fallbacks.is_empty(), "{:?}", cold.fallbacks);

    let warm = load_or_compile(&compiler, &text, SEED, &cache, "golden").expect("warm");
    assert_eq!(warm.source, ColdStartSource::ArtifactCache);
    assert!(warm.fallbacks.is_empty(), "{:?}", warm.fallbacks);
    assert_eq!(warm.plan.checksum(), cold.plan.checksum());
    let input = sample_input(cold.plan.input_len());
    assert_eq!(warm.plan.execute(&input), cold.plan.execute(&input));
}

/// A corrupted cache entry degrades to a recorded fallback compile —
/// never an error, never a wrong plan — and the rebuild heals the cache.
#[test]
fn corrupted_cache_entry_degrades_to_compile_and_heals() {
    let cache = temp_cache("heal");
    let graph = golden_graph();
    let text = to_text(&graph);
    let compiler = Compiler::new();

    let cold = load_or_compile(&compiler, &text, SEED, &cache, "golden").expect("cold");
    let path = cache.path_for(&cold.key);
    let mut bytes = std::fs::read(&path).expect("stored artifact");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("corrupt");

    let healed = load_or_compile(&compiler, &text, SEED, &cache, "golden").expect("degrade");
    assert_eq!(healed.source, ColdStartSource::Compiled);
    assert_eq!(
        healed.fallbacks.iter().map(|f| f.stage).collect::<Vec<_>>(),
        vec!["decode"],
        "{:?}",
        healed.fallbacks
    );
    assert_eq!(healed.plan.checksum(), cold.plan.checksum());

    // The rebuild re-stored a valid artifact: next start is warm again.
    let warm = load_or_compile(&compiler, &text, SEED, &cache, "golden").expect("warm");
    assert_eq!(warm.source, ColdStartSource::ArtifactCache);
}

/// Unparsable graph text fails compilation with a structured parse
/// error even when the cache directory is present — the cache never
/// masks a compile failure.
#[test]
fn load_or_compile_surfaces_parse_errors() {
    let cache = temp_cache("parse");
    let err = load_or_compile(&Compiler::new(), "not a graph\n", SEED, &cache, "bad")
        .expect_err("must fail");
    assert!(matches!(err, Gcd2Error::Parse(_)), "{err}");
}

/// A forged artifact that passes every checksum still cannot register
/// an aliasing-unsound plan: the gateway re-runs the arena-soundness
/// analyzer on decode. (Integrity checksums bind content, not safety.)
#[test]
fn gateway_registers_from_artifact_and_reverifies() {
    use gcd2_repro::compiler::{GatewayConfig, InferServer};

    let graph = golden_graph();
    let compiled = Compiler::new().compile(&graph);
    let plan = compiled.inference_plan(SEED);
    let bytes = encode(&compiled, &plan, "golden").expect("encode");

    let server = InferServer::gateway(GatewayConfig::default());
    let checksum = server
        .register_from_artifact("golden", &bytes)
        .expect("admit");
    assert_eq!(checksum, plan.checksum());

    // Corrupt bytes are rejected with a structured artifact error.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    let err = server
        .register_from_artifact("golden2", &bad)
        .expect_err("must reject");
    assert!(
        matches!(err, gcd2_repro::compiler::InferError::Artifact(_)),
        "{err}"
    );
}
