//! Chaos suite: seeded fault injection against the full compilation
//! pipeline.
//!
//! The robustness contract under test: **every** injected-fault run
//! must terminate with either
//!
//! 1. a `CompiledModel` bit-identical to the undisturbed baseline (the
//!    fault was transient and internal retry recovered it), or
//! 2. a clean structured [`Gcd2Error`] (the fault was persistent),
//!
//! and a panic must never escape a compiler entry point. Run with
//! `cargo test --features fault-injection --test chaos`; the suite is
//! absent from the default (uninstrumented) build.

#![cfg(feature = "fault-injection")]

use gcd2_repro::cgraph::{to_text, Activation, Graph, OpKind, TShape};
use gcd2_repro::compiler::{CompiledModel, Compiler, Gcd2Error};
use gcd2_repro::faults::{arm, FaultKind, FaultPlan};
use gcd2_repro::par::ShardedMap;

/// A small conv net with a residual edge — big enough to exercise
/// enumeration, partitioned refinement, and packing on several workers.
fn chaos_net() -> Graph {
    let mut g = Graph::new();
    let mut prev = g.input("x", TShape::nchw(1, 32, 14, 14));
    let residual = prev;
    for i in 0..6 {
        prev = g.add(
            OpKind::Conv2d {
                out_channels: 32,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            &[prev],
            format!("conv{i}"),
        );
        prev = g.add(OpKind::Act(Activation::Relu), &[prev], format!("relu{i}"));
    }
    prev = g.add(OpKind::Add, &[prev, residual], "res");
    g.add(OpKind::GlobalAvgPool, &[prev], "gap");
    g
}

/// Bit-identity fingerprint of a compiled artifact.
fn fingerprint(m: &CompiledModel) -> (Vec<usize>, u64, u64) {
    (m.assignment.choice.clone(), m.cycles(), m.stats().insns)
}

fn compiler(threads: usize) -> Compiler {
    Compiler::new().with_threads(threads)
}

/// The undisturbed artifact every recovered run must match.
fn baseline(threads: usize) -> (Vec<usize>, u64, u64) {
    let g = chaos_net();
    fingerprint(
        &compiler(threads)
            .try_compile(&g)
            .expect("baseline compiles"),
    )
}

/// Runs one faulted compile and asserts the contract, returning whether
/// it recovered (Ok) or errored.
fn assert_contract(plan: FaultPlan, threads: usize, expect: &(Vec<usize>, u64, u64)) -> bool {
    let g = chaos_net();
    let _armed = arm(plan);
    match compiler(threads).try_compile(&g) {
        Ok(m) => {
            assert_eq!(
                fingerprint(&m),
                *expect,
                "recovered artifact is not bit-identical"
            );
            true
        }
        Err(e) => {
            // A structured error is an acceptable outcome; an escaped
            // panic would have failed the test harness already. Internal
            // is reserved for the catch_unwind backstop.
            assert!(
                !matches!(e, Gcd2Error::Internal { .. }),
                "fault surfaced as Internal instead of a typed error: {e}"
            );
            false
        }
    }
}

#[test]
fn transient_cost_eval_panic_recovers_bit_identical() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().once("cost.eval", FaultKind::Panic, 3),
        4,
        &expect,
    );
    assert!(recovered, "a transient fault must recover");
}

#[test]
fn sticky_cost_eval_panic_yields_structured_error() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().sticky("cost.eval", FaultKind::Panic, 1),
        4,
        &expect,
    );
    assert!(!recovered, "a persistent fault must surface as an error");
}

#[test]
fn cost_eval_delay_changes_nothing() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().once("cost.eval", FaultKind::Delay { millis: 2 }, 1),
        4,
        &expect,
    );
    assert!(recovered, "a delay must not change the artifact");
}

#[test]
fn transient_cache_corruption_recovers_bit_identical() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().once("cache.lookup", FaultKind::CorruptCache, 2),
        4,
        &expect,
    );
    assert!(recovered, "a corrupt entry is discarded and recomputed");
}

#[test]
fn sticky_cache_corruption_recovers_bit_identical() {
    // A permanently corrupting cache degrades to cache-off compilation:
    // slower, but every value is recomputed from pure inputs.
    let expect = baseline(2);
    let recovered = assert_contract(
        FaultPlan::new().sticky("cache.lookup", FaultKind::CorruptCache, 1),
        2,
        &expect,
    );
    assert!(recovered);
}

#[test]
fn cache_lookup_panic_quarantines_and_recovers() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().once("cache.lookup", FaultKind::Panic, 5),
        4,
        &expect,
    );
    assert!(recovered, "a poisoned shard is quarantined, not fatal");
}

#[test]
fn transient_pack_panic_recovers_bit_identical() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().once("pack.vliw", FaultKind::Panic, 4),
        4,
        &expect,
    );
    assert!(recovered);
}

#[test]
fn sticky_pack_panic_yields_structured_error() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().sticky("pack.vliw", FaultKind::Panic, 1),
        4,
        &expect,
    );
    assert!(!recovered);
}

#[test]
fn transient_worker_startup_panic_recovers_bit_identical() {
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().once("par.worker", FaultKind::Panic, 1),
        4,
        &expect,
    );
    assert!(recovered, "surviving workers or the serial sweep take over");
}

#[test]
fn sticky_worker_startup_panic_recovers_via_serial_sweep() {
    // Every worker dies at startup, every round; the serial sweep still
    // completes all items, bit-identically.
    let expect = baseline(4);
    let recovered = assert_contract(
        FaultPlan::new().sticky("par.worker", FaultKind::Panic, 1),
        4,
        &expect,
    );
    assert!(recovered);
}

#[test]
fn single_threaded_compiles_honor_the_same_contract() {
    let expect = baseline(1);
    let recovered = assert_contract(
        FaultPlan::new().once("cost.eval", FaultKind::Panic, 2),
        1,
        &expect,
    );
    assert!(recovered, "threads=1 retries in the serial sweep");
}

#[test]
fn parse_line_panic_is_caught_as_structured_error() {
    let g = chaos_net();
    let text = to_text(&g);
    let _armed = arm(FaultPlan::new().once("parse.line", FaultKind::Panic, 2));
    match compiler(2).try_compile_text(&text) {
        Err(Gcd2Error::Internal { message }) => {
            assert!(
                message.contains("injected fault"),
                "unexpected message: {message}"
            );
        }
        Ok(_) => panic!("parse.line panic was swallowed"),
        Err(e) => panic!("unexpected error kind: {e}"),
    }
}

#[test]
fn parse_line_delay_parses_and_compiles_identically() {
    let g = chaos_net();
    let text = to_text(&g);
    let expect = baseline(2);
    let _armed = arm(FaultPlan::new().once("parse.line", FaultKind::Delay { millis: 1 }, 1));
    let (m, _) = compiler(2)
        .try_compile_text(&text)
        .expect("a delayed parse still compiles");
    assert_eq!(fingerprint(&m), expect);
}

#[test]
fn sharded_map_quarantines_poisoned_shards() {
    let map: ShardedMap<u64, u64> = ShardedMap::with_shards(1);
    for k in 0..8u64 {
        map.insert(k, k * 10);
    }
    let _armed = arm(FaultPlan::new().once("cache.lookup", FaultKind::Panic, 1));
    assert!(std::panic::catch_unwind(|| map.get(&3)).is_err());
    // The next access recovers the shard: entries are dropped
    // (quarantined) and the map keeps working.
    assert_eq!(map.get(&3), None);
    assert!(map.quarantined() >= 1, "quarantine counter must record it");
    map.insert(3, 30);
    assert_eq!(map.get(&3), Some(30));
}

/// Seed-derived multi-fault plans: the ci.sh chaos gate runs this with
/// two fixed seeds; `GCD2_CHAOS_SEED` adds an extra operator-chosen
/// seed for ad-hoc exploration.
#[test]
fn seeded_fault_plans_terminate_bit_identical_or_structured() {
    let mut seeds = vec![2024u64, 7];
    if let Ok(s) = std::env::var("GCD2_CHAOS_SEED") {
        if let Ok(s) = s.parse() {
            seeds.push(s);
        }
    }
    let g = chaos_net();
    let text = to_text(&g);
    let expect = baseline(4);
    for seed in seeds {
        let plan = FaultPlan::from_seed(seed);
        let _armed = arm(plan.clone());
        // Drive the text entry point so `parse.line` faults can fire too.
        match compiler(4).try_compile_text(&text) {
            Ok((m, _)) => assert_eq!(
                fingerprint(&m),
                expect,
                "seed {seed} recovered to a different artifact ({plan:?})"
            ),
            Err(e) => {
                // Structured is fine; only parse-stage injected panics
                // may surface as Internal (the parser has no worker
                // isolation layer, just the catch_unwind backstop).
                if let Gcd2Error::Internal { message } = &e {
                    assert!(
                        message.contains("injected fault"),
                        "seed {seed}: non-injected internal error: {message}"
                    );
                }
            }
        }
    }
}
