//! Checked-in hostile-artifact corpus: every file under
//! `tests/data/hostile/` is a deliberately damaged variant of the
//! golden artifact, and `MANIFEST.txt` pins the exact
//! [`ArtifactError`] variant each one must be rejected with. No
//! hostile input may panic, allocate unboundedly, or decode to a plan.
//!
//! Regenerate (after an intentional format change) with
//! `GCD2_REGEN_HOSTILE=1 cargo test --test artifact_hostile` — the
//! corpus derives deterministically from `tests/data/golden.gcd2art`.

use gcd2_repro::artifact::{Artifact, ArtifactError};
use gcd2_repro::compiler::artifact::decode;
use gcd2_repro::compiler::Gcd2Error;

const GOLDEN_PATH: &str = "tests/data/golden.gcd2art";
const HOSTILE_DIR: &str = "tests/data/hostile";
const MANIFEST: &str = "tests/data/hostile/MANIFEST.txt";

const HEADER_BYTES: usize = 16;
const TABLE_ENTRY_BYTES: usize = 28;

/// The manifest key for an error variant (payload-independent).
fn variant_name(e: &ArtifactError) -> &'static str {
    match e {
        ArtifactError::BadMagic => "BadMagic",
        ArtifactError::VersionSkew { .. } => "VersionSkew",
        ArtifactError::Truncated { .. } => "Truncated",
        ArtifactError::SectionChecksum { .. } => "SectionChecksum",
        ArtifactError::Bounds { .. } => "Bounds",
        ArtifactError::IntegrityMismatch { .. } => "IntegrityMismatch",
        ArtifactError::Io { .. } => "Io",
    }
}

/// Builds the corpus from the golden artifact: each entry is
/// (filename, damaged bytes).
fn build_corpus(golden: &[u8]) -> Vec<(String, Vec<u8>)> {
    let art = Artifact::decode(golden).expect("golden must decode");
    let count = art.sections.len();
    let payload_start = HEADER_BYTES + count * TABLE_ENTRY_BYTES;

    let mut corpus: Vec<(String, Vec<u8>)> = Vec::new();
    let mut push = |name: &str, bytes: Vec<u8>| corpus.push((name.to_string(), bytes));

    // Magic and version damage.
    let mut b = golden.to_vec();
    b[0] ^= 0xFF;
    push("bad_magic.gcd2art", b);

    let mut b = golden.to_vec();
    b[8..12].copy_from_slice(&99u32.to_le_bytes());
    push("version_skew.gcd2art", b);

    // Truncation at every section boundary (and mid-table).
    push(
        "truncated_header.gcd2art",
        golden[..HEADER_BYTES - 3].to_vec(),
    );
    push(
        "truncated_table.gcd2art",
        golden[..HEADER_BYTES + TABLE_ENTRY_BYTES / 2].to_vec(),
    );
    let mut cut = payload_start;
    for (i, sec) in art.sections.iter().enumerate() {
        cut += sec.bytes.len();
        // Cutting exactly at the final section's end removes only the
        // chain trailer; every cut is still a Truncated rejection.
        push(
            &format!("truncated_after_sec{i}.gcd2art"),
            golden[..cut].to_vec(),
        );
    }

    // One flipped byte in a stored section checksum (table entry of
    // section 1, checksum field at entry offset 20).
    let mut b = golden.to_vec();
    b[HEADER_BYTES + TABLE_ENTRY_BYTES + 20] ^= 0x10;
    push("flipped_table_checksum.gcd2art", b);

    // One flipped byte in each section's payload.
    let mut off = payload_start;
    for (i, sec) in art.sections.iter().enumerate() {
        if !sec.bytes.is_empty() {
            let mut b = golden.to_vec();
            b[off + sec.bytes.len() / 2] ^= 0x04;
            push(&format!("flipped_payload_sec{i}.gcd2art"), b);
        }
        off += sec.bytes.len();
    }

    // A declared section length far beyond the buffer (len field at
    // entry offset 12) — must be refused before any allocation.
    let mut b = golden.to_vec();
    let len_at = HEADER_BYTES + 12;
    b[len_at..len_at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    push("oversized_len.gcd2art", b);

    // A structurally valid container with zero sections: the plan
    // decoder must reject it for the missing META section.
    let mut b = Vec::new();
    b.extend_from_slice(&golden[..8]);
    b.extend_from_slice(&1u32.to_le_bytes()); // FORMAT_VERSION
    b.extend_from_slice(&0u32.to_le_bytes()); // count = 0
                                              // Chain over (version=1, count=0, bind=0) — wrong bind for any
                                              // plan, but rejected earlier at the missing-section check.
    let chain = {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &x in bytes {
                h ^= x as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(&1u32.to_le_bytes());
        eat(&0u32.to_le_bytes());
        eat(&0u64.to_le_bytes());
        h
    };
    b.extend_from_slice(&chain.to_le_bytes());
    push("zero_sections.gcd2art", b);

    // A flipped byte in the chain trailer: every section checksum still
    // passes, so this must be caught by the chain↔plan binding.
    let mut b = golden.to_vec();
    let n = b.len();
    b[n - 4] ^= 0x80;
    push("flipped_chain.gcd2art", b);

    // Trailing junk after the chain trailer.
    let mut b = golden.to_vec();
    b.extend_from_slice(b"JUNK");
    push("trailing_junk.gcd2art", b);

    // An empty file and a lone magic prefix.
    push("empty.gcd2art", Vec::new());
    push("magic_only.gcd2art", golden[..8].to_vec());

    corpus
}

fn expected_variant(bytes: &[u8]) -> &'static str {
    match decode(bytes) {
        Ok(_) => panic!("hostile artifact decoded successfully"),
        Err(Gcd2Error::Artifact(e)) => variant_name(&e),
        Err(other) => panic!("hostile artifact failed outside the artifact taxonomy: {other}"),
    }
}

#[test]
fn hostile_corpus_is_rejected_with_pinned_variants() {
    let golden = std::fs::read(GOLDEN_PATH).expect(
        "missing tests/data/golden.gcd2art; run the roundtrip suite with GCD2_REGEN_GOLDEN=1",
    );

    if std::env::var("GCD2_REGEN_HOSTILE").is_ok() {
        std::fs::create_dir_all(HOSTILE_DIR).expect("hostile dir");
        let corpus = build_corpus(&golden);
        let mut manifest = String::new();
        for (name, bytes) in &corpus {
            std::fs::write(format!("{HOSTILE_DIR}/{name}"), bytes).expect("write hostile");
            manifest.push_str(&format!("{name}\t{}\n", expected_variant(bytes)));
        }
        std::fs::write(MANIFEST, manifest).expect("write manifest");
    }

    let manifest = std::fs::read_to_string(MANIFEST)
        .expect("missing hostile MANIFEST.txt; regenerate with GCD2_REGEN_HOSTILE=1");
    let mut checked = 0;
    for line in manifest.lines() {
        let (name, want) = line.split_once('\t').expect("manifest line");
        let bytes = std::fs::read(format!("{HOSTILE_DIR}/{name}"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let got = expected_variant(&bytes);
        assert_eq!(got, want, "{name}: expected {want}, got {got}");
        checked += 1;
    }
    assert!(
        checked >= 12,
        "hostile corpus suspiciously small: {checked} files"
    );

    // The corpus construction itself must stay in sync with the golden
    // artifact: rebuilding it in memory yields the same rejections.
    for (name, bytes) in build_corpus(&golden) {
        let _ = name;
        let _ = expected_variant(&bytes); // panics if any variant decodes
    }
}

/// Exhaustive single-byte-flip sweep over the full golden artifact at
/// the *plan* decode level: every flip of every byte is either rejected
/// with a structured error or (never observed, but permitted by the
/// checksum design at ~2⁻⁶⁴) decodes to a plan whose integrity checksum
/// still matches — no panic, no silent wrong answer.
#[test]
fn every_byte_flip_of_golden_is_structured() {
    let golden = std::fs::read(GOLDEN_PATH).expect("golden");
    for i in 0..golden.len() {
        let mut b = golden.clone();
        b[i] ^= 0x01;
        match decode(&b) {
            Err(_) => {}
            Ok(loaded) => {
                loaded
                    .plan
                    .verify_integrity()
                    .unwrap_or_else(|e| panic!("flip at byte {i} decoded inconsistently: {e}"));
            }
        }
    }
}
