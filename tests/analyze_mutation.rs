//! Mutation testing of the static plan analyzer: seed one defect into a
//! compiled, checksum-restamped plan and assert the analyzer pinpoints
//! it with the right diagnostic code. The integrity checksum is
//! re-stamped by the mutation helpers, so these defects are invisible
//! to the runtime's hash gate — only the analyzer can catch them.

use gcd2_repro::analyze::{LintCode, Verdict};
use gcd2_repro::compiler::infer::PlanMutation;
use gcd2_repro::compiler::{CompiledModel, Compiler, InferencePlan};
use gcd2_repro::models::ModelId;

const SEED: u64 = 0xC0DE;

fn compiled_model() -> CompiledModel {
    // MobileNet-V3: the smallest catalog model that still exercises
    // slot reuse, in-place pass-through aliasing, and dozens of GEMMs.
    Compiler::new().compile(&ModelId::MobileNetV3.build())
}

fn plan_of(compiled: &CompiledModel) -> InferencePlan {
    compiled
        .try_inference_plan(SEED)
        .expect("pristine plan builds clean")
}

/// Applies one mutation and returns the analyzer's findings.
fn analyze_mutated(
    compiled: &CompiledModel,
    mutation: PlanMutation,
) -> gcd2_repro::analyze::Analysis {
    let mut plan = plan_of(compiled);
    assert!(
        plan.mutate_for_test(mutation),
        "{mutation:?} found no site in the plan"
    );
    // The mutated plan still passes the runtime integrity gate: the
    // helper re-stamped the checksum. Detection is on the analyzer.
    plan.verify_integrity()
        .expect("mutation helpers restamp the checksum");
    compiled.analyze_plan(&plan)
}

#[test]
fn pristine_plan_is_clean() {
    let compiled = compiled_model();
    let analysis = compiled.analyze_plan(&plan_of(&compiled));
    assert_eq!(analysis.verdict(), Verdict::Clean, "{analysis}");
    assert!(analysis.is_clean(), "{:?}", analysis.diagnostics);
}

#[test]
fn swapped_slot_assignments_are_flagged() {
    let compiled = compiled_model();
    let analysis = analyze_mutated(&compiled, PlanMutation::SwapSlots);
    assert_eq!(analysis.verdict(), Verdict::Unsound);
    assert!(
        !analysis.of_code(LintCode::OperandSlotMismatch).is_empty(),
        "swapping two live slot assignments must desynchronize a \
         consumer from its producer:\n{analysis}"
    );
}

#[test]
fn shrunk_slot_size_is_flagged() {
    let compiled = compiled_model();
    let analysis = analyze_mutated(&compiled, PlanMutation::ShrinkSlot);
    assert_eq!(analysis.verdict(), Verdict::Unsound);
    assert!(
        !analysis.of_code(LintCode::SlotUndersized).is_empty(),
        "a slot_sizes entry below its high-water write must be \
         flagged:\n{analysis}"
    );
}

#[test]
fn bumped_requant_shift_is_flagged() {
    let compiled = compiled_model();
    let analysis = analyze_mutated(&compiled, PlanMutation::BumpShift);
    assert_eq!(analysis.verdict(), Verdict::Unsound);
    assert!(
        !analysis.of_code(LintCode::ShiftPolicy).is_empty(),
        "an off-by-one folded shift must disagree with the recomputed \
         depth-k policy:\n{analysis}"
    );
}

#[test]
fn every_mutation_is_caught_with_zero_false_negatives() {
    let compiled = compiled_model();
    for mutation in [
        PlanMutation::SwapSlots,
        PlanMutation::ShrinkSlot,
        PlanMutation::BumpShift,
    ] {
        let analysis = analyze_mutated(&compiled, mutation);
        assert_eq!(
            analysis.verdict(),
            Verdict::Unsound,
            "{mutation:?} slipped past the analyzer"
        );
    }
}
