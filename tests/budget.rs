//! Compile-budget acceptance tests: the degradation ladder is
//! deterministic at every thread count, an intentionally tiny budget
//! still yields a verifier-clean plan through the greedy floor, and
//! every catalog model compiles under the default budget without
//! degrading.

use gcd2_repro::cgraph::{Activation, Graph, OpKind, TShape};
use gcd2_repro::compiler::{CompileBudget, Compiler, Selection};
use gcd2_repro::globalopt::local_optimal;
use gcd2_repro::models::ModelId;

/// A conv trunk with residual adds — enough structure that GCD2(17)
/// forms multi-operator partitions worth refining.
fn test_net() -> Graph {
    let mut g = Graph::new();
    let mut prev = g.input("x", TShape::nchw(1, 48, 14, 14));
    let mut residual = prev;
    for i in 0..12 {
        prev = g.add(
            OpKind::Conv2d {
                out_channels: 48,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            &[prev],
            format!("conv{i}"),
        );
        prev = g.add(OpKind::Act(Activation::Relu), &[prev], format!("relu{i}"));
        if i % 3 == 2 {
            prev = g.add(OpKind::Add, &[prev, residual], format!("res{i}"));
            residual = prev;
        }
    }
    g
}

#[test]
fn budgeted_compiles_are_deterministic_across_thread_counts() {
    let g = test_net();
    for budget in [
        CompileBudget::default(),
        CompileBudget::with_max_states(40),
        CompileBudget::with_max_states(1),
    ] {
        let mut reference: Option<(Vec<usize>, u64, Vec<String>)> = None;
        for threads in [1, 2, 4, 8] {
            let compiler = Compiler::new()
                .with_threads(threads)
                .with_selection(Selection::Gcd2 { max_ops: 17 })
                .with_budget(budget);
            let (compiled, report) = compiler
                .try_compile_timed(&g)
                .expect("budgeted compile succeeds");
            let fingerprint = (
                compiled.assignment.choice.clone(),
                compiled.cycles(),
                report.degrade.iter().map(|e| e.to_string()).collect(),
            );
            match &reference {
                None => reference = Some(fingerprint),
                Some(r) => assert_eq!(
                    *r, fingerprint,
                    "budget {budget:?} diverged at {threads} threads"
                ),
            }
        }
    }
}

#[test]
fn tiny_budget_degrades_but_stays_verifier_clean() {
    let g = test_net();
    let compiler = Compiler::new()
        .with_threads(4)
        .with_selection(Selection::Gcd2 { max_ops: 17 })
        .with_budget(CompileBudget::with_max_states(2));
    let (compiled, report) = compiler
        .try_compile_timed(&g)
        .expect("degraded compile succeeds");
    assert!(
        !report.degrade.is_empty(),
        "a 2-state cap must force degradation"
    );
    // The fallback never does worse than the greedy local optimum.
    let (rewritten, plans, _) = compiler.select(&g);
    let local = local_optimal(&rewritten, &plans);
    assert!(
        compiled.assignment.cost <= local.cost,
        "degraded cost {} exceeds local-optimal {}",
        compiled.assignment.cost,
        local.cost
    );
    let verdict = compiled.verify();
    assert_eq!(
        verdict.error_count(),
        0,
        "degraded plan must verify clean:\n{verdict}"
    );
}

#[test]
fn zero_deadline_falls_to_greedy_and_still_compiles() {
    let g = test_net();
    let compiler = Compiler::new()
        .with_selection(Selection::Gcd2 { max_ops: 17 })
        .with_budget(CompileBudget::with_deadline(std::time::Duration::ZERO));
    let (compiled, report) = compiler
        .try_compile_timed(&g)
        .expect("deadline-exhausted compile still succeeds");
    assert!(
        !report.degrade.is_empty(),
        "an already-passed deadline must degrade"
    );
    assert!(compiled.cycles() > 0);
    assert_eq!(compiled.verify().error_count(), 0);
}

#[test]
fn every_catalog_model_compiles_under_the_default_budget() {
    for id in ModelId::ALL {
        let g = id.build();
        let (compiled, report) = Compiler::new()
            .try_compile_timed(&g)
            .unwrap_or_else(|e| panic!("{id} failed to compile: {e}"));
        assert!(compiled.cycles() > 0, "{id} produced an empty program");
        assert!(
            report.degrade.is_empty(),
            "{id} degraded under the default budget: {:?}",
            report.degrade
        );
    }
}
