//! Layout explorer: run the same quantized matrix multiplication through
//! all three SIMD instructions (and their Figure 2 layouts) on the
//! functional simulator, verify bit-exact agreement with the scalar
//! reference, and compare costs — Table II in miniature.
//!
//! ```sh
//! cargo run --release --example layout_explorer
//! ```
#![allow(clippy::needless_range_loop)]

use gcd2_cgraph::GemmDims;
use gcd2_hvx::Machine;
use gcd2_kernels::{
    functional_program, matmul_ref, output_matrix_len, CostModel, SimdInstr, UnrollConfig,
};
use gcd2_tensor::{MatrixI8, MatrixU8};

fn main() {
    let (m, k, n) = (70, 12, 6);
    // Bounded inputs keep the 16-bit accumulation paths exact (see
    // DESIGN.md): activations <= 15, weights in [-7, 7].
    let a_rm: Vec<u8> = (0..m * k).map(|i| (i * 7 % 16) as u8).collect();
    let w_rm: Vec<i8> = (0..k * n).map(|i| ((i * 5 % 15) as i8) - 7).collect();
    let shift = 4u8;

    println!("C = requant(A[{m}x{k}] x W[{k}x{n}], >>{shift}) on the simulated DSP\n");
    let cost_model = CostModel::new();
    let gemm = GemmDims::new(m, k, n);

    for instr in SimdInstr::ALL {
        let a = MatrixU8::from_row_major(m, k, instr.layout(), &a_rm);
        let w = MatrixI8::from_row_major(k, n, &w_rm);

        // Build and run the fully unrolled functional kernel.
        let addr_out = a.padded_len().div_ceil(128) * 128;
        let out_len = output_matrix_len(&gemm, instr);
        let prog = functional_program(&a, &w, instr, shift, 0, addr_out as i64);
        let mut machine = Machine::new(addr_out + out_len);
        machine.mem[..a.padded_len()].copy_from_slice(a.as_bytes());
        machine.run(&prog);

        // Check against the scalar reference.
        let got = MatrixU8::from_raw(
            m,
            n,
            instr.layout(),
            machine.mem[addr_out..addr_out + out_len].to_vec(),
        );
        let expect = matmul_ref(&a, &w, shift);
        let mut mismatches = 0;
        for r in 0..m {
            for c in 0..n {
                if got.get(r, c) != expect[r][c] {
                    mismatches += 1;
                }
            }
        }

        let cycles = cost_model.gemm_cycles(&gemm, instr, UnrollConfig::NONE);
        println!(
            "{instr:<6} layout {:<9}  padded input {:>5} B  estimated {:>6} cycles  {}",
            instr.layout().to_string(),
            a.padded_len(),
            cycles,
            if mismatches == 0 {
                "bit-exact vs reference"
            } else {
                "MISMATCH!"
            }
        );
        assert_eq!(mismatches, 0);
    }

    println!("\nSmall M favours the 4-column layout (no 128-row padding) — Table II row 1.");
}
