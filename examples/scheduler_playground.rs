//! Scheduler playground: build the paper's Figure 5 style basic block
//! (2-D elementwise add, `R = A + B + C`), pack it with the three
//! policies, print the packets, and run them functionally on the
//! simulated DSP to show all schedules compute identical results.
//!
//! ```sh
//! cargo run --release --example scheduler_playground
//! ```

use gcd2_hvx::{Block, Insn, Machine, PackedBlock, SReg, VPair, VReg, VBYTES};
use gcd2_vliw::{pack_with_policy, SoftDepPolicy};

fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn w(i: u8) -> VPair {
    VPair::new(i)
}
fn r(i: u8) -> SReg {
    SReg::new(i)
}

/// The inner loop of `R = A + B + C` (A, B, C u8 arrays; R int16),
/// the running example of the paper's Figure 5.
fn add3_block(trips: u64) -> Block {
    let mut b = Block::with_trip_count("R = A + B + C", trips);
    b.extend([
        Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: 0,
        },
        Insn::VLoad {
            dst: v(1),
            base: r(1),
            offset: 0,
        },
        Insn::VLoad {
            dst: v(2),
            base: r(2),
            offset: 0,
        },
        Insn::VaddUbH {
            dst: w(4),
            a: v(0),
            b: v(1),
        },
        Insn::VaddUbH {
            dst: w(6),
            a: v(2),
            b: v(30),
        },
        Insn::VaddHAcc {
            dst: v(4),
            src: v(6),
        },
        Insn::VaddHAcc {
            dst: v(5),
            src: v(7),
        },
        Insn::VStore {
            src: v(4),
            base: r(3),
            offset: 0,
        },
        Insn::VStore {
            src: v(5),
            base: r(3),
            offset: VBYTES as i64,
        },
        Insn::AddI {
            dst: r(0),
            a: r(0),
            imm: VBYTES as i64,
        },
        Insn::AddI {
            dst: r(1),
            a: r(1),
            imm: VBYTES as i64,
        },
        Insn::AddI {
            dst: r(2),
            a: r(2),
            imm: VBYTES as i64,
        },
        Insn::AddI {
            dst: r(3),
            a: r(3),
            imm: 2 * VBYTES as i64,
        },
    ]);
    b
}

fn run(block: &PackedBlock, elems: usize) -> Vec<u8> {
    let mut m = Machine::new(8 * elems);
    for i in 0..elems {
        m.mem[i] = (i % 97) as u8;
        m.mem[elems + i] = (i % 89) as u8;
        m.mem[2 * elems + i] = (i % 83) as u8;
    }
    m.set_sreg(r(0), 0);
    m.set_sreg(r(1), elems as i64);
    m.set_sreg(r(2), 2 * elems as i64);
    m.set_sreg(r(3), 3 * elems as i64);
    m.run_block(block);
    m.mem[3 * elems..3 * elems + 2 * elems].to_vec()
}

fn main() {
    let trips = 4u64;
    let elems = trips as usize * VBYTES;
    let block = add3_block(trips);

    let mut reference: Option<Vec<u8>> = None;
    for (name, policy) in [
        ("SDA (Algorithm 1)", SoftDepPolicy::Sda),
        ("soft_to_hard", SoftDepPolicy::SoftToHard),
        ("soft_to_none", SoftDepPolicy::SoftToNone),
    ] {
        let packed = pack_with_policy(&block, policy);
        println!(
            "=== {name}: {} packets, {} cycles/iteration",
            packed.packets.len(),
            packed.body_cycles()
        );
        for p in &packed.packets {
            println!("{p}");
        }
        let out = run(&packed, elems);
        match &reference {
            None => reference = Some(out),
            Some(expect) => assert_eq!(&out, expect, "{name} changed the results!"),
        }
        println!();
    }
    println!(
        "All three schedules computed identical results (verified on the functional simulator)."
    );
    println!("The paper's Figure 5 shows the same effect: SDA emits 3 packets where soft_to_hard needs 5.");
}
