//! Full numeric inference on the simulated DSP: compile a small residual
//! CNN, run it with real data through the functional simulator — every
//! multiply-accumulate executed with the instruction and layout the
//! global optimizer selected — and verify the output against the scalar
//! reference interpreter.
//!
//! ```sh
//! cargo run --release --example inference_demo
//! ```

use gcd2::{execute_on_dsp, execute_reference, Compiler};
use gcd2_cgraph::{Activation, Graph, OpKind, TShape};

fn build_net() -> Graph {
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, 16, 16));
    let stem = g.add(
        OpKind::Conv2d {
            out_channels: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        "stem",
    );
    let mut cur = g.add(OpKind::Act(Activation::Relu), &[stem], "stem.relu");
    for i in 0..2 {
        let c1 = g.add(
            OpKind::Conv2d {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            &[cur],
            format!("block{i}.conv1"),
        );
        let r = g.add(
            OpKind::Act(Activation::Relu),
            &[c1],
            format!("block{i}.relu"),
        );
        let c2 = g.add(
            OpKind::Conv2d {
                out_channels: 8,
                kernel: (1, 1),
                stride: (1, 1),
                padding: (0, 0),
            },
            &[r],
            format!("block{i}.conv2"),
        );
        cur = g.add(OpKind::Add, &[c2, cur], format!("block{i}.add"));
    }
    let pool = g.add(
        OpKind::MaxPool {
            kernel: (2, 2),
            stride: (2, 2),
        },
        &[cur],
        "pool",
    );
    let flat = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![1, 8 * 64]),
        },
        &[pool],
        "flatten",
    );
    g.add(OpKind::MatMul { n: 10 }, &[flat], "classifier");
    g
}

fn main() {
    let graph = build_net();
    let compiled = Compiler::new().compile(&graph);
    println!(
        "compiled {} operators; chosen kernels:",
        compiled.graph.op_count()
    );
    for report in &compiled.lowered.reports {
        println!("  {:<16} {}", report.name, report.plan);
    }

    // A deterministic "image" in the runtime's 4-bit activation range.
    let input: Vec<u8> = (0..3 * 16 * 16).map(|i| ((i * 31) % 16) as u8).collect();
    let seed = 2022; // MICRO'22

    let (logits, simd_macs) = execute_on_dsp(&compiled, &input, seed);
    let reference = execute_reference(&compiled, &input, seed);

    println!("\nclass scores (quantized): {logits:?}");
    let best = logits.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
    println!("argmax class: {best}");
    println!("{simd_macs} MACs executed on the simulated DSP");
    assert_eq!(
        logits, reference,
        "DSP inference must match the scalar reference"
    );
    println!("bit-exact against the scalar reference interpreter ✔");
    println!(
        "\nestimated latency for this net: {:.1} µs at the calibrated clock",
        compiled.latency_ms() * 1e3
    );
}
