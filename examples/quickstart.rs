//! Quickstart: compile a small CNN with GCD2 and inspect what the
//! compiler decided.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gcd2::{Compiler, Selection};
use gcd2_cgraph::{Activation, Graph, OpKind, TShape};

fn main() {
    // 1. Describe a model as a computational graph (normally produced by
    //    importing a quantized model; here built by hand).
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, 64, 64));
    let c1 = g.add(
        OpKind::Conv2d {
            out_channels: 32,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        "conv1",
    );
    let r1 = g.add(OpKind::Act(Activation::Relu), &[c1], "relu1");
    let c2 = g.add(
        OpKind::Conv2d {
            out_channels: 32,
            kernel: (1, 1),
            stride: (1, 1),
            padding: (0, 0),
        },
        &[r1],
        "conv2",
    );
    let s = g.add(OpKind::Add, &[c2, c1], "residual");
    let p = g.add(
        OpKind::MaxPool {
            kernel: (2, 2),
            stride: (2, 2),
        },
        &[s],
        "pool",
    );
    let f = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![1, 32 * 32 * 32]),
        },
        &[p],
        "flat",
    );
    g.add(OpKind::MatMul { n: 10 }, &[f], "classifier");

    // 2. Compile with the full GCD2 pipeline: graph rewriting, global
    //    SIMD instruction & layout selection, lookup optimizations, SDA
    //    VLIW packing.
    let compiled = Compiler::new().compile(&g);

    println!("== chosen execution plans ==");
    for report in &compiled.lowered.reports {
        println!(
            "  {:<12} -> {:<28} kernel {:>9} cyc, transforms {:>7} cyc",
            report.name, report.plan, report.kernel_cycles, report.transform_cycles
        );
    }

    let stats = compiled.stats();
    println!("\n== end-to-end on the simulated DSP ==");
    println!("  cycles        : {}", compiled.cycles());
    println!("  latency       : {:.3} ms", compiled.latency_ms());
    println!("  packets       : {}", stats.packets);
    println!("  utilization   : {:.1} %", 100.0 * compiled.utilization());
    println!("  power         : {:.2} W", compiled.power_w());
    println!("  frames/Watt   : {:.1}", compiled.frames_per_watt());

    // 3. Compare against the greedy per-operator baseline.
    let local = Compiler::new()
        .with_selection(Selection::LocalOptimal)
        .compile(&g);
    println!(
        "\nGCD2 global selection vs local optimal: {:.2}x faster",
        local.cycles() as f64 / compiled.cycles() as f64
    );
}
