//! End-to-end pipeline on a real workload: compile ResNet-50 with every
//! selection/packing configuration and compare against the simulated
//! production frameworks — a miniature of the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example resnet50_pipeline
//! ```

use gcd2::{Compiler, Packing, Selection};
use gcd2_baselines::Framework;
use gcd2_models::ModelId;

fn main() {
    let graph = ModelId::ResNet50.build();
    println!(
        "ResNet-50: {} operators, {:.2} GMACs, {:.1} M params\n",
        graph.op_count(),
        graph.total_macs() as f64 / 1e9,
        graph.total_params() as f64 / 1e6
    );

    // The full GCD2 pipeline.
    let gcd2 = Compiler::new().compile(&graph);
    println!(
        "GCD2 (full)            : {:>8.2} ms   {:.2} TOPS",
        gcd2.latency_ms(),
        gcd2.tops()
    );

    // Ablations.
    for (name, compiler) in [
        (
            "local-optimal layouts",
            Compiler::new().with_selection(Selection::LocalOptimal),
        ),
        (
            "soft_to_hard packing ",
            Compiler::new().with_packing(Packing::SoftToHard),
        ),
        (
            "sequential (no VLIW) ",
            Compiler::new().with_packing(Packing::Sequential),
        ),
        ("no optimizations     ", Compiler::no_opt()),
    ] {
        let m = compiler.compile(&graph);
        println!(
            "{name}  : {:>8.2} ms   ({:.2}x slower than GCD2)",
            m.latency_ms(),
            m.cycles() as f64 / gcd2.cycles() as f64
        );
    }

    // Production frameworks on the same simulated DSP.
    println!();
    for (name, fw) in [("TFLite", Framework::Tflite), ("SNPE  ", Framework::Snpe)] {
        match fw.run(&graph) {
            Some(run) => println!(
                "{name} (simulated)     : {:>8.2} ms   ({:.2}x slower than GCD2)",
                run.latency_ms(),
                run.stats.cycles as f64 / gcd2.cycles() as f64
            ),
            None => println!("{name} (simulated)     : unsupported"),
        }
    }

    // Where do GCD2's cycles go?
    let transforms = gcd2.lowered.transform_cycles();
    println!(
        "\nLayout transformations: {:.2}% of GCD2 cycles (global planning keeps them rare)",
        100.0 * transforms as f64 / gcd2.cycles() as f64
    );
    let mut by_plan: std::collections::BTreeMap<String, u64> = Default::default();
    for r in &gcd2.lowered.reports {
        let key = r.plan.split(' ').next().unwrap_or("?").to_string();
        *by_plan.entry(key).or_default() += r.kernel_cycles;
    }
    println!("Cycles by chosen plan:");
    for (plan, cycles) in by_plan {
        println!("  {plan:<24} {cycles:>12} cyc");
    }
}
