//! Hand-written assembly: author a requantizing vector kernel in the
//! textual DSP assembly, parse it, check the schedule's legality and
//! cost, execute it, and verify the numerics — the workflow for
//! experimenting with new kernels without touching the generators.
//!
//! ```sh
//! cargo run --release --example handwritten_kernel
//! ```

use gcd2_hvx::{parse_program, print_program, Machine, ResourceModel, SReg, VBYTES};

/// `out[i] = sat_ub((a[i] + b[i]) >> 1)` over 4 vectors, written by hand.
/// r0/r1 point at the inputs, r2 at the output.
const KERNEL: &str = "
// averaging kernel (x4)
{
    v0 = vmem(r0+#0)
    v1 = vmem(r1+#0)
    r0 = add(r0, #128)
    r1 = add(r1, #128)
}
{
    w1.h = vadd(v0.ub, v1.ub)
}
{
    v4.ub = vasr(w1.h, #1):sat
}
{
    vmem(r2+#0) = v4
    r2 = add(r2, #128)
}
";

fn main() {
    let program = parse_program(KERNEL).expect("kernel parses");
    let block = &program.blocks[0];

    // Static checks: every packet legal, cost visible up front.
    let model = ResourceModel::default();
    for p in &block.packets {
        assert!(p.is_legal(&model), "illegal packet:\n{p}");
    }
    println!(
        "parsed {} packets, {} cycles per iteration, {} iterations",
        block.packets.len(),
        block.body_cycles(),
        block.trip_count
    );
    println!("\n{}", print_program(&program));

    // Execute.
    let n = 4 * VBYTES;
    let mut m = Machine::new(4 * n);
    for i in 0..n {
        m.mem[i] = (i % 251) as u8; // a
        m.mem[n + i] = (i % 73) as u8; // b
    }
    m.set_sreg(SReg::new(0), 0);
    m.set_sreg(SReg::new(1), n as i64);
    m.set_sreg(SReg::new(2), 2 * n as i64);
    m.run(&program);

    // Verify against the scalar reference.
    for i in 0..n {
        let expect = ((i % 251) as u16 + (i % 73) as u16) >> 1;
        let got = m.mem[2 * n + i] as u16;
        assert_eq!(got, expect, "element {i}");
    }
    println!("all {n} outputs match the scalar reference ✔");

    // How much does the hand schedule leave on the table? Re-pack the
    // flattened instructions with SDA and compare.
    let mut flat = gcd2_hvx::Block::with_trip_count("flat", block.trip_count);
    for p in &block.packets {
        flat.extend(p.insns().iter().cloned());
    }
    let sda = gcd2_vliw::Packer::new().pack_block(&flat);
    println!(
        "hand schedule: {} cycles/iter | SDA repack: {} cycles/iter",
        block.body_cycles(),
        sda.body_cycles()
    );
}
