//! Lowering consistency tests: per-operator attribution, plan-kind
//! dispatch (including the vtmpy depthwise path), and agreement between
//! the optimizer's objective and the lowered program across packing
//! modes.

use gcd2_cgraph::{Activation, Graph, OpKind, TShape};
use gcd2_codegen::{lower, LowerOptions, PackMode};
use gcd2_globalopt::{enumerate_plans, gcd2_select, PlanKind};
use gcd2_kernels::CostModel;

fn depthwise_net() -> Graph {
    let mut g = Graph::new();
    let x = g.input("x", TShape::nchw(1, 32, 28, 28));
    let dw = g.add(
        OpKind::DepthwiseConv2d {
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        "dw3x3",
    );
    let r = g.add(OpKind::Act(Activation::Relu), &[dw], "relu");
    g.add(
        OpKind::Conv2d {
            out_channels: 32,
            kernel: (1, 1),
            stride: (1, 1),
            padding: (0, 0),
        },
        &[r],
        "pw",
    );
    g
}

#[test]
fn vtmpy_plan_lowers_to_vtmpy_blocks() {
    let g = depthwise_net();
    let model = CostModel::new();
    let plans = enumerate_plans(&g, &model);
    let assignment = gcd2_select(&g, &plans, 13);
    // The 3-wide depthwise op should get the dedicated vtmpy plan.
    let dw = g.nodes().iter().find(|n| n.name == "dw3x3").unwrap();
    let plan = &plans.of(dw.id)[assignment.choice[dw.id.0]];
    assert_eq!(plan.kind, PlanKind::DepthwiseVtmpy, "selected {plan}");
    // And the lowered program must contain vtmpy instructions.
    let lowered = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
    let has_vtmpy = lowered.program.blocks.iter().any(|b| {
        b.packets.iter().any(|p| {
            p.insns()
                .iter()
                .any(|i| matches!(i, gcd2_hvx::Insn::Vtmpy { .. }))
        })
    });
    assert!(has_vtmpy, "no vtmpy in the lowered program");
}

#[test]
fn reports_account_for_all_program_cycles() {
    let g = depthwise_net();
    let model = CostModel::new();
    let plans = enumerate_plans(&g, &model);
    let assignment = gcd2_select(&g, &plans, 13);
    let lowered = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
    let attributed: u64 = lowered
        .reports
        .iter()
        .map(|r| r.kernel_cycles + r.transform_cycles)
        .sum();
    let total = lowered.cycles();
    // Everything except rounding in the dispatch-overhead block must be
    // attributed to an operator.
    let diff = (attributed as f64 - total as f64).abs() / total as f64;
    assert!(diff < 0.02, "attributed {attributed} vs program {total}");
}

#[test]
fn packing_modes_order_consistently() {
    let g = depthwise_net();
    let model = CostModel::new();
    let plans = enumerate_plans(&g, &model);
    let assignment = gcd2_select(&g, &plans, 13);
    let cycles = |mode: PackMode| {
        lower(
            &g,
            &plans,
            &assignment,
            &LowerOptions {
                pack: mode,
                ..LowerOptions::gcd2()
            },
        )
        .cycles()
    };
    let sda = cycles(PackMode::Sda);
    let seq = cycles(PackMode::Sequential);
    let s2h = cycles(PackMode::SoftToHard);
    assert!(sda <= s2h, "sda {sda} vs s2h {s2h}");
    assert!(s2h < seq, "s2h {s2h} vs sequential {seq}");
}

#[test]
fn every_report_names_a_real_operator() {
    let g = depthwise_net();
    let model = CostModel::new();
    let plans = enumerate_plans(&g, &model);
    let assignment = gcd2_select(&g, &plans, 13);
    let lowered = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
    assert_eq!(lowered.reports.len(), g.op_count());
    for r in &lowered.reports {
        assert!(g.nodes().iter().any(|n| n.id == r.node && n.name == r.name));
        assert!(!r.plan.is_empty());
    }
}
