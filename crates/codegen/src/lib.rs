//! # gcd2-codegen — lowering plan assignments to DSP programs
//!
//! The back half of the paper's Figure 6 workflow: given a computational
//! graph and the execution-plan assignment chosen by the global
//! optimizer, emit the complete instruction-stream [`Program`] — kernel
//! blocks per operator, layout-transformation blocks on every edge whose
//! endpoint layouts disagree — then schedule every block with a VLIW
//! packer. The result carries per-operator reports so the evaluation
//! harness can attribute cycles the way the paper's figures do.

use gcd2_cgraph::{Graph, Node, NodeId, OpKind};
use gcd2_globalopt::{matrix_view, op_ew_kind, op_extra_passes, Assignment, PlanKind, PlanSet};
use gcd2_hvx::{Block, ExecStats, PackedBlock, Program, SReg};
use gcd2_kernels::{
    adaptive_unroll, depthwise_vtmpy_blocks, elementwise_blocks, im2col_overhead_cycles,
    timing_blocks, EwKind,
};
use gcd2_par::CacheStats;
use gcd2_tensor::transform_block;
use gcd2_vliw::Packer;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why [`try_lower`] failed.
#[derive(Debug, Clone)]
pub enum LowerError {
    /// The assignment's choice vector does not cover the graph.
    AssignmentMismatch {
        /// Nodes in the graph.
        graph_nodes: usize,
        /// Entries in the assignment.
        choices: usize,
    },
    /// A worker thread panicked while lowering and the serial retry
    /// panicked again (a persistent fault, not a transient one).
    Worker(gcd2_par::WorkerPanic),
    /// The in-lowering verifier rejected the emitted program.
    Verify {
        /// Error-level diagnostics found.
        errors: usize,
        /// The rendered verifier report.
        report: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::AssignmentMismatch {
                graph_nodes,
                choices,
            } => write!(
                f,
                "assignment must cover the graph ({graph_nodes} nodes, {choices} choices)"
            ),
            LowerError::Worker(p) => write!(f, "lowering worker failed: {p}"),
            LowerError::Verify { errors, report } => write!(
                f,
                "verifier rejected the lowered program ({errors} errors):\n{report}"
            ),
        }
    }
}

impl std::error::Error for LowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LowerError::Worker(p) => Some(p),
            _ => None,
        }
    }
}

/// How blocks are scheduled into packets.
#[derive(Debug, Clone, Default)]
pub enum PackMode {
    /// SDA packing (Algorithm 1).
    #[default]
    Sda,
    /// The `soft_to_hard` ablation (what LLVM-backed baselines do).
    SoftToHard,
    /// The `soft_to_none` ablation.
    SoftToNone,
    /// No packing at all: one instruction per packet.
    Sequential,
}

/// Lowering configuration.
#[derive(Debug, Clone)]
pub struct LowerOptions {
    /// Scheduling policy.
    pub pack: PackMode,
    /// Enable the division/nonlinearity lookup-table replacement
    /// ("other optimizations" of Figure 9). Must match the flag used
    /// when enumerating plans.
    pub lut_ops: bool,
    /// Packet resource model of the target DSP generation.
    pub resource: gcd2_hvx::ResourceModel,
    /// Run the [`gcd2_verify`] passes over the inputs and the emitted
    /// program, panicking on any error-level diagnostic. Defaults to on
    /// in debug builds (including tests) and off in release builds.
    pub verify: bool,
    /// Worker threads for per-operator block generation and packing.
    /// Output is bit-identical for every count; defaults to 1 so direct
    /// callers opt in explicitly (the [`gcd2`] compiler passes its own).
    pub threads: usize,
    /// Enable the structural packing memo (identical blocks pack once).
    /// Off reproduces the pre-memo baseline for compile-time benchmarks.
    pub pack_memo: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            pack: PackMode::default(),
            lut_ops: false,
            resource: gcd2_hvx::ResourceModel::default(),
            verify: cfg!(debug_assertions),
            threads: 1,
            pack_memo: true,
        }
    }
}

impl LowerOptions {
    /// The full GCD2 configuration: SDA packing + lookup optimizations
    /// on the default (Hexagon-698-class) resource model.
    pub fn gcd2() -> Self {
        LowerOptions {
            pack: PackMode::Sda,
            lut_ops: true,
            ..LowerOptions::default()
        }
    }
}

/// Per-operator lowering report.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// The graph node.
    pub node: NodeId,
    /// Operator name.
    pub name: String,
    /// Chosen plan rendered for humans (`vmpy/1-column`, ...).
    pub plan: String,
    /// Cycles spent in this operator's kernels (excluding transforms).
    pub kernel_cycles: u64,
    /// Cycles spent transforming this operator's inputs.
    pub transform_cycles: u64,
}

/// A fully lowered and scheduled model.
#[derive(Debug, Clone)]
pub struct LoweredModel {
    /// The scheduled program (kernels + transforms, in topological order).
    pub program: Program,
    /// Per-operator attribution.
    pub reports: Vec<OpReport>,
    /// CPU time spent packing blocks, aggregated across worker threads
    /// (can exceed wall-clock under parallel lowering).
    pub pack_cpu: Duration,
    /// Wall-clock time of the in-lowering verification pass (zero when
    /// verification is disabled).
    pub verify_cpu: Duration,
    /// Hit/miss counters of this lowering's packing memo (zeros when
    /// the memo is disabled or the pack mode is `Sequential`).
    pub pack_memo: CacheStats,
}

impl LoweredModel {
    /// Whole-model execution statistics (static costing; see
    /// [`gcd2_hvx::Program::stats`]).
    pub fn stats(&self) -> ExecStats {
        self.program.stats()
    }

    /// End-to-end cycles.
    pub fn cycles(&self) -> u64 {
        self.program.cycles()
    }

    /// Static packet count (the Figure 7 right-hand metric).
    pub fn static_packets(&self) -> u64 {
        self.program.static_packets()
    }

    /// Total cycles spent in layout transformations.
    pub fn transform_cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.transform_cycles).sum()
    }
}

/// The shared packing context of one `lower` call: one configured
/// packer (with its structural memo) serving every worker thread, plus
/// an aggregate pack-time counter.
struct PackCtx {
    /// `None` for `PackMode::Sequential` (no scheduling to do).
    packer: Option<Packer>,
    pack_nanos: AtomicU64,
}

impl PackCtx {
    fn new(options: &LowerOptions) -> Self {
        use gcd2_vliw::SoftDepPolicy;
        let packer = match options.pack {
            PackMode::Sda => Some(Packer::new().with_model(options.resource.clone())),
            PackMode::SoftToHard => Some(
                Packer::new()
                    .with_model(options.resource.clone())
                    .with_policy(SoftDepPolicy::SoftToHard),
            ),
            PackMode::SoftToNone => Some(
                Packer::new()
                    .with_model(options.resource.clone())
                    .with_policy(SoftDepPolicy::SoftToNone),
            ),
            PackMode::Sequential => None,
        };
        let packer = match (packer, options.pack_memo) {
            (Some(p), false) => Some(p.without_memo()),
            (p, _) => p,
        };
        PackCtx {
            packer,
            pack_nanos: AtomicU64::new(0),
        }
    }

    fn pack(&self, block: &Block) -> PackedBlock {
        let t0 = Instant::now();
        let packed = match &self.packer {
            Some(p) => p.pack_block(block),
            None => PackedBlock::sequential(block),
        };
        self.pack_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        packed
    }

    fn memo_stats(&self) -> CacheStats {
        self.packer
            .as_ref()
            .and_then(Packer::memo_stats)
            .unwrap_or_default()
    }
}

/// Emits a block approximating the implicit-im2col address-generation
/// overhead of non-1×1 convolutions.
fn im2col_block(cycles: u64) -> Option<Block> {
    if cycles == 0 {
        return None;
    }
    // A load+bump body costs ~6 cycles per trip sequentially; size the
    // trip count to charge roughly `cycles`.
    let mut b = Block::with_trip_count("im2col address generation", cycles.div_ceil(6).max(1));
    b.push(gcd2_hvx::Insn::VLoad {
        dst: gcd2_hvx::VReg::new(0),
        base: SReg::new(0),
        offset: 0,
    });
    b.push(gcd2_hvx::Insn::AddI {
        dst: SReg::new(0),
        a: SReg::new(0),
        imm: 128,
    });
    Some(b)
}

/// Lowers one operator node: its input-edge layout transforms followed
/// by its kernel blocks, all packed. Pure function of its arguments, so
/// nodes lower on worker threads independently; the caller reassembles
/// the per-node block lists in topological order, which keeps the
/// program bit-identical to a serial pass.
fn lower_node(
    graph: &Graph,
    plans: &PlanSet,
    assignment: &Assignment,
    options: &LowerOptions,
    ctx: &PackCtx,
    node: &Node,
) -> (Vec<PackedBlock>, OpReport) {
    let plan = &plans.of(node.id)[assignment.choice[node.id.0]];
    let mut blocks: Vec<PackedBlock> = Vec::new();
    let mut transform_cycles = 0u64;

    // Edge transforms: convert each input that is in the wrong layout.
    for &pred in graph.preds(node.id) {
        let from = plans.of(pred)[assignment.choice[pred.0]].layout;
        if from == plan.layout {
            continue;
        }
        let (rows, cols) = matrix_view(&graph.node(pred).shape);
        let tb = transform_block(rows, cols, from, plan.layout, SReg::new(0), SReg::new(1));
        if !tb.is_empty() {
            let packed = ctx.pack(&tb);
            transform_cycles += packed.body_cycles() * packed.trip_count;
            blocks.push(packed);
        }
    }

    // The operator's own kernels.
    let mut kernel_blocks: Vec<Block> = Vec::new();
    if node.kind.is_gemm_like() && !matches!(plan.kind, PlanKind::Passthrough) {
        match plan.kind {
            PlanKind::Gemm(instr) => {
                let Some(gemm) = graph.gemm_dims(node.id) else {
                    unreachable!(
                        "plan enumeration only assigns GEMM plans to nodes with a GEMM view \
                         (node {} has none)",
                        node.id
                    );
                };
                let kernel = match node.kind {
                    OpKind::Conv2d { kernel, .. } | OpKind::DepthwiseConv2d { kernel, .. } => {
                        kernel
                    }
                    OpKind::ConvTranspose2d { kernel, .. } => kernel,
                    _ => (1, 1),
                };
                if let Some(b) = im2col_block(im2col_overhead_cycles(&gemm, kernel)) {
                    kernel_blocks.push(b);
                }
                kernel_blocks.extend(timing_blocks(&gemm, instr, adaptive_unroll(&gemm, instr)));
            }
            PlanKind::DepthwiseVtmpy => {
                let kh = match node.kind {
                    OpKind::DepthwiseConv2d { kernel, .. } => kernel.0,
                    _ => 3,
                };
                kernel_blocks.extend(depthwise_vtmpy_blocks(node.shape.elems(), kh));
            }
            PlanKind::Passthrough => {
                unreachable!("passthrough plans are routed to the elementwise path above")
            }
        }
        // Fused non-ReLU activations add a nonlinearity pass:
        // lookup-based when the optimization is on, scalar otherwise.
        if let Some(gcd2_cgraph::Activation::HardSwish) = node.fused_activation {
            let ew = if options.lut_ops {
                EwKind::LutUnary
            } else {
                EwKind::ScalarUnary
            };
            kernel_blocks.extend(elementwise_blocks(ew, node.shape.elems()));
        }
    } else {
        let elems = node.shape.elems();
        let ew = if node.kind.is_layout_transform() {
            EwKind::Copy
        } else {
            op_ew_kind(&node.kind, options.lut_ops)
        };
        // Spatial operators pay a layout-dependent gather factor
        // (see gcd2_globalopt::spatial_layout_factor).
        let factor = gcd2_globalopt::spatial_layout_factor(&node.kind, plan.layout);
        for mut b in elementwise_blocks(ew, elems) {
            b.trip_count = (b.trip_count as f64 * factor).ceil() as u64;
            kernel_blocks.push(b);
        }
        for pass in op_extra_passes(&node.kind, options.lut_ops) {
            kernel_blocks.extend(elementwise_blocks(pass, elems));
        }
    }

    let mut kernel_cycles = 0u64;
    for b in &kernel_blocks {
        let packed = ctx.pack(b);
        kernel_cycles += packed.body_cycles() * packed.trip_count;
        blocks.push(packed);
    }
    // The kernel dispatch overhead the cost model charges.
    kernel_cycles += gcd2_kernels::KERNEL_DISPATCH_CYCLES;

    let report = OpReport {
        node: node.id,
        name: node.name.clone(),
        plan: plan.to_string(),
        kernel_cycles,
        transform_cycles,
    };
    (blocks, report)
}

/// Lowers `graph` under `assignment` into a scheduled [`LoweredModel`].
///
/// Operators are lowered and packed on `options.threads` worker
/// threads; the assembled program is bit-identical for every thread
/// count because per-node block lists are gathered in topological
/// order. The verifier (when enabled) runs once, over the fully
/// assembled program.
///
/// # Panics
/// Panics if the assignment does not cover the graph, a lowering
/// worker fails persistently, or the verifier rejects the program.
/// [`try_lower`] is the non-panicking form.
pub fn lower(
    graph: &Graph,
    plans: &PlanSet,
    assignment: &Assignment,
    options: &LowerOptions,
) -> LoweredModel {
    match try_lower(graph, plans, assignment, options) {
        Ok(model) => model,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`lower`]: returns a [`LowerError`] instead of
/// panicking on bad input, persistent worker faults, or verifier
/// rejection. Transient worker panics are retried serially and do not
/// surface as errors.
pub fn try_lower(
    graph: &Graph,
    plans: &PlanSet,
    assignment: &Assignment,
    options: &LowerOptions,
) -> Result<LoweredModel, LowerError> {
    if assignment.choice.len() != graph.len() {
        return Err(LowerError::AssignmentMismatch {
            graph_nodes: graph.len(),
            choices: assignment.choice.len(),
        });
    }
    let ctx = PackCtx::new(options);
    let op_nodes: Vec<&Node> = graph
        .nodes()
        .iter()
        .filter(|n| !matches!(n.kind, OpKind::Input | OpKind::Constant))
        .collect();
    let lowered: Vec<(Vec<PackedBlock>, OpReport)> =
        gcd2_par::try_par_map(options.threads, &op_nodes, |_, node| {
            lower_node(graph, plans, assignment, options, &ctx, node)
        })
        .map_err(LowerError::Worker)?;

    let mut program = Program::new();
    let mut reports = Vec::with_capacity(lowered.len());
    for (blocks, report) in lowered {
        for b in blocks {
            program.push(b);
        }
        reports.push(report);
    }

    // Account dispatch overheads as idle cycles in a synthetic block so
    // program.stats() matches the per-op reports.
    let dispatch_total: u64 = reports.len() as u64 * gcd2_kernels::KERNEL_DISPATCH_CYCLES;
    let mut overhead = Block::with_trip_count("kernel dispatch overhead", dispatch_total / 3);
    overhead.push(gcd2_hvx::Insn::Nop);
    program.push(PackedBlock::sequential(&overhead));

    let mut verify_cpu = Duration::ZERO;
    if options.verify {
        let t0 = Instant::now();
        let report = gcd2_verify::verify_all(graph, plans, assignment, &program, &options.resource);
        verify_cpu = t0.elapsed();
        if report.error_count() != 0 {
            return Err(LowerError::Verify {
                errors: report.error_count(),
                report: report.to_string(),
            });
        }
    }

    Ok(LoweredModel {
        program,
        reports,
        pack_cpu: Duration::from_nanos(ctx.pack_nanos.load(Ordering::Relaxed)),
        verify_cpu,
        pack_memo: ctx.memo_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_cgraph::TShape;
    use gcd2_globalopt::{enumerate_plans, gcd2_select, local_optimal};
    use gcd2_kernels::CostModel;

    fn small_net() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", TShape::nchw(1, 48, 14, 14));
        let c1 = g.add(
            OpKind::Conv2d {
                out_channels: 48,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            &[x],
            "conv1",
        );
        let c2 = g.add(
            OpKind::Conv2d {
                out_channels: 48,
                kernel: (1, 1),
                stride: (1, 1),
                padding: (0, 0),
            },
            &[c1],
            "conv2",
        );
        let a = g.add(OpKind::Add, &[c2, c1], "residual");
        let _s = g.add(OpKind::Softmax, &[a], "softmax");
        g
    }

    #[test]
    fn lowering_produces_program_and_reports() {
        let g = small_net();
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        let assignment = gcd2_select(&g, &plans, 13);
        let lowered = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
        assert_eq!(lowered.reports.len(), g.op_count());
        assert!(lowered.cycles() > 0);
        assert!(lowered.stats().insns > 0);
    }

    #[test]
    fn lowered_cycles_track_assignment_cost() {
        // The lowered program and the optimizer's objective are built
        // from the same kernels; they must agree within tolerance.
        let g = small_net();
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        let assignment = gcd2_select(&g, &plans, 13);
        let lowered = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
        let lo = assignment.cost as f64 * 0.5;
        let hi = assignment.cost as f64 * 2.0;
        let got = lowered.cycles() as f64;
        assert!(
            got > lo && got < hi,
            "lowered {got} vs objective {}",
            assignment.cost
        );
    }

    #[test]
    fn better_assignments_lower_faster_programs() {
        let g = small_net();
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        let local = local_optimal(&g, &plans);
        let global = gcd2_select(&g, &plans, 13);
        let l_low = lower(&g, &plans, &local, &LowerOptions::gcd2());
        let g_low = lower(&g, &plans, &global, &LowerOptions::gcd2());
        assert!(g_low.cycles() <= l_low.cycles());
    }

    #[test]
    fn sequential_packing_is_slower() {
        let g = small_net();
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        let assignment = gcd2_select(&g, &plans, 13);
        let sda = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
        let seq = lower(
            &g,
            &plans,
            &assignment,
            &LowerOptions {
                pack: PackMode::Sequential,
                ..LowerOptions::gcd2()
            },
        );
        assert!(seq.cycles() > sda.cycles());
        assert!(seq.static_packets() >= sda.static_packets());
    }

    #[test]
    fn soft_to_hard_packs_more_packets() {
        let g = small_net();
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        let assignment = gcd2_select(&g, &plans, 13);
        let sda = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
        let s2h = lower(
            &g,
            &plans,
            &assignment,
            &LowerOptions {
                pack: PackMode::SoftToHard,
                ..LowerOptions::gcd2()
            },
        );
        assert!(s2h.static_packets() >= sda.static_packets());
        assert!(s2h.cycles() >= sda.cycles());
    }

    #[test]
    fn lut_ops_speed_up_softmax_heavy_nets() {
        let g = small_net();
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        let assignment = gcd2_select(&g, &plans, 13);
        let with_lut = lower(&g, &plans, &assignment, &LowerOptions::gcd2());
        let without = lower(
            &g,
            &plans,
            &assignment,
            &LowerOptions {
                lut_ops: false,
                ..LowerOptions::gcd2()
            },
        );
        assert!(without.cycles() > with_lut.cycles());
    }
}
