//! # gcd2-analyze — abstract interpretation over compiled inference plans
//!
//! Static analysis for the inference runtime's compiled plans: where
//! `gcd2-verify` checks the *lowering* artifacts (packets, registers,
//! execution plans), this crate proves properties of the *runtime*
//! artifact — the step schedule, slot arena, and folded requantization
//! parameters of an `InferencePlan` — before a single byte executes.
//!
//! Two analyses, one driver:
//!
//! * [`range`] — an interval abstract interpreter over the quantized
//!   dataflow. Propagates per-tensor value ranges through transfer
//!   functions matching the kernels' exact semantics and proves, per
//!   GEMM, that every partial accumulator sum fits the i32 accumulator,
//!   recording the tightest safe width in a [`RangeReport`] that future
//!   SIMD kernels can consult.
//! * [`arena`] — a liveness-replay soundness pass over the slot arena:
//!   recomputes live intervals from the graph edges and proves that no
//!   two simultaneously-live tensors share a slot, in-place aliasing is
//!   legal, every read is def-before-use, and `slot_sizes` dominate
//!   every write.
//!
//! Both are exposed two ways: as the structured [`analyze_plan`] driver
//! returning [`Diagnostic`]s with stable [`LintCode`]s, and as
//! [`AccumulatorRange`]/[`ArenaSoundness`] implementations of the
//! `gcd2-verify` [`Pass`] trait (consuming
//! [`PlanView::Inference`](gcd2_verify::PlanView)), so plan analysis
//! slots into the same pipeline as the four lowering passes.
//!
//! The crate deliberately depends only on `gcd2-cgraph` and
//! `gcd2-verify`: it sees plans through the flattened
//! [`InferPlanView`](gcd2_verify::InferPlanView) projection, never the
//! concrete runtime types.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod interval;
pub mod range;

pub use interval::Interval;
pub use range::{GemmRange, RangeReport};

use gcd2_cgraph::Graph;
use gcd2_verify::{Context, InferPlanView, Pass, PlanView, Report};
use std::fmt;

pub use gcd2_verify::Severity;

/// Stable diagnostic codes of the plan analyzer. `A1xx` come from the
/// range interpreter, `A2xx` from the arena soundness replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// A GEMM's proven accumulator interval exceeds the i32 range.
    AccOverflow,
    /// A folded requantization shift is out of the kernel's range.
    ShiftRange,
    /// A folded shift disagrees with the depth-k requantization policy.
    ShiftPolicy,
    /// A step's role contradicts the graph operator it implements.
    RoleMismatch,
    /// A derived value interval escapes the activation range (the
    /// transfer functions and the kernels have drifted apart).
    IntervalEscape,
    /// A slot index is outside the arena.
    SlotOutOfBounds,
    /// An operand read finds its value not resident (never defined,
    /// already freed, or overwritten).
    UseBeforeDef,
    /// An operand slot disagrees with the producing step's output slot.
    OperandSlotMismatch,
    /// A write lands on a slot whose occupant is still live.
    LiveClobber,
    /// Illegal in-place execution (not a single-input, last-use,
    /// size-matched pass-through).
    IllegalAlias,
    /// `slot_sizes` does not cover a step's write.
    SlotUndersized,
    /// The declared model input/output location or length disagrees
    /// with the schedule.
    OutputMismatch,
}

impl LintCode {
    /// The stable code string (`A101`…`A207`).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::AccOverflow => "A101",
            LintCode::ShiftRange => "A102",
            LintCode::ShiftPolicy => "A103",
            LintCode::RoleMismatch => "A104",
            LintCode::IntervalEscape => "A105",
            LintCode::SlotOutOfBounds => "A201",
            LintCode::UseBeforeDef => "A202",
            LintCode::OperandSlotMismatch => "A203",
            LintCode::LiveClobber => "A204",
            LintCode::IllegalAlias => "A205",
            LintCode::SlotUndersized => "A206",
            LintCode::OutputMismatch => "A207",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analyzer finding, anchored to a schedule step when it has one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable machine-checkable code.
    pub code: LintCode,
    /// Schedule step the finding anchors to (`None` for plan-level
    /// findings).
    pub step: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(s) => write!(
                f,
                "{}[{}] step {s}: {}",
                self.severity, self.code, self.detail
            ),
            None => write!(f, "{}[{}] plan: {}", self.severity, self.code, self.detail),
        }
    }
}

/// The analyzer's overall judgement of one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No error-severity findings: overflow-freedom and arena soundness
    /// are proven.
    Clean,
    /// At least one broken invariant: executing the plan may read stale
    /// buffers, clobber live values, or overflow an accumulator.
    Unsound,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Clean => f.write_str("clean"),
            Verdict::Unsound => f.write_str("UNSOUND"),
        }
    }
}

/// Everything one analyzer run produced: the findings and the proven
/// range facts.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// All findings, in schedule order per pass (range first, arena
    /// second) — deterministic for one plan regardless of thread count.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-step value intervals and per-GEMM accumulator proofs.
    pub ranges: RangeReport,
}

impl Analysis {
    /// The overall judgement: [`Verdict::Unsound`] iff any finding has
    /// error severity.
    pub fn verdict(&self) -> Verdict {
        if self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
        {
            Verdict::Unsound
        } else {
            Verdict::Clean
        }
    }

    /// True when the run produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The findings carrying one specific code.
    pub fn of_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(
                f,
                "analysis clean: {} gemm(s), max accumulator width {} bit(s)",
                self.ranges.gemms().len(),
                self.ranges.max_acc_bits()
            );
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "verdict: {}", self.verdict())
    }
}

/// The lint driver: runs the interval interpreter and the arena replay
/// over one plan and aggregates their findings.
pub fn analyze_plan(graph: &Graph, plan: &dyn InferPlanView) -> Analysis {
    let mut diagnostics = Vec::new();
    let ranges = range::interpret(graph, plan, &mut diagnostics);
    arena::check(graph, plan, &mut diagnostics);
    Analysis {
        diagnostics,
        ranges,
    }
}

/// [`Pass`] adapter for the interval/overflow analysis.
#[derive(Debug, Default)]
pub struct AccumulatorRange;

/// [`Pass`] adapter for the arena soundness replay.
#[derive(Debug, Default)]
pub struct ArenaSoundness;

fn forward(diags: Vec<Diagnostic>, pass: &'static str, report: &mut Report) {
    for d in diags {
        report.push(gcd2_verify::Diagnostic {
            severity: d.severity,
            pass,
            location: match d.step {
                Some(s) => format!("step {s}"),
                None => "plan".to_string(),
            },
            message: format!("{}: {}", d.code, d.detail),
        });
    }
}

impl Pass for AccumulatorRange {
    fn name(&self) -> &'static str {
        "AccumulatorRange"
    }

    fn run(&self, cx: &Context<'_>, report: &mut Report) {
        let (Some(graph), Some(PlanView::Inference(plan))) = (cx.graph, cx.plans) else {
            return;
        };
        let mut diags = Vec::new();
        let _ = range::interpret(graph, plan, &mut diags);
        forward(diags, self.name(), report);
    }
}

impl Pass for ArenaSoundness {
    fn name(&self) -> &'static str {
        "ArenaSoundness"
    }

    fn run(&self, cx: &Context<'_>, report: &mut Report) {
        let (Some(graph), Some(PlanView::Inference(plan))) = (cx.graph, cx.plans) else {
            return;
        };
        let mut diags = Vec::new();
        arena::check(graph, plan, &mut diags);
        forward(diags, self.name(), report);
    }
}

/// Test scaffolding: a hand-buildable [`InferPlanView`] so the analyses
/// can be exercised without the concrete runtime.
#[cfg(test)]
pub(crate) mod testutil {
    use gcd2_verify::{InferPlanView, InferStep, StepRole};

    #[derive(Debug, Default)]
    pub struct MockPlan {
        pub steps: Vec<InferStep>,
        pub slot_sizes: Vec<usize>,
        pub input_len: usize,
        pub act_max: u8,
        pub output_slot_override: Option<usize>,
        pub output_len_override: Option<usize>,
    }

    impl MockPlan {
        pub fn new(act_max: u8) -> Self {
            MockPlan {
                act_max,
                ..Default::default()
            }
        }

        /// Appends a step, growing `slot_sizes` to cover the write.
        pub fn push(
            &mut self,
            name: &str,
            in_slots: &[usize],
            out_slot: usize,
            out_len: usize,
            role: StepRole,
        ) {
            if self.slot_sizes.len() <= out_slot {
                self.slot_sizes.resize(out_slot + 1, 0);
            }
            self.slot_sizes[out_slot] = self.slot_sizes[out_slot].max(out_len);
            if matches!(role, StepRole::Input) {
                self.input_len = out_len;
            }
            self.steps.push(InferStep {
                index: self.steps.len(),
                name: name.to_string(),
                op: name.to_string(),
                in_slots: in_slots.to_vec(),
                out_slot,
                out_len,
                role,
            });
        }
    }

    impl InferPlanView for MockPlan {
        fn step_count(&self) -> usize {
            self.steps.len()
        }
        fn step(&self, index: usize) -> InferStep {
            self.steps[index].clone()
        }
        fn slot_sizes(&self) -> Vec<usize> {
            self.slot_sizes.clone()
        }
        fn input_len(&self) -> usize {
            self.input_len
        }
        fn output_len(&self) -> usize {
            self.output_len_override
                .unwrap_or_else(|| self.steps.last().map(|s| s.out_len).unwrap_or(0))
        }
        fn output_slot(&self) -> usize {
            self.output_slot_override
                .unwrap_or_else(|| self.steps.last().map(|s| s.out_slot).unwrap_or(0))
        }
        fn act_max(&self) -> u8 {
            self.act_max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_verify::Verifier;

    #[test]
    fn lint_codes_are_stable_and_distinct() {
        let codes = [
            LintCode::AccOverflow,
            LintCode::ShiftRange,
            LintCode::ShiftPolicy,
            LintCode::RoleMismatch,
            LintCode::IntervalEscape,
            LintCode::SlotOutOfBounds,
            LintCode::UseBeforeDef,
            LintCode::OperandSlotMismatch,
            LintCode::LiveClobber,
            LintCode::IllegalAlias,
            LintCode::SlotUndersized,
            LintCode::OutputMismatch,
        ];
        let strings: std::collections::HashSet<&str> = codes.iter().map(|c| c.as_str()).collect();
        assert_eq!(strings.len(), codes.len());
        assert_eq!(LintCode::AccOverflow.as_str(), "A101");
        assert_eq!(LintCode::OutputMismatch.as_str(), "A207");
    }

    #[test]
    fn diagnostic_renders_with_code_and_step() {
        let d = Diagnostic {
            severity: Severity::Error,
            code: LintCode::LiveClobber,
            step: Some(12),
            detail: "overwrites slot 3".to_string(),
        };
        assert_eq!(d.to_string(), "error[A204] step 12: overwrites slot 3");
    }

    #[test]
    fn passes_register_behind_verify_trait() {
        let v = Verifier::new()
            .register(AccumulatorRange)
            .register(ArenaSoundness);
        assert_eq!(v.pass_names(), vec!["AccumulatorRange", "ArenaSoundness"]);
        // Without a graph + inference view the passes are inert.
        let report = v.run(&Context::new());
        assert!(report.is_clean());
    }

    #[test]
    fn verdict_tracks_error_severity() {
        let mut a = Analysis::default();
        assert_eq!(a.verdict(), Verdict::Clean);
        assert!(a.is_clean());
        a.diagnostics.push(Diagnostic {
            severity: Severity::Warning,
            code: LintCode::OutputMismatch,
            step: None,
            detail: "advisory".to_string(),
        });
        assert_eq!(a.verdict(), Verdict::Clean);
        assert!(!a.is_clean());
        a.diagnostics.push(Diagnostic {
            severity: Severity::Error,
            code: LintCode::AccOverflow,
            step: Some(0),
            detail: "boom".to_string(),
        });
        assert_eq!(a.verdict(), Verdict::Unsound);
        assert_eq!(a.of_code(LintCode::AccOverflow).len(), 1);
    }
}
