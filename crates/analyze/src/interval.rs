//! The interval abstract domain: closed integer ranges `[lo, hi]` over
//! `i64`, wide enough to hold any quantized activation or GEMM
//! accumulator value this runtime can produce without itself wrapping.

use std::fmt;

/// A closed integer interval `[lo, hi]` with `lo <= hi`.
///
/// All arithmetic is saturating: the domain tops out at the `i64` range
/// rather than wrapping, which keeps the abstraction sound (a saturated
/// bound is looser, never tighter, than the true one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Smallest value the tensor may contain.
    pub lo: i64,
    /// Largest value the tensor may contain.
    pub hi: i64,
}

impl Interval {
    /// The interval `[lo, hi]`, reordering the endpoints if needed.
    pub fn new(a: i64, b: i64) -> Self {
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Smallest interval containing both `self` and `other`.
    pub fn hull(self, other: Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Whether every value of `self` lies within `other`.
    pub fn within(self, other: Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Whether `v` lies within the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Clamps both endpoints into `[lo, hi]`.
    pub fn clamp(self, lo: i64, hi: i64) -> Self {
        Interval {
            lo: self.lo.clamp(lo, hi),
            hi: self.hi.clamp(lo, hi),
        }
    }

    /// Applies a **monotone non-decreasing** scalar function to the
    /// interval: the image is exactly `[f(lo), f(hi)]`.
    pub fn map_monotone(self, f: impl Fn(i64) -> i64) -> Self {
        Interval::new(f(self.lo), f(self.hi))
    }

    /// The narrowest signed integer width (8, 16, 32, or 64 bits) whose
    /// value range contains the whole interval.
    pub fn min_signed_bits(self) -> u8 {
        for bits in [8u8, 16, 32] {
            let lo = -(1i64 << (bits - 1));
            let hi = (1i64 << (bits - 1)) - 1;
            if self.lo >= lo && self.hi <= hi {
                return bits;
            }
        }
        64
    }

    /// Whether the interval fits a signed 32-bit accumulator.
    pub fn fits_i32(self) -> bool {
        self.min_signed_bits() <= 32
    }

    /// Largest absolute value the interval reaches.
    pub fn max_abs(self) -> i64 {
        self.lo.saturating_abs().max(self.hi.saturating_abs())
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_normalize() {
        assert_eq!(Interval::new(5, -3), Interval { lo: -3, hi: 5 });
        assert_eq!(Interval::point(7), Interval { lo: 7, hi: 7 });
    }

    #[test]
    fn hull_and_containment() {
        let a = Interval::new(0, 10);
        let b = Interval::new(-4, 3);
        let h = a.hull(b);
        assert_eq!(h, Interval::new(-4, 10));
        assert!(a.within(h));
        assert!(b.within(h));
        assert!(!h.within(a));
        assert!(h.contains(0));
        assert!(!h.contains(11));
    }

    #[test]
    fn signed_width_ladder() {
        assert_eq!(Interval::new(0, 127).min_signed_bits(), 8);
        assert_eq!(Interval::new(-128, 127).min_signed_bits(), 8);
        assert_eq!(Interval::new(0, 128).min_signed_bits(), 16);
        assert_eq!(Interval::new(-32768, 32767).min_signed_bits(), 16);
        assert_eq!(Interval::new(0, 1 << 20).min_signed_bits(), 32);
        assert_eq!(Interval::new(i64::from(i32::MIN), 0).min_signed_bits(), 32);
        assert_eq!(
            Interval::new(0, i64::from(i32::MAX) + 1).min_signed_bits(),
            64
        );
        assert!(Interval::new(-1000, 1000).fits_i32());
        assert!(!Interval::new(0, i64::MAX).fits_i32());
    }

    #[test]
    fn monotone_map_uses_endpoints() {
        let a = Interval::new(2, 9);
        assert_eq!(a.map_monotone(|v| v / 2 + v / 4), Interval::new(1, 6));
    }

    #[test]
    fn clamp_and_abs() {
        assert_eq!(Interval::new(-9, 300).clamp(0, 255), Interval::new(0, 255));
        assert_eq!(Interval::new(-9, 3).max_abs(), 9);
    }
}
