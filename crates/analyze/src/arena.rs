//! `ArenaSoundness`: independent liveness reconstruction over the slot
//! arena of a compiled inference plan.
//!
//! The plan builder assigns every step an arena slot with a free-list
//! allocator and lets value-preserving steps run in place when their
//! input dies with them. This pass **re-derives liveness from the graph
//! edges alone** — use counts, definition points, last reads — and then
//! replays the schedule against the plan's recorded slot assignment,
//! proving:
//!
//! * every slot index is in bounds (`A201`);
//! * every operand read finds the producing step's value *resident* in
//!   the slot it reads — defined before use, not yet overwritten, and
//!   still live (`A202`);
//! * every operand slot equals the producer's recorded output slot
//!   (`A203`);
//! * no write lands on a slot whose current occupant is still live
//!   (`A204`);
//! * in-place execution (output slot ∈ input slots) happens only for
//!   pass-through steps with a single operand whose value dies at this
//!   step and whose length matches — the only overlap the executor's
//!   buffer-detaching loop tolerates (`A205`);
//! * `slot_sizes` dominates every write (`A206`);
//! * the declared model output location/length match the final step
//!   (`A207`).
//!
//! Soundness argument: if the replay finishes with no findings, then at
//! every step each operand's value occupies its recorded slot untouched
//! since production (A202–A204), no two simultaneously-live values ever
//! share a slot (a violation would surface as A204 at the second write
//! or A202 at the survivor's next read), and the arena's buffers are
//! large enough for every write (A206). The pass accepts *any* sound
//! assignment, not just the one allocator the builder happens to use.

use crate::{Diagnostic, LintCode};
use gcd2_cgraph::Graph;
use gcd2_verify::{InferPlanView, InferStep, Severity, StepRole};

/// Runs the replay, pushing findings into `diags`.
pub(crate) fn check(graph: &Graph, plan: &dyn InferPlanView, diags: &mut Vec<Diagnostic>) {
    let n = plan.step_count();
    if graph.len() != n {
        // The range pass already reports the structural mismatch.
        return;
    }
    if n == 0 {
        return;
    }
    let slot_sizes = plan.slot_sizes();
    let slot_count = slot_sizes.len();

    // Liveness from the graph alone: how many reads each value still
    // has ahead. The model output gets one extra use so it stays live
    // through the end of the schedule, mirroring the executor handing
    // the final buffer to the caller.
    let mut uses = vec![0usize; n];
    for node in graph.nodes() {
        for &input in &node.inputs {
            if input.0 < n {
                uses[input.0] += 1;
            }
        }
    }
    uses[n - 1] += 1;

    // Which step's value currently resides in each slot.
    let mut occupant: Vec<Option<usize>> = vec![None; slot_count];
    // The recorded producer slot of each step, for operand cross-checks.
    let mut out_slot_of = vec![usize::MAX; n];

    let mut error = |code: LintCode, step: usize, detail: String| {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code,
            step: Some(step),
            detail,
        });
    };

    let mut steps: Vec<InferStep> = Vec::with_capacity(n);
    for i in 0..n {
        steps.push(plan.step(i));
    }

    for node in graph.nodes() {
        let i = node.id.0;
        let step = &steps[i];

        if step.in_slots.len() != node.inputs.len() {
            error(
                LintCode::OperandSlotMismatch,
                i,
                format!(
                    "step reads {} operand slot(s) but the graph node has {} input(s)",
                    step.in_slots.len(),
                    node.inputs.len()
                ),
            );
        }

        // Reads: every operand value must be resident where the step
        // looks for it.
        for (j, &input) in node.inputs.iter().enumerate() {
            let p = input.0;
            if p >= i {
                // Dangling/forward edge: a GraphInvariants finding.
                continue;
            }
            let Some(&in_slot) = step.in_slots.get(j) else {
                continue;
            };
            if in_slot >= slot_count {
                error(
                    LintCode::SlotOutOfBounds,
                    i,
                    format!("operand {j} reads slot {in_slot}, arena has {slot_count} slot(s)"),
                );
                continue;
            }
            if in_slot != out_slot_of[p] {
                error(
                    LintCode::OperandSlotMismatch,
                    i,
                    format!(
                        "operand {j} reads slot {in_slot}, but producing step {p} \
                         ('{}') wrote slot {}",
                        steps[p].name, out_slot_of[p]
                    ),
                );
                continue;
            }
            if occupant[in_slot] != Some(p) {
                let holder = match occupant[in_slot] {
                    Some(q) => format!("the value of step {q} ('{}')", steps[q].name),
                    None => "no value".to_string(),
                };
                error(
                    LintCode::UseBeforeDef,
                    i,
                    format!(
                        "operand {j} expects the value of step {p} ('{}') in slot \
                         {in_slot}, which holds {holder}",
                        steps[p].name
                    ),
                );
            }
        }

        // In-place execution legality. The executor detaches the output
        // buffer before running a step, so any input/output slot overlap
        // outside the aliased-passthrough special case reads an empty
        // buffer.
        let overlaps = step.in_slots.contains(&step.out_slot);
        if overlaps {
            let single = step.in_slots.len() == 1;
            let passthrough = matches!(step.role, StepRole::Passthrough);
            let last_use = node
                .inputs
                .first()
                .is_some_and(|&p| p.0 < i && uses[p.0] == 1);
            let size_ok = node
                .inputs
                .first()
                .is_some_and(|&p| p.0 < i && steps[p.0].out_len == step.out_len);
            if !(passthrough && single && last_use && size_ok) {
                error(
                    LintCode::IllegalAlias,
                    i,
                    format!(
                        "step runs in place in slot {} but is not a single-input, \
                         last-use, size-matched pass-through (role {:?}, {} input(s))",
                        step.out_slot,
                        step.role,
                        step.in_slots.len()
                    ),
                );
            }
        }

        // Reads are done: consume one use per operand occurrence.
        for &input in &node.inputs {
            if input.0 < i && uses[input.0] > 0 {
                uses[input.0] -= 1;
            }
        }

        // Write: the destination must exist, be big enough, and hold no
        // still-live value.
        if step.out_slot >= slot_count {
            error(
                LintCode::SlotOutOfBounds,
                i,
                format!(
                    "writes slot {}, arena has {slot_count} slot(s)",
                    step.out_slot
                ),
            );
            continue;
        }
        if slot_sizes[step.out_slot] < step.out_len {
            error(
                LintCode::SlotUndersized,
                i,
                format!(
                    "writes {} element(s) into slot {} sized {}",
                    step.out_len, step.out_slot, slot_sizes[step.out_slot]
                ),
            );
        }
        if let Some(q) = occupant[step.out_slot] {
            if uses[q] > 0 {
                error(
                    LintCode::LiveClobber,
                    i,
                    format!(
                        "overwrites slot {} while the value of step {q} ('{}') is \
                         still live ({} read(s) remain)",
                        step.out_slot, steps[q].name, uses[q]
                    ),
                );
            }
        }
        occupant[step.out_slot] = Some(i);
        out_slot_of[i] = step.out_slot;
    }

    // The declared output location must be where the final value lives.
    let last = &steps[n - 1];
    if plan.output_slot() != last.out_slot || plan.output_len() != last.out_len {
        error(
            LintCode::OutputMismatch,
            n - 1,
            format!(
                "plan declares output slot {} / len {}, final step wrote slot {} / \
                 len {}",
                plan.output_slot(),
                plan.output_len(),
                last.out_slot,
                last.out_len
            ),
        );
    }

    // With a single Input step its length must match the declared model
    // input length (multi-input graphs share one feed buffer and are
    // exempt from this structural check).
    let input_steps: Vec<&InferStep> = steps
        .iter()
        .filter(|s| matches!(s.role, StepRole::Input))
        .collect();
    if let [only] = input_steps.as_slice() {
        if only.out_len != plan.input_len() {
            error(
                LintCode::OutputMismatch,
                only.index,
                format!(
                    "input step materializes {} element(s), plan declares input_len {}",
                    only.out_len,
                    plan.input_len()
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockPlan;
    use gcd2_cgraph::{Activation, OpKind, TShape};
    use gcd2_verify::{GemmFacts, StepRole};

    fn codes(diags: &[Diagnostic]) -> Vec<LintCode> {
        diags.iter().map(|d| d.code).collect()
    }

    fn gemm_role() -> StepRole {
        StepRole::Gemm(GemmFacts {
            m: 4,
            k: 4,
            n: 3,
            shift: 1,
            policy_shift: 1,
            zero_fill: false,
            col_pos_max: 8,
            col_neg_min: -8,
        })
    }

    /// input → relu (aliased in place, last use) → matmul: the canonical
    /// clean schedule.
    fn clean_chain() -> (Graph, MockPlan) {
        let mut g = Graph::new();
        let x = g.input("x", TShape::new(vec![4, 4]));
        let r = g.add(OpKind::Act(Activation::Relu), &[x], "relu");
        g.add(OpKind::MatMul { n: 3 }, &[r], "fc");

        let mut plan = MockPlan::new(15);
        plan.push("x", &[], 0, 16, StepRole::Input);
        plan.push("relu", &[0], 0, 16, StepRole::Passthrough);
        plan.push("fc", &[0], 1, 12, gemm_role());
        (g, plan)
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let (g, plan) = clean_chain();
        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn live_clobber_then_stale_read_are_flagged() {
        // x feeds both gelu and the add, so gelu writing over x's slot
        // clobbers a live value; the add then reads a stale slot.
        let mut g = Graph::new();
        let x = g.input("x", TShape::new(vec![8]));
        let e = g.add(OpKind::Gelu, &[x], "gelu");
        g.add(OpKind::Add, &[x, e], "add");

        let mut plan = MockPlan::new(15);
        plan.push("x", &[], 0, 8, StepRole::Input);
        plan.push("gelu", &[0], 0, 8, StepRole::Compute); // in-place: illegal
        plan.push("add", &[0, 0], 1, 8, StepRole::Compute);

        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        let cs = codes(&diags);
        assert!(cs.contains(&LintCode::IllegalAlias), "{diags:?}");
        assert!(cs.contains(&LintCode::LiveClobber), "{diags:?}");
        assert!(cs.contains(&LintCode::UseBeforeDef), "{diags:?}");
    }

    #[test]
    fn passthrough_alias_requires_last_use() {
        // relu aliases x's slot although the add still needs x.
        let mut g = Graph::new();
        let x = g.input("x", TShape::new(vec![8]));
        let r = g.add(OpKind::Act(Activation::Relu), &[x], "relu");
        g.add(OpKind::Add, &[x, r], "add");

        let mut plan = MockPlan::new(15);
        plan.push("x", &[], 0, 8, StepRole::Input);
        plan.push("relu", &[0], 0, 8, StepRole::Passthrough);
        plan.push("add", &[0, 0], 1, 8, StepRole::Compute);

        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        assert!(codes(&diags).contains(&LintCode::IllegalAlias), "{diags:?}");
    }

    #[test]
    fn operand_slot_mismatch_is_flagged() {
        let (g, mut plan) = clean_chain();
        // The gemm looks for its operand in a slot its producer never
        // wrote.
        plan.slot_sizes.push(16);
        plan.steps[2].in_slots[0] = 2;
        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        assert!(
            codes(&diags).contains(&LintCode::OperandSlotMismatch),
            "{diags:?}"
        );
    }

    #[test]
    fn undersized_slot_and_oob_are_flagged() {
        let (g, mut plan) = clean_chain();
        plan.slot_sizes[1] = 11; // gemm writes 12
        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        assert!(
            codes(&diags).contains(&LintCode::SlotUndersized),
            "{diags:?}"
        );

        let (g, mut plan) = clean_chain();
        plan.steps[2].out_slot = 9; // beyond the arena
        plan.output_slot_override = Some(9);
        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        assert!(
            codes(&diags).contains(&LintCode::SlotOutOfBounds),
            "{diags:?}"
        );
    }

    #[test]
    fn output_declaration_must_match_schedule() {
        let (g, mut plan) = clean_chain();
        plan.output_slot_override = Some(0);
        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        assert!(
            codes(&diags).contains(&LintCode::OutputMismatch),
            "{diags:?}"
        );

        let (g, mut plan) = clean_chain();
        plan.input_len = 17;
        let mut diags = Vec::new();
        check(&g, &plan, &mut diags);
        assert!(
            codes(&diags).contains(&LintCode::OutputMismatch),
            "{diags:?}"
        );
    }
}
