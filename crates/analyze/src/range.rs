//! `AccumulatorRange`: interval abstract interpretation over the
//! quantized dataflow of a compiled inference plan.
//!
//! The interpreter walks the graph in schedule order (step index ==
//! dense node id) and propagates a per-tensor value [`Interval`] through
//! a transfer function derived from each operator's exact host
//! semantics (`gcd2-kernels::hostops` and the GEMM epilogue). For every
//! GEMM it derives a **partial-sum-safe** accumulator interval from the
//! per-column weight aggregates of [`GemmFacts`]:
//!
//! ```text
//! acc ∈ [ a_hi · col_neg_min ,  a_hi · col_pos_max ]
//! ```
//!
//! With activations `a_i ∈ [0, a_hi]`, any subset `S` of a column's
//! products satisfies `Σ_{i∈S} a_i·w_i ≤ Σ_i max(0, a_hi·w_i) =
//! a_hi·col_pos_max` (and symmetrically for the lower bound), so the
//! interval covers every *intermediate* accumulator state for any
//! summation order, and zero-padded or truncated convolution windows
//! (which drop summands) for free. That is the property a SIMD kernel
//! needs to pick a narrower accumulator: not just the final dot product
//! but every partial sum must fit the width. The proven interval
//! replaces the coarse worst-case `k·act_max·wgt_max` bound of the
//! runtime's fold-time check with a per-step provable one, exported as a
//! [`RangeReport`].

use crate::interval::Interval;
use crate::{Diagnostic, LintCode};
use gcd2_cgraph::{Activation, Graph, OpKind};
use gcd2_verify::{GemmFacts, InferPlanView, Severity, StepRole};

/// Proven value facts for one GEMM step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmRange {
    /// Schedule position (== graph node id).
    pub step: usize,
    /// Node name, for human-readable reports.
    pub name: String,
    /// Reduction depth.
    pub k: usize,
    /// Folded requantization shift.
    pub shift: u8,
    /// Partial-sum-safe accumulator interval (see module docs).
    pub acc: Interval,
    /// Interval of the requantized, clamped output values.
    pub out: Interval,
    /// Narrowest signed accumulator width (8/16/32/64 bits) that holds
    /// every partial sum of this GEMM.
    pub safe_acc_bits: u8,
}

/// The analyzer's exported range facts: one output-value interval per
/// step and one [`GemmRange`] per GEMM, in schedule order.
#[derive(Debug, Clone, Default)]
pub struct RangeReport {
    values: Vec<Interval>,
    gemms: Vec<GemmRange>,
}

impl RangeReport {
    /// Proven output-value interval of step `step`.
    pub fn value_of(&self, step: usize) -> Option<Interval> {
        self.values.get(step).copied()
    }

    /// Per-GEMM facts, in schedule order.
    pub fn gemms(&self) -> &[GemmRange] {
        &self.gemms
    }

    /// The GEMM facts of one step, when that step is a GEMM.
    pub fn gemm_for_step(&self, step: usize) -> Option<&GemmRange> {
        self.gemms.iter().find(|g| g.step == step)
    }

    /// Widest safe accumulator width any GEMM of the plan needs
    /// (8 when the plan has no GEMMs).
    pub fn max_acc_bits(&self) -> u8 {
        self.gemms
            .iter()
            .map(|g| g.safe_acc_bits)
            .max()
            .unwrap_or(8)
    }

    /// Whether every GEMM accumulator provably fits i32.
    pub fn all_fit_i32(&self) -> bool {
        self.gemms.iter().all(|g| g.acc.fits_i32())
    }
}

/// Runs the interpreter, pushing findings into `diags` and returning the
/// range facts (best-effort even when findings exist).
pub(crate) fn interpret(
    graph: &Graph,
    plan: &dyn InferPlanView,
    diags: &mut Vec<Diagnostic>,
) -> RangeReport {
    let am = i64::from(plan.act_max());
    let act = Interval::new(0, am);
    let byte = Interval::new(0, 255);
    let n = plan.step_count();
    if graph.len() != n {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: LintCode::RoleMismatch,
            step: None,
            detail: format!("plan has {n} steps but the graph has {} nodes", graph.len()),
        });
        return RangeReport::default();
    }

    let mut values = vec![byte; n];
    let mut out_lens = vec![0usize; n];
    let mut gemms: Vec<GemmRange> = Vec::new();

    for node in graph.nodes() {
        let i = node.id.0;
        let step = plan.step(i);
        out_lens[i] = step.out_len;

        // Operand intervals/lengths. Dangling or forward references are
        // GraphInvariants findings; fall back to ⊤ = [0, 255] here so
        // the interpretation stays sound without double-reporting.
        let input = |j: usize| -> (Interval, usize) {
            match node.inputs.get(j) {
                Some(id) if id.0 < i => (values[id.0], out_lens[id.0]),
                _ => (byte, usize::MAX),
            }
        };
        let (a, a_len) = input(0);
        let (b_raw, b_len) = input(1);
        // Add/Mul/Div zero-extend a shorter second operand.
        let b = if b_len < a_len {
            b_raw.hull(Interval::point(0))
        } else {
            b_raw
        };

        // A corrupted schedule can relabel a step; aliasing legality and
        // the GEMM proofs both key off the role, so cross-check it
        // against the graph operator before trusting it.
        let role_ok = match &step.role {
            StepRole::Gemm(_) => node.kind.is_gemm_like(),
            StepRole::Passthrough => matches!(
                node.kind,
                OpKind::Act(Activation::Relu | Activation::Relu6)
                    | OpKind::Reshape { .. }
                    | OpKind::Transpose
            ),
            StepRole::Input => matches!(node.kind, OpKind::Input),
            StepRole::Constant => matches!(node.kind, OpKind::Constant),
            StepRole::Compute => {
                !node.kind.is_gemm_like() && !matches!(node.kind, OpKind::Input | OpKind::Constant)
            }
        };
        if !role_ok {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: LintCode::RoleMismatch,
                step: Some(i),
                detail: format!(
                    "graph operator {} is scheduled as a {:?} step",
                    node.kind,
                    role_tag(&step.role)
                ),
            });
        }

        let mut out = match &node.kind {
            OpKind::Input => act,
            OpKind::Constant => Interval::point(0),
            kind if kind.is_gemm_like() => match &step.role {
                StepRole::Gemm(f) => gemm_transfer(i, &step.name, f, a, am, diags, &mut gemms),
                // Role mismatch already reported; ⊤ keeps successors sound.
                _ => byte,
            },
            // out = (a + b) / 2, elementwise.
            OpKind::Add => Interval::new((a.lo + b.lo) / 2, (a.hi + b.hi) / 2),
            // out = min((a · b) >> 4, act_max); monotone on [0, 255]².
            OpKind::Mul => {
                Interval::new(((a.lo * b.lo) >> 4).min(am), ((a.hi * b.hi) >> 4).min(am))
            }
            // out = a / (b + 1).
            OpKind::Div => Interval::new(a.lo / (b.hi + 1), a.hi / (b.lo + 1)),
            // out = min((a²) >> 4, act_max); the exponent is implicit.
            OpKind::Pow => {
                Interval::new(((a.lo * a.lo) >> 4).min(am), ((a.hi * a.hi) >> 4).min(am))
            }
            // The monotone byte-LUT stand-in: out = a/2 + a/4.
            OpKind::Act(Activation::HardSwish) | OpKind::Sigmoid | OpKind::Gelu => {
                a.map_monotone(|v| v / 2 + v / 4)
            }
            // out = a · act_max / max(Σ_group a, 1) ∈ [0, act_max]; an
            // all-zero input renormalizes to all zeros.
            OpKind::Softmax => {
                if a.hi == 0 {
                    Interval::point(0)
                } else {
                    Interval::new(0, am)
                }
            }
            // out = clamp(a − mean + mid, 0, act_max) with mean ∈ [a.lo, a.hi].
            OpKind::LayerNorm => {
                let mid = (am + 1) / 2;
                Interval::new(
                    (a.lo - a.hi + mid).clamp(0, am),
                    (a.hi - a.lo + mid).clamp(0, am),
                )
            }
            // Max/mean of a window, copies, and concatenation never
            // leave the hull of the input values.
            kind if kind.preserves_value_range() => {
                if node.inputs.len() >= 2 {
                    a.hull(b_raw)
                } else {
                    a
                }
            }
            // Unreachable with today's vocabulary; ⊤ stays sound.
            _ => byte,
        };

        // Self-check: the runtime keeps every stored activation inside
        // [0, act_max]. An escaping interval means the transfer
        // functions and the kernels have drifted apart.
        if !out.within(act) {
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: LintCode::IntervalEscape,
                step: Some(i),
                detail: format!("derived value interval {out} escapes the activation range {act}"),
            });
            out = out.clamp(0, am);
        }
        values[i] = out;
    }

    RangeReport { values, gemms }
}

fn role_tag(role: &StepRole) -> &'static str {
    match role {
        StepRole::Input => "Input",
        StepRole::Constant => "Constant",
        StepRole::Gemm(_) => "Gemm",
        StepRole::Passthrough => "Passthrough",
        StepRole::Compute => "Compute",
    }
}

/// The GEMM transfer function: derives the partial-sum-safe accumulator
/// interval, proves it against i32, checks the folded shift against the
/// depth-k policy, and pushes the [`GemmRange`] record.
fn gemm_transfer(
    step: usize,
    name: &str,
    f: &GemmFacts,
    a: Interval,
    am: i64,
    diags: &mut Vec<Diagnostic>,
    gemms: &mut Vec<GemmRange>,
) -> Interval {
    let acc = Interval::new(
        a.hi.saturating_mul(f.col_neg_min),
        a.hi.saturating_mul(f.col_pos_max),
    );
    let safe_acc_bits = acc.min_signed_bits();
    if !acc.fits_i32() {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: LintCode::AccOverflow,
            step: Some(step),
            detail: format!(
                "accumulator interval {acc} (k={}) needs {safe_acc_bits} bits, \
                 exceeding the i32 accumulator",
                f.k
            ),
        });
    }
    if f.shift >= 32 {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: LintCode::ShiftRange,
            step: Some(step),
            detail: format!("requantization shift {} is out of range (>= 32)", f.shift),
        });
    }
    if f.shift != f.policy_shift {
        diags.push(Diagnostic {
            severity: Severity::Error,
            code: LintCode::ShiftPolicy,
            step: Some(step),
            detail: format!(
                "folded shift {} disagrees with the depth-k policy shift {} for k={}",
                f.shift, f.policy_shift, f.k
            ),
        });
    }
    // Epilogue: min(clamp(acc >> shift, 0, 255), act_max), monotone in acc.
    let shift = u32::from(f.shift).min(63);
    let requant = |v: i64| ((v >> shift).clamp(0, 255)).min(am);
    let mut out = Interval::new(requant(acc.lo), requant(acc.hi));
    if f.zero_fill {
        out = out.hull(Interval::point(0));
    }
    gemms.push(GemmRange {
        step,
        name: name.to_string(),
        k: f.k,
        shift: f.shift,
        acc,
        out,
        safe_acc_bits,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MockPlan;
    use gcd2_cgraph::TShape;
    use gcd2_verify::StepRole;

    const AM: u8 = 15;

    fn facts(k: usize, shift: u8, pos: i64, neg: i64) -> GemmFacts {
        GemmFacts {
            m: 4,
            k,
            n: 3,
            shift,
            policy_shift: shift,
            zero_fill: false,
            col_pos_max: pos,
            col_neg_min: neg,
        }
    }

    #[test]
    fn gemm_interval_is_partial_sum_safe_and_width_tight() {
        let mut g = Graph::new();
        let x = g.input("x", TShape::new(vec![4, 4]));
        g.add(OpKind::MatMul { n: 3 }, &[x], "fc");

        let mut plan = MockPlan::new(AM);
        plan.push("x", &[], 0, 16, StepRole::Input);
        plan.push("fc", &[0], 1, 12, StepRole::Gemm(facts(4, 1, 8, -8)));

        let mut diags = Vec::new();
        let report = interpret(&g, &plan, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        let fc = report.gemm_for_step(1).unwrap();
        // acc ∈ [15·(−8), 15·8] = [−120, 120]: fits i8, covers any
        // partial sum of any column.
        assert_eq!(fc.acc, Interval::new(-120, 120));
        assert_eq!(fc.safe_acc_bits, 8);
        assert_eq!(report.max_acc_bits(), 8);
        assert!(report.all_fit_i32());
        // Requantized output: clamp(120 >> 1, 0, 255).min(15) = 15.
        assert_eq!(fc.out, Interval::new(0, 15));
        assert_eq!(report.value_of(1).unwrap(), Interval::new(0, 15));
    }

    #[test]
    fn overflow_shift_range_and_policy_are_flagged() {
        let mut g = Graph::new();
        let x = g.input("x", TShape::new(vec![4, 4]));
        g.add(OpKind::MatMul { n: 3 }, &[x], "fc");

        let mut plan = MockPlan::new(AM);
        plan.push("x", &[], 0, 16, StepRole::Input);
        let mut f = facts(4, 40, 200_000_000, -1);
        f.policy_shift = 5; // stored shift 40 disagrees and is out of range
        plan.push("fc", &[0], 1, 12, StepRole::Gemm(f));

        let mut diags = Vec::new();
        let report = interpret(&g, &plan, &mut diags);
        let codes: Vec<LintCode> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&LintCode::AccOverflow), "{diags:?}");
        assert!(codes.contains(&LintCode::ShiftRange), "{diags:?}");
        assert!(codes.contains(&LintCode::ShiftPolicy), "{diags:?}");
        assert_eq!(report.gemm_for_step(1).unwrap().safe_acc_bits, 64);
        assert!(!report.all_fit_i32());
    }

    #[test]
    fn role_mismatch_is_flagged() {
        let mut g = Graph::new();
        let x = g.input("x", TShape::new(vec![4, 4]));
        g.add(OpKind::MatMul { n: 3 }, &[x], "fc");

        let mut plan = MockPlan::new(AM);
        plan.push("x", &[], 0, 16, StepRole::Input);
        // A GEMM-like node scheduled as a plain compute step.
        plan.push("fc", &[0], 1, 12, StepRole::Compute);

        let mut diags = Vec::new();
        let _ = interpret(&g, &plan, &mut diags);
        assert!(
            diags.iter().any(|d| d.code == LintCode::RoleMismatch),
            "{diags:?}"
        );
    }

    /// Empirical soundness: run the real host kernels over every input
    /// pair in the activation range and check the outputs land inside
    /// the derived intervals.
    #[test]
    fn binary_transfers_cover_host_kernels() {
        type BinKernel = fn(&[u8], &[u8], &mut Vec<u8>);
        let shape = TShape::new(vec![1]);
        let cases: [(OpKind, BinKernel); 3] = [
            (OpKind::Add, |a, b, out| {
                gcd2_kernels::hostops::add_avg_into(a, b, out)
            }),
            (OpKind::Mul, |a, b, out| {
                gcd2_kernels::hostops::mul_shift4_into(a, b, AM, out)
            }),
            (OpKind::Div, |a, b, out| {
                gcd2_kernels::hostops::div_lut_into(a, b, out)
            }),
        ];
        for (kind, kernel) in cases {
            let mut g = Graph::new();
            let x = g.input("x", shape.clone());
            let y = g.input("y", shape.clone());
            g.add(kind.clone(), &[x, y], "op");

            let mut plan = MockPlan::new(AM);
            plan.push("x", &[], 0, 1, StepRole::Input);
            plan.push("y", &[], 1, 1, StepRole::Input);
            plan.push("op", &[0, 1], 2, 1, StepRole::Compute);

            let mut diags = Vec::new();
            let report = interpret(&g, &plan, &mut diags);
            assert!(diags.is_empty(), "{kind}: {diags:?}");
            let iv = report.value_of(2).unwrap();
            let mut out = Vec::new();
            for a in 0..=AM {
                for b in 0..=AM {
                    kernel(&[a], &[b], &mut out);
                    assert!(
                        iv.contains(i64::from(out[0])),
                        "{kind}: {a} ∘ {b} = {} outside {iv}",
                        out[0]
                    );
                }
            }
        }
    }

    /// Same empirical check for the grouped/unary kernels on a spread of
    /// activation patterns.
    #[test]
    fn unary_transfers_cover_host_kernels() {
        let patterns: [[u8; 4]; 5] = [
            [0, 0, 0, 0],
            [15, 15, 15, 15],
            [0, 15, 3, 7],
            [1, 1, 2, 14],
            [9, 0, 0, 4],
        ];
        type UnaryKernel = fn(&[u8], &mut Vec<u8>);
        let cases: [(OpKind, UnaryKernel); 4] = [
            (OpKind::Gelu, |x, out| {
                gcd2_kernels::hostops::monotone_lut_into(x, out)
            }),
            (OpKind::Pow, |x, out| {
                gcd2_kernels::hostops::pow_sq_into(x, AM, out)
            }),
            (OpKind::Softmax, |x, out| {
                gcd2_kernels::hostops::softmax_into(x, 4, AM, out)
            }),
            (OpKind::LayerNorm, |x, out| {
                gcd2_kernels::hostops::layernorm_into(x, 4, AM, out)
            }),
        ];
        for (kind, kernel) in cases {
            let mut g = Graph::new();
            let x = g.input("x", TShape::new(vec![4]));
            g.add(kind.clone(), &[x], "op");

            let mut plan = MockPlan::new(AM);
            plan.push("x", &[], 0, 4, StepRole::Input);
            plan.push("op", &[0], 1, 4, StepRole::Compute);

            let mut diags = Vec::new();
            let report = interpret(&g, &plan, &mut diags);
            assert!(diags.is_empty(), "{kind}: {diags:?}");
            let iv = report.value_of(1).unwrap();
            let mut out = Vec::new();
            for p in &patterns {
                kernel(p, &mut out);
                for &v in out.iter() {
                    assert!(
                        iv.contains(i64::from(v)),
                        "{kind}: {p:?} → {v} outside {iv}"
                    );
                }
            }
        }
    }

    #[test]
    fn hull_ops_and_zero_fill_widen_soundly() {
        let mut g = Graph::new();
        let x = g.input("x", TShape::nchw(1, 2, 4, 4));
        let p = g.add(
            OpKind::MaxPool {
                kernel: (2, 2),
                stride: (2, 2),
            },
            &[x],
            "pool",
        );
        g.add(OpKind::Concat, &[p, p], "cat");

        let mut plan = MockPlan::new(AM);
        plan.push("x", &[], 0, 32, StepRole::Input);
        plan.push("pool", &[0], 1, 8, StepRole::Compute);
        plan.push("cat", &[1, 1], 2, 16, StepRole::Compute);

        let mut diags = Vec::new();
        let report = interpret(&g, &plan, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(report.value_of(1).unwrap(), Interval::new(0, 15));
        assert_eq!(report.value_of(2).unwrap(), Interval::new(0, 15));

        // A zero-filling GEMM scatter must include 0 in its output range.
        let mut diags = Vec::new();
        let mut gemms = Vec::new();
        let mut f = facts(4, 0, 2, 0);
        f.zero_fill = true;
        // With col_neg_min = 0 the requantized interval would start at
        // min(acc.lo >> 0, …) = 0 anyway; force a positive floor via a
        // positive input interval to see zero_fill matter.
        let out = gemm_transfer(1, "g", &f, Interval::new(3, 15), 15, &mut diags, &mut gemms);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(out.lo, 0, "zero-filled scatter must admit 0");
    }
}
