//! The candidate SIMD multiply instructions and their layout contracts.
//!
//! GCD2 takes a "pre-designed" approach (Section III): for each operator
//! there is a small set of candidate instructions, each tied to the data
//! layout of Figure 2 that feeds it efficiently. An *execution plan* for
//! an operator is the choice of one such instruction (plus unrolling);
//! the plan fixes both the required input layout and the produced output
//! layout.

use gcd2_tensor::Layout;
use std::fmt;

/// A candidate widening multiply instruction for a GEMM-like operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimdInstr {
    /// `vmpy` with the 1-column layout: 128-row granularity, any K.
    Vmpy,
    /// `vmpa` with the 2-column layout: 64-row granularity, K padded to 2.
    Vmpa,
    /// `vrmpy` with the 4-column layout: 32-row granularity, K padded to 4.
    Vrmpy,
}

impl SimdInstr {
    /// All candidates, in a stable order.
    pub const ALL: [SimdInstr; 3] = [SimdInstr::Vmpy, SimdInstr::Vmpa, SimdInstr::Vrmpy];

    /// The matrix layout this instruction consumes and produces.
    pub fn layout(self) -> Layout {
        match self {
            SimdInstr::Vmpy => Layout::Col1,
            SimdInstr::Vmpa => Layout::Col2,
            SimdInstr::Vrmpy => Layout::Col4,
        }
    }

    /// The instruction whose kernels consume/produce `layout`, if any.
    pub fn for_layout(layout: Layout) -> Option<SimdInstr> {
        match layout {
            Layout::Col1 => Some(SimdInstr::Vmpy),
            Layout::Col2 => Some(SimdInstr::Vmpa),
            Layout::Col4 => Some(SimdInstr::Vrmpy),
            Layout::RowMajor => None,
        }
    }

    /// Row granularity: rows processed per multiply instruction
    /// (the layout's panel height).
    pub fn m_granularity(self) -> usize {
        self.layout().panel_rows()
    }

    /// Reduction granularity: K values consumed per multiply instruction
    /// (the layout's column group).
    pub fn k_granularity(self) -> usize {
        self.layout().col_group()
    }

    /// Output columns that one requantize/store group covers.
    /// (`vmpy`: 1 column × 128 rows; `vmpa`: 2 × 64; `vrmpy`: 4 × 32.)
    pub fn n_granularity(self) -> usize {
        self.k_granularity()
    }
}

impl fmt::Display for SimdInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdInstr::Vmpy => write!(f, "vmpy"),
            SimdInstr::Vmpa => write!(f, "vmpa"),
            SimdInstr::Vrmpy => write!(f, "vrmpy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_mapping_is_bijective() {
        for i in SimdInstr::ALL {
            assert_eq!(SimdInstr::for_layout(i.layout()), Some(i));
        }
        assert_eq!(SimdInstr::for_layout(Layout::RowMajor), None);
    }

    #[test]
    fn granularities_cover_one_vector() {
        for i in SimdInstr::ALL {
            assert_eq!(i.m_granularity() * i.k_granularity(), 128);
        }
    }
}
