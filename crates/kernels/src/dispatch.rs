//! Runtime kernel selection for the blocked GEMM.
//!
//! The host never knows at compile time which SIMD tier it will run on,
//! so the GEMM entry points route through a **one-time-resolved dispatch
//! table**: the first dispatch probes the CPU (`is_x86_feature_detected!`
//! on x86-64; NEON is baseline on aarch64), picks the best available
//! [`KernelIsa`], and memoizes a [`KernelTable`] of function pointers.
//! Every subsequent GEMM is an indirect call — no per-call feature
//! sniffing.
//!
//! Overrides, in precedence order:
//!
//! * [`force_isa`] — a process-wide runtime override used by benches and
//!   tests to compare tiers within one process. Forcing an ISA the CPU
//!   does not support degrades to scalar (never UB).
//! * `GCD2_FORCE_SCALAR=1` — environment pin consulted during the
//!   one-time detection; CI uses it to run the whole suite against the
//!   scalar oracle.
//!
//! Every kernel in the table computes bit-identical bytes (see
//! [`crate::simd`] for the argument), so switching ISAs — or racing a
//! switch mid-run — can never change results, only speed.
//!
//! Intra-op parallelism: [`try_matmul_threaded_into`] splits the output
//! rows into contiguous bands and maps them over [`gcd2_par::par_map`]
//! with per-band scratch from a [`ScratchPool`]. Bands write disjoint
//! output slices and share the read-only packed weight panel, so the
//! result is bit-identical for every thread count.

use crate::autotune::{self, TilePlan};
use crate::simd;
use crate::tiled::{validate_dispatch, GemmDispatchError, GemmScratch};
use gcd2_tensor::MatrixI8;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Kernel instruction-set tiers, from the always-available oracle up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KernelIsa {
    /// The scalar blocked loop — the bit-exactness oracle.
    Scalar = 0,
    /// AVX2 `vpmaddwd` micro-kernel (x86-64, runtime-detected).
    Avx2 = 1,
    /// NEON `vmlal` kernel (aarch64 baseline).
    Neon = 2,
    /// AVX-512 VNNI `vpdpbusd` micro-kernel (x86-64, runtime-detected).
    Avx512Vnni = 3,
    /// AMX-INT8 `tdpbusd` tile kernel (x86-64, runtime-detected and
    /// kernel-permission-gated; VNNI strips finish the tile tails).
    AmxInt8 = 4,
}

impl KernelIsa {
    /// Stable lowercase name, used in reports, benches, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelIsa::Scalar => "scalar",
            KernelIsa::Avx2 => "avx2",
            KernelIsa::Neon => "neon",
            KernelIsa::Avx512Vnni => "avx512vnni",
            KernelIsa::AmxInt8 => "amx-int8",
        }
    }

    /// Whether the running CPU can execute this tier.
    pub fn supported(self) -> bool {
        match self {
            KernelIsa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelIsa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelIsa::Avx512Vnni => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vnni")
            }
            #[cfg(target_arch = "x86_64")]
            KernelIsa::AmxInt8 => crate::amx::amx_available(),
            #[cfg(target_arch = "aarch64")]
            KernelIsa::Neon => true,
            #[allow(unreachable_patterns)] // tiers of other architectures
            _ => false,
        }
    }

    /// The tier for a stable `repr(u8)` tag (the inverse of `self as
    /// u8`), used when tags cross a serialization boundary — e.g. the
    /// TUNE section of a plan artifact. Unknown tags return `None`.
    pub fn from_tag(v: u8) -> Option<KernelIsa> {
        match v {
            0 => Some(KernelIsa::Scalar),
            1 => Some(KernelIsa::Avx2),
            2 => Some(KernelIsa::Neon),
            3 => Some(KernelIsa::Avx512Vnni),
            4 => Some(KernelIsa::AmxInt8),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Operand bundle every band kernel receives: the full GEMM, with the
/// band row range passed separately.
#[derive(Clone, Copy)]
pub(crate) struct BandArgs<'a> {
    pub a: &'a [u8],
    pub k: usize,
    pub n: usize,
    pub wd: &'a [i8],
    pub shift: u8,
    pub tiles: TilePlan,
}

/// Which packed weight panel a kernel consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PanelKind {
    /// No packing (scalar, NEON — they read `wd` directly).
    None,
    /// Pair-interleaved i16 panel ([`simd::pack_pairs_i16`], AVX2).
    Pairs,
    /// Quad-interleaved i8 panel ([`simd::pack_quads_i8`], VNNI).
    Quads,
}

/// A band kernel: computes output rows `[r0, r1)` into `out_band`
/// (`(r1-r0) × n` bytes), using `acc` as its i32 scratch and whichever
/// packed panel its table row's [`PanelKind`] selects (the other panel
/// argument is empty and ignored).
///
/// # Safety
/// The function may use ISA extensions; callers must obtain it from a
/// [`KernelTable`] whose `isa.supported()` held at resolution time, and
/// uphold the operand contract documented on each kernel.
pub(crate) type BandFn =
    unsafe fn(&BandArgs<'_>, &[i16], &[i8], &mut Vec<i32>, usize, usize, &mut [u8]);

/// One resolved dispatch-table row.
pub(crate) struct KernelTable {
    pub isa: KernelIsa,
    pub band: BandFn,
    pub panel: PanelKind,
}

impl KernelTable {
    /// Populates the panel this kernel needs (and clears the other, so
    /// stale panels from a previous dispatch can never be consumed).
    fn pack(&self, wd: &[i8], k: usize, n: usize, scratch: &mut GemmScratch) {
        match self.panel {
            PanelKind::None => {
                scratch.panel.clear();
                scratch.panel8.clear();
            }
            PanelKind::Pairs => {
                simd::pack_pairs_i16(wd, k, n, &mut scratch.panel);
                scratch.panel8.clear();
            }
            PanelKind::Quads => {
                simd::pack_quads_i8(wd, k, n, &mut scratch.panel8);
                scratch.panel.clear();
            }
        }
    }
}

/// Adapter giving the scalar oracle the band-kernel ABI.
///
/// # Safety
/// Not actually unsafe — entirely safe code — but must match [`BandFn`].
unsafe fn scalar_entry(
    args: &BandArgs<'_>,
    _panel: &[i16],
    _quads: &[i8],
    acc: &mut Vec<i32>,
    r0: usize,
    r1: usize,
    out: &mut [u8],
) {
    crate::tiled::scalar_band(
        args.a, args.k, args.n, args.wd, args.shift, args.tiles, acc, r0, r1, out,
    );
}

static SCALAR_TABLE: KernelTable = KernelTable {
    isa: KernelIsa::Scalar,
    band: scalar_entry,
    panel: PanelKind::None,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    isa: KernelIsa::Avx2,
    band: simd::x86::band_avx2,
    panel: PanelKind::Pairs,
};

#[cfg(target_arch = "x86_64")]
static AVX512VNNI_TABLE: KernelTable = KernelTable {
    isa: KernelIsa::Avx512Vnni,
    band: simd::x86::band_avx512vnni,
    panel: PanelKind::Quads,
};

#[cfg(target_arch = "x86_64")]
static AMX_TABLE: KernelTable = KernelTable {
    isa: KernelIsa::AmxInt8,
    band: crate::amx::band_amx,
    panel: PanelKind::Quads,
};

#[cfg(target_arch = "aarch64")]
static NEON_TABLE: KernelTable = KernelTable {
    isa: KernelIsa::Neon,
    band: simd::arm::band_neon,
    panel: PanelKind::None,
};

pub(crate) fn table_for(isa: KernelIsa) -> &'static KernelTable {
    match isa {
        KernelIsa::Scalar => &SCALAR_TABLE,
        #[cfg(target_arch = "x86_64")]
        KernelIsa::Avx2 => &AVX2_TABLE,
        #[cfg(target_arch = "x86_64")]
        KernelIsa::Avx512Vnni => &AVX512VNNI_TABLE,
        #[cfg(target_arch = "x86_64")]
        KernelIsa::AmxInt8 => &AMX_TABLE,
        #[cfg(target_arch = "aarch64")]
        KernelIsa::Neon => &NEON_TABLE,
        #[allow(unreachable_patterns)] // cross-arch variants degrade to the oracle
        _ => &SCALAR_TABLE,
    }
}

#[cfg(target_arch = "x86_64")]
fn best_available() -> KernelIsa {
    if KernelIsa::AmxInt8.supported() {
        KernelIsa::AmxInt8
    } else if KernelIsa::Avx512Vnni.supported() {
        KernelIsa::Avx512Vnni
    } else if KernelIsa::Avx2.supported() {
        KernelIsa::Avx2
    } else {
        KernelIsa::Scalar
    }
}

#[cfg(target_arch = "aarch64")]
fn best_available() -> KernelIsa {
    KernelIsa::Neon
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn best_available() -> KernelIsa {
    KernelIsa::Scalar
}

/// The ISA the one-time detection resolved for this process: the best
/// supported tier, unless `GCD2_FORCE_SCALAR` pins the oracle.
pub fn detected_isa() -> KernelIsa {
    static DETECTED: OnceLock<KernelIsa> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let forced_scalar =
            std::env::var("GCD2_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
        if forced_scalar {
            KernelIsa::Scalar
        } else {
            best_available()
        }
    })
}

/// `u8::MAX` = no override; otherwise a `KernelIsa` discriminant.
static FORCED: AtomicU8 = AtomicU8::new(u8::MAX);

/// Process-wide runtime ISA override for benches and tests (pass `None`
/// to return to auto-detection). Forcing a tier the CPU cannot run
/// degrades to scalar. Safe to flip at any time: all tiers produce
/// bit-identical output, so in-flight GEMMs are unaffected semantically.
pub fn force_isa(isa: Option<KernelIsa>) {
    FORCED.store(isa.map_or(u8::MAX, |i| i as u8), Ordering::SeqCst);
}

thread_local! {
    /// Depth of live [`ScalarPin`] guards on this thread. Non-zero pins
    /// every dispatch resolved *on this thread* to the scalar oracle.
    static SCALAR_PINNED: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII guard of a thread-scoped scalar pin (see [`pin_scalar`]).
/// Deliberately `!Send`: the pin is thread-local, so moving the guard
/// to another thread would unpin the wrong one.
#[derive(Debug)]
pub struct ScalarPin {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScalarPin {
    fn drop(&mut self) {
        SCALAR_PINNED.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Pins every GEMM dispatch resolved on the **current thread** to the
/// scalar oracle tier until the returned guard drops. Nestable, and
/// composes with (overriding) both [`force_isa`] and autodetection.
///
/// This is the gateway's fault-triggered ISA demotion hook: after
/// repeated kernel-attributed faults on a model, its batches execute
/// under a pin so a misbehaving SIMD tier is quarantined without
/// touching process-global state (other models and other threads keep
/// their vector tiers). Intra-op band fan-out is covered because
/// [`try_matmul_threaded_into`] resolves its table on the calling
/// thread before fanning out. Scalar is the bit-exactness oracle, so a
/// demoted dispatch can never change output bytes — only speed.
pub fn pin_scalar() -> ScalarPin {
    SCALAR_PINNED.with(|c| c.set(c.get() + 1));
    ScalarPin {
        _not_send: std::marker::PhantomData,
    }
}

/// Whether a [`pin_scalar`] guard is live on this thread.
pub fn scalar_pinned() -> bool {
    SCALAR_PINNED.with(|c| c.get() != 0)
}

/// The ISA the next GEMM dispatch will use ([`pin_scalar`] on this
/// thread, else the [`force_isa`] override, else the one-time
/// detection).
pub fn active_isa() -> KernelIsa {
    active_table().isa
}

pub(crate) fn active_table() -> &'static KernelTable {
    if scalar_pinned() {
        return &SCALAR_TABLE;
    }
    let forced = FORCED.load(Ordering::Relaxed);
    if forced != u8::MAX {
        let isa = KernelIsa::from_tag(forced)
            .filter(|i| i.supported())
            .unwrap_or(KernelIsa::Scalar);
        return table_for(isa);
    }
    static ACTIVE: OnceLock<&'static KernelTable> = OnceLock::new();
    ACTIVE.get_or_init(|| table_for(detected_isa()))
}

/// A checkout/restore pool of [`GemmScratch`] buffers shared by intra-op
/// band workers (and arena owners), so steady-state parallel GEMMs
/// allocate nothing. A poisoned pool lock degrades to fresh scratch —
/// never a panic.
#[derive(Debug, Default)]
pub struct ScratchPool {
    inner: Mutex<Vec<GemmScratch>>,
}

impl ScratchPool {
    /// An empty pool; buffers are created on demand and returned on
    /// restore.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn checkout(&self) -> GemmScratch {
        match self.inner.lock() {
            Ok(mut pool) => pool.pop().unwrap_or_default(),
            Err(_) => GemmScratch::default(),
        }
    }

    pub(crate) fn restore(&self, scratch: GemmScratch) {
        if let Ok(mut pool) = self.inner.lock() {
            pool.push(scratch);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.inner.lock().map(|p| p.len()).unwrap_or(0)
    }
}

/// Resolves the kernel (tier + tiles) for a dispatch, probing
/// candidates with the real operands on a cache miss (see
/// [`crate::autotune`]), and leaves `scratch` holding exactly the
/// panels the returned table needs. Returns the table to execute with
/// and its tile plan — possibly the scalar oracle when the active
/// tier's per-dispatch weight pack costs more than it buys (skinny
/// activations), in which case no pack is paid at all.
#[allow(clippy::too_many_arguments)] // full operand set of one dispatch
fn resolve_and_pack(
    active: &'static KernelTable,
    a: &[u8],
    m: usize,
    k: usize,
    n: usize,
    wd: &[i8],
    shift: u8,
    scratch: &mut GemmScratch,
) -> (&'static KernelTable, TilePlan) {
    let rows = autotune::probe_rows(m, k, n);
    // Panels are packed lazily, only when a probe (or the final winner)
    // actually consumes them — the whole point of a scalar handoff is
    // skipping the O(k·n) pack. The pack IS part of each candidate's
    // score, though: the thread-local scratch is shared by every GEMM
    // of a plan, so in steady state a pack-paying tier repacks on every
    // call. Each tier's measured pack cost, scaled by the `rows / m`
    // fraction the probe runs over, is charged to its candidates —
    // otherwise the sweep systematically prefers vector tiers on
    // exactly the mid-size shapes where the repack decides the race.
    let mut packed_for: Option<KernelIsa> = None;
    let mut pack_costs: Vec<(KernelIsa, Duration)> = Vec::new();
    let (choice, _tuned) = autotune::resolve_kernel(
        m,
        k,
        n,
        active.isa,
        active.panel != PanelKind::None,
        &mut |cand| {
            let table = table_for(cand.isa);
            let pack_cost = match pack_costs.iter().find(|(isa, _)| *isa == cand.isa) {
                Some(&(_, d)) => {
                    if packed_for != Some(cand.isa) {
                        table.pack(wd, k, n, scratch);
                        packed_for = Some(cand.isa);
                    }
                    d
                }
                None => {
                    let start = Instant::now();
                    table.pack(wd, k, n, scratch);
                    let d = start.elapsed();
                    packed_for = Some(cand.isa);
                    pack_costs.push((cand.isa, d));
                    d
                }
            };
            let GemmScratch { acc, panel, panel8 } = &mut *scratch;
            let args = BandArgs {
                a,
                k,
                n,
                wd,
                shift,
                tiles: cand.tiles,
            };
            let mut tmp = vec![0u8; rows * n];
            let start = Instant::now();
            // SAFETY: every candidate tier was runtime-verified at table
            // resolution (scalar needs no features); probe rows are a
            // prefix of the real operands, so the operand contract
            // (rows*k activations, k×n weights, panels freshly packed
            // from wd for this tier) holds.
            unsafe { (table.band)(&args, panel, panel8, acc, 0, rows, &mut tmp) };
            start.elapsed() + pack_cost.mul_f64(rows as f64 / m.max(1) as f64)
        },
    );
    let exec = table_for(choice.isa);
    if packed_for != Some(choice.isa) {
        exec.pack(wd, k, n, scratch);
    }
    (exec, choice.tiles)
}

/// Single-threaded blocked GEMM through the dispatch table; backend of
/// [`crate::tiled::try_matmul_blocked_into`]. Operands are
/// pre-validated by the caller.
pub(crate) fn run_single(
    a: &[u8],
    m: usize,
    k: usize,
    w: &MatrixI8,
    shift: u8,
    scratch: &mut GemmScratch,
    out: &mut Vec<u8>,
) {
    let n = w.cols();
    out.clear();
    out.resize(m * n, 0);
    if m == 0 || n == 0 {
        return;
    }
    let wd = w.as_slice();
    let (table, tiles) = resolve_and_pack(active_table(), a, m, k, n, wd, shift, scratch);
    let GemmScratch { acc, panel, panel8 } = scratch;
    let args = BandArgs {
        a,
        k,
        n,
        wd,
        shift,
        tiles,
    };
    // SAFETY: table resolution verified ISA support; validate_dispatch
    // established a.len() == m*k and w.rows() == k, out was resized to
    // m*n, and resolve_and_pack left the panels as the pack image of wd
    // for this table row.
    unsafe { (table.band)(&args, panel, panel8, acc, 0, m, out) };
}

/// Intra-op parallel blocked GEMM: output rows are split into up to
/// `threads` contiguous bands mapped over [`gcd2_par::par_map`], each
/// band running the dispatched kernel with its own pooled scratch over
/// a disjoint output slice. Bit-identical for every `threads` value
/// (wrapping i32 accumulation is order-free and bands don't overlap).
///
/// `threads` is the intra-op budget — callers that already parallelize
/// across requests (batching, serving) pass their per-request share so
/// the machine is not oversubscribed.
///
/// # Errors
/// Returns [`GemmDispatchError`] (before writing to `out`) if the
/// operand shapes are mutually inconsistent or the shift is out of
/// range.
#[allow(clippy::too_many_arguments)] // the GEMM operand contract + budget
pub fn try_matmul_threaded_into(
    a: &[u8],
    m: usize,
    k: usize,
    w: &MatrixI8,
    shift: u8,
    pool: &ScratchPool,
    threads: usize,
    out: &mut Vec<u8>,
) -> Result<(), GemmDispatchError> {
    let _ = gcd2_faults::fire("infer.gemm");
    validate_dispatch(a, m, k, w, shift)?;
    let n = w.cols();
    out.clear();
    out.resize(m * n, 0);
    if m == 0 || n == 0 {
        return Ok(());
    }
    let wd = w.as_slice();

    let mut lead = pool.checkout();
    {
        let (table, tiles) = resolve_and_pack(active_table(), a, m, k, n, wd, shift, &mut lead);
        let GemmScratch { acc, panel, panel8 } = &mut lead;
        let args = BandArgs {
            a,
            k,
            n,
            wd,
            shift,
            tiles,
        };
        // Don't cut bands smaller than a row block: a band per tile row
        // maximizes parallelism without degenerate slivers.
        let bands = threads.max(1).min(m.div_ceil(tiles.mb.max(1))).min(m);
        if bands <= 1 {
            // SAFETY: same contract as the single-threaded path.
            unsafe { (table.band)(&args, panel, panel8, acc, 0, m, out) };
        } else {
            let chunk = m.div_ceil(bands);
            let panel_ro: &[i16] = panel;
            let quads_ro: &[i8] = panel8;
            let jobs: Vec<Mutex<&mut [u8]>> = out.chunks_mut(chunk * n).map(Mutex::new).collect();
            gcd2_par::par_map(bands, &jobs, |i, slot| {
                let r0 = i * chunk;
                let r1 = ((i + 1) * chunk).min(m);
                let mut band_scratch = pool.checkout();
                let mut guard = match slot.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                // SAFETY: band rows [r0, r1) are in range, the chunked
                // slice is exactly (r1-r0)*n bytes, the shared panels
                // are read-only, and the table's ISA was verified.
                unsafe {
                    (table.band)(
                        &args,
                        panel_ro,
                        quads_ro,
                        &mut band_scratch.acc,
                        r0,
                        r1,
                        &mut guard,
                    )
                };
                pool.restore(band_scratch);
            });
        }
    }
    pool.restore(lead);
    Ok(())
}

/// Pre-resolves the tile plan for a GEMM shape using synthetic
/// activations, so the first real request doesn't pay the probe sweep.
/// Called at `InferencePlan` build time for every GEMM step above the
/// tuning threshold; below it (or with tuning disabled) this is a no-op.
pub fn warm_gemm_tiles(m: usize, k: usize, n: usize, w: &MatrixI8, shift: u8) {
    if m == 0 || n == 0 || k == 0 || w.rows() != k || w.cols() != n || shift >= 32 {
        return;
    }
    let rows = autotune::probe_rows(m, k, n);
    // Synthetic activations in the quantized range with a realistic
    // sprinkle of zeros (the kernels zero-skip, so an all-dense or
    // all-zero probe would mis-rank candidates).
    let a: Vec<u8> = (0..rows * k)
        .map(|i| {
            let v = (i.wrapping_mul(2654435761) >> 7) % 19;
            if v >= 16 {
                0
            } else {
                v as u8
            }
        })
        .collect();
    let wd = w.as_slice();
    let mut scratch = GemmScratch::default();
    // Key by the *real* m; the probe itself only ever runs `rows` rows.
    let _ = resolve_and_pack(active_table(), &a, m, k, n, wd, shift, &mut scratch);
}

/// What the dispatcher would use for a GEMM shape right now, for
/// reports: `(isa, tiles, tuned)`. The ISA is the **effective** tier —
/// a tuned or static scalar handoff reports `scalar` even when a vector
/// tier is active. Pure lookup — never probes.
pub fn gemm_kernel_summary(m: usize, k: usize, n: usize) -> (KernelIsa, TilePlan, bool) {
    let active = active_table();
    match autotune::cached_choice(m, k, n, active.isa) {
        Some(c) => (c.isa, c.tiles, true),
        None => {
            let c = autotune::static_choice(m, active.isa, active.panel != PanelKind::None);
            (c.isa, c.tiles, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_tensor::{Layout, MatrixI8, MatrixU8};

    fn operands(m: usize, k: usize, n: usize) -> (MatrixU8, MatrixI8) {
        let a = MatrixU8::from_fn(m, k, Layout::RowMajor, |r, c| {
            let v = ((r * 31 + c * 7) % 21) as u8;
            if v >= 16 {
                0
            } else {
                v
            }
        });
        let w = MatrixI8::from_fn(k, n, |r, c| (((r * 13 + c * 5) % 5) as i8) - 2);
        (a, w)
    }

    #[test]
    fn every_supported_isa_matches_the_oracle() {
        let (m, k, n) = (37, 61, 29);
        let (a, w) = operands(m, k, n);
        let mut scratch = GemmScratch::default();
        let mut oracle = Vec::new();
        force_isa(Some(KernelIsa::Scalar));
        run_single(a.as_bytes(), m, k, &w, 3, &mut scratch, &mut oracle);
        for isa in [
            KernelIsa::Avx2,
            KernelIsa::Neon,
            KernelIsa::Avx512Vnni,
            KernelIsa::AmxInt8,
        ] {
            force_isa(Some(isa));
            let mut got = Vec::new();
            run_single(a.as_bytes(), m, k, &w, 3, &mut scratch, &mut got);
            assert_eq!(got, oracle, "forced {isa} (may degrade to scalar)");
        }
        force_isa(None);
        let mut auto = Vec::new();
        run_single(a.as_bytes(), m, k, &w, 3, &mut scratch, &mut auto);
        assert_eq!(auto, oracle, "auto-detected ISA");
    }

    #[test]
    fn threaded_is_bit_identical_to_single_for_every_thread_count() {
        let (m, k, n) = (130, 47, 19);
        let (a, w) = operands(m, k, n);
        let mut scratch = GemmScratch::default();
        let mut single = Vec::new();
        run_single(a.as_bytes(), m, k, &w, 2, &mut scratch, &mut single);
        let pool = ScratchPool::new();
        for threads in [1, 2, 3, 4, 7] {
            let mut got = Vec::new();
            try_matmul_threaded_into(a.as_bytes(), m, k, &w, 2, &pool, threads, &mut got)
                .expect("valid operands");
            assert_eq!(got, single, "threads={threads}");
        }
        assert!(pool.pooled() >= 1, "band scratch returns to the pool");
    }

    #[test]
    fn forcing_unsupported_isa_degrades_to_scalar() {
        force_isa(Some(KernelIsa::Neon));
        #[cfg(not(target_arch = "aarch64"))]
        assert_eq!(active_isa(), KernelIsa::Scalar);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(active_isa(), KernelIsa::Neon);
        force_isa(None);
        assert!(active_isa().supported());
    }

    /// Diagnostic, not a gate: sweeps the candidate tile grid over a
    /// full-size GEMM on the active ISA and prints GMAC/s per plan.
    /// Run with `cargo test --release -p gcd2-kernels -- --ignored
    /// tile_sweep --nocapture` when re-tuning the candidate tables.
    #[test]
    #[ignore = "perf diagnostic; run manually in release mode"]
    fn tile_sweep_diagnostic() {
        let (m, k, n) = (16384, 2304, 256);
        let (a, w) = operands(m, k, n);
        let wd = w.as_slice();
        let table = active_table();
        let mut scratch = GemmScratch::default();
        table.pack(wd, k, n, &mut scratch);
        let GemmScratch { acc, panel, panel8 } = &mut scratch;
        let mut out = vec![0u8; m * n];
        for &mb in &[16usize, 32, 64, 128, 256] {
            for &kb in &[128usize, 256, 512, 1024, 2304] {
                let args = BandArgs {
                    a: a.as_bytes(),
                    k,
                    n,
                    wd,
                    shift: 6,
                    tiles: TilePlan { mb, kb },
                };
                let t0 = Instant::now();
                // SAFETY: active table's ISA was runtime-verified and
                // the operands match the band contract.
                unsafe { (table.band)(&args, panel, panel8, acc, 0, m, &mut out) };
                let dt = t0.elapsed().as_secs_f64();
                let gmacs = (m * k * n) as f64 / dt / 1e9;
                println!(
                    "{:>10} mb={mb:<4} kb={kb:<5} {gmacs:8.1} GMAC/s",
                    table.isa.name()
                );
            }
        }
    }

    #[test]
    fn summary_reports_cached_tiles_after_warm() {
        // Unique above-threshold shape so the warm call really tunes.
        let (m, k, n) = (2048, 640, 48);
        let w = MatrixI8::from_fn(k, n, |r, c| (((r + c) % 5) as i8) - 2);
        warm_gemm_tiles(m, k, n, &w, 4);
        if autotune::autotune_enabled() {
            let (isa, _tiles, tuned) = gemm_kernel_summary(m, k, n);
            assert_eq!(isa, active_isa());
            assert!(tuned, "warmed shape must report tuned tiles");
        }
    }
}
