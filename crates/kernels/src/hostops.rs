//! Host-side scalar semantics of the non-GEMM operators.
//!
//! The functional runtime has two execution paths — the node-by-node
//! interpreter (`gcd2::runtime`) and the precompiled inference plan
//! (`gcd2::infer`) — that must stay **bit-identical**. Every non-GEMM
//! operator's arithmetic therefore lives here, once, as `_into` kernels
//! writing into caller-owned buffers (so the plan executor allocates
//! nothing in steady state).
//!
//! The quantization convention is the runtime's: activations live in a
//! small range `0..=act_max` (4 bits in practice), and each kernel's
//! epilogue keeps its output inside that range. Where two operands can
//! have different lengths, the second is zero-extended and the output
//! takes the first operand's length, matching the interpreter's
//! historical behaviour.

/// Elementwise average: `out[i] = (a[i] + b[i]) / 2`, with `b`
/// zero-extended to `a`'s length.
pub fn add_avg_into(a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.extend(
        a.iter()
            .zip(b.iter().chain(std::iter::repeat(&0)))
            .map(|(&x, &y)| ((x as u16 + y as u16) / 2) as u8),
    );
}

/// Elementwise product with a 4-bit requantization shift:
/// `out[i] = min((a[i] · b[i]) >> 4, act_max)`, `b` zero-extended.
pub fn mul_shift4_into(a: &[u8], b: &[u8], act_max: u8, out: &mut Vec<u8>) {
    out.clear();
    out.extend(
        a.iter()
            .zip(b.iter().chain(std::iter::repeat(&0)))
            .map(|(&x, &y)| (((x as u16 * y as u16) >> 4) as u8).min(act_max)),
    );
}

/// Elementwise division through the reciprocal lookup convention:
/// `out[i] = a[i] / (b[i] + 1)` (the `+1` keeps the table total and the
/// result inside the activation range), `b` zero-extended.
pub fn div_lut_into(a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.extend(
        a.iter()
            .zip(b.iter().chain(std::iter::repeat(&0)))
            .map(|(&x, &y)| x / (y as u16 + 1) as u8),
    );
}

/// Elementwise square with a 4-bit requantization shift:
/// `out[i] = min((x · x) >> 4, act_max)` — the `Pow` operator's
/// fixed-exponent instantiation.
pub fn pow_sq_into(x: &[u8], act_max: u8, out: &mut Vec<u8>) {
    out.clear();
    out.extend(
        x.iter()
            .map(|&v| (((v as u16 * v as u16) >> 4) as u8).min(act_max)),
    );
}

/// The monotone byte-lookup stand-in used for HardSwish/Sigmoid/GELU:
/// `out[i] = x/2 + x/4`.
pub fn monotone_lut_into(x: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.extend(x.iter().map(|&v| v / 2 + v / 4));
}

/// Softmax over contiguous groups of `group` elements, renormalized into
/// the activation range: `out[i] = x[i] · act_max / max(Σ_group x, 1)`.
/// Monotone within each group and bounded by `act_max`.
pub fn softmax_into(x: &[u8], group: usize, act_max: u8, out: &mut Vec<u8>) {
    let group = group.max(1);
    out.clear();
    out.reserve(x.len());
    for chunk in x.chunks(group) {
        let sum: u32 = chunk.iter().map(|&v| v as u32).sum();
        let sum = sum.max(1);
        out.extend(
            chunk
                .iter()
                .map(|&v| (v as u32 * act_max as u32 / sum) as u8),
        );
    }
}

/// Layer normalization over contiguous groups of `group` elements:
/// mean-center and re-bias to the middle of the activation range,
/// `out[i] = clamp(x[i] - mean + (act_max + 1)/2, 0, act_max)`.
pub fn layernorm_into(x: &[u8], group: usize, act_max: u8, out: &mut Vec<u8>) {
    let group = group.max(1);
    let mid = (act_max as i32 + 1) / 2;
    out.clear();
    out.reserve(x.len());
    for chunk in x.chunks(group) {
        let sum: u32 = chunk.iter().map(|&v| v as u32).sum();
        let mean = (sum / chunk.len() as u32) as i32;
        out.extend(
            chunk
                .iter()
                .map(|&v| (v as i32 - mean + mid).clamp(0, act_max as i32) as u8),
        );
    }
}

/// 2-D max/average pooling over a CHW map (no padding).
#[allow(clippy::too_many_arguments)]
pub fn pool_into(
    x: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    is_max: bool,
    out: &mut Vec<u8>,
) {
    let out_h = (h - kernel.0) / stride.0 + 1;
    let out_w = (w - kernel.1) / stride.1 + 1;
    out.clear();
    out.resize(c * out_h * out_w, 0);
    for ch in 0..c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut best = 0u32;
                let mut sum = 0u32;
                for dy in 0..kernel.0 {
                    for dx in 0..kernel.1 {
                        let v = x[ch * h * w + (oy * stride.0 + dy) * w + ox * stride.1 + dx];
                        best = best.max(v as u32);
                        sum += v as u32;
                    }
                }
                out[ch * out_h * out_w + oy * out_w + ox] = if is_max {
                    best as u8
                } else {
                    (sum / (kernel.0 * kernel.1) as u32) as u8
                };
            }
        }
    }
}

/// Global average pooling: one mean per channel over `hw` spatial
/// elements.
pub fn global_avg_pool_into(x: &[u8], c: usize, hw: usize, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(c);
    for ch in 0..c {
        let sum: u32 = x[ch * hw..(ch + 1) * hw].iter().map(|&v| v as u32).sum();
        out.push((sum / hw as u32) as u8);
    }
}

/// Nearest-neighbour spatial upsampling of a CHW map by an integer
/// `factor` in both dimensions.
pub fn upsample_nn_into(x: &[u8], c: usize, h: usize, w: usize, factor: usize, out: &mut Vec<u8>) {
    let (oh, ow) = (h * factor, w * factor);
    out.clear();
    out.resize(c * oh * ow, 0);
    for ch in 0..c {
        for oy in 0..oh {
            let src_row = &x[ch * h * w + (oy / factor) * w..][..w];
            let dst_row = &mut out[ch * oh * ow + oy * ow..][..ow];
            for (ox, d) in dst_row.iter_mut().enumerate() {
                *d = src_row[ox / factor];
            }
        }
    }
}

/// Concatenation: `a` followed by `b` (channel concat for CHW tensors).
pub fn concat_into(a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACT_MAX: u8 = 15;

    #[test]
    fn add_zero_extends_and_averages() {
        let mut out = Vec::new();
        add_avg_into(&[4, 8, 15], &[4], &mut out);
        assert_eq!(out, vec![4, 4, 7]);
    }

    #[test]
    fn mul_requantizes_and_clamps() {
        let mut out = Vec::new();
        mul_shift4_into(&[15, 15, 2], &[15, 0, 8], ACT_MAX, &mut out);
        assert_eq!(out, vec![14, 0, 1]);
    }

    #[test]
    fn div_is_bounded_by_numerator() {
        let mut out = Vec::new();
        div_lut_into(&[15, 9, 6], &[0, 2, 100], &mut out);
        assert_eq!(out, vec![15, 3, 0]);
    }

    #[test]
    fn softmax_groups_stay_in_range_and_monotone() {
        let x: Vec<u8> = vec![1, 5, 15, 0, 0, 0, 0, 3];
        let mut out = Vec::new();
        softmax_into(&x, 4, ACT_MAX, &mut out);
        assert_eq!(out.len(), x.len());
        assert!(out.iter().all(|&v| v <= ACT_MAX));
        assert!(out[0] <= out[1] && out[1] <= out[2]);
        // All-zero group divides by the clamped sum of 1.
        assert_eq!(&out[4..7], &[0, 0, 0]);
    }

    #[test]
    fn layernorm_centers_groups() {
        let mut out = Vec::new();
        layernorm_into(&[0, 15, 5, 10], 2, ACT_MAX, &mut out);
        assert!(out.iter().all(|&v| v <= ACT_MAX));
        // Mean of each pair maps to the mid-point bias of 8.
        assert_eq!(out, vec![1, 15, 6, 11]);
    }

    #[test]
    fn upsample_replicates_nearest() {
        let mut out = Vec::new();
        upsample_nn_into(&[1, 2, 3, 4], 1, 2, 2, 2, &mut out);
        assert_eq!(out, vec![1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3, 4, 4]);
    }

    #[test]
    fn pool_matches_hand_computed() {
        let x = [1u8, 3, 2, 4, 5, 7, 6, 8, 0, 0, 0, 0, 4, 4, 4, 4];
        let mut max = Vec::new();
        pool_into(&x, 2, 2, 4, (2, 2), (2, 2), true, &mut max);
        assert_eq!(max, vec![7, 8, 4, 4]);
        let mut avg = Vec::new();
        pool_into(&x, 2, 2, 4, (2, 2), (2, 2), false, &mut avg);
        assert_eq!(avg, vec![4, 5, 2, 2]);
    }

    #[test]
    fn global_avg_pool_per_channel() {
        let mut out = Vec::new();
        global_avg_pool_into(&[2, 4, 6, 8, 1, 1, 1, 1], 2, 4, &mut out);
        assert_eq!(out, vec![5, 1]);
    }
}
