//! Vectorized int8→i32 GEMM band kernels.
//!
//! Each kernel computes the same function as the scalar oracle
//! ([`crate::tiled`]): `out[r][j] = clamp((Σ_kk a[r][kk] · w[kk][j]) >>
//! shift, 0, 255)` with i32 **wrapping** accumulation. Wrapping addition
//! is associative and commutative, so any accumulation order — register
//! tiles, pair-summed `madd`, widened NEON lanes — produces bytes
//! identical to the scalar loop. That bit-exactness is the contract: the
//! proptest gate in `tests/simd_identity.rs` compares every path against
//! the oracle, and `gcd2-analyze`'s accumulator-width proofs transfer
//! unchanged.
//!
//! Why `_mm256_madd_epi16` is exact here: activations are `u8` (≤ 255)
//! and weights `i8`, both widened to i16 lanes, so every lane product has
//! magnitude ≤ 255·128 = 32640 and each madd pair-sum ≤ 65280 — far
//! inside i32. The saturating corner of `vpmaddwd` (both lanes −32768)
//! is unreachable. The byte-wise `maddubs` instruction was rejected
//! because its i16 pair-sum *does* saturate for general u8×i8 input.
//!
//! Zero-skip: the scalar oracle skips `a == 0` elements (im2col zero
//! padding makes them common). Skipping a zero activation only omits
//! adding 0 — so each kernel is free to skip, or not, at whatever
//! granularity profits: the AVX2 kernel skips zero *pairs*, the VNNI
//! wide kernel never skips (see [`x86::micro512`] for why the branch
//! loses), and the VNNI narrow kernel skips whole 64-byte blocks.
//! All choices produce identical bytes.

use crate::autotune::TilePlan;
use crate::dispatch::BandArgs;

/// Pack a `k × n` row-major i8 weight matrix into the pair-interleaved
/// i16 panel the AVX2 kernel consumes: consecutive weight rows `2p` and
/// `2p+1` are zipped column-wise, so one 256-bit load yields 8 columns
/// worth of `(w[2p][j], w[2p+1][j])` i16 pairs ready for `madd` against
/// a broadcast activation pair. An odd trailing row is padded with a
/// zero partner (zero contributes nothing to the pair-sum).
///
/// Packing happens once per GEMM call (cost `O(k·n)`, amortized over
/// `m` rows) and the panel is shared read-only by all intra-op bands.
pub(crate) fn pack_pairs_i16(wd: &[i8], k: usize, n: usize, panel: &mut Vec<i16>) {
    let pairs = k.div_ceil(2);
    panel.clear();
    panel.resize(pairs * 2 * n, 0);
    for p in 0..pairs {
        let row0 = &wd[2 * p * n..(2 * p + 1) * n];
        let dst = &mut panel[p * 2 * n..(p + 1) * 2 * n];
        if 2 * p + 1 < k {
            let row1 = &wd[(2 * p + 1) * n..(2 * p + 2) * n];
            for j in 0..n {
                dst[2 * j] = row0[j] as i16;
                dst[2 * j + 1] = row1[j] as i16;
            }
        } else {
            for j in 0..n {
                dst[2 * j] = row0[j] as i16;
            }
        }
    }
}

/// Pack a `k × n` row-major i8 weight matrix into the quad-interleaved
/// i8 panel the AVX-512 VNNI kernel consumes: four consecutive weight
/// rows are zipped column-wise so each i32 lane of a 512-bit load holds
/// the `(w[4q][j] .. w[4q+3][j])` bytes `vpdpbusd` dots against four
/// broadcast activation bytes. Trailing rows pad with zero (a zero
/// weight byte contributes nothing whatever activation byte it meets,
/// so the activation padding bytes never matter).
pub(crate) fn pack_quads_i8(wd: &[i8], k: usize, n: usize, panel: &mut Vec<i8>) {
    let quads = k.div_ceil(4);
    panel.clear();
    panel.resize(quads * 4 * n, 0);
    for q in 0..quads {
        let dst = &mut panel[q * 4 * n..(q + 1) * 4 * n];
        for t in 0..4 {
            let kk = 4 * q + t;
            if kk >= k {
                break;
            }
            let row = &wd[kk * n..(kk + 1) * n];
            for j in 0..n {
                dst[4 * j + t] = row[j];
            }
        }
    }
}

/// Requantize an i32 accumulator band to output bytes — shared epilogue
/// of every band kernel, identical to the scalar oracle's epilogue.
pub(crate) fn requantize(acc: &[i32], shift: u8, out: &mut [u8]) {
    for (dst, &v) in out.iter_mut().zip(acc.iter()) {
        *dst = (v >> shift).clamp(0, 255) as u8;
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    #![allow(clippy::too_many_arguments)]

    use super::{requantize, BandArgs, TilePlan};
    use core::arch::x86_64::*;

    /// AVX2 band kernel over rows `[r0, r1)` of the output.
    ///
    /// Loop nest: `mb` row blocks outermost with a cache-hot `mb × n`
    /// i32 accumulator (requantized per block), `kb`-sized pair segments
    /// of the packed panel inside, then register-tiled micro-kernels —
    /// 4 rows × 16 columns held in 8 ymm accumulators, one `madd` +
    /// `add` per (row-pair, 8 columns). Keeping the accumulator block-
    /// local matters for huge-`m` conv GEMMs: a band-wide accumulator
    /// would be re-streamed from memory once per reduction segment.
    /// Bands narrower than one ymm of columns delegate to the scalar
    /// oracle (bit-identical; the strips cannot engage).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `panel` is the
    /// [`super::pack_pairs_i16`] image of `args.wd` for (`args.k`,
    /// `args.n`), `r1 <= m`, and `out_band.len() == (r1 - r0) * n`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn band_avx2(
        args: &BandArgs<'_>,
        panel: &[i16],
        _quads: &[i8],
        acc_buf: &mut Vec<i32>,
        r0: usize,
        r1: usize,
        out_band: &mut [u8],
    ) {
        let BandArgs {
            a,
            k,
            n,
            wd,
            shift,
            tiles,
        } = *args;
        let TilePlan { mb, kb } = tiles;
        if n < 8 {
            // No vector strip fits: every column would take the scalar
            // tail. The oracle's plain nest is strictly faster there.
            return crate::tiled::scalar_band(a, k, n, wd, shift, tiles, acc_buf, r0, r1, out_band);
        }
        let rows = r1 - r0;
        debug_assert!(r1 * k <= a.len());
        debug_assert_eq!(panel.len(), k.div_ceil(2) * 2 * n);
        debug_assert_eq!(out_band.len(), rows * n);

        let pairs = k.div_ceil(2);
        let full_pairs = k / 2;
        let kb_pairs = (kb / 2).max(1);
        let mb = mb.max(4);
        acc_buf.clear();
        acc_buf.resize(mb.min(rows) * n, 0);

        let mut rb = 0usize;
        while rb < rows {
            let mrows = mb.min(rows - rb);
            let acc = &mut acc_buf[..mrows * n];
            acc.fill(0);
            let mut p0 = 0usize;
            while p0 < pairs {
                let p1 = (p0 + kb_pairs).min(pairs);
                let mut r = 0usize;
                while r + 4 <= mrows {
                    // SAFETY: rows r0+rb+r .. +4 are < r1 <= m and the
                    // acc offset r * n stays inside the mrows*n block.
                    unsafe {
                        strips::<4>(
                            a,
                            k,
                            n,
                            wd,
                            panel,
                            acc,
                            r0 + rb + r,
                            r * n,
                            p0,
                            p1,
                            full_pairs,
                        );
                    }
                    r += 4;
                }
                while r < mrows {
                    // SAFETY: single row r0+rb+r < r1 <= m, acc offset in range.
                    unsafe {
                        strips::<1>(
                            a,
                            k,
                            n,
                            wd,
                            panel,
                            acc,
                            r0 + rb + r,
                            r * n,
                            p0,
                            p1,
                            full_pairs,
                        );
                    }
                    r += 1;
                }
                p0 = p1;
            }
            requantize(acc, shift, &mut out_band[rb * n..(rb + mrows) * n]);
            rb += mrows;
        }
    }

    /// Column-strip driver for an `R`-row group: 16-wide register tiles,
    /// then one 8-wide tile, then a scalar tail for `n % 8` columns.
    ///
    /// # Safety
    /// Caller must ensure AVX2, rows `row_abs .. row_abs + R` exist in
    /// `a`, `acc_off + (R-1)*n + n <= acc.len()`, and `panel` covers
    /// pair range `[p0, p1)` at width `n`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn strips<const R: usize>(
        a: &[u8],
        k: usize,
        n: usize,
        wd: &[i8],
        panel: &[i16],
        acc: &mut [i32],
        row_abs: usize,
        acc_off: usize,
        p0: usize,
        p1: usize,
        full_pairs: usize,
    ) {
        let mut j = 0usize;
        while j + 16 <= n {
            // SAFETY: j + 16 <= n keeps both ymm column loads in range.
            unsafe {
                micro::<R, 2>(a, k, n, panel, acc, row_abs, acc_off, j, p0, p1, full_pairs);
            }
            j += 16;
        }
        if j + 8 <= n {
            // SAFETY: j + 8 <= n keeps the single ymm column load in range.
            unsafe {
                micro::<R, 1>(a, k, n, panel, acc, row_abs, acc_off, j, p0, p1, full_pairs);
            }
            j += 8;
        }
        if j < n {
            tail_cols_range::<R>(
                a,
                k,
                n,
                wd,
                acc,
                row_abs,
                acc_off,
                j,
                2 * p0,
                (2 * p1).min(k),
            );
        }
    }

    /// Register-tiled micro-kernel: `R` rows × `W` ymm columns (8 i32
    /// lanes each). Accumulators are loaded from / stored back to the
    /// band buffer so pair segments can be split across calls.
    ///
    /// # Safety
    /// Caller must ensure AVX2, `(row_abs + R) * k <= a.len()`,
    /// `acc_off + (R-1)*n + j + 8*W <= acc.len()`, and
    /// `(p1-1)*2n + 2j + 16*W <= panel.len()`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn micro<const R: usize, const W: usize>(
        a: &[u8],
        k: usize,
        n: usize,
        panel: &[i16],
        acc: &mut [i32],
        row_abs: usize,
        acc_off: usize,
        j: usize,
        p0: usize,
        p1: usize,
        full_pairs: usize,
    ) {
        let mut cc = [[_mm256_setzero_si256(); W]; R];
        for (r, row) in cc.iter_mut().enumerate() {
            for (w, lane) in row.iter_mut().enumerate() {
                // SAFETY: per caller contract the 8-lane i32 window at
                // acc_off + r*n + j + 8w is inside `acc`.
                *lane = unsafe {
                    _mm256_loadu_si256(
                        acc.as_ptr().add(acc_off + r * n + j + 8 * w) as *const __m256i
                    )
                };
            }
        }
        for p in p0..p1 {
            let wbase = p * 2 * n + 2 * j;
            let mut wv = [_mm256_setzero_si256(); W];
            for (w, lane) in wv.iter_mut().enumerate() {
                // SAFETY: per caller contract the 16-lane i16 window at
                // wbase + 16w is inside `panel`.
                *lane = unsafe {
                    _mm256_loadu_si256(panel.as_ptr().add(wbase + 16 * w) as *const __m256i)
                };
            }
            let half = p >= full_pairs;
            for (r, row) in cc.iter_mut().enumerate() {
                let base = (row_abs + r) * k + 2 * p;
                // SAFETY: base < (row_abs + R) * k <= a.len(); the +1
                // partner is only read for full pairs (2p + 1 < k).
                let a0 = unsafe { *a.get_unchecked(base) } as u32;
                let a1 = if half {
                    0
                } else {
                    // SAFETY: full pair ⇒ base + 1 < (row_abs + R) * k.
                    unsafe { *a.get_unchecked(base + 1) as u32 }
                };
                let bits = a0 | (a1 << 16);
                if bits == 0 {
                    continue; // zero activation pair contributes nothing
                }
                let av = _mm256_set1_epi32(bits as i32);
                for (w, lane) in row.iter_mut().enumerate() {
                    *lane = _mm256_add_epi32(*lane, _mm256_madd_epi16(wv[w], av));
                }
            }
        }
        for (r, row) in cc.iter().enumerate() {
            for (w, lane) in row.iter().enumerate() {
                // SAFETY: same window as the load above.
                unsafe {
                    _mm256_storeu_si256(
                        acc.as_mut_ptr().add(acc_off + r * n + j + 8 * w) as *mut __m256i,
                        *lane,
                    );
                }
            }
        }
    }

    /// AVX-512 VNNI band kernel: same loop nest as [`band_avx2`] —
    /// `mb` row blocks outermost with a cache-hot `mb × n` accumulator,
    /// reduction segments inside — but in the quad (4-row) reduction
    /// domain over a quad-interleaved i8 panel: one `vpdpbusd` performs
    /// 64 u8×i8 MACs. Exactness: each lane sums four products of
    /// magnitude ≤ 255·128 (≤ 130560 total, far inside i32) and plain
    /// `vpdpbusd` accumulates modularly (the saturating variant is
    /// `vpdpbusds`, which we do not use), so the bytes match the
    /// wrapping scalar oracle for any schedule. Bands narrower than one
    /// zmm of columns delegate to the scalar oracle (bit-identical).
    ///
    /// # Safety
    /// Caller must ensure AVX-512F + AVX-512VNNI are available, `quads`
    /// is the [`super::pack_quads_i8`] image of `args.wd`, `r1 <= m`,
    /// and `out_band.len() == (r1 - r0) * n`.
    #[target_feature(enable = "avx512f,avx512vnni")]
    pub(crate) unsafe fn band_avx512vnni(
        args: &BandArgs<'_>,
        _panel: &[i16],
        quads: &[i8],
        acc_buf: &mut Vec<i32>,
        r0: usize,
        r1: usize,
        out_band: &mut [u8],
    ) {
        let BandArgs {
            a,
            k,
            n,
            wd,
            shift,
            tiles,
        } = *args;
        let TilePlan { mb, kb } = tiles;
        if n < 16 {
            // No zmm column strip fits. Instead of falling back to the
            // scalar oracle, dot along the reduction dimension — for the
            // skinny conv outputs (e.g. a 3-channel final layer) this is
            // the difference between scalar and full VNNI throughput.
            // SAFETY: same CPU features and slice contracts as this fn.
            return unsafe { band_vnni_narrow(a, k, n, wd, shift, r0, r1, out_band) };
        }
        let rows = r1 - r0;
        debug_assert!(r1 * k <= a.len());
        debug_assert_eq!(quads.len(), k.div_ceil(4) * 4 * n);
        debug_assert_eq!(out_band.len(), rows * n);

        let nquads = k.div_ceil(4);
        let full_quads = k / 4;
        let kb_quads = (kb / 4).max(1);
        let mb = mb.max(4);
        acc_buf.clear();
        acc_buf.resize(mb.min(rows) * n, 0);

        let mut rb = 0usize;
        while rb < rows {
            let mrows = mb.min(rows - rb);
            let acc = &mut acc_buf[..mrows * n];
            acc.fill(0);
            let mut q0 = 0usize;
            while q0 < nquads {
                let q1 = (q0 + kb_quads).min(nquads);
                let mut r = 0usize;
                while r + 4 <= mrows {
                    // SAFETY: rows r0+rb+r .. +4 are < r1 <= m and the
                    // acc offset r * n stays inside the mrows*n block.
                    unsafe {
                        strips512::<4>(
                            a,
                            k,
                            n,
                            wd,
                            quads,
                            acc,
                            r0 + rb + r,
                            r * n,
                            q0,
                            q1,
                            full_quads,
                        );
                    }
                    r += 4;
                }
                while r < mrows {
                    // SAFETY: single row r0+rb+r < r1 <= m, acc offset in range.
                    unsafe {
                        strips512::<1>(
                            a,
                            k,
                            n,
                            wd,
                            quads,
                            acc,
                            r0 + rb + r,
                            r * n,
                            q0,
                            q1,
                            full_quads,
                        );
                    }
                    r += 1;
                }
                q0 = q1;
            }
            requantize(acc, shift, &mut out_band[rb * n..(rb + mrows) * n]);
            rb += mrows;
        }
    }

    /// Column-strip driver for an `R`-row group in the VNNI kernel:
    /// 64-wide (4-zmm) register tiles while they fit, then 32- and
    /// 16-wide tiles, then the shared scalar tail for `n % 16` columns.
    /// The widest tile is what amortizes the per-quad activation
    /// broadcast over enough `vpdpbusd`s to approach port throughput.
    ///
    /// # Safety
    /// Same contract as [`strips`], with `quads` covering quad range
    /// `[q0, q1)` at width `n` and AVX-512F + VNNI available.
    #[target_feature(enable = "avx512f,avx512vnni")]
    #[inline]
    pub(crate) unsafe fn strips512<const R: usize>(
        a: &[u8],
        k: usize,
        n: usize,
        wd: &[i8],
        quads: &[i8],
        acc: &mut [i32],
        row_abs: usize,
        acc_off: usize,
        q0: usize,
        q1: usize,
        full_quads: usize,
    ) {
        let mut j = 0usize;
        while j + 64 <= n {
            // SAFETY: j + 64 <= n keeps all four zmm column windows in range.
            unsafe {
                micro512::<R, 4>(a, k, n, quads, acc, row_abs, acc_off, j, q0, q1, full_quads);
            }
            j += 64;
        }
        if j + 32 <= n {
            // SAFETY: j + 32 <= n keeps both zmm column windows in range.
            unsafe {
                micro512::<R, 2>(a, k, n, quads, acc, row_abs, acc_off, j, q0, q1, full_quads);
            }
            j += 32;
        }
        if j + 16 <= n {
            // SAFETY: j + 16 <= n keeps the single zmm column window in range.
            unsafe {
                micro512::<R, 1>(a, k, n, quads, acc, row_abs, acc_off, j, q0, q1, full_quads);
            }
            j += 16;
        }
        if j < n {
            tail_cols_range::<R>(
                a,
                k,
                n,
                wd,
                acc,
                row_abs,
                acc_off,
                j,
                4 * q0,
                (4 * q1).min(k),
            );
        }
    }

    /// Narrow-band VNNI kernel for `n < 16`: no zmm column strip fits,
    /// so vectorize along the *reduction* dimension instead. Weights are
    /// repacked column-major (one contiguous `k`-long byte column per
    /// output channel, truncated to whole 64-byte blocks), each output
    /// is dotted with `vpdpbusd` into 16 i32 lanes, and the lanes are
    /// horizontally reduced with modular `vpaddd` steps. Wrapping i32
    /// addition is associative and commutative, so the partitioned
    /// lane sums reduce to exactly the scalar oracle's single wrapping
    /// accumulator; the `k % 64` tail runs the oracle's element loop.
    /// All-zero activation blocks are skipped (im2col padding), which
    /// only omits adding zero.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F + AVX-512VNNI are available,
    /// `r1 * k <= a.len()`, `wd.len() == k * n`, and
    /// `out_band.len() == (r1 - r0) * n`.
    #[target_feature(enable = "avx512f,avx512vnni")]
    unsafe fn band_vnni_narrow(
        a: &[u8],
        k: usize,
        n: usize,
        wd: &[i8],
        shift: u8,
        r0: usize,
        r1: usize,
        out_band: &mut [u8],
    ) {
        let klen = (k / 64) * 64;
        // One small column-major repack per band call (≤ 16·k bytes),
        // amortized over every row of the band.
        let mut cols = vec![0i8; n * klen];
        for kk in 0..klen {
            for j in 0..n {
                cols[j * klen + kk] = wd[kk * n + j];
            }
        }
        let zero = _mm512_setzero_si512();
        for r in r0..r1 {
            let arow = &a[r * k..(r + 1) * k];
            let orow = &mut out_band[(r - r0) * n..(r - r0 + 1) * n];
            for (j, dst) in orow.iter_mut().enumerate() {
                let col = &cols[j * klen..(j + 1) * klen];
                let mut accv = zero;
                let mut b = 0usize;
                while b < klen {
                    // SAFETY: b + 64 <= klen <= arow.len() and the same
                    // window is inside this column's repacked bytes.
                    unsafe {
                        let av = _mm512_loadu_si512(arow.as_ptr().add(b) as *const _);
                        if _mm512_cmpeq_epi32_mask(av, zero) != 0xffff {
                            let wv = _mm512_loadu_si512(col.as_ptr().add(b) as *const _);
                            accv = _mm512_dpbusd_epi32(accv, av, wv);
                        }
                    }
                    b += 64;
                }
                let mut sum = _mm512_reduce_add_epi32(accv);
                for kk in klen..k {
                    let av = arow[kk];
                    if av != 0 {
                        sum = sum.wrapping_add(av as i32 * wd[kk * n + j] as i32);
                    }
                }
                *dst = (sum >> shift).clamp(0, 255) as u8;
            }
        }
    }

    /// Composes the four activation bytes of quad `q` for one row as the
    /// little-endian u32 `vpdpbusd` expects (byte t = row `4q + t`),
    /// zero-padding a partial final quad. Zero bytes meet zero-padded
    /// weight bytes, so padding never contributes.
    ///
    /// # Safety
    /// Caller must ensure `row * k + 4q < a.len()` and, for full quads,
    /// `row * k + 4q + 4 <= a.len()`.
    #[inline(always)]
    unsafe fn a_quad(a: &[u8], row: usize, k: usize, q: usize, full_quads: usize) -> u32 {
        let base = row * k + 4 * q;
        if q < full_quads {
            // SAFETY: full quad ⇒ base + 4 <= (row + 1) * k <= a.len();
            // unaligned little-endian load matches the panel byte order.
            unsafe { (a.as_ptr().add(base) as *const u32).read_unaligned() }
        } else {
            let mut bits = 0u32;
            for t in 0..(k - 4 * q) {
                // SAFETY: base + t < row * k + k <= a.len().
                bits |= (unsafe { *a.get_unchecked(base + t) } as u32) << (8 * t);
            }
            bits
        }
    }

    /// VNNI register-tiled micro-kernel: `R` rows × `W` zmm columns
    /// (16 i32 lanes each), one `vpdpbusd` per (row, quad, zmm).
    ///
    /// Unlike the AVX2 kernel, there is **no** per-quad zero-skip here:
    /// a quad is all-zero too rarely mid-tensor (four consecutive
    /// reduction values must vanish together) to pay for a data-
    /// dependent branch per (row, quad) — the mispredicts cost more
    /// than the skipped `vpdpbusd`s, and the branch forces the
    /// activation through a GPR instead of a straight memory broadcast.
    /// Accumulating an explicit zero is bit-identical (adds 0).
    ///
    /// # Safety
    /// Caller must ensure AVX-512F + VNNI, `(row_abs + R) * k <=
    /// a.len()`, `acc_off + (R-1)*n + j + 16*W <= acc.len()`, and
    /// `(q1-1)*4n + 4j + 64*W <= quads.len()`.
    #[target_feature(enable = "avx512f,avx512vnni")]
    #[inline]
    unsafe fn micro512<const R: usize, const W: usize>(
        a: &[u8],
        k: usize,
        n: usize,
        quads: &[i8],
        acc: &mut [i32],
        row_abs: usize,
        acc_off: usize,
        j: usize,
        q0: usize,
        q1: usize,
        full_quads: usize,
    ) {
        let mut cc = [[_mm512_setzero_si512(); W]; R];
        for (r, row) in cc.iter_mut().enumerate() {
            for (w, lane) in row.iter_mut().enumerate() {
                // SAFETY: per caller contract the 16-lane i32 window at
                // acc_off + r*n + j + 16w is inside `acc`.
                *lane = unsafe {
                    _mm512_loadu_si512(acc.as_ptr().add(acc_off + r * n + j + 16 * w) as *const _)
                };
            }
        }
        for q in q0..q1 {
            let wbase = q * 4 * n + 4 * j;
            let mut wv = [_mm512_setzero_si512(); W];
            for (w, lane) in wv.iter_mut().enumerate() {
                // SAFETY: per caller contract the 64-byte window at
                // wbase + 64w is inside `quads`.
                *lane =
                    unsafe { _mm512_loadu_si512(quads.as_ptr().add(wbase + 64 * w) as *const _) };
            }
            for (r, row) in cc.iter_mut().enumerate() {
                // SAFETY: row_abs + r < row_abs + R, in range per contract.
                let bits = unsafe { a_quad(a, row_abs + r, k, q, full_quads) };
                let av = _mm512_set1_epi32(bits as i32);
                for (w, lane) in row.iter_mut().enumerate() {
                    *lane = _mm512_dpbusd_epi32(*lane, av, wv[w]);
                }
            }
        }
        for (r, row) in cc.iter().enumerate() {
            for (w, lane) in row.iter().enumerate() {
                // SAFETY: same window as the load above.
                unsafe {
                    _mm512_storeu_si512(
                        acc.as_mut_ptr().add(acc_off + r * n + j + 16 * w) as *mut _,
                        *lane,
                    );
                }
            }
        }
    }

    /// Vectorized interior step of the direct CHW convolution: computes
    /// `W × 16` horizontally-consecutive output pixels of one output row
    /// for one output channel. Pixels live in i32 lanes of `W` zmm
    /// accumulators; each in-range tap contributes
    /// `cvtepu8_epi32(load16) * broadcast(weight)` per group with
    /// modular `vpmulld`/`vpaddd` — bit-identical to the scalar sum by
    /// wrapping associativity — and the epilogue applies the same
    /// `(v >> shift).clamp(0, 255).min(act_max)` (the 255 bound is
    /// subsumed by `act_max ≤ 255`). Zero weights are skipped (omits
    /// adding zero). `W > 1` exists because the tap loop (up to
    /// `c·kh·kw` iterations of bounds checks and weight fetches) costs
    /// as much as the arithmetic — more pixels per sweep amortize it.
    /// Only needs AVX-512F, but dispatch only selects it on the
    /// AVX-512-capable tiers.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F is available, `dst.len() == 16·W`,
    /// `wj.len() == c·kh·kw`, `input.len() == c·h·w`, and that every
    /// horizontal tap is in bounds: `x0 + kw - 1 + 16·W <= w` (interior
    /// pixels of a unit-stride row, `x0` = leftmost tap of lane 0).
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn conv_interior_avx512<const W: usize>(
        input: &[u8],
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        sy: usize,
        py: usize,
        oy: usize,
        x0: usize,
        wj: &[i8],
        shift: u8,
        act_max: u8,
        dst: &mut [u8],
    ) {
        let mut acc = [_mm512_setzero_si512(); W];
        for ch in 0..c {
            let plane = &input[ch * h * w..(ch + 1) * h * w];
            let wch = &wj[ch * kh * kw..(ch + 1) * kh * kw];
            for dy in 0..kh {
                let y = (oy * sy + dy) as isize - py as isize;
                if y < 0 || y as usize >= h {
                    continue;
                }
                let srow = &plane[y as usize * w..(y as usize + 1) * w];
                for (dx, &wv) in wch[dy * kw..(dy + 1) * kw].iter().enumerate() {
                    if wv == 0 {
                        continue; // zero weight contributes nothing
                    }
                    let wb = _mm512_set1_epi32(wv as i32);
                    for (wi, lane) in acc.iter_mut().enumerate() {
                        // SAFETY: interior contract ⇒ x0 + dx + 16·W <= w.
                        let px = unsafe {
                            _mm_loadu_si128(srow.as_ptr().add(x0 + dx + 16 * wi) as *const __m128i)
                        };
                        let xi = _mm512_cvtepu8_epi32(px);
                        *lane = _mm512_add_epi32(*lane, _mm512_mullo_epi32(xi, wb));
                    }
                }
            }
        }
        for (wi, lane) in acc.iter().enumerate() {
            let shifted = _mm512_srav_epi32(*lane, _mm512_set1_epi32(shift as i32));
            let clamped = _mm512_min_epi32(
                _mm512_max_epi32(shifted, _mm512_setzero_si512()),
                _mm512_set1_epi32(act_max as i32),
            );
            // SAFETY: dst.len() == 16·W per contract.
            unsafe {
                _mm_storeu_si128(
                    dst.as_mut_ptr().add(16 * wi) as *mut __m128i,
                    _mm512_cvtepi32_epi8(clamped),
                );
            }
        }
    }

    /// `W × 8`-pixel AVX2 variant of [`conv_interior_avx512`] — same tap
    /// loop with ymm i32 lanes; the narrowing store goes through a small
    /// stack array (AVX2 has no direct i32→u8 down-convert).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, `dst.len() == 8·W`, and the
    /// same slice and interior contracts with `x0 + kw - 1 + 8·W <= w`.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn conv_interior_avx2<const W: usize>(
        input: &[u8],
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        sy: usize,
        py: usize,
        oy: usize,
        x0: usize,
        wj: &[i8],
        shift: u8,
        act_max: u8,
        dst: &mut [u8],
    ) {
        let mut acc = [_mm256_setzero_si256(); W];
        for ch in 0..c {
            let plane = &input[ch * h * w..(ch + 1) * h * w];
            let wch = &wj[ch * kh * kw..(ch + 1) * kh * kw];
            for dy in 0..kh {
                let y = (oy * sy + dy) as isize - py as isize;
                if y < 0 || y as usize >= h {
                    continue;
                }
                let srow = &plane[y as usize * w..(y as usize + 1) * w];
                for (dx, &wv) in wch[dy * kw..(dy + 1) * kw].iter().enumerate() {
                    if wv == 0 {
                        continue; // zero weight contributes nothing
                    }
                    let wb = _mm256_set1_epi32(wv as i32);
                    for (wi, lane) in acc.iter_mut().enumerate() {
                        // SAFETY: interior contract ⇒ x0 + dx + 8·W <= w.
                        let px = unsafe {
                            _mm_loadl_epi64(srow.as_ptr().add(x0 + dx + 8 * wi) as *const __m128i)
                        };
                        let xi = _mm256_cvtepu8_epi32(px);
                        *lane = _mm256_add_epi32(*lane, _mm256_mullo_epi32(xi, wb));
                    }
                }
            }
        }
        for (wi, lane) in acc.iter().enumerate() {
            let shifted = _mm256_srav_epi32(*lane, _mm256_set1_epi32(shift as i32));
            let mut lanes = [0i32; 8];
            // SAFETY: `lanes` is exactly one ymm wide.
            unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, shifted) };
            for (d, &v) in dst[8 * wi..8 * wi + 8].iter_mut().zip(lanes.iter()) {
                *d = (v.clamp(0, 255) as u8).min(act_max);
            }
        }
    }

    /// Multi-channel (`N` output channels) variant of
    /// [`conv_interior_avx512`]: one tap sweep loads each pixel vector
    /// once and feeds all `N` channel accumulators, so the loads and the
    /// tap-loop overhead (the bulk of a narrow head's cost) are paid
    /// once instead of `N` times. `wcols` holds the `N` weight columns
    /// back to back (channel-major, `N × c·kh·kw`); channel `j`'s pixels
    /// land at `out[dst0 + j·plane ..]` — byte-for-byte what `N` calls
    /// of the single-channel kernel would produce (same wrapping sums,
    /// same zero-weight skips, which add nothing either way).
    ///
    /// # Safety
    /// [`conv_interior_avx512`]'s slice and interior contracts
    /// (`x0 + kw - 1 + 16·W <= w`), plus `wcols.len() == N·c·kh·kw` and
    /// `dst0 + (N-1)·plane + 16·W <= out.len()`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn conv_interior_mc_avx512<const N: usize, const W: usize>(
        input: &[u8],
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        sy: usize,
        py: usize,
        oy: usize,
        x0: usize,
        wcols: &[i8],
        shift: u8,
        act_max: u8,
        out: &mut [u8],
        dst0: usize,
        plane: usize,
    ) {
        let k = c * kh * kw;
        let mut acc = [[_mm512_setzero_si512(); W]; N];
        for ch in 0..c {
            let splane = &input[ch * h * w..(ch + 1) * h * w];
            for dy in 0..kh {
                let y = (oy * sy + dy) as isize - py as isize;
                if y < 0 || y as usize >= h {
                    continue;
                }
                let srow = &splane[y as usize * w..(y as usize + 1) * w];
                let tbase = (ch * kh + dy) * kw;
                for dx in 0..kw {
                    let mut ws = [0i8; N];
                    let mut any = false;
                    for (j, wv) in ws.iter_mut().enumerate() {
                        *wv = wcols[j * k + tbase + dx];
                        any |= *wv != 0;
                    }
                    if !any {
                        continue; // zero weights contribute nothing
                    }
                    let mut px = [_mm512_setzero_si512(); W];
                    for (wi, lane) in px.iter_mut().enumerate() {
                        // SAFETY: interior contract ⇒ x0 + dx + 16·W <= w.
                        let v = unsafe {
                            _mm_loadu_si128(srow.as_ptr().add(x0 + dx + 16 * wi) as *const __m128i)
                        };
                        *lane = _mm512_cvtepu8_epi32(v);
                    }
                    for (j, accj) in acc.iter_mut().enumerate() {
                        if ws[j] == 0 {
                            continue;
                        }
                        let wb = _mm512_set1_epi32(ws[j] as i32);
                        for (wi, lane) in accj.iter_mut().enumerate() {
                            *lane = _mm512_add_epi32(*lane, _mm512_mullo_epi32(px[wi], wb));
                        }
                    }
                }
            }
        }
        for (j, accj) in acc.iter().enumerate() {
            for (wi, lane) in accj.iter().enumerate() {
                let shifted = _mm512_srav_epi32(*lane, _mm512_set1_epi32(shift as i32));
                let clamped = _mm512_min_epi32(
                    _mm512_max_epi32(shifted, _mm512_setzero_si512()),
                    _mm512_set1_epi32(act_max as i32),
                );
                // SAFETY: dst0 + (N-1)·plane + 16·W <= out.len() per contract.
                unsafe {
                    _mm_storeu_si128(
                        out.as_mut_ptr().add(dst0 + j * plane + 16 * wi) as *mut __m128i,
                        _mm512_cvtepi32_epi8(clamped),
                    );
                }
            }
        }
    }

    /// Quad-tap VNNI variant of [`conv_interior_mc_avx512`]: each run of
    /// four horizontal taps collapses into one `vpdpbusd` per channel. A
    /// 32-byte row fragment is expanded by `vpermb` into sliding 4-byte
    /// windows (dword lane `i` = `srow[b+i .. b+i+4]`), so one load and
    /// one shuffle replace four widened multiply-adds; the matching
    /// 4-weight quads (zero-padded past `kw`, so the extra bytes
    /// multiply by zero) arrive premixed in `wquads`, laid out
    /// `[(j·c + ch)·kh + dy]·nq + q` with `nq = ⌈kw/4⌉`. `vpdpbusd`
    /// accumulates the exact 4-tap dot product with wrapping dword adds
    /// (products fit i16, the 4-way sum is exact), so outputs stay
    /// bit-identical to the scalar order.
    ///
    /// # Safety
    /// Caller must ensure AVX-512VBMI and AVX-512VNNI are available,
    /// `wquads.len() == N·c·kh·nq`, the dst contract of
    /// [`conv_interior_mc_avx512`], and that every 32-byte fragment load
    /// is in bounds: `x0 + 4·(nq-1) + 16·(W-1) + 32 <= w`.
    #[target_feature(enable = "avx512f,avx512bw,avx512vbmi,avx512vnni")]
    #[allow(clippy::too_many_arguments)]
    pub(crate) unsafe fn conv_interior_mc_vnni<const N: usize, const W: usize>(
        input: &[u8],
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        sy: usize,
        py: usize,
        oy: usize,
        x0: usize,
        wquads: &[i32],
        shift: u8,
        act_max: u8,
        out: &mut [u8],
        dst0: usize,
        plane: usize,
    ) {
        let nq = kw.div_ceil(4);
        // Sliding-window shuffle: result byte 4i+t = source byte i+t, so
        // dword lane i holds the 4-byte window starting i bytes in. All
        // indices are < 32, hitting the low half of the broadcast pair.
        let mut idx = [0u8; 64];
        for (r, b) in idx.iter_mut().enumerate() {
            *b = (r / 4 + r % 4) as u8;
        }
        // SAFETY: `idx` is exactly one zmm wide.
        let idx = unsafe { _mm512_loadu_si512(idx.as_ptr() as *const _) };
        let mut acc = [[_mm512_setzero_si512(); W]; N];
        for ch in 0..c {
            let splane = &input[ch * h * w..(ch + 1) * h * w];
            for dy in 0..kh {
                let y = (oy * sy + dy) as isize - py as isize;
                if y < 0 || y as usize >= h {
                    continue;
                }
                let srow = &splane[y as usize * w..(y as usize + 1) * w];
                for q in 0..nq {
                    let mut ws = [0i32; N];
                    let mut any = false;
                    for (j, wv) in ws.iter_mut().enumerate() {
                        *wv = wquads[((j * c + ch) * kh + dy) * nq + q];
                        any |= *wv != 0;
                    }
                    if !any {
                        continue; // zero quads contribute nothing
                    }
                    let mut px = [_mm512_setzero_si512(); W];
                    for (wi, lane) in px.iter_mut().enumerate() {
                        // SAFETY: fragment contract ⇒ x0 + 4q + 16·wi + 32 <= w.
                        let frag = unsafe {
                            _mm256_loadu_si256(
                                srow.as_ptr().add(x0 + 4 * q + 16 * wi) as *const __m256i
                            )
                        };
                        *lane = _mm512_permutexvar_epi8(idx, _mm512_broadcast_i64x4(frag));
                    }
                    for (j, accj) in acc.iter_mut().enumerate() {
                        if ws[j] == 0 {
                            continue;
                        }
                        let wq = _mm512_set1_epi32(ws[j]);
                        for (wi, lane) in accj.iter_mut().enumerate() {
                            *lane = _mm512_dpbusd_epi32(*lane, px[wi], wq);
                        }
                    }
                }
            }
        }
        for (j, accj) in acc.iter().enumerate() {
            for (wi, lane) in accj.iter().enumerate() {
                let shifted = _mm512_srav_epi32(*lane, _mm512_set1_epi32(shift as i32));
                let clamped = _mm512_min_epi32(
                    _mm512_max_epi32(shifted, _mm512_setzero_si512()),
                    _mm512_set1_epi32(act_max as i32),
                );
                // SAFETY: dst0 + (N-1)·plane + 16·W <= out.len() per contract.
                unsafe {
                    _mm_storeu_si128(
                        out.as_mut_ptr().add(dst0 + j * plane + 16 * wi) as *mut __m128i,
                        _mm512_cvtepi32_epi8(clamped),
                    );
                }
            }
        }
    }

    /// Scalar tail for the trailing columns of an `R`-row group over the
    /// reduction range `[kk0, kk1)` — same element math as the scalar
    /// oracle (safe code, no SIMD). Shared by the AVX2 and VNNI strips.
    fn tail_cols_range<const R: usize>(
        a: &[u8],
        k: usize,
        n: usize,
        wd: &[i8],
        acc: &mut [i32],
        row_abs: usize,
        acc_off: usize,
        j0: usize,
        kk0: usize,
        kk1: usize,
    ) {
        for r in 0..R {
            let arow = &a[(row_abs + r) * k..(row_abs + r) * k + k];
            let accrow = &mut acc[acc_off + r * n..acc_off + r * n + n];
            for kk in kk0..kk1 {
                let av = arow[kk];
                if av == 0 {
                    continue;
                }
                let av = av as i32;
                let wrow = &wd[kk * n..(kk + 1) * n];
                for j in j0..n {
                    accrow[j] = accrow[j].wrapping_add(av * wrow[j] as i32);
                }
            }
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod arm {
    use super::{requantize, BandArgs, TilePlan};
    use core::arch::aarch64::*;

    /// NEON band kernel over rows `[r0, r1)`: the scalar blocked loop
    /// with the inner column sweep vectorized 8 wide — weight rows are
    /// widened i8→i16 with `vmovl_s8` and accumulated into i32 lanes
    /// with `vmlal_s16` (modular, matching `wrapping_add`). Activation
    /// zero-skip is kept per element, exactly like the oracle.
    ///
    /// # Safety
    /// Caller must ensure NEON is available (always true on aarch64),
    /// `r1 * k <= a.len()`, `wd.len() == k * n`, and
    /// `out_band.len() == (r1 - r0) * n`.
    #[target_feature(enable = "neon")]
    pub(crate) unsafe fn band_neon(
        args: &BandArgs<'_>,
        _panel: &[i16],
        _quads: &[i8],
        acc_buf: &mut Vec<i32>,
        r0: usize,
        r1: usize,
        out_band: &mut [u8],
    ) {
        let BandArgs {
            a,
            k,
            n,
            wd,
            shift,
            tiles: TilePlan { mb, kb },
        } = *args;
        let rows = r1 - r0;
        let (mb, kb_rows) = (mb.max(1), kb.max(1));
        acc_buf.clear();
        acc_buf.resize(mb.min(rows) * n, 0);

        let mut rb = 0usize;
        while rb < rows {
            let mrows = mb.min(rows - rb);
            acc_buf[..mrows * n].fill(0);
            let mut kb0 = 0usize;
            while kb0 < k {
                let krows = kb_rows.min(k - kb0);
                for r in 0..mrows {
                    let arow = &a[(r0 + rb + r) * k + kb0..(r0 + rb + r) * k + kb0 + krows];
                    let acc_base = r * n;
                    for (kk, &av) in arow.iter().enumerate() {
                        if av == 0 {
                            continue; // zero contributes nothing
                        }
                        let av4 = vdup_n_s16(av as i16);
                        let wrow_base = (kb0 + kk) * n;
                        let mut j = 0usize;
                        while j + 8 <= n {
                            // SAFETY: j + 8 <= n keeps the weight and
                            // accumulator windows inside their rows.
                            unsafe {
                                let w16 = vmovl_s8(vld1_s8(wd.as_ptr().add(wrow_base + j)));
                                let accp = acc_buf.as_mut_ptr().add(acc_base + j);
                                let lo = vmlal_s16(vld1q_s32(accp), vget_low_s16(w16), av4);
                                let hi = vmlal_s16(vld1q_s32(accp.add(4)), vget_high_s16(w16), av4);
                                vst1q_s32(accp, lo);
                                vst1q_s32(accp.add(4), hi);
                            }
                            j += 8;
                        }
                        let av = av as i32;
                        while j < n {
                            let dst = &mut acc_buf[acc_base + j];
                            *dst = dst.wrapping_add(av * wd[wrow_base + j] as i32);
                            j += 1;
                        }
                    }
                }
                kb0 += krows;
            }
            requantize(
                &acc_buf[..mrows * n],
                shift,
                &mut out_band[rb * n..(rb + mrows) * n],
            );
            rb += mrows;
        }
    }
}
