//! The kernel cost model: SDA-packed cycle counts of generated kernels.
//!
//! `Cost(ep_i(O))` in the paper's Equation 1 — "based on the number of
//! instructions (cycles) required", assuming inputs already sit in the
//! plan's layout. Costs here are produced by *scheduling the actual
//! instruction streams* with the SDA packer and summing packet cycles, so
//! the optimizer's objective and the end-to-end measurements share one
//! machinery.

use crate::conv::depthwise_vtmpy_blocks;
use crate::elementwise::{elementwise_blocks, EwKind};
use crate::instr::SimdInstr;
use crate::matmul::timing_blocks;
use crate::unroll::{adaptive_unroll, candidates, UnrollConfig, UnrollStrategy};
use gcd2_cgraph::GemmDims;
use gcd2_hvx::{Block, ExecStats, Program};
use gcd2_par::{CacheStats, ShardedMap};
use gcd2_vliw::Packer;
use std::sync::Arc;

/// Fixed per-kernel invocation overhead in cycles: runtime dispatch, DMA
/// descriptor setup, and weight prefetch warm-up. Shared by every
/// instruction choice (so it never biases selection); calibrated so the
/// small-shape latency ratios of Table II match the paper's measurements,
/// where fixed overheads visibly compress the gaps at M = K = N = 32.
pub const KERNEL_DISPATCH_CYCLES: u64 = 7000;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CostKey {
    Gemm(GemmDims, SimdInstr, UnrollConfig),
    Ew(EwKind, usize),
    DwVtmpy(usize, usize),
}

/// A shareable handle to a cost-model memo table.
///
/// Cached cycle counts are pure functions of their structural keys
/// (GEMM dims + instruction + unroll, elementwise kind + size) *given a
/// fixed packer configuration*, so a cache may outlive any single
/// [`CostModel`] and be rethreaded into fresh models — e.g. a `Compiler`
/// keeping its cache warm across `compile` calls. Holders must drop the
/// cache whenever the packer configuration (resource model, scheduling
/// policy) changes, since that changes the cycle values.
#[derive(Debug, Default, Clone)]
pub struct CostCache(Arc<ShardedMap<CostKey, u64>>);

impl CostCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative hit/miss counters over the cache's lifetime.
    pub fn stats(&self) -> CacheStats {
        self.0.stats()
    }
}

/// Cycle cost model backed by kernel generation + SDA packing, with
/// memoization.
///
/// The memo is a hash-sharded concurrent map shared via `Arc`, so one
/// model can serve many worker threads (`&CostModel` is `Sync`) and
/// clones share the same warm cache. Cached cycle counts are pure
/// functions of their keys, so concurrent use is deterministic.
#[derive(Debug, Default, Clone)]
pub struct CostModel {
    packer: Packer,
    cache: Arc<ShardedMap<CostKey, u64>>,
}

impl CostModel {
    /// Creates a cost model using the default SDA packer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cost model using a specific packer (e.g. a
    /// `soft_to_hard` packer to cost a baseline framework).
    pub fn with_packer(packer: Packer) -> Self {
        CostModel {
            packer,
            cache: Arc::new(ShardedMap::new()),
        }
    }

    /// Rethreads this model onto a shared [`CostCache`], e.g. one kept
    /// warm across compiles. The caller is responsible for only sharing
    /// caches between models with identical packer configurations.
    pub fn with_cache(mut self, cache: &CostCache) -> Self {
        self.cache = cache.0.clone();
        self
    }

    /// The packer used for scheduling.
    pub fn packer(&self) -> &Packer {
        &self.packer
    }

    /// Hit/miss counters of the cost cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Packs kernel blocks into a program.
    pub fn pack_program(&self, blocks: &[Block]) -> Program {
        blocks.iter().map(|b| self.packer.pack_block(b)).collect()
    }

    /// Cycles of `blocks` when SDA-packed (no dispatch overhead).
    pub fn blocks_cycles(&self, blocks: &[Block]) -> u64 {
        self.pack_program(blocks).cycles()
    }

    /// Cycles of a GEMM kernel under an explicit unroll configuration,
    /// including the kernel dispatch overhead.
    pub fn gemm_cycles(&self, gemm: &GemmDims, instr: SimdInstr, unroll: UnrollConfig) -> u64 {
        self.cache
            .get_or_insert_with(CostKey::Gemm(*gemm, instr, unroll), || {
                let _ = gcd2_faults::fire("cost.eval");
                self.blocks_cycles(&timing_blocks(gemm, instr, unroll)) + KERNEL_DISPATCH_CYCLES
            })
    }

    /// Cycles of a GEMM kernel with the adaptive unroll heuristic — the
    /// configuration GCD2 ships.
    pub fn gemm_cycles_adaptive(&self, gemm: &GemmDims, instr: SimdInstr) -> u64 {
        self.gemm_cycles(gemm, instr, adaptive_unroll(gemm, instr))
    }

    /// The best configuration a strategy can reach, with its cycles
    /// (used for the Figure 12 comparison; `Exhaustive` evaluates the
    /// whole factor grid).
    pub fn best_unroll(
        &self,
        gemm: &GemmDims,
        instr: SimdInstr,
        strategy: UnrollStrategy,
    ) -> (UnrollConfig, u64) {
        match candidates(strategy, gemm, instr)
            .into_iter()
            .map(|cfg| (cfg, self.gemm_cycles(gemm, instr, cfg)))
            .min_by_key(|&(_, c)| c)
        {
            Some(best) => best,
            None => unreachable!("strategies always propose at least one configuration"),
        }
    }

    /// Cycles of a non-GEMM kernel over `elems` elements.
    pub fn ew_cycles(&self, kind: EwKind, elems: usize) -> u64 {
        self.cache.get_or_insert_with(CostKey::Ew(kind, elems), || {
            let _ = gcd2_faults::fire("cost.eval");
            self.blocks_cycles(&elementwise_blocks(kind, elems)) + KERNEL_DISPATCH_CYCLES / 4
        })
    }

    /// Cycles of the dedicated depthwise `vtmpy` kernel (3-tap sliding
    /// multiply) over `out_elems` outputs with a `kh`-row kernel —
    /// the alternative instruction choice for depthwise convolutions.
    pub fn dw_vtmpy_cycles(&self, out_elems: usize, kh: usize) -> u64 {
        self.cache
            .get_or_insert_with(CostKey::DwVtmpy(out_elems, kh), || {
                let _ = gcd2_faults::fire("cost.eval");
                self.blocks_cycles(&depthwise_vtmpy_blocks(out_elems, kh)) + KERNEL_DISPATCH_CYCLES
            })
    }

    /// Full execution statistics (not just cycles) of a GEMM kernel —
    /// utilization, memory traffic, unit activity — including dispatch
    /// overhead as idle cycles.
    pub fn gemm_stats(&self, gemm: &GemmDims, instr: SimdInstr, unroll: UnrollConfig) -> ExecStats {
        let mut stats = self
            .pack_program(&timing_blocks(gemm, instr, unroll))
            .stats();
        stats.cycles += KERNEL_DISPATCH_CYCLES;
        stats
    }

    /// Full execution statistics of a non-GEMM kernel.
    pub fn ew_stats(&self, kind: EwKind, elems: usize) -> ExecStats {
        let mut stats = self.pack_program(&elementwise_blocks(kind, elems)).stats();
        stats.cycles += KERNEL_DISPATCH_CYCLES / 4;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline calibration check: Table II's per-row winners.
    #[test]
    fn table2_winners() {
        let m = CostModel::new();
        let best = |size: usize| -> SimdInstr {
            let g = GemmDims::new(size, size, size);
            SimdInstr::ALL
                .into_iter()
                .min_by_key(|&i| m.gemm_cycles(&g, i, UnrollConfig::new(2, 2)))
                .unwrap()
        };
        assert_eq!(best(32), SimdInstr::Vrmpy, "32^3: vrmpy wins (Table II)");
        assert_eq!(best(64), SimdInstr::Vmpa, "64^3: vmpa wins (Table II)");
        assert_eq!(best(96), SimdInstr::Vrmpy, "96^3: vrmpy wins (Table II)");
        assert_eq!(best(128), SimdInstr::Vmpy, "128^3: vmpy wins (Table II)");
    }

    #[test]
    fn cache_is_consistent() {
        let m = CostModel::new();
        let g = GemmDims::new(256, 64, 32);
        let a = m.gemm_cycles(&g, SimdInstr::Vmpy, UnrollConfig::NONE);
        let b = m.gemm_cycles(&g, SimdInstr::Vmpy, UnrollConfig::NONE);
        assert_eq!(a, b);
        let stats = m.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// The sharded cache under concurrent hammering: many workers cost
    /// the same key space; no insert may be lost, and every cached value
    /// must agree with an uncached (fresh-model) computation.
    #[test]
    fn sharded_cache_concurrent_hammer() {
        let shared = CostModel::new();
        let shapes: Vec<GemmDims> = (0..6)
            .map(|i| GemmDims::new(32 << (i % 3), 64, 32 + 16 * (i % 4)))
            .collect();
        let per_worker = gcd2_par::par_map(8, &[(); 8], |_, _| {
            shapes
                .iter()
                .flat_map(|g| {
                    SimdInstr::ALL
                        .into_iter()
                        .map(|i| shared.gemm_cycles(g, i, UnrollConfig::NONE))
                })
                .collect::<Vec<u64>>()
        });
        // Cached values agree with a fresh, uncontended model.
        let fresh = CostModel::new();
        let expected: Vec<u64> = shapes
            .iter()
            .flat_map(|g| {
                SimdInstr::ALL
                    .into_iter()
                    .map(|i| fresh.gemm_cycles(g, i, UnrollConfig::NONE))
            })
            .collect();
        for w in &per_worker {
            assert_eq!(w, &expected, "concurrent costs must match uncached costs");
        }
        // No lost inserts: every (shape, instr) key is cached exactly once.
        let stats = shared.cache_stats();
        let distinct = (shapes.len() * SimdInstr::ALL.len()) as u64;
        assert_eq!(stats.hits + stats.misses, 8 * distinct);
        assert!(stats.misses >= distinct);
        assert!(stats.hits > 0, "repeat lookups must hit the cache");
        // Clones share the warm cache.
        let clone = shared.clone();
        let before = clone.cache_stats().hits;
        clone.gemm_cycles(&shapes[0], SimdInstr::Vmpy, UnrollConfig::NONE);
        assert_eq!(clone.cache_stats().hits, before + 1);
    }

    #[test]
    fn unrolling_helps_then_hurts() {
        let m = CostModel::new();
        let g = GemmDims::new(512, 256, 256);
        let none = m.gemm_cycles(&g, SimdInstr::Vmpy, UnrollConfig::NONE);
        let moderate = m.gemm_cycles(&g, SimdInstr::Vmpy, UnrollConfig::new(4, 4));
        let extreme = m.gemm_cycles(&g, SimdInstr::Vmpy, UnrollConfig::new(16, 16));
        assert!(
            moderate < none,
            "moderate unrolling must help: {moderate} vs {none}"
        );
        assert!(
            extreme > moderate,
            "register spills must hurt: {extreme} vs {moderate}"
        );
    }

    #[test]
    fn adaptive_close_to_exhaustive() {
        let m = CostModel::new();
        for (mm, nn) in [(1024, 32), (256, 256), (64, 1024)] {
            let g = GemmDims::new(mm, 256, nn);
            let (_, adaptive) = m.best_unroll(&g, SimdInstr::Vmpy, UnrollStrategy::Adaptive);
            let (_, exhaustive) = m.best_unroll(&g, SimdInstr::Vmpy, UnrollStrategy::Exhaustive);
            assert!(
                (adaptive as f64) <= exhaustive as f64 * 1.15,
                "{mm}x{nn}: adaptive {adaptive} vs exhaustive {exhaustive}"
            );
        }
    }

    #[test]
    fn vtmpy_beats_gemm_path_for_3_wide_depthwise() {
        // The dedicated 3-tap kernel processes 128 outputs per multiply
        // instruction with no weight-reload traffic per output column.
        let m = CostModel::new();
        let out_elems = 32 * 28 * 28;
        let gemm = GemmDims::new(out_elems, 9, 1); // im2col view of 3x3 DW
        let gemm_best: u64 = SimdInstr::ALL
            .into_iter()
            .map(|i| m.gemm_cycles_adaptive(&gemm, i))
            .min()
            .unwrap();
        let vtmpy = m.dw_vtmpy_cycles(out_elems, 3);
        assert!(vtmpy < gemm_best, "vtmpy {vtmpy} vs best gemm {gemm_best}");
    }

    #[test]
    fn stats_have_activity() {
        let m = CostModel::new();
        let s = m.gemm_stats(
            &GemmDims::new(128, 64, 16),
            SimdInstr::Vrmpy,
            UnrollConfig::NONE,
        );
        assert!(s.multiply_insns() > 0);
        assert!(s.mem_read_bytes > 0);
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
    }
}
