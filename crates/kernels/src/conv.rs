//! Convolution-specific kernels.
//!
//! Regular convolutions reach the GEMM kernels through implicit im2col
//! (the [`gcd2_cgraph::GemmDims`] view); the extra address generation of
//! non-1×1 kernels is charged by [`im2col_overhead_cycles`]. Depthwise
//! convolutions additionally have a dedicated `vtmpy` (3-tap sliding
//! multiply) kernel — a second instruction choice alongside the generic
//! GEMM path, exactly the kind of disparate-instruction trade-off the
//! paper exploits.

use gcd2_cgraph::GemmDims;
use gcd2_hvx::{Block, Insn, SReg, VPair, VReg, VBYTES};
use gcd2_tensor::{Layout, MatrixI8, MatrixU8};

fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn w(i: u8) -> VPair {
    VPair::new(i)
}
fn r(i: u8) -> SReg {
    SReg::new(i)
}

/// Extra cycles for implicit im2col address generation: zero for 1×1
/// kernels (the feature map already is the GEMM matrix), proportional to
/// the gathered volume otherwise.
pub fn im2col_overhead_cycles(gemm: &GemmDims, kernel: (usize, usize)) -> u64 {
    if kernel == (1, 1) {
        return 0;
    }
    // Two extra address-gen cycles per gathered vector.
    ((gemm.m * gemm.k).div_ceil(VBYTES) as u64) * 2
}

/// Emits the depthwise 3-tap `vtmpy` kernel for `out_elems` outputs with
/// a `kh`-row kernel: per output vector, load the sliding pair, apply
/// `kh` accumulating 3-tap multiplies, requantize, store.
pub fn depthwise_vtmpy_blocks(out_elems: usize, kh: usize) -> Vec<Block> {
    let mut body = Block::with_trip_count(
        format!("dwconv/vtmpy {kh}x3 x{out_elems}"),
        out_elems.div_ceil(VBYTES) as u64,
    );
    for row in 0..kh {
        body.push(Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: (row * 4 * VBYTES) as i64,
        });
        body.push(Insn::VLoad {
            dst: v(1),
            base: r(0),
            offset: (row * 4 * VBYTES + VBYTES) as i64,
        });
        body.push(Insn::Ld {
            dst: r(3),
            base: r(1),
            offset: (row * 8) as i64,
        });
        body.push(Insn::Vtmpy {
            dst: w(4),
            src: w(0),
            weights: r(3),
            acc: row > 0,
        });
    }
    body.push(Insn::VasrHB {
        dst: v(6),
        src: w(4),
        shift: 6,
    });
    body.push(Insn::VStore {
        src: v(6),
        base: r(2),
        offset: 0,
    });
    body.push(Insn::AddI {
        dst: r(0),
        a: r(0),
        imm: VBYTES as i64,
    });
    body.push(Insn::AddI {
        dst: r(2),
        a: r(2),
        imm: VBYTES as i64,
    });
    vec![body]
}

/// Host-side im2col: lowers a CHW feature map to the GEMM activation
/// matrix (`out_spatial × C·kh·kw`) consumed by the matmul kernels, with
/// zero padding. Out-of-range taps read 0 (the additive identity of the
/// quantized MACs).
///
/// # Panics
/// Panics if `input.len() != c * h * w` or the convolution does not fit.
#[allow(clippy::too_many_arguments)]
pub fn im2col_chw(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    layout: Layout,
) -> MatrixU8 {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    MatrixU8::from_fn(out_h * out_w, c * kh * kw, layout, |o, col| {
        let (oy, ox) = (o / out_w, o % out_w);
        let ch = col / (kh * kw);
        let (dy, dx) = ((col % (kh * kw)) / kw, col % kw);
        let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
        let x = (ox * stride.1 + dx) as isize - padding.1 as isize;
        if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
            0
        } else {
            input[ch * h * w + y as usize * w + x as usize]
        }
    })
}

/// The GEMM weight matrix of a convolution: `C·kh·kw × out_c`, with the
/// same column order [`im2col_chw`] produces.
pub fn conv_weights_as_gemm(
    weights: &[i8],
    c: usize,
    out_c: usize,
    kernel: (usize, usize),
) -> MatrixI8 {
    let k = c * kernel.0 * kernel.1;
    assert_eq!(weights.len(), out_c * k, "weight size mismatch");
    // Weights arrive [out_c][c][kh][kw]; the GEMM wants [k][out_c].
    MatrixI8::from_fn(k, out_c, |kk, oc| weights[oc * k + kk])
}

/// Direct (scalar) convolution reference over a CHW map, with the same
/// requantization as the kernels.
#[allow(clippy::too_many_arguments)]
pub fn conv_ref_chw(
    input: &[u8],
    weights: &[i8],
    c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    shift: u8,
) -> Vec<u8> {
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let mut out = vec![0u8; out_c * out_h * out_w];
    for oc in 0..out_c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc: i32 = 0;
                for ch in 0..c {
                    for dy in 0..kh {
                        for dx in 0..kw {
                            let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
                            let x = (ox * stride.1 + dx) as isize - padding.1 as isize;
                            if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
                                continue;
                            }
                            let a = input[ch * h * w + y as usize * w + x as usize] as i32;
                            let wgt =
                                weights[oc * c * kh * kw + ch * kh * kw + dy * kw + dx] as i32;
                            acc += a * wgt;
                        }
                    }
                }
                out[oc * out_h * out_w + oy * out_w + ox] = (acc >> shift).clamp(0, 255) as u8;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_hvx::PackedBlock;

    #[test]
    fn one_by_one_conv_has_no_im2col_cost() {
        let g = GemmDims::new(3136, 64, 64);
        assert_eq!(im2col_overhead_cycles(&g, (1, 1)), 0);
        assert!(im2col_overhead_cycles(&g, (3, 3)) > 0);
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        // conv(x, w) computed as matmul(im2col(x), w) must equal the
        // direct reference elementwise (pre-requantization math).
        let (c, h, w_dim, out_c) = (3usize, 6usize, 5usize, 4usize);
        let kernel = (3, 3);
        let stride = (1, 1);
        let padding = (1, 1);
        let input: Vec<u8> = (0..c * h * w_dim).map(|i| (i % 13) as u8).collect();
        let weights: Vec<i8> = (0..out_c * c * 9).map(|i| ((i % 15) as i8) - 7).collect();
        let a = im2col_chw(
            &input,
            c,
            h,
            w_dim,
            kernel,
            stride,
            padding,
            Layout::RowMajor,
        );
        let wm = conv_weights_as_gemm(&weights, c, out_c, kernel);
        let got = crate::reference::matmul_ref(&a, &wm, 4);
        let expect = conv_ref_chw(
            &input, &weights, c, h, w_dim, out_c, kernel, stride, padding, 4,
        );
        let (out_h, out_w) = (h, w_dim); // stride 1, same padding
        for oc in 0..out_c {
            for o in 0..out_h * out_w {
                assert_eq!(got[o][oc], expect[oc * out_h * out_w + o], "oc={oc} o={o}");
            }
        }
    }

    #[test]
    fn vtmpy_kernel_scales_with_kernel_height() {
        let c3: u64 = depthwise_vtmpy_blocks(4096, 3)
            .iter()
            .map(|b| PackedBlock::sequential(b).stats().cycles)
            .sum();
        let c1: u64 = depthwise_vtmpy_blocks(4096, 1)
            .iter()
            .map(|b| PackedBlock::sequential(b).stats().cycles)
            .sum();
        assert!(c3 > 2 * c1);
    }
}
