//! Convolution-specific kernels.
//!
//! Regular convolutions reach the GEMM kernels through implicit im2col
//! (the [`gcd2_cgraph::GemmDims`] view); the extra address generation of
//! non-1×1 kernels is charged by [`im2col_overhead_cycles`]. Depthwise
//! convolutions additionally have a dedicated `vtmpy` (3-tap sliding
//! multiply) kernel — a second instruction choice alongside the generic
//! GEMM path, exactly the kind of disparate-instruction trade-off the
//! paper exploits.

use gcd2_cgraph::GemmDims;
use gcd2_hvx::{Block, Insn, SReg, VPair, VReg, VBYTES};
use gcd2_tensor::{Layout, MatrixI8, MatrixU8};

fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn w(i: u8) -> VPair {
    VPair::new(i)
}
fn r(i: u8) -> SReg {
    SReg::new(i)
}

/// Extra cycles for implicit im2col address generation: zero for 1×1
/// kernels (the feature map already is the GEMM matrix), proportional to
/// the gathered volume otherwise.
pub fn im2col_overhead_cycles(gemm: &GemmDims, kernel: (usize, usize)) -> u64 {
    if kernel == (1, 1) {
        return 0;
    }
    // Two extra address-gen cycles per gathered vector.
    ((gemm.m * gemm.k).div_ceil(VBYTES) as u64) * 2
}

/// Emits the depthwise 3-tap `vtmpy` kernel for `out_elems` outputs with
/// a `kh`-row kernel: per output vector, load the sliding pair, apply
/// `kh` accumulating 3-tap multiplies, requantize, store.
pub fn depthwise_vtmpy_blocks(out_elems: usize, kh: usize) -> Vec<Block> {
    let mut body = Block::with_trip_count(
        format!("dwconv/vtmpy {kh}x3 x{out_elems}"),
        out_elems.div_ceil(VBYTES) as u64,
    );
    for row in 0..kh {
        body.push(Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: (row * 4 * VBYTES) as i64,
        });
        body.push(Insn::VLoad {
            dst: v(1),
            base: r(0),
            offset: (row * 4 * VBYTES + VBYTES) as i64,
        });
        body.push(Insn::Ld {
            dst: r(3),
            base: r(1),
            offset: (row * 8) as i64,
        });
        body.push(Insn::Vtmpy {
            dst: w(4),
            src: w(0),
            weights: r(3),
            acc: row > 0,
        });
    }
    body.push(Insn::VasrHB {
        dst: v(6),
        src: w(4),
        shift: 6,
    });
    body.push(Insn::VStore {
        src: v(6),
        base: r(2),
        offset: 0,
    });
    body.push(Insn::AddI {
        dst: r(0),
        a: r(0),
        imm: VBYTES as i64,
    });
    body.push(Insn::AddI {
        dst: r(2),
        a: r(2),
        imm: VBYTES as i64,
    });
    vec![body]
}

/// Host-side im2col: lowers a CHW feature map to the GEMM activation
/// matrix (`out_spatial × C·kh·kw`) consumed by the matmul kernels, with
/// zero padding. Out-of-range taps read 0 (the additive identity of the
/// quantized MACs).
///
/// # Panics
/// Panics if `input.len() != c * h * w` or the convolution does not fit.
#[allow(clippy::too_many_arguments)]
pub fn im2col_chw(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    layout: Layout,
) -> MatrixU8 {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    MatrixU8::from_fn(out_h * out_w, c * kh * kw, layout, |o, col| {
        let (oy, ox) = (o / out_w, o % out_w);
        let ch = col / (kh * kw);
        let (dy, dx) = ((col % (kh * kw)) / kw, col % kw);
        let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
        let x = (ox * stride.1 + dx) as isize - padding.1 as isize;
        if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
            0
        } else {
            input[ch * h * w + y as usize * w + x as usize]
        }
    })
}

/// [`im2col_chw`] into a caller-provided row-major buffer — the
/// allocation-free staging path of the inference plan executor. `out`
/// must hold exactly `out_spatial × c·kh·kw` bytes and is fully
/// overwritten (padding taps become 0). Contiguous kernel-row spans are
/// copied as slices, so this is the fast path for repeated execution.
///
/// # Panics
/// Panics if `input.len() != c * h * w` or `out` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn im2col_rm_into(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    out: &mut [u8],
) {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let k = c * kh * kw;
    assert_eq!(out.len(), out_h * out_w * k, "im2col buffer size mismatch");
    out.fill(0);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let base = (oy * out_w + ox) * k;
            // The dx span with in-range x: x = ox*stride - pad + dx.
            let x0 = (ox * stride.1) as isize - padding.1 as isize;
            let dx_lo = (-x0).max(0) as usize;
            let dx_hi = ((w as isize - x0).max(0) as usize).min(kw);
            for ch in 0..c {
                for dy in 0..kh {
                    let y = ((oy * stride.0 + dy) as isize) - padding.0 as isize;
                    if y < 0 || y as usize >= h || dx_lo >= dx_hi {
                        continue;
                    }
                    let src = ch * h * w + y as usize * w + (x0 + dx_lo as isize) as usize;
                    let dst = base + ch * kh * kw + dy * kw;
                    out[dst + dx_lo..dst + dx_hi]
                        .copy_from_slice(&input[src..src + (dx_hi - dx_lo)]);
                }
            }
        }
    }
}

/// Direct depthwise convolution with one shared `kh·kw` filter column —
/// the runtime's block-diagonal depthwise GEMM collapsed back into a
/// sliding-window loop. Bit-identical to staging per-channel im2col rows
/// and multiplying by the `k × 1` weight matrix (`i32` accumulation is
/// order-independent and padding taps contribute zero), but with no
/// staging buffer and no per-row GEMM dispatch. `out` is resized to
/// `out_len` (≤ `c·oh·ow`; the runtime truncates to the node's element
/// count).
///
/// # Panics
/// Panics if `input.len() != c * h * w` or `weights.len() != kh * kw`.
#[allow(clippy::too_many_arguments)]
pub fn dwconv_direct_into(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    weights: &[i8],
    shift: u8,
    act_max: u8,
    out_len: usize,
    out: &mut Vec<u8>,
) {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    assert_eq!(weights.len(), kh * kw, "weight size mismatch");
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    out.clear();
    out.resize(out_len, 0);
    let mut r = 0usize;
    'rows: for ch in 0..c {
        let chan = &input[ch * h * w..(ch + 1) * h * w];
        for oy in 0..out_h {
            for ox in 0..out_w {
                if r >= out_len {
                    break 'rows;
                }
                let mut acc: i32 = 0;
                let x0 = (ox * stride.1) as isize - padding.1 as isize;
                for dy in 0..kh {
                    let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
                    if y < 0 || y as usize >= h {
                        continue;
                    }
                    let row = &chan[y as usize * w..(y as usize + 1) * w];
                    let wrow = &weights[dy * kw..(dy + 1) * kw];
                    for (dx, &wv) in wrow.iter().enumerate() {
                        let x = x0 + dx as isize;
                        if x < 0 || x as usize >= w {
                            continue;
                        }
                        acc += row[x as usize] as i32 * wv as i32;
                    }
                }
                out[r] = ((acc >> shift).clamp(0, 255) as u8).min(act_max);
                r += 1;
            }
        }
    }
}

/// The GEMM weight matrix of a convolution: `C·kh·kw × out_c`, with the
/// same column order [`im2col_chw`] produces.
pub fn conv_weights_as_gemm(
    weights: &[i8],
    c: usize,
    out_c: usize,
    kernel: (usize, usize),
) -> MatrixI8 {
    let k = c * kernel.0 * kernel.1;
    assert_eq!(weights.len(), out_c * k, "weight size mismatch");
    // Weights arrive [out_c][c][kh][kw]; the GEMM wants [k][out_c].
    MatrixI8::from_fn(k, out_c, |kk, oc| weights[oc * k + kk])
}

/// Direct (scalar) convolution reference over a CHW map, with the same
/// requantization as the kernels.
#[allow(clippy::too_many_arguments)]
pub fn conv_ref_chw(
    input: &[u8],
    weights: &[i8],
    c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    shift: u8,
) -> Vec<u8> {
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let mut out = vec![0u8; out_c * out_h * out_w];
    for oc in 0..out_c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc: i32 = 0;
                for ch in 0..c {
                    for dy in 0..kh {
                        for dx in 0..kw {
                            let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
                            let x = (ox * stride.1 + dx) as isize - padding.1 as isize;
                            if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
                                continue;
                            }
                            let a = input[ch * h * w + y as usize * w + x as usize] as i32;
                            let wgt =
                                weights[oc * c * kh * kw + ch * kh * kw + dy * kw + dx] as i32;
                            acc += a * wgt;
                        }
                    }
                }
                out[oc * out_h * out_w + oy * out_w + ox] = (acc >> shift).clamp(0, 255) as u8;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_hvx::PackedBlock;

    #[test]
    fn one_by_one_conv_has_no_im2col_cost() {
        let g = GemmDims::new(3136, 64, 64);
        assert_eq!(im2col_overhead_cycles(&g, (1, 1)), 0);
        assert!(im2col_overhead_cycles(&g, (3, 3)) > 0);
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        // conv(x, w) computed as matmul(im2col(x), w) must equal the
        // direct reference elementwise (pre-requantization math).
        let (c, h, w_dim, out_c) = (3usize, 6usize, 5usize, 4usize);
        let kernel = (3, 3);
        let stride = (1, 1);
        let padding = (1, 1);
        let input: Vec<u8> = (0..c * h * w_dim).map(|i| (i % 13) as u8).collect();
        let weights: Vec<i8> = (0..out_c * c * 9).map(|i| ((i % 15) as i8) - 7).collect();
        let a = im2col_chw(
            &input,
            c,
            h,
            w_dim,
            kernel,
            stride,
            padding,
            Layout::RowMajor,
        );
        let wm = conv_weights_as_gemm(&weights, c, out_c, kernel);
        let got = crate::reference::matmul_ref(&a, &wm, 4);
        let expect = conv_ref_chw(
            &input, &weights, c, h, w_dim, out_c, kernel, stride, padding, 4,
        );
        let (out_h, out_w) = (h, w_dim); // stride 1, same padding
        for oc in 0..out_c {
            for o in 0..out_h * out_w {
                assert_eq!(got[o][oc], expect[oc * out_h * out_w + o], "oc={oc} o={o}");
            }
        }
    }

    #[test]
    fn im2col_into_matches_matrix_im2col() {
        // The buffer-reusing row-major path must produce byte-identical
        // staging to the matrix-building reference, including padding
        // and strides.
        for &(c, h, w_dim, kernel, stride, padding) in &[
            (3usize, 6usize, 5usize, (3, 3), (1, 1), (1, 1)),
            (2, 9, 7, (3, 3), (2, 2), (1, 1)),
            (4, 8, 8, (1, 1), (1, 1), (0, 0)),
            (1, 5, 11, (5, 3), (2, 1), (2, 0)),
        ] {
            let input: Vec<u8> = (0..c * h * w_dim).map(|i| 1 + (i % 15) as u8).collect();
            let m = im2col_chw(
                &input,
                c,
                h,
                w_dim,
                kernel,
                stride,
                padding,
                Layout::RowMajor,
            );
            let mut buf = vec![0xAA; m.rows() * m.cols()];
            im2col_rm_into(&input, c, h, w_dim, kernel, stride, padding, &mut buf);
            assert_eq!(buf, m.as_bytes(), "c={c} h={h} w={w_dim} k={kernel:?}");
        }
    }

    #[test]
    fn dwconv_direct_matches_im2col_gemm() {
        // The direct sliding-window path must be bit-identical to the
        // block-diagonal im2col + k×1 GEMM lowering it replaces.
        for &(c, h, w_dim, kernel, stride, padding) in &[
            (3usize, 8usize, 8usize, (3, 3), (1, 1), (1, 1)),
            (2, 9, 7, (3, 3), (2, 2), (1, 1)),
            (4, 10, 6, (5, 5), (1, 1), (2, 2)),
            (1, 5, 5, (2, 2), (2, 2), (0, 0)),
        ] {
            let (kh, kw) = kernel;
            let input: Vec<u8> = (0..c * h * w_dim).map(|i| (i % 16) as u8).collect();
            let weights: Vec<i8> = (0..kh * kw).map(|i| ((i % 5) as i8) - 2).collect();
            let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
            let out_w = (w_dim + 2 * padding.1 - kw) / stride.1 + 1;
            let (m, k) = (c * out_h * out_w, kh * kw);
            // Reference: per-channel im2col rows × k×1 weights.
            let mut a = vec![0u8; m * k];
            for ch in 0..c {
                im2col_rm_into(
                    &input[ch * h * w_dim..(ch + 1) * h * w_dim],
                    1,
                    h,
                    w_dim,
                    kernel,
                    stride,
                    padding,
                    &mut a[ch * out_h * out_w * k..(ch + 1) * out_h * out_w * k],
                );
            }
            let wmat = MatrixI8::from_fn(k, 1, |kk, _| weights[kk]);
            let mut gemm_out = Vec::new();
            crate::tiled::matmul_blocked_into(
                &a,
                m,
                k,
                &wmat,
                3,
                &mut crate::tiled::GemmScratch::default(),
                &mut gemm_out,
            );
            let expect: Vec<u8> = gemm_out.iter().map(|&v| v.min(15)).collect();
            let mut got = Vec::new();
            dwconv_direct_into(
                &input, c, h, w_dim, kernel, stride, padding, &weights, 3, 15, m, &mut got,
            );
            assert_eq!(got, expect, "c={c} h={h} w={w_dim} k={kernel:?}");
            // Truncated output lengths match the runtime's clipping.
            let mut short = Vec::new();
            dwconv_direct_into(
                &input,
                c,
                h,
                w_dim,
                kernel,
                stride,
                padding,
                &weights,
                3,
                15,
                m / 2,
                &mut short,
            );
            assert_eq!(short, expect[..m / 2]);
        }
    }

    #[test]
    fn vtmpy_kernel_scales_with_kernel_height() {
        let c3: u64 = depthwise_vtmpy_blocks(4096, 3)
            .iter()
            .map(|b| PackedBlock::sequential(b).stats().cycles)
            .sum();
        let c1: u64 = depthwise_vtmpy_blocks(4096, 1)
            .iter()
            .map(|b| PackedBlock::sequential(b).stats().cycles)
            .sum();
        assert!(c3 > 2 * c1);
    }
}
