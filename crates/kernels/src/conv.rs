//! Convolution-specific kernels.
//!
//! Regular convolutions reach the GEMM kernels through implicit im2col
//! (the [`gcd2_cgraph::GemmDims`] view); the extra address generation of
//! non-1×1 kernels is charged by [`im2col_overhead_cycles`]. Depthwise
//! convolutions additionally have a dedicated `vtmpy` (3-tap sliding
//! multiply) kernel — a second instruction choice alongside the generic
//! GEMM path, exactly the kind of disparate-instruction trade-off the
//! paper exploits.

use gcd2_cgraph::GemmDims;
use gcd2_hvx::{Block, Insn, SReg, VPair, VReg, VBYTES};
use gcd2_tensor::{Layout, MatrixI8, MatrixU8};

fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn w(i: u8) -> VPair {
    VPair::new(i)
}
fn r(i: u8) -> SReg {
    SReg::new(i)
}

/// Extra cycles for implicit im2col address generation: zero for 1×1
/// kernels (the feature map already is the GEMM matrix), proportional to
/// the gathered volume otherwise.
pub fn im2col_overhead_cycles(gemm: &GemmDims, kernel: (usize, usize)) -> u64 {
    if kernel == (1, 1) {
        return 0;
    }
    // Two extra address-gen cycles per gathered vector.
    ((gemm.m * gemm.k).div_ceil(VBYTES) as u64) * 2
}

/// Emits the depthwise 3-tap `vtmpy` kernel for `out_elems` outputs with
/// a `kh`-row kernel: per output vector, load the sliding pair, apply
/// `kh` accumulating 3-tap multiplies, requantize, store.
pub fn depthwise_vtmpy_blocks(out_elems: usize, kh: usize) -> Vec<Block> {
    let mut body = Block::with_trip_count(
        format!("dwconv/vtmpy {kh}x3 x{out_elems}"),
        out_elems.div_ceil(VBYTES) as u64,
    );
    for row in 0..kh {
        body.push(Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: (row * 4 * VBYTES) as i64,
        });
        body.push(Insn::VLoad {
            dst: v(1),
            base: r(0),
            offset: (row * 4 * VBYTES + VBYTES) as i64,
        });
        body.push(Insn::Ld {
            dst: r(3),
            base: r(1),
            offset: (row * 8) as i64,
        });
        body.push(Insn::Vtmpy {
            dst: w(4),
            src: w(0),
            weights: r(3),
            acc: row > 0,
        });
    }
    body.push(Insn::VasrHB {
        dst: v(6),
        src: w(4),
        shift: 6,
    });
    body.push(Insn::VStore {
        src: v(6),
        base: r(2),
        offset: 0,
    });
    body.push(Insn::AddI {
        dst: r(0),
        a: r(0),
        imm: VBYTES as i64,
    });
    body.push(Insn::AddI {
        dst: r(2),
        a: r(2),
        imm: VBYTES as i64,
    });
    vec![body]
}

/// Host-side im2col: lowers a CHW feature map to the GEMM activation
/// matrix (`out_spatial × C·kh·kw`) consumed by the matmul kernels, with
/// zero padding. Out-of-range taps read 0 (the additive identity of the
/// quantized MACs).
///
/// # Panics
/// Panics if `input.len() != c * h * w` or the convolution does not fit.
#[allow(clippy::too_many_arguments)]
pub fn im2col_chw(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    layout: Layout,
) -> MatrixU8 {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    MatrixU8::from_fn(out_h * out_w, c * kh * kw, layout, |o, col| {
        let (oy, ox) = (o / out_w, o % out_w);
        let ch = col / (kh * kw);
        let (dy, dx) = ((col % (kh * kw)) / kw, col % kw);
        let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
        let x = (ox * stride.1 + dx) as isize - padding.1 as isize;
        if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
            0
        } else {
            input[ch * h * w + y as usize * w + x as usize]
        }
    })
}

/// [`im2col_chw`] into a caller-provided row-major buffer — the
/// allocation-free staging path of the inference plan executor. `out`
/// must hold exactly `out_spatial × c·kh·kw` bytes and is fully
/// overwritten (padding taps become 0). Contiguous kernel-row spans are
/// copied as slices, so this is the fast path for repeated execution.
///
/// Output pixels are processed in L1-sized chunks (see
/// [`IM2COL_WINDOW_BYTES`]) with the `(channel, dy)` sweep *outside*
/// the per-pixel copy: for each source
/// row the chunk reads a short contiguous segment that stays in L1 while
/// the chunk's write window stays in L2, instead of hopping across every
/// channel plane per output pixel. For megapixel activations with many
/// channels this turns the staging pass from cache-miss-bound to
/// copy-bound. The bytes written are identical to the naive nest: a
/// chunk whose taps are all in range is fully overwritten by the copies;
/// any chunk touching padding is pre-zeroed and then partially written,
/// exactly like the old global `fill(0)` + partial-copy scheme.
///
/// # Panics
/// Panics if `input.len() != c * h * w` or `out` has the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn im2col_rm_into(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    out: &mut [u8],
) {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let k = c * kh * kw;
    assert_eq!(out.len(), out_h * out_w * k, "im2col buffer size mismatch");
    // Chunk width scales inversely with k so the write window stays
    // cache-resident even for very wide patch rows (e.g. 32·9·9 =
    // 2592). When a whole output row fits in a few windows' worth of
    // bytes, take it in one chunk: each chunk re-walks every source row
    // of the `(channel, dy)` sweep, so fewer, wider chunks amortize
    // that setup better than strict window adherence.
    let ox_block = if out_w * k <= 3 * IM2COL_WINDOW_BYTES {
        out_w.max(1)
    } else {
        (IM2COL_WINDOW_BYTES / k.max(1)).clamp(4, 256)
    };
    for oy in 0..out_h {
        let y0 = (oy * stride.0) as isize - padding.0 as isize;
        // Every dy tap lands in [0, h) for this output row?
        let dy_full = y0 >= 0 && (y0 as usize) + kh <= h;
        let mut oxb = 0usize;
        while oxb < out_w {
            let oxe = (oxb + ox_block).min(out_w);
            // Every dx tap in range for every pixel of the chunk?
            // x is monotone in ox, so checking the chunk ends suffices.
            let x_first = (oxb * stride.1) as isize - padding.1 as isize;
            let x_last = ((oxe - 1) * stride.1) as isize - padding.1 as isize;
            let interior = dy_full && x_first >= 0 && (x_last as usize) + kw <= w;
            let win = &mut out[(oy * out_w + oxb) * k..(oy * out_w + oxe) * k];
            if !interior {
                win.fill(0);
            }
            for ch in 0..c {
                let plane = &input[ch * h * w..(ch + 1) * h * w];
                for dy in 0..kh {
                    let y = y0 + dy as isize;
                    if y < 0 || y as usize >= h {
                        continue;
                    }
                    let srow = &plane[y as usize * w..(y as usize + 1) * w];
                    let dbase = ch * kh * kw + dy * kw;
                    if interior {
                        if kw < 8 && dbase + 8 <= k {
                            // Narrow taps (3×3 convs copy 3 bytes at a
                            // time) dominate staging cost, so widen each
                            // copy to one overlapping 8-byte store: the
                            // bytes past `kw` land in slots of *later*
                            // `(ch, dy)` passes, which overwrite them
                            // (the sweep ascends and, interior ⇒
                            // `dy_full`, never skips a pass). The last
                            // slots of a pixel row (`dbase + 8 > k`) and
                            // right-edge sources keep the exact copy.
                            // The 8-byte span ends where x0 + 8 > w;
                            // x0 is monotone in ox, so hoist that bound
                            // (and the index arithmetic) out of the loop
                            // — the fast span is one load/store and two
                            // pointer bumps per pixel.
                            let fast_end = if w + padding.1 >= 8 {
                                ((w + padding.1 - 8) / stride.1 + 1).clamp(oxb, oxe)
                            } else {
                                oxb
                            };
                            // SAFETY: interior ⇒ oxb·s - pad >= 0; ox <
                            // fast_end ⇒ x0 + 8 <= w keeps each
                            // unaligned u64 read inside srow; dst + 8 <=
                            // i·k + k <= win.len() keeps each store in
                            // its pixel's row.
                            unsafe {
                                let mut src = srow.as_ptr().add(oxb * stride.1 - padding.1);
                                let mut dst = win.as_mut_ptr().add(dbase);
                                for _ in oxb..fast_end {
                                    (dst as *mut u64)
                                        .write_unaligned((src as *const u64).read_unaligned());
                                    src = src.add(stride.1);
                                    dst = dst.add(k);
                                }
                            }
                            for (i, ox) in (fast_end..oxe).enumerate() {
                                let x0 = ox * stride.1 - padding.1;
                                let dst = (fast_end - oxb + i) * k + dbase;
                                win[dst..dst + kw].copy_from_slice(&srow[x0..x0 + kw]);
                            }
                        } else {
                            for (i, ox) in (oxb..oxe).enumerate() {
                                let x0 = ox * stride.1 - padding.1;
                                let dst = i * k + dbase;
                                win[dst..dst + kw].copy_from_slice(&srow[x0..x0 + kw]);
                            }
                        }
                    } else {
                        for (i, ox) in (oxb..oxe).enumerate() {
                            let x0 = (ox * stride.1) as isize - padding.1 as isize;
                            let dx_lo = (-x0).max(0) as usize;
                            let dx_hi = ((w as isize - x0).max(0) as usize).min(kw);
                            if dx_lo >= dx_hi {
                                continue;
                            }
                            let src = (x0 + dx_lo as isize) as usize;
                            let dst = i * k + dbase;
                            win[dst + dx_lo..dst + dx_hi]
                                .copy_from_slice(&srow[src..src + (dx_hi - dx_lo)]);
                        }
                    }
                }
            }
            oxb = oxe;
        }
    }
}

/// Write-window budget for one [`im2col_rm_into`] chunk
/// (`chunk × c·kh·kw` bytes): the `(channel, dy)` sweep revisits the
/// window `c·kh` times per chunk, so the window must stay cache-
/// resident; but each pass also touches every source row once, so
/// narrower chunks multiply the per-row setup and TLB cost. Each pass
/// strides the window by `k`, touching one cache line per pixel, so the
/// window must fit L1d for the stores to stay hits — 32 KiB (below the
/// common 48 KiB L1d, 14–56 pixels for the model zoo's widest patch
/// rows) measured decisively faster than 64 KiB once the interior copy
/// loop was reduced to pointer bumps.
const IM2COL_WINDOW_BYTES: usize = 32 * 1024;

/// Direct depthwise convolution with one shared `kh·kw` filter column —
/// the runtime's block-diagonal depthwise GEMM collapsed back into a
/// sliding-window loop. Bit-identical to staging per-channel im2col rows
/// and multiplying by the `k × 1` weight matrix (`i32` accumulation is
/// order-independent and padding taps contribute zero), but with no
/// staging buffer and no per-row GEMM dispatch. `out` is resized to
/// `out_len` (≤ `c·oh·ow`; the runtime truncates to the node's element
/// count).
///
/// # Panics
/// Panics if `input.len() != c * h * w` or `weights.len() != kh * kw`.
#[allow(clippy::too_many_arguments)]
pub fn dwconv_direct_into(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    weights: &[i8],
    shift: u8,
    act_max: u8,
    out_len: usize,
    out: &mut Vec<u8>,
) {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    assert_eq!(weights.len(), kh * kw, "weight size mismatch");
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    out.clear();
    out.resize(out_len, 0);
    let mut r = 0usize;
    'rows: for ch in 0..c {
        let chan = &input[ch * h * w..(ch + 1) * h * w];
        for oy in 0..out_h {
            for ox in 0..out_w {
                if r >= out_len {
                    break 'rows;
                }
                let mut acc: i32 = 0;
                let x0 = (ox * stride.1) as isize - padding.1 as isize;
                for dy in 0..kh {
                    let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
                    if y < 0 || y as usize >= h {
                        continue;
                    }
                    let row = &chan[y as usize * w..(y as usize + 1) * w];
                    let wrow = &weights[dy * kw..(dy + 1) * kw];
                    for (dx, &wv) in wrow.iter().enumerate() {
                        let x = x0 + dx as isize;
                        if x < 0 || x as usize >= w {
                            continue;
                        }
                        acc += row[x as usize] as i32 * wv as i32;
                    }
                }
                out[r] = ((acc >> shift).clamp(0, 255) as u8).min(act_max);
                r += 1;
            }
        }
    }
}

/// Direct CHW convolution for narrow output-channel counts — the
/// runtime's im2col staging + narrow GEMM + CHW scatter collapsed into
/// one sliding-window pass. For a handful of output channels the im2col
/// matrix is enormously wider than the output (`c·kh·kw` vs `n` bytes
/// per pixel), so skipping the staging matrix entirely removes the
/// dominant memory traffic of layers like a 3-channel image-synthesis
/// head.
///
/// Bit-identical to the staged path: every output is
/// `clamp((Σ_taps in-range input·weight) >> shift, 0, 255).min(act_max)`
/// with wrapping i32 accumulation (order-independent), padding taps
/// contribute zero exactly like im2col's zero fill, and the CHW write
/// order matches the executor's scatter. `weights` is the `c·kh·kw × n`
/// row-major GEMM weight matrix ([`conv_weights_as_gemm`]). `out` is
/// resized to `out_len` and truncated to it, mirroring the scatter.
///
/// Interior pixels of each output row take a vectorized path when the
/// horizontal stride is 1 (AVX-512: 16 pixels per step, AVX2: 8),
/// honoring the same runtime ISA dispatch as the GEMM kernels
/// (`GCD2_FORCE_SCALAR` forces the scalar loop). Other ISAs and border
/// pixels run the scalar loop.
///
/// # Panics
/// Panics if `input.len() != c * h * w` or
/// `weights.len() != c * kh * kw * n`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_direct_chw_into(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    weights: &[i8],
    n: usize,
    shift: u8,
    act_max: u8,
    out_len: usize,
    out: &mut Vec<u8>,
) {
    assert_eq!(input.len(), c * h * w, "input size mismatch");
    let (kh, kw) = kernel;
    let k = c * kh * kw;
    assert_eq!(weights.len(), k * n, "weight size mismatch");
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let spatial = out_h * out_w;
    out.clear();
    out.resize(out_len, 0);
    let lanes = direct_conv_lanes();
    // Interior ox range where every horizontal tap is in bounds (unit
    // horizontal stride only — the vector path loads contiguous pixels).
    let (lo, hi) = if stride.1 == 1 {
        (
            padding.1.min(out_w),
            (w + padding.1 + 1).saturating_sub(kw).min(out_w),
        )
    } else {
        (0, 0)
    };
    // Multi-channel mode: when every output plane fits the slot and the
    // AVX-512 tier is active, sweep the taps once per group of up to 4
    // channels so the pixel loads are shared (and, with VBMI+VNNI, fused
    // four taps at a time). Falls back to the per-channel path below for
    // truncated slots, narrow tiers, and non-unit horizontal strides.
    #[cfg(target_arch = "x86_64")]
    if lanes == 16 && hi > lo && n * spatial <= out_len {
        direct_conv_mc(
            input, c, h, w, kernel, stride, padding, weights, n, shift, act_max, out, out_h, out_w,
            lo, hi,
        );
        return;
    }
    let mut wj = vec![0i8; k];
    for j in 0..n {
        let plane = j * spatial;
        if plane >= out_len {
            break;
        }
        // Column j of the GEMM weights, contiguous per tap.
        for (t, dst) in wj.iter_mut().enumerate() {
            *dst = weights[t * n + j];
        }
        let full = plane + spatial <= out_len;
        for oy in 0..out_h {
            let row = plane + oy * out_w;
            let mut ox = 0usize;
            while ox < out_w {
                if full && lanes != 0 && ox >= lo && ox + 4 * lanes <= hi {
                    // Wide step: 4 vector groups per tap sweep — the tap
                    // loop itself (bounds checks, weight fetches) costs
                    // as much as the arithmetic, so amortize it.
                    // SAFETY: the interior range guarantees every lane's
                    // horizontal taps are in [0, w), the vector ISA was
                    // runtime-detected, and the destination row slice
                    // holds exactly 4·lanes bytes.
                    unsafe {
                        direct_conv_vec::<4>(
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            ox - padding.1,
                            &wj,
                            shift,
                            act_max,
                            &mut out[row + ox..row + ox + 4 * lanes],
                        );
                    }
                    ox += 4 * lanes;
                } else if full && lanes != 0 && ox >= lo && ox + lanes <= hi {
                    // SAFETY: the interior range guarantees every lane's
                    // horizontal taps are in [0, w), the vector ISA was
                    // runtime-detected, and the destination row slice
                    // holds exactly `lanes` bytes.
                    unsafe {
                        direct_conv_vec::<1>(
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            ox - padding.1,
                            &wj,
                            shift,
                            act_max,
                            &mut out[row + ox..row + ox + lanes],
                        );
                    }
                    ox += lanes;
                } else {
                    let v = direct_conv_px(
                        input, c, h, w, kh, kw, stride, padding, &wj, oy, ox, shift, act_max,
                    );
                    if let Some(slot) = out.get_mut(row + ox) {
                        *slot = v;
                    }
                    ox += 1;
                }
            }
        }
    }
}

/// Scalar single-pixel path of [`conv2d_direct_chw_into`]: borders,
/// vector remainders, non-unit horizontal strides, and the scalar ISA.
#[allow(clippy::too_many_arguments)]
fn direct_conv_px(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: (usize, usize),
    padding: (usize, usize),
    wj: &[i8],
    oy: usize,
    ox: usize,
    shift: u8,
    act_max: u8,
) -> u8 {
    let mut sum = 0i32;
    let x0 = (ox * stride.1) as isize - padding.1 as isize;
    for ch in 0..c {
        let plane = &input[ch * h * w..(ch + 1) * h * w];
        let wch = &wj[ch * kh * kw..(ch + 1) * kh * kw];
        for dy in 0..kh {
            let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
            if y < 0 || y as usize >= h {
                continue;
            }
            let srow = &plane[y as usize * w..(y as usize + 1) * w];
            let wrow = &wch[dy * kw..(dy + 1) * kw];
            for (dx, &wv) in wrow.iter().enumerate() {
                let x = x0 + dx as isize;
                if x < 0 || x as usize >= w {
                    continue;
                }
                let av = srow[x as usize];
                if av != 0 {
                    sum = sum.wrapping_add(av as i32 * wv as i32);
                }
            }
        }
    }
    ((sum >> shift).clamp(0, 255) as u8).min(act_max)
}

/// Vector lane width of the direct-conv interior path for the active
/// ISA (0 = no vector path; the scalar loop handles everything).
#[cfg(target_arch = "x86_64")]
fn direct_conv_lanes() -> usize {
    match crate::dispatch::detected_isa() {
        // The AMX tier implies AVX-512F, which is all the interior
        // kernel needs.
        crate::dispatch::KernelIsa::Avx512Vnni | crate::dispatch::KernelIsa::AmxInt8 => 16,
        crate::dispatch::KernelIsa::Avx2 => 8,
        _ => 0,
    }
}

/// Non-x86 hosts (including NEON) currently run the scalar loop.
#[cfg(not(target_arch = "x86_64"))]
fn direct_conv_lanes() -> usize {
    0
}

/// Dispatches one interior vector step (`G` groups of
/// [`direct_conv_lanes`] pixels) to the active ISA's kernel.
///
/// # Safety
/// Same contract as [`crate::simd::x86::conv_interior_avx512`] /
/// [`crate::simd::x86::conv_interior_avx2`]; only callable when
/// `dst.len() == G ·` [`direct_conv_lanes`].
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_conv_vec<const G: usize>(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    sy: usize,
    py: usize,
    oy: usize,
    x0: usize,
    wj: &[i8],
    shift: u8,
    act_max: u8,
    dst: &mut [u8],
) {
    match crate::dispatch::detected_isa() {
        crate::dispatch::KernelIsa::Avx512Vnni | crate::dispatch::KernelIsa::AmxInt8 => {
            // SAFETY: ISA detected at runtime; caller upholds the
            // interior-range and G·16-byte-destination contract.
            unsafe {
                crate::simd::x86::conv_interior_avx512::<G>(
                    input, c, h, w, kh, kw, sy, py, oy, x0, wj, shift, act_max, dst,
                )
            }
        }
        crate::dispatch::KernelIsa::Avx2 => {
            // SAFETY: ISA detected at runtime; caller upholds the
            // interior-range and G·8-byte-destination contract.
            unsafe {
                crate::simd::x86::conv_interior_avx2::<G>(
                    input, c, h, w, kh, kw, sy, py, oy, x0, wj, shift, act_max, dst,
                )
            }
        }
        _ => unreachable!("direct_conv_vec called without a vector ISA"),
    }
}

/// Stub so the call site needs no `cfg`; unreachable because
/// [`direct_conv_lanes`] returns 0 off x86.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_conv_vec<const G: usize>(
    _input: &[u8],
    _c: usize,
    _h: usize,
    _w: usize,
    _kh: usize,
    _kw: usize,
    _sy: usize,
    _py: usize,
    _oy: usize,
    _x0: usize,
    _wj: &[i8],
    _shift: u8,
    _act_max: u8,
    _dst: &mut [u8],
) {
    unreachable!("no vector direct-conv path on this architecture")
}

/// Multi-channel direct-conv driver: one interior sweep per group of up
/// to 4 output channels, sharing every pixel load across the group (see
/// [`crate::simd::x86::conv_interior_mc_avx512`]). On VBMI+VNNI hosts
/// the interior additionally runs the quad-tap `vpdpbusd` kernel, whose
/// wider 32-byte fragment loads need their own right-edge bound — pixels
/// past it drop to the plain multiply kernel, and the strips outside
/// `[lo, hi)` plus vector remainders run the scalar-oracle loop
/// per channel. Caller guarantees the AVX-512 tier, `hi > lo`, and
/// `n·out_h·out_w <= out.len()`.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn direct_conv_mc(
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    weights: &[i8],
    n: usize,
    shift: u8,
    act_max: u8,
    out: &mut [u8],
    out_h: usize,
    out_w: usize,
    lo: usize,
    hi: usize,
) {
    let (kh, kw) = kernel;
    let k = c * kh * kw;
    let spatial = out_h * out_w;
    let nq = kw.div_ceil(4);
    // Weight columns, channel-major taps (what the kernels and the
    // scalar loop index), then the zero-padded 4-tap quads for VNNI.
    let mut wcols = vec![0i8; n * k];
    for j in 0..n {
        for (t, dst) in wcols[j * k..(j + 1) * k].iter_mut().enumerate() {
            *dst = weights[t * n + j];
        }
    }
    let quad = quad_conv_available();
    let mut wquads = vec![0i32; if quad { n * c * kh * nq } else { 0 }];
    if quad {
        for j in 0..n {
            for ch in 0..c {
                for dy in 0..kh {
                    for q in 0..nq {
                        let mut b = [0u8; 4];
                        for (t, byte) in b.iter_mut().enumerate() {
                            let dx = 4 * q + t;
                            if dx < kw {
                                *byte = wcols[j * k + (ch * kh + dy) * kw + dx] as u8;
                            }
                        }
                        wquads[((j * c + ch) * kh + dy) * nq + q] = i32::from_le_bytes(b);
                    }
                }
            }
        }
    }
    for j0 in (0..n).step_by(4) {
        let g = (n - j0).min(4);
        let wc = &wcols[j0 * k..(j0 + g) * k];
        let wq = &wquads[if quad { j0 * c * kh * nq } else { 0 }..if quad {
            (j0 + g) * c * kh * nq
        } else {
            0
        }];
        for oy in 0..out_h {
            let dbase = oy * out_w;
            let mut ox = lo;
            while ox + 64 <= hi {
                let x0 = ox - padding.1;
                // SAFETY: interior range ⇒ every horizontal tap (and, on
                // the quad path, every 32-byte fragment, by the explicit
                // bound) is inside the source row; n·spatial <= out.len()
                // covers the 4·16-byte stores of each of the g planes.
                unsafe {
                    if quad && x0 + 4 * (nq - 1) + 48 + 32 <= w {
                        mc_vnni_dyn::<4>(
                            g,
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            x0,
                            wq,
                            shift,
                            act_max,
                            out,
                            j0 * spatial + dbase + ox,
                            spatial,
                        );
                    } else {
                        mc_mullo_dyn::<4>(
                            g,
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            x0,
                            wc,
                            shift,
                            act_max,
                            out,
                            j0 * spatial + dbase + ox,
                            spatial,
                        );
                    }
                }
                ox += 64;
            }
            while ox + 16 <= hi {
                let x0 = ox - padding.1;
                // SAFETY: same contracts with a single 16-pixel group.
                unsafe {
                    if quad && x0 + 4 * (nq - 1) + 32 <= w {
                        mc_vnni_dyn::<1>(
                            g,
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            x0,
                            wq,
                            shift,
                            act_max,
                            out,
                            j0 * spatial + dbase + ox,
                            spatial,
                        );
                    } else {
                        mc_mullo_dyn::<1>(
                            g,
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            x0,
                            wc,
                            shift,
                            act_max,
                            out,
                            j0 * spatial + dbase + ox,
                            spatial,
                        );
                    }
                }
                ox += 16;
            }
            if ox < hi && hi >= lo + 16 {
                // Overlap step: the outputs are a pure function of the
                // inputs, so recomputing the last 16 interior pixels at
                // hi-16 (rewriting up to 15 already-stored bytes with
                // the same values) is idempotent — and far cheaper than
                // finishing the ragged tail in the scalar tap loop.
                let oxl = hi - 16;
                let x0 = oxl - padding.1;
                // SAFETY: oxl >= lo and oxl + 16 <= hi: the same
                // interior and store contracts as the loop above.
                unsafe {
                    if quad && x0 + 4 * (nq - 1) + 32 <= w {
                        mc_vnni_dyn::<1>(
                            g,
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            x0,
                            wq,
                            shift,
                            act_max,
                            out,
                            j0 * spatial + dbase + oxl,
                            spatial,
                        );
                    } else {
                        mc_mullo_dyn::<1>(
                            g,
                            input,
                            c,
                            h,
                            w,
                            kh,
                            kw,
                            stride.0,
                            padding.0,
                            oy,
                            x0,
                            wc,
                            shift,
                            act_max,
                            out,
                            j0 * spatial + dbase + oxl,
                            spatial,
                        );
                    }
                }
                ox = hi;
            }
            for j in 0..g {
                let wj = &wcols[(j0 + j) * k..(j0 + j + 1) * k];
                let rowbase = (j0 + j) * spatial + dbase;
                for oxs in (0..lo).chain(ox..out_w) {
                    out[rowbase + oxs] = direct_conv_px(
                        input, c, h, w, kh, kw, stride, padding, wj, oy, oxs, shift, act_max,
                    );
                }
            }
        }
    }
}

/// Whether the quad-tap direct-conv kernel can run: the sliding-window
/// shuffle needs AVX-512VBMI and the fused dot product AVX-512VNNI
/// (detected once; the caller already established the AVX-512 tier).
#[cfg(target_arch = "x86_64")]
fn quad_conv_available() -> bool {
    use std::sync::OnceLock;
    static QUAD: OnceLock<bool> = OnceLock::new();
    *QUAD.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512vbmi")
            && std::arch::is_x86_feature_detected!("avx512vnni")
            && std::arch::is_x86_feature_detected!("avx512bw")
    })
}

/// Monomorphization ladder for the runtime channel-group width (1–4)
/// of the plain multi-channel kernel.
///
/// # Safety
/// Same contract as [`crate::simd::x86::conv_interior_mc_avx512`] with
/// `N = g`; `g` must be in `1..=4`.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn mc_mullo_dyn<const G: usize>(
    g: usize,
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    sy: usize,
    py: usize,
    oy: usize,
    x0: usize,
    wcols: &[i8],
    shift: u8,
    act_max: u8,
    out: &mut [u8],
    dst0: usize,
    plane: usize,
) {
    use crate::simd::x86::conv_interior_mc_avx512 as f;
    // SAFETY: contract forwarded from the caller for the matching N.
    unsafe {
        match g {
            1 => f::<1, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wcols, shift, act_max, out, dst0, plane,
            ),
            2 => f::<2, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wcols, shift, act_max, out, dst0, plane,
            ),
            3 => f::<3, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wcols, shift, act_max, out, dst0, plane,
            ),
            _ => f::<4, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wcols, shift, act_max, out, dst0, plane,
            ),
        }
    }
}

/// Monomorphization ladder for the quad-tap VNNI kernel.
///
/// # Safety
/// Same contract as [`crate::simd::x86::conv_interior_mc_vnni`] with
/// `N = g`; `g` must be in `1..=4`.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn mc_vnni_dyn<const G: usize>(
    g: usize,
    input: &[u8],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    sy: usize,
    py: usize,
    oy: usize,
    x0: usize,
    wquads: &[i32],
    shift: u8,
    act_max: u8,
    out: &mut [u8],
    dst0: usize,
    plane: usize,
) {
    use crate::simd::x86::conv_interior_mc_vnni as f;
    // SAFETY: contract forwarded from the caller for the matching N.
    unsafe {
        match g {
            1 => f::<1, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wquads, shift, act_max, out, dst0, plane,
            ),
            2 => f::<2, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wquads, shift, act_max, out, dst0, plane,
            ),
            3 => f::<3, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wquads, shift, act_max, out, dst0, plane,
            ),
            _ => f::<4, G>(
                input, c, h, w, kh, kw, sy, py, oy, x0, wquads, shift, act_max, out, dst0, plane,
            ),
        }
    }
}

/// The GEMM weight matrix of a convolution: `C·kh·kw × out_c`, with the
/// same column order [`im2col_chw`] produces.
pub fn conv_weights_as_gemm(
    weights: &[i8],
    c: usize,
    out_c: usize,
    kernel: (usize, usize),
) -> MatrixI8 {
    let k = c * kernel.0 * kernel.1;
    assert_eq!(weights.len(), out_c * k, "weight size mismatch");
    // Weights arrive [out_c][c][kh][kw]; the GEMM wants [k][out_c].
    MatrixI8::from_fn(k, out_c, |kk, oc| weights[oc * k + kk])
}

/// Direct (scalar) convolution reference over a CHW map, with the same
/// requantization as the kernels.
#[allow(clippy::too_many_arguments)]
pub fn conv_ref_chw(
    input: &[u8],
    weights: &[i8],
    c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    shift: u8,
) -> Vec<u8> {
    let (kh, kw) = kernel;
    let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
    let out_w = (w + 2 * padding.1 - kw) / stride.1 + 1;
    let mut out = vec![0u8; out_c * out_h * out_w];
    for oc in 0..out_c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc: i32 = 0;
                for ch in 0..c {
                    for dy in 0..kh {
                        for dx in 0..kw {
                            let y = (oy * stride.0 + dy) as isize - padding.0 as isize;
                            let x = (ox * stride.1 + dx) as isize - padding.1 as isize;
                            if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
                                continue;
                            }
                            let a = input[ch * h * w + y as usize * w + x as usize] as i32;
                            let wgt =
                                weights[oc * c * kh * kw + ch * kh * kw + dy * kw + dx] as i32;
                            acc += a * wgt;
                        }
                    }
                }
                out[oc * out_h * out_w + oy * out_w + ox] = (acc >> shift).clamp(0, 255) as u8;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_hvx::PackedBlock;

    #[test]
    fn one_by_one_conv_has_no_im2col_cost() {
        let g = GemmDims::new(3136, 64, 64);
        assert_eq!(im2col_overhead_cycles(&g, (1, 1)), 0);
        assert!(im2col_overhead_cycles(&g, (3, 3)) > 0);
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        // conv(x, w) computed as matmul(im2col(x), w) must equal the
        // direct reference elementwise (pre-requantization math).
        let (c, h, w_dim, out_c) = (3usize, 6usize, 5usize, 4usize);
        let kernel = (3, 3);
        let stride = (1, 1);
        let padding = (1, 1);
        let input: Vec<u8> = (0..c * h * w_dim).map(|i| (i % 13) as u8).collect();
        let weights: Vec<i8> = (0..out_c * c * 9).map(|i| ((i % 15) as i8) - 7).collect();
        let a = im2col_chw(
            &input,
            c,
            h,
            w_dim,
            kernel,
            stride,
            padding,
            Layout::RowMajor,
        );
        let wm = conv_weights_as_gemm(&weights, c, out_c, kernel);
        let got = crate::reference::matmul_ref(&a, &wm, 4);
        let expect = conv_ref_chw(
            &input, &weights, c, h, w_dim, out_c, kernel, stride, padding, 4,
        );
        let (out_h, out_w) = (h, w_dim); // stride 1, same padding
        for oc in 0..out_c {
            for o in 0..out_h * out_w {
                assert_eq!(got[o][oc], expect[oc * out_h * out_w + o], "oc={oc} o={o}");
            }
        }
    }

    #[test]
    fn im2col_into_matches_matrix_im2col() {
        // The buffer-reusing row-major path must produce byte-identical
        // staging to the matrix-building reference, including padding
        // and strides.
        for &(c, h, w_dim, kernel, stride, padding) in &[
            (3usize, 6usize, 5usize, (3, 3), (1, 1), (1, 1)),
            (2, 9, 7, (3, 3), (2, 2), (1, 1)),
            (4, 8, 8, (1, 1), (1, 1), (0, 0)),
            (1, 5, 11, (5, 3), (2, 1), (2, 0)),
        ] {
            let input: Vec<u8> = (0..c * h * w_dim).map(|i| 1 + (i % 15) as u8).collect();
            let m = im2col_chw(
                &input,
                c,
                h,
                w_dim,
                kernel,
                stride,
                padding,
                Layout::RowMajor,
            );
            let mut buf = vec![0xAA; m.rows() * m.cols()];
            im2col_rm_into(&input, c, h, w_dim, kernel, stride, padding, &mut buf);
            assert_eq!(buf, m.as_bytes(), "c={c} h={h} w={w_dim} k={kernel:?}");
        }
    }

    #[test]
    fn direct_conv_matches_staged_narrow_gemm() {
        // The narrow-output direct path must be bit-identical to the
        // im2col + GEMM + CHW-scatter pipeline it replaces, on whatever
        // ISA dispatch selects (widths ≥ 16+kw exercise the vector
        // interior; stride-2 and zero-padding rows exercise the scalar
        // borders).
        for &(c, h, w_dim, n, kernel, stride, padding) in &[
            (2usize, 10usize, 40usize, 3usize, (3, 3), (1, 1), (1, 1)),
            (3, 12, 37, 1, (5, 5), (1, 1), (2, 2)),
            (1, 9, 24, 5, (3, 3), (2, 2), (1, 1)),
            (2, 7, 21, 15, (3, 3), (1, 1), (0, 0)),
            // Wide rows: the 64-pixel interior sweep, the quad-tap path
            // where its fragment bound allows (x0 + 84 <= w) and the
            // plain kernel past it, plus scalar right-edge remainders.
            (3, 9, 140, 3, (7, 7), (1, 1), (3, 3)),
            // Six channels split into a 4-group and a 2-group.
            (2, 8, 100, 6, (3, 3), (1, 1), (1, 1)),
        ] {
            let (kh, kw) = kernel;
            let k = c * kh * kw;
            let shift = 4u8;
            let act_max = 15u8;
            let input: Vec<u8> = (0..c * h * w_dim).map(|i| ((i * 7) % 16) as u8).collect();
            let wd: Vec<i8> = (0..k * n).map(|i| ((i % 5) as i8) - 2).collect();
            let a = im2col_chw(
                &input,
                c,
                h,
                w_dim,
                kernel,
                stride,
                padding,
                Layout::RowMajor,
            );
            let wm = MatrixI8::from_fn(k, n, |kk, j| wd[kk * n + j]);
            let gemm = crate::reference::matmul_ref(&a, &wm, shift);
            let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
            let out_w = (w_dim + 2 * padding.1 - kw) / stride.1 + 1;
            let spatial = out_h * out_w;
            let mut expect = vec![0u8; n * spatial];
            for o in 0..spatial {
                for j in 0..n {
                    expect[j * spatial + o] = gemm[o][j].min(act_max);
                }
            }
            let mut got = Vec::new();
            conv2d_direct_chw_into(
                &input,
                c,
                h,
                w_dim,
                kernel,
                stride,
                padding,
                &wd,
                n,
                shift,
                act_max,
                n * spatial,
                &mut got,
            );
            assert_eq!(got, expect, "c={c} h={h} w={w_dim} n={n}");

            // Truncated out_len mirrors the scatter's resize semantics.
            let cut = n * spatial - spatial / 2 - 1;
            let mut short = Vec::new();
            conv2d_direct_chw_into(
                &input, c, h, w_dim, kernel, stride, padding, &wd, n, shift, act_max, cut,
                &mut short,
            );
            assert_eq!(short.as_slice(), &expect[..cut], "truncated n={n}");
        }
    }

    #[test]
    fn dwconv_direct_matches_im2col_gemm() {
        // The direct sliding-window path must be bit-identical to the
        // block-diagonal im2col + k×1 GEMM lowering it replaces.
        for &(c, h, w_dim, kernel, stride, padding) in &[
            (3usize, 8usize, 8usize, (3, 3), (1, 1), (1, 1)),
            (2, 9, 7, (3, 3), (2, 2), (1, 1)),
            (4, 10, 6, (5, 5), (1, 1), (2, 2)),
            (1, 5, 5, (2, 2), (2, 2), (0, 0)),
        ] {
            let (kh, kw) = kernel;
            let input: Vec<u8> = (0..c * h * w_dim).map(|i| (i % 16) as u8).collect();
            let weights: Vec<i8> = (0..kh * kw).map(|i| ((i % 5) as i8) - 2).collect();
            let out_h = (h + 2 * padding.0 - kh) / stride.0 + 1;
            let out_w = (w_dim + 2 * padding.1 - kw) / stride.1 + 1;
            let (m, k) = (c * out_h * out_w, kh * kw);
            // Reference: per-channel im2col rows × k×1 weights.
            let mut a = vec![0u8; m * k];
            for ch in 0..c {
                im2col_rm_into(
                    &input[ch * h * w_dim..(ch + 1) * h * w_dim],
                    1,
                    h,
                    w_dim,
                    kernel,
                    stride,
                    padding,
                    &mut a[ch * out_h * out_w * k..(ch + 1) * out_h * out_w * k],
                );
            }
            let wmat = MatrixI8::from_fn(k, 1, |kk, _| weights[kk]);
            let mut gemm_out = Vec::new();
            crate::tiled::matmul_blocked_into(
                &a,
                m,
                k,
                &wmat,
                3,
                &mut crate::tiled::GemmScratch::default(),
                &mut gemm_out,
            );
            let expect: Vec<u8> = gemm_out.iter().map(|&v| v.min(15)).collect();
            let mut got = Vec::new();
            dwconv_direct_into(
                &input, c, h, w_dim, kernel, stride, padding, &weights, 3, 15, m, &mut got,
            );
            assert_eq!(got, expect, "c={c} h={h} w={w_dim} k={kernel:?}");
            // Truncated output lengths match the runtime's clipping.
            let mut short = Vec::new();
            dwconv_direct_into(
                &input,
                c,
                h,
                w_dim,
                kernel,
                stride,
                padding,
                &weights,
                3,
                15,
                m / 2,
                &mut short,
            );
            assert_eq!(short, expect[..m / 2]);
        }
    }

    #[test]
    fn vtmpy_kernel_scales_with_kernel_height() {
        let c3: u64 = depthwise_vtmpy_blocks(4096, 3)
            .iter()
            .map(|b| PackedBlock::sequential(b).stats().cycles)
            .sum();
        let c1: u64 = depthwise_vtmpy_blocks(4096, 1)
            .iter()
            .map(|b| PackedBlock::sequential(b).stats().cycles)
            .sum();
        assert!(c3 > 2 * c1);
    }
}
