//! AMX-INT8 tile GEMM band kernel (Sapphire-Rapids-class x86-64).
//!
//! `tdpbusd` multiplies a 16×64 u8 tile by a 64×16 i8 tile (presented as
//! 16 quad-interleaved rows) and accumulates into a 16×16 i32 tile —
//! 16384 MACs per instruction, an order of magnitude past `vpdpbusd`.
//! The accumulate is plain two's-complement (wrapping) dword addition,
//! the same semantics as `vpdpbusd` and the scalar oracle's
//! `wrapping_add`, so the tile kernel slots into the bit-exactness
//! contract of [`crate::simd`] unchanged: any cover of the reduction by
//! tiles produces identical bytes.
//!
//! The B operand reuses the VNNI quad panel verbatim: a `tdpbusd` B tile
//! for columns `j..j+16` and quads `q0..q0+16` is exactly the 16 rows of
//! 64 contiguous bytes at `quads[q0·4n + 4j]` with stride `4n` — the
//! layout [`crate::simd::pack_quads_i8`] already emits. No second pack.
//!
//! Rust has no stable AMX intrinsics, so the tile instructions are
//! inline assembly. That also sidesteps `#[target_feature]`: the CPUID
//! and kernel-permission gate in [`amx_available`] is the only guard,
//! checked once at dispatch-table resolution.
//!
//! Shape coverage: bands with `n % 16 != 0` or `k < 64` delegate to the
//! VNNI kernel (which itself delegates narrow bands to its
//! reduction-major path); within an eligible band, AMX covers the
//! 16-row × 16-column × 64-deep grid and the VNNI strips finish the
//! `k % 64` reduction tail and the `rows % 16` row remainder against
//! the same accumulator. There is no `kb` segmentation here: one pass
//! over the panel per 16-row group keeps the whole `k × n` panel
//! L2-resident for every model-zoo shape, and re-segmenting would only
//! re-stream the accumulator.

use crate::autotune::TilePlan;
use crate::dispatch::BandArgs;
use crate::simd::{self, requantize};
use core::arch::asm;
use std::sync::OnceLock;

/// `arch_prctl` operation requesting permission to use an XSAVE
/// component (Linux ≥ 5.16; AMX tile data is opt-in per process).
const ARCH_REQ_XCOMP_PERM: u64 = 0x1023;
/// XSAVE component number of the AMX tile data state.
const XFEATURE_XTILEDATA: u64 = 18;

/// Whether this process can execute AMX-INT8 tile instructions:
/// CPUID advertises AMX-TILE + AMX-INT8, the kernel grants the
/// tile-data XSAVE permission, and `GCD2_AMX=0` has not pinned the
/// tier off. Resolved once; the syscall is idempotent.
pub fn amx_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        if std::env::var("GCD2_AMX").is_ok_and(|v| v == "0") {
            return false;
        }
        // The tail/remainder paths run VNNI strips, so AMX is only
        // offered where the VNNI tier would also have been available.
        if !std::arch::is_x86_feature_detected!("avx512f")
            || !std::arch::is_x86_feature_detected!("avx512vnni")
        {
            return false;
        }
        // CPUID.(EAX=7,ECX=0):EDX bit 24 = AMX-TILE, bit 25 = AMX-INT8.
        let leaf7 = core::arch::x86_64::__cpuid_count(7, 0);
        if leaf7.edx & (1 << 24) == 0 || leaf7.edx & (1 << 25) == 0 {
            return false;
        }
        request_tile_permission()
    })
}

/// Asks the kernel for the AMX tile-data XSAVE component. Returns
/// whether the request succeeded; on failure (old kernel, seccomp,
/// disabled XCR0) the dispatcher simply never selects the AMX tier.
fn request_tile_permission() -> bool {
    let ret: i64;
    // SAFETY: raw `arch_prctl(ARCH_REQ_XCOMP_PERM, XTILEDATA)` syscall
    // (x86-64 number 158); it touches no memory and only rcx/r11 are
    // clobbered beyond the declared registers.
    unsafe {
        asm!(
            "syscall",
            inlateout("rax") 158u64 => ret,
            in("rdi") ARCH_REQ_XCOMP_PERM,
            in("rsi") XFEATURE_XTILEDATA,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Loads the uniform tile configuration: all eight tiles 16 rows × 64
/// bytes (palette 1). A tiles hold 16 activation rows of 64 u8, B tiles
/// 16 quad rows of 64 i8, accumulator tiles 16 rows of 16 i32 — one
/// shape serves every operand, so the config is loaded once per band.
///
/// # Safety
/// Caller must have verified [`amx_available`].
unsafe fn configure_tiles() {
    #[repr(C, align(64))]
    struct TileCfg([u8; 64]);
    let mut cfg = TileCfg([0u8; 64]);
    cfg.0[0] = 1; // palette 1
    for t in 0..8 {
        cfg.0[16 + 2 * t] = 64; // colsb, little-endian u16
        cfg.0[48 + t] = 16; // rows
    }
    // SAFETY: per caller contract AMX is permitted; the config block is
    // a valid 64-byte palette-1 descriptor.
    unsafe {
        asm!("ldtilecfg [{0}]", in(reg) cfg.0.as_ptr(), options(nostack, readonly));
    }
}

/// Returns the tile register file to the init state so subsequent
/// context switches don't carry 8 KiB of dead tile state.
///
/// # Safety
/// Caller must have verified [`amx_available`].
unsafe fn release_tiles() {
    // SAFETY: per caller contract AMX is permitted; tilerelease has no
    // operands and no memory effects.
    unsafe {
        asm!("tilerelease", options(nostack, nomem));
    }
}

/// One 32-row × 32-column output block over all full 64-deep k-tiles:
/// four accumulator tiles (tmm0–tmm3), two A tiles (tmm4/tmm5) and two
/// B tiles (tmm6/tmm7) per k-step. The 2×2 shape is the throughput
/// kernel: four `tdpbusd` per four `tileloadd` (the 1×2 shape pays
/// three loads for two), which matters because the tile loads, not the
/// multiplies, bound the smaller shapes. Stores overwrite the i32
/// accumulator block — callers schedule this before any reduction-tail
/// accumulation.
///
/// # Safety
/// As [`tiles_16x32`] with 32 activation rows and 32 accumulator rows
/// available.
#[inline]
unsafe fn tiles_32x32(
    a_row: *const u8,
    k: usize,
    b: *const i8,
    bstride: usize,
    ktiles: usize,
    c: *mut i32,
    n: usize,
) {
    // SAFETY: per the caller contract every tileloadd/tilestored window
    // below stays inside its operand; the tile registers are configured
    // 16×64 and are private to this call (zeroed before use).
    unsafe {
        asm!(
            "tilezero tmm0",
            "tilezero tmm1",
            "tilezero tmm2",
            "tilezero tmm3",
            "2:",
            "tileloadd tmm4, [{a0} + {ka}]",
            "tileloadd tmm6, [{b0} + {bs}]",
            "tileloadd tmm7, [{b1} + {bs}]",
            "tdpbusd tmm0, tmm4, tmm6",
            "tileloadd tmm5, [{a1} + {ka}]",
            "tdpbusd tmm1, tmm4, tmm7",
            "tdpbusd tmm2, tmm5, tmm6",
            "tdpbusd tmm3, tmm5, tmm7",
            "add {a0}, 64",
            "add {a1}, 64",
            "add {b0}, {bstep}",
            "add {b1}, {bstep}",
            "dec {cnt}",
            "jnz 2b",
            a0 = inout(reg) a_row => _,
            a1 = inout(reg) a_row.add(16 * k) => _,
            b0 = inout(reg) b => _,
            b1 = inout(reg) b.add(64) => _,
            cnt = inout(reg) ktiles => _,
            ka = in(reg) k,
            bs = in(reg) bstride,
            bstep = in(reg) bstride * 16,
            options(nostack),
        );
        asm!(
            "tilestored [{c0} + {cs}], tmm0",
            "tilestored [{c1} + {cs}], tmm1",
            "tilestored [{c2} + {cs}], tmm2",
            "tilestored [{c3} + {cs}], tmm3",
            c0 = in(reg) c,
            c1 = in(reg) c.add(16),
            c2 = in(reg) c.add(16 * n),
            c3 = in(reg) c.add(16 * n + 16),
            cs = in(reg) n * 4,
            options(nostack),
        );
    }
}

/// One 16-row × 32-column output block over all full 64-deep k-tiles:
/// two accumulator tiles (tmm0/tmm1), one shared A tile per k-step
/// (tmm4) and two B tiles (tmm6/tmm7), stored straight into the i32
/// accumulator block (overwriting it — callers schedule this before any
/// reduction-tail accumulation).
///
/// # Safety
/// Caller must have verified [`amx_available`] and loaded
/// [`configure_tiles`]; `a_row` must point at ≥ `15·k + 64·ktiles`
/// readable bytes, `b` at the quad panel position for this column pair
/// with `ktiles·16` quad rows of stride `bstride` available, and `c` at
/// an i32 block with row stride `n` holding 16 rows × 32 columns.
/// `ktiles ≥ 1`.
#[inline]
unsafe fn tiles_16x32(
    a_row: *const u8,
    k: usize,
    b: *const i8,
    bstride: usize,
    ktiles: usize,
    c: *mut i32,
    n: usize,
) {
    // SAFETY: per the caller contract every tileloadd/tilestored window
    // below stays inside its operand; the tile registers are configured
    // 16×64 and are private to this block (zeroed before use).
    unsafe {
        asm!(
            "tilezero tmm0",
            "tilezero tmm1",
            "2:",
            "tileloadd tmm4, [{a} + {ka}]",
            "tileloadd tmm6, [{b0} + {bs}]",
            "tileloadd tmm7, [{b1} + {bs}]",
            "tdpbusd tmm0, tmm4, tmm6",
            "tdpbusd tmm1, tmm4, tmm7",
            "add {a}, 64",
            "add {b0}, {bstep}",
            "add {b1}, {bstep}",
            "dec {cnt}",
            "jnz 2b",
            "tilestored [{c0} + {cs}], tmm0",
            "tilestored [{c1} + {cs}], tmm1",
            a = inout(reg) a_row => _,
            b0 = inout(reg) b => _,
            b1 = inout(reg) b.add(64) => _,
            cnt = inout(reg) ktiles => _,
            ka = in(reg) k,
            bs = in(reg) bstride,
            bstep = in(reg) bstride * 16,
            c0 = in(reg) c,
            c1 = in(reg) c.add(16),
            cs = in(reg) n * 4,
            options(nostack),
        );
    }
}

/// One 16-row × 16-column output block over all full 64-deep k-tiles —
/// the `n % 32 == 16` column tail of [`tiles_16x32`].
///
/// # Safety
/// As [`tiles_16x32`], with a single 16-column B/accumulator window.
#[inline]
unsafe fn tiles_16x16(
    a_row: *const u8,
    k: usize,
    b: *const i8,
    bstride: usize,
    ktiles: usize,
    c: *mut i32,
    n: usize,
) {
    // SAFETY: per the caller contract every tileloadd/tilestored window
    // below stays inside its operand; the tile registers are configured
    // 16×64 and are private to this block (zeroed before use).
    unsafe {
        asm!(
            "tilezero tmm0",
            "2:",
            "tileloadd tmm4, [{a} + {ka}]",
            "tileloadd tmm6, [{b0} + {bs}]",
            "tdpbusd tmm0, tmm4, tmm6",
            "add {a}, 64",
            "add {b0}, {bstep}",
            "dec {cnt}",
            "jnz 2b",
            "tilestored [{c0} + {cs}], tmm0",
            a = inout(reg) a_row => _,
            b0 = inout(reg) b => _,
            cnt = inout(reg) ktiles => _,
            ka = in(reg) k,
            bs = in(reg) bstride,
            bstep = in(reg) bstride * 16,
            c0 = in(reg) c,
            cs = in(reg) n * 4,
            options(nostack),
        );
    }
}

/// AMX band kernel: same block structure and accumulator discipline as
/// [`crate::simd::x86::band_avx512vnni`], with the 16×16×64 tile grid
/// computed by `tdpbusd` and everything the grid can't cover (reduction
/// tail, row remainder, narrow or ragged bands) finished by the VNNI
/// strips against the same wrapping i32 accumulator — bit-identical to
/// the scalar oracle by the associativity argument in [`crate::simd`].
///
/// # Safety
/// Caller must ensure [`amx_available`] returned true (the dispatch
/// table only offers this row in that case), `quads` is the
/// [`crate::simd::pack_quads_i8`] image of `args.wd`, `r1 <= m`, and
/// `out_band.len() == (r1 - r0) * n`.
pub(crate) unsafe fn band_amx(
    args: &BandArgs<'_>,
    panel: &[i16],
    quads: &[i8],
    acc_buf: &mut Vec<i32>,
    r0: usize,
    r1: usize,
    out_band: &mut [u8],
) {
    let BandArgs {
        a,
        k,
        n,
        wd,
        shift,
        tiles,
    } = *args;
    if n % 16 != 0 || n == 0 || k < 64 {
        // The tile grid can't engage; the VNNI kernel covers every
        // remaining shape (including its own narrow-band path).
        // SAFETY: amx_available() verified AVX-512F + VNNI; operand
        // contract is the caller's, unchanged.
        return unsafe {
            simd::x86::band_avx512vnni(args, panel, quads, acc_buf, r0, r1, out_band)
        };
    }
    let rows = r1 - r0;
    debug_assert!(r1 * k <= a.len());
    debug_assert_eq!(quads.len(), k.div_ceil(4) * 4 * n);
    debug_assert_eq!(out_band.len(), rows * n);

    let nquads = k.div_ceil(4);
    let full_quads = k / 4;
    let ktiles = k / 64;
    // First quad the tile grid does not cover (k % 64 tail).
    let qtail = ktiles * 16;
    let TilePlan { mb, .. } = tiles;
    let mb = mb.max(16);
    acc_buf.clear();
    acc_buf.resize(mb.min(rows) * n, 0);

    // SAFETY: amx_available() held at dispatch resolution.
    unsafe { configure_tiles() };
    let mut rb = 0usize;
    while rb < rows {
        let mrows = mb.min(rows - rb);
        let acc = &mut acc_buf[..mrows * n];
        acc.fill(0);
        let amx_rows = mrows & !15;
        let mut r = 0usize;
        while r + 32 <= amx_rows {
            // SAFETY: rows r0+rb+r .. +32 are < r1 <= m so the strided
            // A tile loads stay inside `a`; the B windows walk quads
            // [0, 16·ktiles) at each column pair inside `quads`; the C
            // stores cover acc rows r..r+32 within the mrows*n block.
            unsafe {
                let a_row = a.as_ptr().add((r0 + rb + r) * k);
                let mut j = 0usize;
                while j + 32 <= n {
                    tiles_32x32(
                        a_row,
                        k,
                        quads.as_ptr().add(4 * j),
                        4 * n,
                        ktiles,
                        acc.as_mut_ptr().add(r * n + j),
                        n,
                    );
                    j += 32;
                }
                if j < n {
                    for half in 0..2 {
                        tiles_16x16(
                            a_row.add(16 * half * k),
                            k,
                            quads.as_ptr().add(4 * j),
                            4 * n,
                            ktiles,
                            acc.as_mut_ptr().add((r + 16 * half) * n + j),
                            n,
                        );
                    }
                }
            }
            r += 32;
        }
        while r < amx_rows {
            // SAFETY: rows r0+rb+r .. +16 are < r1 <= m; windows as
            // above with a single 16-row group.
            unsafe {
                let a_row = a.as_ptr().add((r0 + rb + r) * k);
                let mut j = 0usize;
                while j + 32 <= n {
                    tiles_16x32(
                        a_row,
                        k,
                        quads.as_ptr().add(4 * j),
                        4 * n,
                        ktiles,
                        acc.as_mut_ptr().add(r * n + j),
                        n,
                    );
                    j += 32;
                }
                if j < n {
                    tiles_16x16(
                        a_row,
                        k,
                        quads.as_ptr().add(4 * j),
                        4 * n,
                        ktiles,
                        acc.as_mut_ptr().add(r * n + j),
                        n,
                    );
                }
            }
            r += 16;
        }
        // Reduction tail (k % 64): accumulate the uncovered quads into
        // the freshly stored tile results with the VNNI strips.
        if qtail < nquads {
            let mut r = 0usize;
            while r + 4 <= amx_rows {
                // SAFETY: amx_available() verified AVX-512F + VNNI; rows
                // and acc offsets are in range as above.
                unsafe {
                    simd::x86::strips512::<4>(
                        a,
                        k,
                        n,
                        wd,
                        quads,
                        acc,
                        r0 + rb + r,
                        r * n,
                        qtail,
                        nquads,
                        full_quads,
                    );
                }
                r += 4;
            }
        }
        // Row remainder (< 16 rows): full reduction via VNNI strips.
        let mut r = amx_rows;
        while r + 4 <= mrows {
            // SAFETY: as above; rows r .. r+4 < mrows keep every window
            // inside the operands.
            unsafe {
                simd::x86::strips512::<4>(
                    a,
                    k,
                    n,
                    wd,
                    quads,
                    acc,
                    r0 + rb + r,
                    r * n,
                    0,
                    nquads,
                    full_quads,
                );
            }
            r += 4;
        }
        while r < mrows {
            // SAFETY: single row r < mrows, same windows as above.
            unsafe {
                simd::x86::strips512::<1>(
                    a,
                    k,
                    n,
                    wd,
                    quads,
                    acc,
                    r0 + rb + r,
                    r * n,
                    0,
                    nquads,
                    full_quads,
                );
            }
            r += 1;
        }
        requantize(acc, shift, &mut out_band[rb * n..(rb + mrows) * n]);
        rb += mrows;
    }
    // SAFETY: amx_available() held; leaves the tile file in init state.
    unsafe { release_tiles() };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::KernelIsa;
    use crate::simd::pack_quads_i8;

    fn reference(a: &[u8], m: usize, k: usize, wd: &[i8], n: usize, shift: u8) -> Vec<u8> {
        let mut out = vec![0u8; m * n];
        for r in 0..m {
            for j in 0..n {
                let mut sum = 0i32;
                for kk in 0..k {
                    sum = sum.wrapping_add(a[r * k + kk] as i32 * wd[kk * n + j] as i32);
                }
                out[r * n + j] = (sum >> shift).clamp(0, 255) as u8;
            }
        }
        out
    }

    #[test]
    fn amx_band_matches_oracle_across_ragged_shapes() {
        if !KernelIsa::AmxInt8.supported() {
            eprintln!("AMX not available; skipping");
            return;
        }
        // Full tiles, row/column/reduction tails, and delegation shapes.
        for &(m, k, n) in &[
            (32usize, 128usize, 32usize),
            (37, 130, 48),
            (16, 64, 16),
            (50, 200, 64),
            (19, 67, 16),
            (33, 64, 80),
            (7, 300, 32),    // all rows in the VNNI remainder
            (24, 40, 32),    // k < 64: full delegation
            (21, 128, 24),   // n % 16 != 0: full delegation
            (129, 191, 112), // multi-block with every tail at once
        ] {
            let a: Vec<u8> = (0..m * k)
                .map(|i| ((i * 37 + 11) % 23) as u8 % 16)
                .collect();
            let wd: Vec<i8> = (0..k * n).map(|i| (((i * 13) % 11) as i8) - 5).collect();
            let mut quads = Vec::new();
            pack_quads_i8(&wd, k, n, &mut quads);
            let args = BandArgs {
                a: &a,
                k,
                n,
                wd: &wd,
                shift: 3,
                tiles: TilePlan { mb: 48, kb: 128 },
            };
            let mut acc = Vec::new();
            let mut out = vec![0u8; m * n];
            // SAFETY: AMX support verified above; operands follow the
            // band contract (m rows, packed quads, out sized m*n).
            unsafe { band_amx(&args, &[], &quads, &mut acc, 0, m, &mut out) };
            assert_eq!(
                out,
                reference(&a, m, k, &wd, n, 3),
                "shape ({m},{k},{n}) diverged from the wrapping oracle"
            );
        }
    }
}
