//! # gcd2-kernels — pre-designed operator kernels and their cost model
//!
//! GCD2 implements each (operator, SIMD instruction) pair with a
//! hand-designed kernel (Section III): `vmpy` with the 1-column layout,
//! `vmpa` with the 2-column layout, `vrmpy` with the 4-column layout,
//! plus `vtmpy` depthwise kernels and the non-GEMM (elementwise, pooling,
//! lookup) kernels. This crate generates those kernels as instruction
//! streams for the simulated DSP and derives their cycle costs by
//! scheduling them with the SDA packer — the `Cost(ep)` term of the
//! paper's global objective.
//!
//! ```
//! use gcd2_cgraph::GemmDims;
//! use gcd2_kernels::{CostModel, SimdInstr, UnrollConfig};
//!
//! let m = CostModel::new();
//! let small = GemmDims::new(32, 32, 32);
//! // Table II, first row: vrmpy's 4-column layout avoids the 128-row
//! // padding vmpy pays, so it wins on small square operands.
//! let vmpy = m.gemm_cycles(&small, SimdInstr::Vmpy, UnrollConfig::NONE);
//! let vrmpy = m.gemm_cycles(&small, SimdInstr::Vrmpy, UnrollConfig::NONE);
//! assert!(vrmpy < vmpy);
//! ```

// Runtime-facing crate: recoverable failures must flow through Result,
// same robustness gate as gcd2 core (see DESIGN.md §6d).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod conv;
pub mod cost;
pub mod elementwise;
pub mod hostops;
pub mod instr;
pub mod matmul;
pub mod reference;
pub mod tiled;
pub mod unroll;

pub use conv::{
    conv_ref_chw, conv_weights_as_gemm, depthwise_vtmpy_blocks, dwconv_direct_into, im2col_chw,
    im2col_overhead_cycles, im2col_rm_into,
};
pub use cost::{CostCache, CostModel, KERNEL_DISPATCH_CYCLES};
pub use elementwise::{elementwise_blocks, EwKind};
pub use instr::SimdInstr;
pub use matmul::{functional_program, gemm_loops, output_matrix_len, timing_blocks, GemmLoops};
pub use reference::{add_ref, matmul_ref, mul_ref};
pub use tiled::{
    matmul_blocked_into, matmul_host, try_matmul_blocked_into, GemmDispatchError, GemmScratch,
};
pub use unroll::{
    adaptive_unroll, candidates, classify_output, OutputShapeClass, UnrollConfig, UnrollStrategy,
    UNROLL_CANDIDATES,
};
