//! # gcd2-kernels — pre-designed operator kernels and their cost model
//!
//! GCD2 implements each (operator, SIMD instruction) pair with a
//! hand-designed kernel (Section III): `vmpy` with the 1-column layout,
//! `vmpa` with the 2-column layout, `vrmpy` with the 4-column layout,
//! plus `vtmpy` depthwise kernels and the non-GEMM (elementwise, pooling,
//! lookup) kernels. This crate generates those kernels as instruction
//! streams for the simulated DSP and derives their cycle costs by
//! scheduling them with the SDA packer — the `Cost(ep)` term of the
//! paper's global objective.
//!
//! ```
//! use gcd2_cgraph::GemmDims;
//! use gcd2_kernels::{CostModel, SimdInstr, UnrollConfig};
//!
//! let m = CostModel::new();
//! let small = GemmDims::new(32, 32, 32);
//! // Table II, first row: vrmpy's 4-column layout avoids the 128-row
//! // padding vmpy pays, so it wins on small square operands.
//! let vmpy = m.gemm_cycles(&small, SimdInstr::Vmpy, UnrollConfig::NONE);
//! let vrmpy = m.gemm_cycles(&small, SimdInstr::Vrmpy, UnrollConfig::NONE);
//! assert!(vrmpy < vmpy);
//! ```

// Runtime-facing crate: recoverable failures must flow through Result,
// same robustness gate as gcd2 core (see DESIGN.md §6d). The SIMD
// kernels additionally require every unsafe block to justify itself.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::undocumented_unsafe_blocks)]

#[cfg(target_arch = "x86_64")]
pub mod amx;
pub mod autotune;
pub mod conv;
pub mod cost;
pub mod dispatch;
pub mod elementwise;
pub mod hostops;
pub mod instr;
pub mod matmul;
pub mod reference;
pub mod simd;
pub mod tiled;
pub mod unroll;

pub use autotune::{
    autotune_enabled, cached_choice, seed_choice, tuner_cache_stats, KernelChoice, TilePlan,
    SCALAR_CANDIDATE_MAX_M, SCALAR_SMALL_M, TUNE_MIN_MACS,
};
pub use conv::{
    conv2d_direct_chw_into, conv_ref_chw, conv_weights_as_gemm, depthwise_vtmpy_blocks,
    dwconv_direct_into, im2col_chw, im2col_overhead_cycles, im2col_rm_into,
};
pub use cost::{CostCache, CostModel, KERNEL_DISPATCH_CYCLES};
pub use dispatch::{
    active_isa, detected_isa, force_isa, gemm_kernel_summary, pin_scalar, scalar_pinned,
    try_matmul_threaded_into, warm_gemm_tiles, KernelIsa, ScalarPin, ScratchPool,
};
pub use elementwise::{elementwise_blocks, EwKind};
pub use instr::SimdInstr;
pub use matmul::{functional_program, gemm_loops, output_matrix_len, timing_blocks, GemmLoops};
pub use reference::{add_ref, matmul_ref, mul_ref};
pub use tiled::{
    matmul_blocked_into, matmul_host, try_matmul_blocked_into, GemmDispatchError, GemmScratch,
};
pub use unroll::{
    adaptive_unroll, candidates, classify_output, OutputShapeClass, UnrollConfig, UnrollStrategy,
    UNROLL_CANDIDATES,
};
