//! Cache-blocked int8 GEMM for the functional host path.
//!
//! [`matmul_ref`](crate::reference::matmul_ref) is the gold scalar
//! reference: a naive triple loop with per-element layout-offset
//! arithmetic, kept deliberately simple. This module provides the
//! **scalar oracle** the production host kernel is property-tested
//! against: the same `clamp((Σ_k a·w) >> shift, 0, 255)` math,
//! restructured for throughput and kept **bit-exact** against the
//! reference (i32 accumulation wraps, and wrapping addition is
//! associative and commutative, so no tiling or reordering can change
//! results).
//!
//! Three structural changes over the naive loop:
//!
//! * **i·k·j loop order** — the inner loop runs over contiguous weight
//!   rows instead of striding down weight columns, so it autovectorizes;
//! * **cache blocking** — row blocks of `mb` activations reuse each
//!   `kb`-row weight tile while it is hot in cache (defaults [`MB`] and
//!   [`KB`], overridable per shape by the autotuner —
//!   [`crate::autotune`]);
//! * **flat slices** — operands are raw row-major slices; no per-element
//!   layout-offset calls in the hot loop.
//!
//! The public entry points ([`matmul_blocked_into`] /
//! [`try_matmul_blocked_into`] / [`try_matmul_threaded_into`]) dispatch
//! to the vectorized micro-kernels in [`crate::simd`] when the host CPU
//! supports them (see [`crate::dispatch`]); the scalar path here is the
//! semantic definition every SIMD path must match bit for bit.

use crate::autotune::TilePlan;
use gcd2_tensor::{Layout, MatrixI8, MatrixU8};
use std::cell::RefCell;

/// Default activation rows processed per block (accumulator tile:
/// `MB × n` i32) when the autotuner has no better plan for the shape.
pub const MB: usize = 32;
/// Default weight rows (reduction depth) per block; `KB × n` weight
/// bytes stay cache-resident while a row block streams over them.
pub const KB: usize = 256;

/// Scratch buffers for the blocked GEMM entry points, reusable across
/// calls so steady-state GEMMs allocate nothing: the i32 accumulator
/// tile plus the packed weight panels the SIMD kernels consume (the
/// pair-interleaved i16 panel for AVX2 `madd`, the quad-interleaved i8
/// panel for AVX-512 VNNI `dpbusd` — only the active kernel's panel is
/// ever populated).
#[derive(Debug, Default, Clone)]
pub struct GemmScratch {
    pub(crate) acc: Vec<i32>,
    pub(crate) panel: Vec<i16>,
    pub(crate) panel8: Vec<i8>,
}

/// A GEMM dispatch rejected before touching any memory: the operands the
/// runtime handed the kernel are inconsistent with each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GemmDispatchError {
    /// `a.len() != m * k` — the flat activation buffer cannot hold an
    /// `m × k` row-major matrix.
    ActivationSize { expected: usize, got: usize },
    /// `w.rows() != k` — the weight reduction depth disagrees with the
    /// activation width.
    WeightRows { expected: usize, got: usize },
    /// `shift >= 32` would shift an i32 accumulator past its width.
    ShiftRange { shift: u8 },
}

impl std::fmt::Display for GemmDispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GemmDispatchError::ActivationSize { expected, got } => write!(
                f,
                "activation buffer holds {got} bytes, dispatch expects {expected}"
            ),
            GemmDispatchError::WeightRows { expected, got } => {
                write!(
                    f,
                    "weight matrix has {got} rows, dispatch expects {expected}"
                )
            }
            GemmDispatchError::ShiftRange { shift } => {
                write!(f, "requant shift {shift} exceeds i32 accumulator width")
            }
        }
    }
}

impl std::error::Error for GemmDispatchError {}

/// Shared operand validation of every blocked-GEMM entry point.
pub(crate) fn validate_dispatch(
    a: &[u8],
    m: usize,
    k: usize,
    w: &MatrixI8,
    shift: u8,
) -> Result<(), GemmDispatchError> {
    if a.len() != m * k {
        return Err(GemmDispatchError::ActivationSize {
            expected: m * k,
            got: a.len(),
        });
    }
    if w.rows() != k {
        return Err(GemmDispatchError::WeightRows {
            expected: k,
            got: w.rows(),
        });
    }
    if shift >= 32 {
        return Err(GemmDispatchError::ShiftRange { shift });
    }
    Ok(())
}

/// The scalar oracle over one row band `[r0, r1)`: the original blocked
/// i·k·j loop with zero-skip, writing the band's requantized bytes into
/// `out_band` (`(r1 - r0) × n`, row-major). Every SIMD band kernel is
/// property-tested bit-identical against this.
#[allow(clippy::too_many_arguments)] // the band-kernel operand contract
pub(crate) fn scalar_band(
    a: &[u8],
    k: usize,
    n: usize,
    wd: &[i8],
    shift: u8,
    tiles: TilePlan,
    acc_buf: &mut Vec<i32>,
    r0: usize,
    r1: usize,
    out_band: &mut [u8],
) {
    let (mb_rows, kb_rows) = (tiles.mb.max(1), tiles.kb.max(1));
    acc_buf.clear();
    acc_buf.resize(mb_rows.min(r1 - r0) * n, 0);

    let mut mb = r0;
    while mb < r1 {
        let mrows = mb_rows.min(r1 - mb);
        let acc = &mut acc_buf[..mrows * n];
        acc.fill(0);
        let mut kb = 0;
        while kb < k {
            let krows = kb_rows.min(k - kb);
            for r in 0..mrows {
                let arow = &a[(mb + r) * k + kb..(mb + r) * k + kb + krows];
                let accrow = &mut acc[r * n..(r + 1) * n];
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0 {
                        continue; // zero contributes nothing (im2col padding)
                    }
                    let av = av as i32;
                    let wrow = &wd[(kb + kk) * n..(kb + kk + 1) * n];
                    for (dst, &wv) in accrow.iter_mut().zip(wrow) {
                        *dst = dst.wrapping_add(av * wv as i32);
                    }
                }
            }
            kb += krows;
        }
        let orows = &mut out_band[(mb - r0) * n..(mb - r0 + mrows) * n];
        for (dst, &acc) in orows.iter_mut().zip(acc.iter()) {
            *dst = (acc >> shift).clamp(0, 255) as u8;
        }
        mb += mrows;
    }
}

/// Cache-blocked quantized matmul into a caller-provided output buffer:
/// `out[r*n + c] = clamp((Σ_k a[r*k + kk] · w[kk][c]) >> shift, 0, 255)`.
///
/// `a` is the `m × k` activation matrix as flat row-major bytes; `w` is
/// the `k × n` weight matrix. `out` is cleared and resized to `m × n`.
/// Bit-exact against [`crate::reference::matmul_ref`]; executed by the
/// fastest kernel the host supports (see [`crate::dispatch`]).
///
/// # Panics
/// Panics if `a.len() != m * k`, `w.rows() != k`, or `shift >= 32`
/// (see [`try_matmul_blocked_into`] for the fallible form).
pub fn matmul_blocked_into(
    a: &[u8],
    m: usize,
    k: usize,
    w: &MatrixI8,
    shift: u8,
    scratch: &mut GemmScratch,
    out: &mut Vec<u8>,
) {
    match try_matmul_blocked_into(a, m, k, w, shift, scratch, out) {
        Ok(()) => {}
        Err(e) => panic!("{e}"),
    }
}

/// [`matmul_blocked_into`] with validated dispatch: operand shape
/// mismatches come back as a [`GemmDispatchError`] instead of a panic.
/// This is the entry point the fault-tolerant inference runtime uses;
/// it hosts the `infer.gemm` fault point. Runs single-threaded (see
/// [`try_matmul_threaded_into`] for the intra-op parallel form).
///
/// # Errors
/// Returns an error (before writing to `out`) if the operand shapes are
/// mutually inconsistent or the requant shift is out of range.
pub fn try_matmul_blocked_into(
    a: &[u8],
    m: usize,
    k: usize,
    w: &MatrixI8,
    shift: u8,
    scratch: &mut GemmScratch,
    out: &mut Vec<u8>,
) -> Result<(), GemmDispatchError> {
    let _ = gcd2_faults::fire("infer.gemm");
    validate_dispatch(a, m, k, w, shift)?;
    crate::dispatch::run_single(a, m, k, w, shift, scratch, out);
    Ok(())
}

/// [`matmul_blocked_into`] with matrix operands: the drop-in host GEMM.
/// `a` may be in any layout (non-row-major operands are converted first);
/// the result is row-major. Scratch buffers are reused from a
/// thread-local, so repeated calls allocate nothing in steady state.
pub fn matmul_host(a: &MatrixU8, w: &MatrixI8, shift: u8) -> MatrixU8 {
    thread_local! {
        static SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::default());
    }
    let (m, k, n) = (a.rows(), a.cols(), w.cols());
    let rm;
    let bytes = if a.layout() == Layout::RowMajor {
        a.as_bytes()
    } else {
        rm = a.to_layout(Layout::RowMajor);
        rm.as_bytes()
    };
    let mut out = Vec::new();
    SCRATCH.with(|scratch| {
        matmul_blocked_into(bytes, m, k, w, shift, &mut scratch.borrow_mut(), &mut out);
    });
    MatrixU8::from_raw(m, n, Layout::RowMajor, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::matmul_ref;

    fn hash_u8(x: u64) -> u8 {
        let mut v = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        v ^= v >> 29;
        (v % 16) as u8
    }

    /// Bit-exactness against the gold reference across shapes that
    /// exercise partial blocks in both dimensions, all shifts used by
    /// the runtime, and negative weights.
    #[test]
    fn blocked_matches_reference_bit_for_bit() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (MB, KB, 8),
            (MB + 1, KB + 3, 7),
            (2 * MB + 5, 17, 10),
            (7, 2 * KB + 9, 3),
            (130, 64, 33),
        ] {
            let a = MatrixU8::from_fn(m, k, Layout::RowMajor, |r, c| hash_u8((r * k + c) as u64));
            let w = MatrixI8::from_fn(k, n, |r, c| (hash_u8((r * n + c + 77) as u64) as i8) - 8);
            for shift in [0u8, 3, 7] {
                let reference = matmul_ref(&a, &w, shift);
                let blocked = matmul_host(&a, &w, shift);
                for (r, row) in reference.iter().enumerate() {
                    for (c, &want) in row.iter().enumerate() {
                        assert_eq!(
                            blocked.get(r, c),
                            want,
                            "({m},{k},{n}) shift {shift} at ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    /// Non-row-major operands convert and still match.
    #[test]
    fn layout_operands_convert() {
        let a = MatrixU8::from_fn(40, 12, Layout::Col4, |r, c| hash_u8((r * 12 + c) as u64));
        let w = MatrixI8::from_fn(12, 5, |r, c| (r as i8 % 3) - 1 + (c as i8 % 2));
        let reference = matmul_ref(&a, &w, 2);
        let blocked = matmul_host(&a, &w, 2);
        assert_eq!(blocked.to_row_major_vec().len(), 40 * 5);
        for (r, row) in reference.iter().enumerate() {
            for (c, &want) in row.iter().enumerate() {
                assert_eq!(blocked.get(r, c), want);
            }
        }
    }

    /// Checked dispatch rejects inconsistent operands without touching
    /// the output buffer, and the panicking wrapper reuses the message.
    #[test]
    fn dispatch_validation_rejects_bad_operands() {
        let w = MatrixI8::from_fn(4, 3, |_, _| 1);
        let mut scratch = GemmScratch::default();
        let mut out = vec![7u8; 5];
        let a = vec![1u8; 7]; // not 2*4
        assert_eq!(
            try_matmul_blocked_into(&a, 2, 4, &w, 1, &mut scratch, &mut out),
            Err(GemmDispatchError::ActivationSize {
                expected: 8,
                got: 7
            })
        );
        assert_eq!(out, vec![7u8; 5], "rejected dispatch must not write");
        let a = vec![1u8; 10]; // k=5 but w has 4 rows
        assert_eq!(
            try_matmul_blocked_into(&a, 2, 5, &w, 1, &mut scratch, &mut out),
            Err(GemmDispatchError::WeightRows {
                expected: 5,
                got: 4
            })
        );
        let a = vec![1u8; 8];
        assert_eq!(
            try_matmul_blocked_into(&a, 2, 4, &w, 40, &mut scratch, &mut out),
            Err(GemmDispatchError::ShiftRange { shift: 40 })
        );
        assert!(try_matmul_blocked_into(&a, 2, 4, &w, 1, &mut scratch, &mut out).is_ok());
        assert_eq!(out.len(), 6);
    }

    /// The scratch-reuse path is equivalent to fresh scratch.
    #[test]
    fn scratch_reuse_is_clean() {
        let a = MatrixU8::from_fn(50, 30, Layout::RowMajor, |r, c| hash_u8((r + c) as u64));
        let w1 = MatrixI8::from_fn(30, 9, |r, c| ((r + c) % 5) as i8 - 2);
        let w2 = MatrixI8::from_fn(30, 4, |r, c| ((r * c) % 3) as i8 - 1);
        let mut scratch = GemmScratch::default();
        let mut out = Vec::new();
        matmul_blocked_into(a.as_bytes(), 50, 30, &w1, 1, &mut scratch, &mut out);
        matmul_blocked_into(a.as_bytes(), 50, 30, &w2, 1, &mut scratch, &mut out);
        let reference = matmul_ref(&a, &w2, 1);
        for r in 0..50 {
            for c in 0..4 {
                assert_eq!(out[r * 4 + c], reference[r][c]);
            }
        }
    }
}
