//! Non-GEMM operator kernels: elementwise arithmetic, activations via
//! table lookup, pooling windows, reductions, and the expensive
//! scalar-division path that the paper's "other optimizations" replace
//! with a database (lookup-table) operation.
//!
//! Elementwise kernels are layout-oblivious: they stream bytes in storage
//! order, so they accept any input layout and produce the same layout —
//! their execution plans differ only in which layout they *pass through*.

use gcd2_hvx::{Block, Insn, Lane, SReg, VPair, VReg, VBYTES};

fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn w(i: u8) -> VPair {
    VPair::new(i)
}
fn r(i: u8) -> SReg {
    SReg::new(i)
}

/// The non-GEMM kernel vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwKind {
    /// Elementwise add with requantization.
    Add,
    /// Elementwise multiply with requantization.
    Mul,
    /// ReLU-style clamp.
    Relu,
    /// Any unary nonlinearity through a byte lookup table (sigmoid,
    /// gelu, hard-swish, pow, exp...).
    LutUnary,
    /// Unary nonlinearity without the lookup optimization: a scalar
    /// piecewise approximation, 8 elements per trip through the scalar
    /// pipeline.
    ScalarUnary,
    /// Elementwise division, naïve scalar path (16-cycle divider per
    /// element) — what runs *without* the lookup optimization.
    DivScalar,
    /// Elementwise division via reciprocal lookup + multiply — the
    /// optimized "database lookup" path.
    DivLut,
    /// Max-pool with a `window`-element window per output.
    MaxPoolWin {
        /// Window size (`kh · kw`).
        window: usize,
    },
    /// Average-pool with a `window`-element window per output.
    AvgPoolWin {
        /// Window size (`kh · kw`).
        window: usize,
    },
    /// Sum/max reduction over the stream (softmax, layer-norm, global
    /// average pooling building block).
    Reduce,
    /// Plain copy (concat, upsample replication).
    Copy,
}

/// Emits the kernel blocks for `elems` output elements.
pub fn elementwise_blocks(kind: EwKind, elems: usize) -> Vec<Block> {
    let vec_trips = elems.div_ceil(VBYTES) as u64;
    let mut body = Block::with_trip_count(format!("{kind:?} x{elems}"), vec_trips.max(1));
    match kind {
        EwKind::Add => {
            body.extend([
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VLoad {
                    dst: v(1),
                    base: r(1),
                    offset: 0,
                },
                Insn::VaddUbH {
                    dst: w(2),
                    a: v(0),
                    b: v(1),
                },
                Insn::VasrHB {
                    dst: v(4),
                    src: w(2),
                    shift: 1,
                },
                Insn::VStore {
                    src: v(4),
                    base: r(2),
                    offset: 0,
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(1),
                    a: r(1),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(2),
                    a: r(2),
                    imm: VBYTES as i64,
                },
            ]);
        }
        EwKind::Mul => {
            body.extend([
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VLoad {
                    dst: v(1),
                    base: r(1),
                    offset: 0,
                },
                Insn::VmulUbH {
                    dst: w(2),
                    a: v(0),
                    b: v(1),
                },
                Insn::VasrHB {
                    dst: v(4),
                    src: w(2),
                    shift: 7,
                },
                Insn::VStore {
                    src: v(4),
                    base: r(2),
                    offset: 0,
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(1),
                    a: r(1),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(2),
                    a: r(2),
                    imm: VBYTES as i64,
                },
            ]);
        }
        EwKind::Relu => {
            body.extend([
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::Vmax {
                    lane: Lane::B,
                    dst: v(1),
                    a: v(0),
                    b: v(30),
                },
                Insn::VStore {
                    src: v(1),
                    base: r(2),
                    offset: 0,
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(2),
                    a: r(2),
                    imm: VBYTES as i64,
                },
            ]);
        }
        EwKind::LutUnary => {
            body.extend([
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VlutB {
                    dst: v(1),
                    idx: v(0),
                    table: v(31),
                },
                Insn::VStore {
                    src: v(1),
                    base: r(2),
                    offset: 0,
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(2),
                    a: r(2),
                    imm: VBYTES as i64,
                },
            ]);
        }
        EwKind::ScalarUnary => {
            body.trip_count = elems.div_ceil(8) as u64;
            body.push(Insn::Ld {
                dst: r(3),
                base: r(0),
                offset: 0,
            });
            for k in 0..4u8 {
                body.push(Insn::Shr {
                    dst: r(4),
                    a: r(3),
                    imm: k,
                });
                body.push(Insn::Add {
                    dst: r(3),
                    a: r(3),
                    b: r(4),
                });
            }
            body.push(Insn::St {
                src: r(3),
                base: r(2),
                offset: 0,
            });
            body.push(Insn::AddI {
                dst: r(0),
                a: r(0),
                imm: 8,
            });
            body.push(Insn::AddI {
                dst: r(2),
                a: r(2),
                imm: 8,
            });
        }
        EwKind::DivScalar => {
            // One element per trip through the scalar divider.
            body.trip_count = elems as u64;
            body.extend([
                Insn::Ld {
                    dst: r(3),
                    base: r(0),
                    offset: 0,
                },
                Insn::Ld {
                    dst: r(4),
                    base: r(1),
                    offset: 0,
                },
                Insn::Div {
                    dst: r(5),
                    a: r(3),
                    b: r(4),
                },
                Insn::St {
                    src: r(5),
                    base: r(2),
                    offset: 0,
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: 1,
                },
                Insn::AddI {
                    dst: r(1),
                    a: r(1),
                    imm: 1,
                },
                Insn::AddI {
                    dst: r(2),
                    a: r(2),
                    imm: 1,
                },
            ]);
        }
        EwKind::DivLut => {
            body.extend([
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VLoad {
                    dst: v(1),
                    base: r(1),
                    offset: 0,
                },
                Insn::VlutB {
                    dst: v(2),
                    idx: v(1),
                    table: v(31),
                },
                Insn::VmulUbH {
                    dst: w(4),
                    a: v(0),
                    b: v(2),
                },
                Insn::VasrHB {
                    dst: v(6),
                    src: w(4),
                    shift: 7,
                },
                Insn::VStore {
                    src: v(6),
                    base: r(2),
                    offset: 0,
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(1),
                    a: r(1),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(2),
                    a: r(2),
                    imm: VBYTES as i64,
                },
            ]);
        }
        EwKind::MaxPoolWin { window } | EwKind::AvgPoolWin { window } => {
            for k in 0..window.clamp(1, 9) {
                body.push(Insn::VLoad {
                    dst: v((k % 2) as u8),
                    base: r(0),
                    offset: (k * VBYTES) as i64,
                });
                if k > 0 {
                    body.push(Insn::Vmax {
                        lane: Lane::B,
                        dst: v(2),
                        a: v(2),
                        b: v((k % 2) as u8),
                    });
                }
            }
            body.push(Insn::VStore {
                src: v(2),
                base: r(2),
                offset: 0,
            });
            body.push(Insn::AddI {
                dst: r(0),
                a: r(0),
                imm: VBYTES as i64,
            });
            body.push(Insn::AddI {
                dst: r(2),
                a: r(2),
                imm: VBYTES as i64,
            });
        }
        EwKind::Reduce => {
            body.extend([
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VaddHAcc {
                    dst: v(2),
                    src: v(0),
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: VBYTES as i64,
                },
            ]);
        }
        EwKind::Copy => {
            body.extend([
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VStore {
                    src: v(0),
                    base: r(2),
                    offset: 0,
                },
                Insn::AddI {
                    dst: r(0),
                    a: r(0),
                    imm: VBYTES as i64,
                },
                Insn::AddI {
                    dst: r(2),
                    a: r(2),
                    imm: VBYTES as i64,
                },
            ]);
        }
    }
    vec![body]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_hvx::PackedBlock;

    fn cycles(kind: EwKind, elems: usize) -> u64 {
        elementwise_blocks(kind, elems)
            .iter()
            .map(|b| PackedBlock::sequential(b).stats().cycles)
            .sum()
    }

    #[test]
    fn div_lut_is_much_cheaper_than_scalar_div() {
        let scalar = cycles(EwKind::DivScalar, 4096);
        let lut = cycles(EwKind::DivLut, 4096);
        assert!(
            scalar > 20 * lut,
            "scalar div {scalar} should dwarf lut div {lut}"
        );
    }

    #[test]
    fn scalar_unary_much_slower_than_lut() {
        let scalar = cycles(EwKind::ScalarUnary, 65536);
        let lut = cycles(EwKind::LutUnary, 65536);
        assert!(scalar > 10 * lut, "scalar {scalar} vs lut {lut}");
    }

    #[test]
    fn costs_scale_with_elements() {
        assert!(cycles(EwKind::Add, 4096) > 20 * cycles(EwKind::Add, 128));
    }

    #[test]
    fn pool_cost_grows_with_window() {
        assert!(
            cycles(EwKind::MaxPoolWin { window: 9 }, 1024)
                > cycles(EwKind::MaxPoolWin { window: 4 }, 1024)
        );
    }

    #[test]
    fn zero_elements_still_one_trip() {
        // Degenerate shapes must not produce empty programs.
        assert!(cycles(EwKind::Copy, 0) > 0);
    }
}

/// Functional elementwise programs: loop-structured kernels with real
/// addresses, executable on the simulator. Buffers must be padded to a
/// multiple of [`VBYTES`] (zero padding is harmless for all three ops).
pub mod functional {
    use super::*;
    use gcd2_hvx::{PackedBlock, Program};

    fn looped(mut body: Block, elems: usize) -> Program {
        body.trip_count = elems.div_ceil(VBYTES) as u64;
        let mut program = Program::new();
        program.push(PackedBlock::sequential(&body));
        program
    }

    /// `out[i] = sat_ub((a[i] + b[i]) >> shift)` over `elems` bytes.
    /// Pointers: `r0 = a`, `r1 = b`, `r2 = out` (set by the caller).
    pub fn add_program(elems: usize, shift: u8) -> Program {
        let mut body = Block::new("functional add");
        body.extend([
            Insn::VLoad {
                dst: v(0),
                base: r(0),
                offset: 0,
            },
            Insn::VLoad {
                dst: v(1),
                base: r(1),
                offset: 0,
            },
            Insn::VaddUbH {
                dst: w(2),
                a: v(0),
                b: v(1),
            },
            // The widening add produces sequential lanes; the narrowing
            // shift consumes the even/odd split — re-deal first (the
            // same shuffle dance real HVX kernels perform).
            Insn::VdealH {
                dst: w(4),
                src: w(2),
            },
            Insn::VasrHB {
                dst: v(6),
                src: w(4),
                shift,
            },
            Insn::VStore {
                src: v(6),
                base: r(2),
                offset: 0,
            },
            Insn::AddI {
                dst: r(0),
                a: r(0),
                imm: VBYTES as i64,
            },
            Insn::AddI {
                dst: r(1),
                a: r(1),
                imm: VBYTES as i64,
            },
            Insn::AddI {
                dst: r(2),
                a: r(2),
                imm: VBYTES as i64,
            },
        ]);
        looped(body, elems)
    }

    /// `out[i] = sat_ub((a[i] · b[i]) >> shift)` over `elems` bytes.
    pub fn mul_program(elems: usize, shift: u8) -> Program {
        let mut body = Block::new("functional mul");
        body.extend([
            Insn::VLoad {
                dst: v(0),
                base: r(0),
                offset: 0,
            },
            Insn::VLoad {
                dst: v(1),
                base: r(1),
                offset: 0,
            },
            Insn::VmulUbH {
                dst: w(2),
                a: v(0),
                b: v(1),
            },
            Insn::VasrHB {
                dst: v(4),
                src: w(2),
                shift,
            },
            Insn::VStore {
                src: v(4),
                base: r(2),
                offset: 0,
            },
            Insn::AddI {
                dst: r(0),
                a: r(0),
                imm: VBYTES as i64,
            },
            Insn::AddI {
                dst: r(1),
                a: r(1),
                imm: VBYTES as i64,
            },
            Insn::AddI {
                dst: r(2),
                a: r(2),
                imm: VBYTES as i64,
            },
        ]);
        looped(body, elems)
    }

    /// Important caveat of [`mul_program`]: the widening multiply splits
    /// products even/odd across the pair and [`Insn::VasrHB`]
    /// re-interleaves them, so outputs land back in input order — the
    /// same invariant the matmul kernels rely on.
    ///
    /// `out[i] = max(a[i], floor)` over `elems` bytes, with the clamp
    /// register `v30` splat to `floor` first. Pointers: `r0 = a`,
    /// `r2 = out`.
    pub fn relu_program(elems: usize, floor: u8) -> Program {
        let mut setup = Block::new("relu floor");
        setup.push(Insn::Movi {
            dst: r(3),
            imm: i64::from_le_bytes([floor, floor, floor, floor, 0, 0, 0, 0]),
        });
        setup.push(Insn::Vsplat {
            dst: v(30),
            src: r(3),
        });
        let mut body = Block::new("functional relu");
        body.extend([
            Insn::VLoad {
                dst: v(0),
                base: r(0),
                offset: 0,
            },
            Insn::Vmax {
                lane: Lane::B,
                dst: v(1),
                a: v(0),
                b: v(30),
            },
            Insn::VStore {
                src: v(1),
                base: r(2),
                offset: 0,
            },
            Insn::AddI {
                dst: r(0),
                a: r(0),
                imm: VBYTES as i64,
            },
            Insn::AddI {
                dst: r(2),
                a: r(2),
                imm: VBYTES as i64,
            },
        ]);
        body.trip_count = elems.div_ceil(VBYTES) as u64;
        let mut program = Program::new();
        program.push(PackedBlock::sequential(&setup));
        program.push(PackedBlock::sequential(&body));
        program
    }
}
