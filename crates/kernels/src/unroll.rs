//! Loop-unrolling configurations and selection strategies.
//!
//! GCD2 "employs a low-cost heuristic solution specifically designed for
//! DNN operators: a fast adaptive unrolling setting selection according
//! to the shape of output tensors, for example, for GEMM, different
//! unrolling settings are designed for varied output shapes (skinny,
//! near-square, and fat)" (Section IV-C, "Impact of Unrolling").
//!
//! The GEMM loop nest has three levels: rows (vectorized, not unrolled),
//! the reduction `k`, and output columns `n`. [`UnrollConfig`] carries
//! the two unrollable factors; [`UnrollStrategy`] reproduces the
//! Figure 12 comparison (`Out`, `Mid`, `Exhaustive`, and the adaptive
//! GCD2 heuristic).

use crate::instr::SimdInstr;
use gcd2_cgraph::GemmDims;
use std::fmt;

/// Unroll factors for a GEMM kernel: `n_unroll` output columns held in
/// accumulators per inner iteration (outer-loop unroll), `k_unroll`
/// reduction groups consumed per inner iteration (mid-loop unroll).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnrollConfig {
    /// Output-column (outer loop) unroll factor, ≥ 1.
    pub n_unroll: usize,
    /// Reduction (mid loop) unroll factor, ≥ 1.
    pub k_unroll: usize,
}

impl UnrollConfig {
    /// No unrolling.
    pub const NONE: UnrollConfig = UnrollConfig {
        n_unroll: 1,
        k_unroll: 1,
    };

    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if a factor is zero.
    pub fn new(n_unroll: usize, k_unroll: usize) -> Self {
        assert!(
            n_unroll >= 1 && k_unroll >= 1,
            "unroll factors must be >= 1"
        );
        UnrollConfig { n_unroll, k_unroll }
    }

    /// Vector registers the kernel body needs under this configuration
    /// (accumulators + streamed input chunks + narrowing temporaries).
    /// `vmpy` accumulators are register *pairs*.
    pub fn vregs_needed(&self, instr: SimdInstr) -> usize {
        let acc = match instr {
            SimdInstr::Vmpy => 2 * self.n_unroll,
            SimdInstr::Vmpa | SimdInstr::Vrmpy => self.n_unroll,
        };
        acc + self.k_unroll + 2
    }

    /// Accumulator registers that spill to memory given the machine's 32
    /// vector registers (a couple are reserved for the runtime).
    pub fn spill_count(&self, instr: SimdInstr) -> usize {
        self.vregs_needed(instr).saturating_sub(30)
    }
}

impl Default for UnrollConfig {
    fn default() -> Self {
        Self::NONE
    }
}

impl fmt::Display for UnrollConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}k{}", self.n_unroll, self.k_unroll)
    }
}

/// The unroll-selection strategies compared in Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnrollStrategy {
    /// No unrolling (factor 1 everywhere).
    None,
    /// Unroll only the outer (output-column) loop by this factor.
    Out(usize),
    /// Unroll only the mid (reduction) loop by this factor.
    Mid(usize),
    /// Exhaustively search both factors over [`UNROLL_CANDIDATES`]
    /// (expensive; the paper reports >3 minutes per kernel).
    Exhaustive,
    /// GCD2's adaptive heuristic keyed on the output tensor shape.
    Adaptive,
}

/// The factor grid the exhaustive search sweeps.
pub const UNROLL_CANDIDATES: [usize; 5] = [1, 2, 4, 8, 16];

/// The shape classes of the adaptive heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputShapeClass {
    /// Many rows, few output columns (`M ≫ N`).
    Skinny,
    /// Comparable rows and columns.
    NearSquare,
    /// Few rows, many output columns (`N ≫ M`).
    Fat,
}

/// Classifies an output shape (`M × N`).
pub fn classify_output(gemm: &GemmDims) -> OutputShapeClass {
    let (m, n) = (gemm.m as f64, gemm.n as f64);
    if m >= 4.0 * n {
        OutputShapeClass::Skinny
    } else if n >= 4.0 * m {
        OutputShapeClass::Fat
    } else {
        OutputShapeClass::NearSquare
    }
}

/// GCD2's adaptive unroll choice: pick the factors by output shape
/// class, clamped to the register budget of the chosen instruction.
pub fn adaptive_unroll(gemm: &GemmDims, instr: SimdInstr) -> UnrollConfig {
    let (n_u, k_u) = match classify_output(gemm) {
        // Skinny outputs have few columns to hold; spend registers on the
        // reduction to feed the multiply unit.
        OutputShapeClass::Skinny => (2, 4),
        // Balanced shapes: the exhaustively-best 4-4 of Figure 12 (a).
        OutputShapeClass::NearSquare => (4, 4),
        // Fat outputs amortize input loads across many columns.
        OutputShapeClass::Fat => (8, 2),
    };
    let n_u = n_u.min(gemm.n.div_ceil(instr.n_granularity()).max(1));
    let k_u = k_u.min(gemm.k.div_ceil(instr.k_granularity()).max(1));
    // Shrink to the register budget, preferring to drop k first.
    let mut cfg = UnrollConfig::new(n_u.max(1), k_u.max(1));
    while cfg.spill_count(instr) > 0 && cfg.k_unroll > 1 {
        cfg.k_unroll /= 2;
    }
    while cfg.spill_count(instr) > 0 && cfg.n_unroll > 1 {
        cfg.n_unroll /= 2;
    }
    cfg
}

/// Enumerates the configurations a strategy considers.
pub fn candidates(
    strategy: UnrollStrategy,
    gemm: &GemmDims,
    instr: SimdInstr,
) -> Vec<UnrollConfig> {
    match strategy {
        UnrollStrategy::None => vec![UnrollConfig::NONE],
        UnrollStrategy::Out(f) => vec![UnrollConfig::new(f, 1)],
        UnrollStrategy::Mid(f) => vec![UnrollConfig::new(1, f)],
        UnrollStrategy::Exhaustive => {
            let mut v = Vec::new();
            for &n in &UNROLL_CANDIDATES {
                for &k in &UNROLL_CANDIDATES {
                    v.push(UnrollConfig::new(n, k));
                }
            }
            v
        }
        UnrollStrategy::Adaptive => vec![adaptive_unroll(gemm, instr)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classes() {
        assert_eq!(
            classify_output(&GemmDims::new(4096, 64, 32)),
            OutputShapeClass::Skinny
        );
        assert_eq!(
            classify_output(&GemmDims::new(128, 64, 128)),
            OutputShapeClass::NearSquare
        );
        assert_eq!(
            classify_output(&GemmDims::new(16, 64, 512)),
            OutputShapeClass::Fat
        );
    }

    #[test]
    fn adaptive_respects_register_budget() {
        for instr in SimdInstr::ALL {
            for (m, n) in [(4096, 8), (256, 256), (8, 4096)] {
                let cfg = adaptive_unroll(&GemmDims::new(m, 512, n), instr);
                assert_eq!(cfg.spill_count(instr), 0, "{instr} {m}x{n} {cfg}");
            }
        }
    }

    #[test]
    fn spills_grow_with_unroll() {
        let small = UnrollConfig::new(2, 2);
        let huge = UnrollConfig::new(16, 16);
        assert_eq!(small.spill_count(SimdInstr::Vmpy), 0);
        assert!(huge.spill_count(SimdInstr::Vmpy) > 0);
    }

    #[test]
    fn exhaustive_covers_grid() {
        let c = candidates(
            UnrollStrategy::Exhaustive,
            &GemmDims::new(128, 128, 128),
            SimdInstr::Vmpy,
        );
        assert_eq!(c.len(), 25);
    }

    #[test]
    fn adaptive_clamps_to_small_shapes() {
        let cfg = adaptive_unroll(&GemmDims::new(32, 4, 4), SimdInstr::Vrmpy);
        assert!(cfg.n_unroll <= 1);
        assert!(cfg.k_unroll <= 1);
    }
}
