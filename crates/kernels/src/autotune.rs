//! Per-shape tile-size autotuning for the blocked GEMM.
//!
//! The blocked kernels take two tile parameters: `mb` (activation rows
//! per accumulator block) and `kb` (reduction rows per cache-resident
//! weight segment). The best pair depends on the GEMM shape and the
//! kernel ISA — a 4608-deep fully-connected layer wants a deeper `kb`
//! than a 27-deep first conv — so instead of the historical hardcoded
//! `MB=32 / KB=256`, the dispatcher asks this module for a
//! [`TilePlan`] per `(m, k, n, isa)`.
//!
//! The tuner also ranks the **kernel tier itself**, not just its tiles:
//! vector tiers pay an O(k·n) weight-panel pack per dispatch, and for
//! skinny activations (single-token FC layers, squeeze-excite
//! bottlenecks — `m` of 1 to a few dozen) that pack costs more than the
//! whole scalar GEMM. So a [`KernelChoice`] pairs tiles with an ISA,
//! the candidate sweep on pack-paying tiers includes the scalar oracle
//! (for `m ≤` [`SCALAR_CANDIDATE_MAX_M`], where it has a chance), and
//! below-threshold skinny shapes (`m ≤` [`SCALAR_SMALL_M`]) fall back
//! to scalar statically. All tiers are bit-identical, so the choice
//! only ever changes speed.
//!
//! Resolution policy, in order:
//!
//! 1. the `autotune.cache` fault point fires (chaos suites inject a
//!    poisoned-entry fault here): a corrupted cache entry falls back to
//!    the untuned default — never a panic, and since every choice
//!    produces bit-identical output, the fallback is invisible except
//!    in speed;
//! 2. a live thread-scoped scalar pin ([`crate::dispatch::pin_scalar`],
//!    the gateway's fault-triggered ISA demotion) serves the memoized
//!    scalar choice or the static default — a quarantined dispatch
//!    never pays a probe sweep;
//! 3. shapes below [`TUNE_MIN_MACS`] or with `GCD2_AUTOTUNE=0` use the
//!    defaults (tiny GEMMs finish before a probe would), except that
//!    pack-paying tiers hand `m ≤` [`SCALAR_SMALL_M`] shapes to scalar;
//! 4. a sharded-cache hit returns the memoized choice;
//! 5. otherwise the dispatcher's probe closure times each candidate on
//!    a truncated row range ([`probe_rows`]) and the fastest choice is
//!    memoized (first writer wins on races; all choices are bit-exact,
//!    so a lost race only affects which *speed* is cached).
//!
//! Tile choice is timing-based and therefore nondeterministic across
//! runs; output bytes are not — wrapping i32 accumulation makes every
//! block schedule produce identical results (the determinism gates in
//! CI rely on this).

use crate::dispatch::KernelIsa;
use gcd2_par::{CacheStats, ShardedMap};
use std::sync::OnceLock;
use std::time::Duration;

/// Blocking parameters for one GEMM dispatch: `mb` activation rows per
/// accumulator block, `kb` reduction rows per weight segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilePlan {
    /// Activation rows per block (accumulator tile height).
    pub mb: usize,
    /// Reduction (weight) rows per cache-resident segment.
    pub kb: usize,
}

impl TilePlan {
    /// The historical fixed blocking, used whenever tuning is off,
    /// not yet warmed, or faulted out.
    pub const DEFAULT: TilePlan = TilePlan {
        mb: crate::tiled::MB,
        kb: crate::tiled::KB,
    };
}

impl Default for TilePlan {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// One resolved dispatch decision: which kernel tier runs the GEMM and
/// with what blocking. The tiers are bit-identical, so this is purely a
/// speed choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelChoice {
    /// The tier that should execute this shape.
    pub isa: KernelIsa,
    /// Its blocking parameters.
    pub tiles: TilePlan,
}

impl KernelChoice {
    fn untuned(isa: KernelIsa) -> KernelChoice {
        KernelChoice {
            isa,
            tiles: TilePlan::DEFAULT,
        }
    }
}

/// Row-block candidates searched per shape.
const MB_CANDIDATES: [usize; 4] = [16, 32, 64, 128];
/// Reduction-segment candidates searched per shape.
const KB_CANDIDATES: [usize; 3] = [128, 256, 1024];

/// Above this many activation rows the per-dispatch weight pack is
/// amortized enough that scalar can never win; the sweep skips the
/// scalar probe (which would be slow precisely where it is pointless).
pub const SCALAR_CANDIDATE_MAX_M: usize = 128;

/// Skinny-shape static fallback: at `m ≤ 2` a pack-paying vector tier
/// loses to the packless scalar oracle on every shape we measured
/// (the pack reads `k·n` weights; the whole scalar GEMM reads them
/// once, without the strided interleave), so below-threshold dispatches
/// this narrow go straight to scalar without probing.
pub const SCALAR_SMALL_M: usize = 2;

/// Shapes below this many MACs (`m·k·n`) are not worth probing: the
/// GEMM completes faster than a candidate sweep.
pub const TUNE_MIN_MACS: u64 = 1 << 25;

/// Per-candidate probe budget in MACs; bounds how much work one cold
/// shape spends tuning (the probe runs on a truncated row range).
const PROBE_MAC_BUDGET: u64 = 1 << 25;
/// Hard cap on probe rows regardless of budget.
const PROBE_ROWS_CAP: usize = 1024;
/// Probe floor: two blocks of the largest `mb` candidate, so the sweep
/// can actually observe every row blocking it ranks — probing fewer
/// rows than one block makes all `mb` candidates time identically and
/// the pick degenerate to noise.
const PROBE_ROWS_MIN: usize = 256;

/// Rows of the real activation matrix a candidate probe runs over:
/// enough to exercise the blocking, truncated so deep shapes don't pay
/// a full GEMM per candidate.
pub(crate) fn probe_rows(m: usize, k: usize, n: usize) -> usize {
    let per_row = (k * n).max(1) as u64;
    let budget =
        (PROBE_MAC_BUDGET / per_row).clamp(PROBE_ROWS_MIN as u64, PROBE_ROWS_CAP as u64) as usize;
    m.min(budget)
}

type TuneKey = (usize, usize, usize, u8);

fn cache() -> &'static ShardedMap<TuneKey, KernelChoice> {
    static CACHE: OnceLock<ShardedMap<TuneKey, KernelChoice>> = OnceLock::new();
    CACHE.get_or_init(ShardedMap::new)
}

/// Whether tuning is enabled for this process (`GCD2_AUTOTUNE=0`
/// disables it; resolved once).
pub fn autotune_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GCD2_AUTOTUNE").map_or(true, |v| v != "0"))
}

/// The memoized choice for a shape (keyed by the *dispatching* tier,
/// which may have ceded to scalar), if that shape has been tuned in
/// this process — a pure lookup (no fault point, no probing) for
/// reports.
pub fn cached_choice(m: usize, k: usize, n: usize, isa: KernelIsa) -> Option<KernelChoice> {
    cache().get(&(m, k, n, isa as u8))
}

/// Tile-plan ceilings a seeded hint must respect; anything beyond the
/// candidate tables (with headroom for future tables) is rejected as
/// implausible rather than installed.
const SEED_MB_MAX: usize = 4096;
const SEED_KB_MAX: usize = 1 << 20;

/// Installs an externally recorded dispatch decision (e.g. the TUNE
/// section of a loaded plan artifact) into this process's tuner memo.
///
/// Hints are **advisory and validated**: both tiers must be executable
/// on this CPU, the blocking must be sane, and a shape that was already
/// probed locally keeps its measured choice (first writer wins — local
/// timings beat another machine's). Tile choices never change output
/// bytes, only speed, so a stale or mis-tuned hint is a performance
/// hazard at worst. Returns whether the hint was installed.
pub fn seed_choice(
    m: usize,
    k: usize,
    n: usize,
    dispatch_isa: KernelIsa,
    choice: KernelChoice,
) -> bool {
    if !autotune_enabled() || !dispatch_isa.supported() || !choice.isa.supported() {
        return false;
    }
    let TilePlan { mb, kb } = choice.tiles;
    if mb == 0 || kb == 0 || mb > SEED_MB_MAX || kb > SEED_KB_MAX {
        return false;
    }
    let key = (m, k, n, dispatch_isa as u8);
    if cache().get(&key).is_some() {
        return false;
    }
    cache().insert(key, choice);
    true
}

/// Hit/miss counters of the tuner cache.
pub fn tuner_cache_stats() -> CacheStats {
    cache().stats()
}

/// Candidate plans for a shape: the cross product of the `mb`/`kb`
/// tables, clamped to the shape (a `kb` deeper than `k` degenerates to
/// `k`) and deduplicated, with the default plan always included.
fn candidates(m: usize, k: usize) -> Vec<TilePlan> {
    let mut out = vec![TilePlan::DEFAULT];
    for &mb in &MB_CANDIDATES {
        for &kb in &KB_CANDIDATES {
            let t = TilePlan {
                mb: mb.min(m.max(1)),
                kb: kb.min(k.next_multiple_of(2).max(2)),
            };
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    out
}

/// The choice a shape gets when it is not (or cannot be) probed:
/// the dispatching tier with default tiles — except that pack-paying
/// tiers hand off skinny activations (`m ≤` [`SCALAR_SMALL_M`]) to the
/// packless scalar oracle, the statically known winner there.
pub(crate) fn static_choice(m: usize, isa: KernelIsa, pays_pack: bool) -> KernelChoice {
    if pays_pack && m <= SCALAR_SMALL_M {
        KernelChoice::untuned(KernelIsa::Scalar)
    } else {
        KernelChoice::untuned(isa)
    }
}

/// Resolves the kernel choice (tier + tiles) for one GEMM dispatch on
/// the dispatching tier `isa` (`pays_pack`: whether that tier packs a
/// weight panel per dispatch). `probe` times one candidate over the
/// truncated probe range and is only invoked on a cache miss above the
/// tuning threshold; candidates are the tile grid on `isa` plus — for
/// pack-paying tiers on shapes up to [`SCALAR_CANDIDATE_MAX_M`] rows —
/// the scalar oracle. Returns the choice plus whether it came from
/// tuning (cache hit or fresh probe) rather than statics.
pub(crate) fn resolve_kernel(
    m: usize,
    k: usize,
    n: usize,
    isa: KernelIsa,
    pays_pack: bool,
    probe: &mut dyn FnMut(KernelChoice) -> Duration,
) -> (KernelChoice, bool) {
    // Fire first so chaos scenarios targeting the tuner cache always
    // reach the point, whatever the shape. A corrupted entry means the
    // memo cannot be trusted: fall back to the static choice (bit-exact,
    // merely untuned) instead of panicking or erroring.
    if matches!(
        gcd2_faults::fire("autotune.cache"),
        gcd2_faults::Injection::CorruptCache
    ) {
        return (static_choice(m, isa, pays_pack), false);
    }
    // A thread-scoped scalar pin (fault-triggered ISA demotion,
    // [`crate::dispatch::pin_scalar`]) is a quarantine, not a tuning
    // regime: don't pay probe sweeps — or memoize their timings — while
    // demoted. Serve the memoized scalar choice if this shape already
    // has one, else the static scalar default. Tiles only ever change
    // speed, never bytes, so the shortcut is invisible in output.
    if crate::dispatch::scalar_pinned() {
        if let Some(c) = cache().get(&(m, k, n, KernelIsa::Scalar as u8)) {
            return (c, true);
        }
        return (static_choice(m, isa, pays_pack), false);
    }
    if !autotune_enabled()
        || (m as u64).saturating_mul(k as u64).saturating_mul(n as u64) < TUNE_MIN_MACS
    {
        return (static_choice(m, isa, pays_pack), false);
    }
    let key = (m, k, n, isa as u8);
    if let Some(c) = cache().get(&key) {
        return (c, true);
    }
    let mut best = KernelChoice::untuned(isa);
    let mut best_t = Duration::MAX;
    for tiles in candidates(m, k) {
        let cand = KernelChoice { isa, tiles };
        let took = probe(cand);
        if took < best_t {
            best_t = took;
            best = cand;
        }
    }
    if pays_pack && isa != KernelIsa::Scalar && m <= SCALAR_CANDIDATE_MAX_M {
        let cand = KernelChoice::untuned(KernelIsa::Scalar);
        if probe(cand) < best_t {
            best = cand;
        }
    }
    cache().insert(key, best);
    (best, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_include_default_and_dedup() {
        let c = candidates(1000, 2048);
        assert!(c.contains(&TilePlan::DEFAULT));
        let mut seen = std::collections::HashSet::new();
        for t in &c {
            assert!(seen.insert(*t), "duplicate candidate {t:?}");
            assert!(t.mb >= 1 && t.kb >= 2);
        }
        // Small shapes clamp: no candidate exceeds the shape.
        for t in candidates(8, 10) {
            assert!(t.mb <= 32, "mb {} for m=8 (default may exceed m)", t.mb);
        }
    }

    #[test]
    fn probe_rows_respects_budget() {
        // Tiny per-row cost: capped by the row cap, not the budget.
        assert_eq!(probe_rows(10_000, 16, 16), PROBE_ROWS_CAP);
        // Huge per-row cost: budget dominates but never below the floor
        // (two blocks of the largest mb candidate).
        assert_eq!(probe_rows(10_000, 4608, 4608), PROBE_ROWS_MIN);
        // Fewer rows than budget: use them all.
        assert_eq!(probe_rows(5, 64, 64), 5);
    }

    #[test]
    fn small_shapes_resolve_to_default_without_probing() {
        let mut calls = 0;
        let (c, tuned) = resolve_kernel(4, 4, 4, KernelIsa::Scalar, false, &mut |_| {
            calls += 1;
            Duration::ZERO
        });
        assert_eq!(c, KernelChoice::untuned(KernelIsa::Scalar));
        assert!(!tuned);
        assert_eq!(calls, 0, "below-threshold shape must not probe");
    }

    #[test]
    fn skinny_shapes_on_packing_tiers_fall_back_to_scalar_statically() {
        let mut calls = 0;
        let (c, tuned) = resolve_kernel(1, 1280, 1000, KernelIsa::Avx2, true, &mut |_| {
            calls += 1;
            Duration::ZERO
        });
        assert_eq!(c.isa, KernelIsa::Scalar, "m=1 must dodge the pack");
        assert!(!tuned);
        assert_eq!(calls, 0);
        // A packless tier (NEON/scalar) keeps its own kernel.
        let (c, _) = resolve_kernel(1, 1280, 1000, KernelIsa::Neon, false, &mut |_| {
            Duration::ZERO
        });
        assert_eq!(c.isa, KernelIsa::Neon);
        // Wider-than-skinny shapes stay on the vector tier.
        let (c, _) = resolve_kernel(16, 1280, 1000, KernelIsa::Avx2, true, &mut |_| {
            Duration::ZERO
        });
        assert_eq!(c.isa, KernelIsa::Avx2);
    }

    #[test]
    fn resolution_memoizes_first_probe() {
        // Unique shape for this test; above threshold.
        let (m, k, n) = (4096, 1024, 64);
        let mut calls = 0;
        let (c1, tuned1) = resolve_kernel(m, k, n, KernelIsa::Scalar, false, &mut |cand| {
            calls += 1;
            // Deterministic "timing": prefer mb=64/kb=1024.
            Duration::from_micros((200 - cand.tiles.mb.min(64) - cand.tiles.kb / 16) as u64)
        });
        assert!(tuned1);
        assert!(calls > 1, "cold shape must sweep candidates");
        assert_eq!(c1.isa, KernelIsa::Scalar);
        assert_eq!(c1.tiles, TilePlan { mb: 64, kb: 1024 });
        let before = calls;
        let (c2, tuned2) = resolve_kernel(m, k, n, KernelIsa::Scalar, false, &mut |_| {
            calls += 1;
            Duration::ZERO
        });
        assert!(tuned2);
        assert_eq!(c2, c1, "memoized choice must be returned");
        assert_eq!(calls, before, "warm shape must not probe");
        assert_eq!(cached_choice(m, k, n, KernelIsa::Scalar), Some(c1));
        assert_eq!(cached_choice(m, k, n, KernelIsa::Avx2), None);
    }

    #[test]
    fn sweep_probes_scalar_on_packing_tiers_and_picks_it_when_it_wins() {
        // Above threshold but narrow enough for the scalar candidate.
        let (m, k, n) = (64, 2048, 512);
        let mut scalar_probed = false;
        let (c, tuned) = resolve_kernel(m, k, n, KernelIsa::Avx2, true, &mut |cand| {
            if cand.isa == KernelIsa::Scalar {
                scalar_probed = true;
                Duration::from_micros(1)
            } else {
                Duration::from_micros(100)
            }
        });
        assert!(tuned);
        assert!(scalar_probed, "pack-paying tier must rank scalar");
        assert_eq!(c.isa, KernelIsa::Scalar, "faster scalar probe must win");
        assert_eq!(
            cached_choice(m, k, n, KernelIsa::Avx2).map(|c| c.isa),
            Some(KernelIsa::Scalar),
            "handoff is memoized under the dispatching tier's key"
        );
        // Wide shapes skip the scalar probe entirely.
        let (m2, k2, n2) = (4096, 2048, 512);
        let mut scalar_probed_wide = false;
        let (c, _) = resolve_kernel(m2, k2, n2, KernelIsa::Avx2, true, &mut |cand| {
            if cand.isa == KernelIsa::Scalar {
                scalar_probed_wide = true;
            }
            Duration::from_micros(100)
        });
        assert!(
            !scalar_probed_wide,
            "m > {SCALAR_CANDIDATE_MAX_M} must not probe scalar"
        );
        assert_eq!(c.isa, KernelIsa::Avx2);
    }
}
