//! Per-shape tile-size autotuning for the blocked GEMM.
//!
//! The blocked kernels take two tile parameters: `mb` (activation rows
//! per accumulator block) and `kb` (reduction rows per cache-resident
//! weight segment). The best pair depends on the GEMM shape and the
//! kernel ISA — a 4608-deep fully-connected layer wants a deeper `kb`
//! than a 27-deep first conv — so instead of the historical hardcoded
//! `MB=32 / KB=256`, the dispatcher asks this module for a
//! [`TilePlan`] per `(m, k, n, isa)`.
//!
//! Resolution policy, in order:
//!
//! 1. the `autotune.cache` fault point fires (chaos suites inject a
//!    poisoned-entry fault here): a corrupted cache entry falls back to
//!    [`TilePlan::DEFAULT`] — never a panic, and since every tile plan
//!    produces bit-identical output, the fallback is invisible except
//!    in speed;
//! 2. shapes below [`TUNE_MIN_MACS`] or with `GCD2_AUTOTUNE=0` use the
//!    defaults (tiny GEMMs finish before a probe would);
//! 3. a sharded-cache hit returns the memoized plan;
//! 4. otherwise the dispatcher's probe closure times each candidate on
//!    a truncated row range ([`probe_rows`]) and the fastest plan is
//!    memoized (first writer wins on races; all plans are bit-exact, so
//!    a lost race only affects which *speed* is cached).
//!
//! Tile choice is timing-based and therefore nondeterministic across
//! runs; output bytes are not — wrapping i32 accumulation makes every
//! block schedule produce identical results (the determinism gates in
//! CI rely on this).

use crate::dispatch::KernelIsa;
use gcd2_par::{CacheStats, ShardedMap};
use std::sync::OnceLock;
use std::time::Duration;

/// Blocking parameters for one GEMM dispatch: `mb` activation rows per
/// accumulator block, `kb` reduction rows per weight segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilePlan {
    /// Activation rows per block (accumulator tile height).
    pub mb: usize,
    /// Reduction (weight) rows per cache-resident segment.
    pub kb: usize,
}

impl TilePlan {
    /// The historical fixed blocking, used whenever tuning is off,
    /// not yet warmed, or faulted out.
    pub const DEFAULT: TilePlan = TilePlan {
        mb: crate::tiled::MB,
        kb: crate::tiled::KB,
    };
}

impl Default for TilePlan {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Row-block candidates searched per shape.
const MB_CANDIDATES: [usize; 4] = [16, 32, 64, 128];
/// Reduction-segment candidates searched per shape.
const KB_CANDIDATES: [usize; 3] = [128, 256, 1024];

/// Shapes below this many MACs (`m·k·n`) are not worth probing: the
/// GEMM completes faster than a candidate sweep.
pub const TUNE_MIN_MACS: u64 = 1 << 25;

/// Per-candidate probe budget in MACs; bounds how much work one cold
/// shape spends tuning (the probe runs on a truncated row range).
const PROBE_MAC_BUDGET: u64 = 1 << 25;
/// Hard cap on probe rows regardless of budget.
const PROBE_ROWS_CAP: usize = 1024;
/// Probe floor: two blocks of the largest `mb` candidate, so the sweep
/// can actually observe every row blocking it ranks — probing fewer
/// rows than one block makes all `mb` candidates time identically and
/// the pick degenerate to noise.
const PROBE_ROWS_MIN: usize = 256;

/// Rows of the real activation matrix a candidate probe runs over:
/// enough to exercise the blocking, truncated so deep shapes don't pay
/// a full GEMM per candidate.
pub(crate) fn probe_rows(m: usize, k: usize, n: usize) -> usize {
    let per_row = (k * n).max(1) as u64;
    let budget =
        (PROBE_MAC_BUDGET / per_row).clamp(PROBE_ROWS_MIN as u64, PROBE_ROWS_CAP as u64) as usize;
    m.min(budget)
}

type TuneKey = (usize, usize, usize, u8);

fn cache() -> &'static ShardedMap<TuneKey, TilePlan> {
    static CACHE: OnceLock<ShardedMap<TuneKey, TilePlan>> = OnceLock::new();
    CACHE.get_or_init(ShardedMap::new)
}

/// Whether tuning is enabled for this process (`GCD2_AUTOTUNE=0`
/// disables it; resolved once).
pub fn autotune_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("GCD2_AUTOTUNE").map_or(true, |v| v != "0"))
}

/// The memoized plan for a shape, if that shape has been tuned in this
/// process — a pure lookup (no fault point, no probing) for reports.
pub fn cached_tiles(m: usize, k: usize, n: usize, isa: KernelIsa) -> Option<TilePlan> {
    cache().get(&(m, k, n, isa as u8))
}

/// Hit/miss counters of the tuner cache.
pub fn tuner_cache_stats() -> CacheStats {
    cache().stats()
}

/// Candidate plans for a shape: the cross product of the `mb`/`kb`
/// tables, clamped to the shape (a `kb` deeper than `k` degenerates to
/// `k`) and deduplicated, with the default plan always included.
fn candidates(m: usize, k: usize) -> Vec<TilePlan> {
    let mut out = vec![TilePlan::DEFAULT];
    for &mb in &MB_CANDIDATES {
        for &kb in &KB_CANDIDATES {
            let t = TilePlan {
                mb: mb.min(m.max(1)),
                kb: kb.min(k.next_multiple_of(2).max(2)),
            };
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    out
}

/// Resolves the tile plan for one GEMM dispatch. `probe` times one
/// candidate over the truncated probe range and is only invoked on a
/// cache miss above the tuning threshold. Returns the plan plus whether
/// it came from tuning (cache hit or fresh probe) rather than defaults.
pub(crate) fn resolve_tiles(
    m: usize,
    k: usize,
    n: usize,
    isa: KernelIsa,
    probe: &mut dyn FnMut(TilePlan) -> Duration,
) -> (TilePlan, bool) {
    // Fire first so chaos scenarios targeting the tuner cache always
    // reach the point, whatever the shape. A corrupted entry means the
    // memo cannot be trusted: fall back to the default plan (bit-exact,
    // merely untuned) instead of panicking or erroring.
    if matches!(
        gcd2_faults::fire("autotune.cache"),
        gcd2_faults::Injection::CorruptCache
    ) {
        return (TilePlan::DEFAULT, false);
    }
    if !autotune_enabled()
        || (m as u64).saturating_mul(k as u64).saturating_mul(n as u64) < TUNE_MIN_MACS
    {
        return (TilePlan::DEFAULT, false);
    }
    let key = (m, k, n, isa as u8);
    if let Some(t) = cache().get(&key) {
        return (t, true);
    }
    let mut best = TilePlan::DEFAULT;
    let mut best_t = Duration::MAX;
    for cand in candidates(m, k) {
        let took = probe(cand);
        if took < best_t {
            best_t = took;
            best = cand;
        }
    }
    cache().insert(key, best);
    (best, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_include_default_and_dedup() {
        let c = candidates(1000, 2048);
        assert!(c.contains(&TilePlan::DEFAULT));
        let mut seen = std::collections::HashSet::new();
        for t in &c {
            assert!(seen.insert(*t), "duplicate candidate {t:?}");
            assert!(t.mb >= 1 && t.kb >= 2);
        }
        // Small shapes clamp: no candidate exceeds the shape.
        for t in candidates(8, 10) {
            assert!(t.mb <= 32, "mb {} for m=8 (default may exceed m)", t.mb);
        }
    }

    #[test]
    fn probe_rows_respects_budget() {
        // Tiny per-row cost: capped by the row cap, not the budget.
        assert_eq!(probe_rows(10_000, 16, 16), PROBE_ROWS_CAP);
        // Huge per-row cost: budget dominates but never below the floor
        // (two blocks of the largest mb candidate).
        assert_eq!(probe_rows(10_000, 4608, 4608), PROBE_ROWS_MIN);
        // Fewer rows than budget: use them all.
        assert_eq!(probe_rows(5, 64, 64), 5);
    }

    #[test]
    fn small_shapes_resolve_to_default_without_probing() {
        let mut calls = 0;
        let (t, tuned) = resolve_tiles(4, 4, 4, KernelIsa::Scalar, &mut |_| {
            calls += 1;
            Duration::ZERO
        });
        assert_eq!(t, TilePlan::DEFAULT);
        assert!(!tuned);
        assert_eq!(calls, 0, "below-threshold shape must not probe");
    }

    #[test]
    fn resolution_memoizes_first_probe() {
        // Unique shape for this test; above threshold.
        let (m, k, n) = (4096, 1024, 64);
        let mut calls = 0;
        let (t1, tuned1) = resolve_tiles(m, k, n, KernelIsa::Scalar, &mut |cand| {
            calls += 1;
            // Deterministic "timing": prefer mb=64/kb=1024.
            Duration::from_micros((200 - cand.mb.min(64) - cand.kb / 16) as u64)
        });
        assert!(tuned1);
        assert!(calls > 1, "cold shape must sweep candidates");
        assert_eq!(t1, TilePlan { mb: 64, kb: 1024 });
        let before = calls;
        let (t2, tuned2) = resolve_tiles(m, k, n, KernelIsa::Scalar, &mut |_| {
            calls += 1;
            Duration::ZERO
        });
        assert!(tuned2);
        assert_eq!(t2, t1, "memoized plan must be returned");
        assert_eq!(calls, before, "warm shape must not probe");
        assert_eq!(cached_tiles(m, k, n, KernelIsa::Scalar), Some(t1));
        assert_eq!(cached_tiles(m, k, n, KernelIsa::Avx2), None);
    }
}
