//! Pre-designed matrix-multiplication kernels, one per SIMD instruction.
//!
//! Each kernel follows the paper's Figure 2 execution scheme: stream
//! layout-panels of the activation matrix through vector loads, multiply
//! them against weight bytes held in scalar registers, accumulate in
//! vector registers, then requantize and store output panels *in the same
//! layout family* — so chaining two operators that picked the same
//! instruction incurs zero data transformation.
//!
//! Two generators are provided:
//!
//! * [`timing_blocks`] — loop-structured blocks (with trip counts) whose
//!   SDA-packed cycle count is the kernel's cost; used by the optimizer
//!   and the end-to-end latency estimates.
//! * [`functional_program`] — a fully unrolled program for small shapes
//!   with weights embedded as immediates; executed on the simulator to
//!   validate layouts and instruction semantics against the scalar
//!   reference.

use crate::instr::SimdInstr;
use crate::unroll::UnrollConfig;
use gcd2_cgraph::GemmDims;
use gcd2_hvx::{pack_weights, Block, Insn, Program, SReg, VPair, VReg, VBYTES};
use gcd2_tensor::{MatrixI8, MatrixU8};

fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn w(i: u8) -> VPair {
    VPair::new(i)
}
fn r(i: u8) -> SReg {
    SReg::new(i)
}

/// Scalar register roles shared by the kernels.
mod regs {
    /// Activation pointer.
    pub const A_PTR: u8 = 0;
    /// Weight pointer.
    pub const W_PTR: u8 = 1;
    /// Output pointer.
    pub const OUT_PTR: u8 = 2;
    /// Rotating weight registers.
    pub const WGT0: u8 = 3;
    /// Spill pointer.
    pub const SPILL_PTR: u8 = 6;
    /// Zero register (accumulator init).
    pub const ZERO: u8 = 7;
}

/// Iteration-space bookkeeping for a GEMM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmLoops {
    /// Row panels (`padded_M / m_granularity`).
    pub panels: usize,
    /// Reduction groups (`padded_K / k_granularity`).
    pub k_groups: usize,
    /// Output columns (unpadded).
    pub n_cols: usize,
    /// Inner-body iterations: `panels × ceil(k_groups / k_unroll) × ceil(n / n_unroll)`.
    pub body_trips: u64,
}

/// Computes the iteration space of a kernel.
pub fn gemm_loops(gemm: &GemmDims, instr: SimdInstr, unroll: UnrollConfig) -> GemmLoops {
    let layout = instr.layout();
    let panels = layout.padded_rows(gemm.m) / instr.m_granularity();
    let k_groups = layout.padded_cols(gemm.k) / instr.k_granularity();
    let n_cols = gemm.n;
    let body_trips = panels as u64
        * k_groups.div_ceil(unroll.k_unroll) as u64
        * n_cols.div_ceil(unroll.n_unroll) as u64;
    GemmLoops {
        panels,
        k_groups,
        n_cols,
        body_trips,
    }
}

/// Emits the loop-structured kernel for cost estimation: a setup block,
/// an accumulator-init block, the multiply body, and the
/// requantize-and-store epilogue.
pub fn timing_blocks(gemm: &GemmDims, instr: SimdInstr, unroll: UnrollConfig) -> Vec<Block> {
    let loops = gemm_loops(gemm, instr, unroll);
    let t = unroll.n_unroll;
    let u = unroll.k_unroll;
    let spills = unroll.spill_count(instr);

    // --- setup: pointer and constant initialisation (once) ---------------
    let mut setup = Block::new(format!("matmul/{instr} setup {gemm}"));
    for (reg, imm) in [
        (regs::A_PTR, 0i64),
        (regs::W_PTR, 0),
        (regs::OUT_PTR, 0),
        (regs::ZERO, 0),
    ] {
        setup.push(Insn::Movi { dst: r(reg), imm });
    }

    // --- accumulator init: once per (panel, column group) ----------------
    let mut init = Block::with_trip_count(
        format!("matmul/{instr} init"),
        loops.panels as u64 * loops.n_cols.div_ceil(t) as u64,
    );
    let acc_regs = |ti: usize| -> u8 { (8 + ti as u8 * acc_width(instr)).min(28) };
    for ti in 0..t {
        match instr {
            SimdInstr::Vmpy => {
                init.push(Insn::Vsplat {
                    dst: v(acc_regs(ti)),
                    src: r(regs::ZERO),
                });
                init.push(Insn::Vsplat {
                    dst: v(acc_regs(ti) + 1),
                    src: r(regs::ZERO),
                });
            }
            SimdInstr::Vmpa | SimdInstr::Vrmpy => {
                init.push(Insn::Vsplat {
                    dst: v(acc_regs(ti)),
                    src: r(regs::ZERO),
                });
            }
        }
    }

    // --- multiply body ----------------------------------------------------
    let mut body = Block::with_trip_count(
        format!("matmul/{instr} body {gemm} x{unroll}"),
        loops.body_trips,
    );
    for ui in 0..u {
        body.push(Insn::VLoad {
            dst: v(ui as u8 % 6),
            base: r(regs::A_PTR),
            offset: (ui * VBYTES) as i64,
        });
    }
    for ti in 0..t {
        for ui in 0..u {
            let wreg = r(regs::WGT0 + ((ti * u + ui) % 3) as u8);
            body.push(Insn::Ld {
                dst: wreg,
                base: r(regs::W_PTR),
                offset: ((ti * u + ui) * 8) as i64,
            });
            let acc = acc_regs(ti);
            let src = v(ui as u8 % 6);
            body.push(match instr {
                SimdInstr::Vmpy => Insn::Vmpy {
                    dst: w(acc & !1),
                    src,
                    weights: wreg,
                    acc: true,
                },
                SimdInstr::Vmpa => Insn::Vmpa {
                    dst: v(acc),
                    src,
                    weights: wreg,
                    acc: true,
                },
                SimdInstr::Vrmpy => Insn::Vrmpy {
                    dst: v(acc),
                    src,
                    weights: wreg,
                    acc: true,
                },
            });
        }
    }
    for s in 0..spills {
        body.push(Insn::VLoad {
            dst: v(29),
            base: r(regs::SPILL_PTR),
            offset: (s * VBYTES) as i64,
        });
        body.push(Insn::VStore {
            src: v(29),
            base: r(regs::SPILL_PTR),
            offset: ((s + spills) * VBYTES) as i64,
        });
    }
    body.push(Insn::AddI {
        dst: r(regs::A_PTR),
        a: r(regs::A_PTR),
        imm: (u * VBYTES) as i64,
    });
    body.push(Insn::AddI {
        dst: r(regs::W_PTR),
        a: r(regs::W_PTR),
        imm: (t * u * 8) as i64,
    });

    // --- epilogue: requantize + store, once per output group -------------
    let group = instr.n_granularity();
    let mut epi = Block::with_trip_count(
        format!("matmul/{instr} requant"),
        loops.panels as u64 * loops.n_cols.div_ceil(group) as u64,
    );
    match instr {
        SimdInstr::Vmpy => {
            epi.push(Insn::VasrHB {
                dst: v(4),
                src: w(8),
                shift: 6,
            });
            epi.push(Insn::VStore {
                src: v(4),
                base: r(regs::OUT_PTR),
                offset: 0,
            });
        }
        SimdInstr::Vmpa => {
            epi.push(Insn::VasrHB {
                dst: v(4),
                src: w(8),
                shift: 6,
            });
            epi.push(Insn::VStore {
                src: v(4),
                base: r(regs::OUT_PTR),
                offset: 0,
            });
        }
        SimdInstr::Vrmpy => {
            epi.push(Insn::VasrWH {
                dst: v(4),
                a: v(8),
                b: v(10),
                shift: 6,
            });
            epi.push(Insn::VasrWH {
                dst: v(5),
                a: v(9),
                b: v(11),
                shift: 6,
            });
            epi.push(Insn::VasrHB {
                dst: v(6),
                src: w(4),
                shift: 0,
            });
            epi.push(Insn::VStore {
                src: v(6),
                base: r(regs::OUT_PTR),
                offset: 0,
            });
        }
    }
    epi.push(Insn::AddI {
        dst: r(regs::OUT_PTR),
        a: r(regs::OUT_PTR),
        imm: VBYTES as i64,
    });

    vec![setup, init, body, epi]
}

fn acc_width(instr: SimdInstr) -> u8 {
    match instr {
        SimdInstr::Vmpy => 2,
        SimdInstr::Vmpa | SimdInstr::Vrmpy => 1,
    }
}

/// Builds a fully unrolled, functionally-correct program computing
/// `out = requant(a × wgt, shift)` with the given instruction.
///
/// `a` must already be stored in the instruction's layout; the program
/// reads `a`'s bytes at `addr_a` and writes the output (padded, in the
/// same layout family) at `addr_out`. Use [`output_matrix_len`] to size
/// the buffer.
///
/// # Panics
/// Panics if `a.layout() != instr.layout()` or the weight matrix does
/// not have `a.cols()` rows.
pub fn functional_program(
    a: &MatrixU8,
    wgt: &MatrixI8,
    instr: SimdInstr,
    shift: u8,
    addr_a: i64,
    addr_out: i64,
) -> Program {
    assert_eq!(
        a.layout(),
        instr.layout(),
        "activation layout must match the instruction"
    );
    assert_eq!(
        wgt.rows(),
        a.cols(),
        "weight rows must equal activation cols"
    );
    let layout = instr.layout();
    let (m, k, n) = (a.rows(), a.cols(), wgt.cols());
    let kp = layout.padded_cols(k);
    let np = layout.padded_cols(n);
    let mg = instr.m_granularity();
    let kg = instr.k_granularity();
    let panels = layout.padded_rows(m) / mg;
    let k_groups = kp / kg;

    let mut block = Block::new(format!("matmul/{instr} functional"));
    block.push(Insn::Movi {
        dst: r(regs::A_PTR),
        imm: addr_a,
    });
    block.push(Insn::Movi {
        dst: r(regs::OUT_PTR),
        imm: addr_out,
    });

    let wb = |kk: usize, nn: usize| -> i8 {
        if kk < k && nn < n {
            wgt.get(kk, nn)
        } else {
            0
        }
    };

    for p in 0..panels {
        let n_step = instr.n_granularity();
        let mut col = 0;
        while col < n {
            // Accumulate the n_step columns of this group.
            for (g, nn) in (col..col + n_step).enumerate() {
                for kgi in 0..k_groups {
                    let chunk = (p * mg * kp + kgi * VBYTES) as i64;
                    block.push(Insn::VLoad {
                        dst: v(0),
                        base: r(regs::A_PTR),
                        offset: chunk,
                    });
                    let weights = match instr {
                        SimdInstr::Vmpy => {
                            let x = wb(kgi, nn);
                            pack_weights([x, x, x, x])
                        }
                        SimdInstr::Vmpa => {
                            let (x, y) = (wb(2 * kgi, nn), wb(2 * kgi + 1, nn));
                            pack_weights([x, y, x, y])
                        }
                        SimdInstr::Vrmpy => pack_weights([
                            wb(4 * kgi, nn),
                            wb(4 * kgi + 1, nn),
                            wb(4 * kgi + 2, nn),
                            wb(4 * kgi + 3, nn),
                        ]),
                    };
                    block.push(Insn::Movi {
                        dst: r(regs::WGT0),
                        imm: weights,
                    });
                    let acc = 8 + g as u8 * acc_width(instr);
                    let first = kgi == 0;
                    block.push(match instr {
                        SimdInstr::Vmpy => Insn::Vmpy {
                            dst: w(acc),
                            src: v(0),
                            weights: r(regs::WGT0),
                            acc: !first,
                        },
                        SimdInstr::Vmpa => Insn::Vmpa {
                            dst: v(acc),
                            src: v(0),
                            weights: r(regs::WGT0),
                            acc: !first,
                        },
                        SimdInstr::Vrmpy => Insn::Vrmpy {
                            dst: v(acc),
                            src: v(0),
                            weights: r(regs::WGT0),
                            acc: !first,
                        },
                    });
                }
            }
            // Requantize and store the group's output chunk.
            let out_off = (p * mg * np + (col / n_step) * VBYTES) as i64;
            match instr {
                SimdInstr::Vmpy => {
                    block.push(Insn::VasrHB {
                        dst: v(4),
                        src: w(8),
                        shift,
                    });
                    block.push(Insn::VStore {
                        src: v(4),
                        base: r(regs::OUT_PTR),
                        offset: out_off,
                    });
                }
                SimdInstr::Vmpa => {
                    block.push(Insn::VasrHB {
                        dst: v(4),
                        src: w(8),
                        shift,
                    });
                    block.push(Insn::VStore {
                        src: v(4),
                        base: r(regs::OUT_PTR),
                        offset: out_off,
                    });
                }
                SimdInstr::Vrmpy => {
                    block.push(Insn::VasrWH {
                        dst: v(4),
                        a: v(8),
                        b: v(10),
                        shift,
                    });
                    block.push(Insn::VasrWH {
                        dst: v(5),
                        a: v(9),
                        b: v(11),
                        shift,
                    });
                    block.push(Insn::VasrHB {
                        dst: v(6),
                        src: w(4),
                        shift: 0,
                    });
                    block.push(Insn::VStore {
                        src: v(6),
                        base: r(regs::OUT_PTR),
                        offset: out_off,
                    });
                }
            }
            col += n_step;
        }
    }
    let mut prog = Program::new();
    prog.push(gcd2_hvx::PackedBlock::sequential(&block));
    prog
}

/// Bytes the functional kernel's output occupies at `addr_out`
/// (`M × N` padded in the instruction's layout family).
pub fn output_matrix_len(gemm: &GemmDims, instr: SimdInstr) -> usize {
    instr.layout().padded_len(gemm.m, gemm.n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_hvx::PackedBlock;

    #[test]
    fn loop_counts() {
        let g = GemmDims::new(100, 33, 10);
        let l = gemm_loops(&g, SimdInstr::Vrmpy, UnrollConfig::NONE);
        // M 100 -> 128 (4 panels of 32); K 33 -> 36 (9 groups); N 10.
        assert_eq!(l.panels, 4);
        assert_eq!(l.k_groups, 9);
        assert_eq!(l.body_trips, 4 * 9 * 10);
    }

    #[test]
    fn multiply_count_matches_iteration_space() {
        let g = GemmDims::new(128, 16, 8);
        for instr in SimdInstr::ALL {
            let blocks = timing_blocks(&g, instr, UnrollConfig::new(2, 2));
            let body = &blocks[2];
            let mpy = body
                .insns
                .iter()
                .filter(|i| {
                    matches!(
                        i,
                        Insn::Vmpy { .. } | Insn::Vmpa { .. } | Insn::Vrmpy { .. }
                    )
                })
                .count();
            assert_eq!(mpy, 4, "{instr}: T*U multiplies per body");
            let loops = gemm_loops(&g, instr, UnrollConfig::new(2, 2));
            assert_eq!(body.trip_count, loops.body_trips);
        }
    }

    #[test]
    fn sequential_cost_ordering_at_128() {
        // At M=K=N=128 nothing pads, so vmpy (latency 8) must be the
        // cheapest per Table II's last row, under any schedule.
        let g = GemmDims::new(128, 128, 128);
        let cost = |instr: SimdInstr| -> u64 {
            timing_blocks(&g, instr, UnrollConfig::NONE)
                .iter()
                .map(|b| PackedBlock::sequential(b).stats().cycles)
                .sum()
        };
        // Sequential schedules overstate everything equally; the multiply
        // count ordering still shows through.
        let vmpy = cost(SimdInstr::Vmpy);
        let vrmpy = cost(SimdInstr::Vrmpy);
        assert!(vmpy < vrmpy, "vmpy {vmpy} vs vrmpy {vrmpy}");
    }

    #[test]
    fn spilled_config_emits_spill_traffic() {
        let g = GemmDims::new(128, 128, 128);
        let cfg = UnrollConfig::new(16, 4);
        assert!(cfg.spill_count(SimdInstr::Vmpy) > 0);
        let blocks = timing_blocks(&g, SimdInstr::Vmpy, cfg);
        let body = &blocks[2];
        let stores = body.insns.iter().filter(|i| i.is_store()).count();
        assert!(stores > 0, "spills must generate store traffic");
    }
}
