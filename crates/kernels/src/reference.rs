//! Scalar reference implementations the SIMD kernels are validated
//! against.
#![allow(clippy::needless_range_loop)]

use gcd2_tensor::{MatrixI8, MatrixU8};

/// Reference quantized matrix multiply:
/// `out[r][c] = clamp((Σ_k a[r][k] · w[k][c]) >> shift, 0, 255)`.
///
/// Accumulation is 32-bit; the SIMD kernels accumulate `vmpy`/`vmpa`
/// results in 16 bits, so test inputs must keep accumulators within
/// `i16` range for bit-exact agreement (see crate docs).
///
/// # Panics
/// Panics if `a.cols() != w.rows()`.
pub fn matmul_ref(a: &MatrixU8, w: &MatrixI8, shift: u8) -> Vec<Vec<u8>> {
    assert_eq!(a.cols(), w.rows(), "dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), w.cols());
    let mut out = vec![vec![0u8; n]; m];
    for r in 0..m {
        for c in 0..n {
            let mut acc: i32 = 0;
            for kk in 0..k {
                acc += a.get(r, kk) as i32 * w.get(kk, c) as i32;
            }
            out[r][c] = (acc >> shift).clamp(0, 255) as u8;
        }
    }
    out
}

/// Reference elementwise `clamp((a + b) >> shift, 0, 255)`.
pub fn add_ref(a: &[u8], b: &[u8], shift: u8) -> Vec<u8> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (((x as i32 + y as i32) >> shift).clamp(0, 255)) as u8)
        .collect()
}

/// Reference elementwise `clamp((a · b) >> shift, 0, 255)`.
pub fn mul_ref(a: &[u8], b: &[u8], shift: u8) -> Vec<u8> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (((x as i32 * y as i32) >> shift).clamp(0, 255)) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_tensor::Layout;

    #[test]
    fn tiny_matmul() {
        // [1 2; 3 4] x [1 0; 0 1] = identity application.
        let a = MatrixU8::from_row_major(2, 2, Layout::RowMajor, &[1, 2, 3, 4]);
        let w = MatrixI8::from_row_major(2, 2, &[1, 0, 0, 1]);
        let out = matmul_ref(&a, &w, 0);
        assert_eq!(out, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn negative_products_clamp_to_zero() {
        let a = MatrixU8::from_row_major(1, 1, Layout::RowMajor, &[10]);
        let w = MatrixI8::from_row_major(1, 1, &[-3]);
        assert_eq!(matmul_ref(&a, &w, 0), vec![vec![0]]);
    }

    #[test]
    fn elementwise_refs() {
        assert_eq!(add_ref(&[200, 100], &[100, 50], 1), vec![150, 75]);
        assert_eq!(mul_ref(&[16, 3], &[16, 3], 4), vec![16, 0]);
    }
}
