//! Bit-identity gate for the GEMM kernel stack.
//!
//! Contract: for every operand shape, every requant shift, and every
//! activation zero-density, all three of
//!
//! * the naive gold reference (`matmul_ref`),
//! * the scalar blocked oracle (`force_isa(Scalar)`),
//! * the auto-detected SIMD kernel (and the intra-op threaded driver at
//!   every thread count)
//!
//! produce **identical bytes**. Wrapping i32 accumulation makes this a
//! theorem about the implementation, and this suite is the check that
//! keeps it true as kernels evolve. Under `GCD2_FORCE_SCALAR=1` (CI runs
//! the suite both ways) the "SIMD" side degrades to the oracle and the
//! gate still has to hold.

use gcd2_kernels::{
    force_isa, matmul_ref, try_matmul_blocked_into, try_matmul_threaded_into, GemmScratch,
    KernelIsa, ScratchPool,
};
use gcd2_tensor::{Layout, MatrixI8, MatrixU8};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// `force_isa` is process-global; tests that flip it serialize here so
/// the harness's parallel test threads can't observe each other's
/// overrides mid-case.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn force_guard() -> MutexGuard<'static, ()> {
    match FORCE_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn reference_bytes(a: &MatrixU8, w: &MatrixI8, shift: u8) -> Vec<u8> {
    matmul_ref(a, w, shift).into_iter().flatten().collect()
}

fn run_isa(
    isa: Option<KernelIsa>,
    a: &MatrixU8,
    m: usize,
    k: usize,
    w: &MatrixI8,
    shift: u8,
) -> Vec<u8> {
    force_isa(isa);
    let mut scratch = GemmScratch::default();
    let mut out = Vec::new();
    try_matmul_blocked_into(a.as_bytes(), m, k, w, shift, &mut scratch, &mut out)
        .expect("valid operands");
    force_isa(None);
    out
}

/// One full identity check: reference == scalar == auto == threaded(t)
/// for several thread counts.
fn assert_identity(a: &MatrixU8, w: &MatrixI8, shift: u8) {
    let (m, k) = (a.rows(), a.cols());
    let _guard = force_guard();
    let want = reference_bytes(a, w, shift);
    let scalar = run_isa(Some(KernelIsa::Scalar), a, m, k, w, shift);
    assert_eq!(scalar, want, "scalar oracle vs reference ({m},{k})");
    let auto = run_isa(None, a, m, k, w, shift);
    assert_eq!(auto, scalar, "auto ISA vs oracle ({m},{k})");
    let pool = ScratchPool::new();
    for threads in [1, 2, 5] {
        let mut out = Vec::new();
        try_matmul_threaded_into(a.as_bytes(), m, k, w, shift, &pool, threads, &mut out)
            .expect("valid operands");
        assert_eq!(out, scalar, "threaded({threads}) vs oracle ({m},{k})");
    }
}

fn activations(m: usize, k: usize, zero_pct: u8, seed: u64) -> MatrixU8 {
    MatrixU8::from_fn(m, k, Layout::RowMajor, |r, c| {
        let mut h = (r as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seed);
        h ^= h >> 31;
        if (h % 100) < zero_pct as u64 {
            0
        } else {
            ((h >> 8) % 256) as u8
        }
    })
}

fn weights(k: usize, n: usize, seed: u64) -> MatrixI8 {
    MatrixI8::from_fn(k, n, |r, c| {
        let mut h = (r as u64)
            .wrapping_mul(0xD605_1F2D_21A9_5A8D)
            .wrapping_add((c as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(seed);
        h ^= h >> 29;
        ((h % 17) as i8) - 8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random shapes, shifts, and zero densities: the full-stack
    /// identity over arbitrary (including remainder-heavy) tiles.
    #[test]
    fn simd_equals_scalar_equals_reference(
        m in 1usize..=80,
        k in 1usize..=160,
        n in 1usize..=48,
        shift in 0u8..=7,
        zero_pct in 0u8..=100,
        seed in any::<u64>(),
    ) {
        let a = activations(m, k, zero_pct, seed);
        let w = weights(k, n, seed ^ 0xABCD);
        assert_identity(&a, &w, shift);
    }
}

/// Shapes pinned to the register-tile and block boundaries: K-remainder
/// (odd k exercises the half-pair path), M-remainder (rows % 4), and
/// N-remainder (cols % 16 / % 8) edge tiles, plus exact-fit controls.
#[test]
fn edge_tiles_are_bit_identical() {
    let cases: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 2, 16),   // single row, exact pair, exact strip
        (2, 3, 8),    // odd k: half-pair tail
        (3, 255, 17), // m % 4 == 3, odd k, n % 16 == 1
        (4, 256, 16), // exact everything
        (5, 257, 24), // m % 4 == 1, k % 256 == 1, n % 16 == 8
        (7, 31, 9),   // n % 8 == 1 scalar column tail
        (8, 512, 31),
        (33, 64, 15), // m % 32 == 1 block remainder
        (65, 129, 33),
        (130, 1024, 7), // k spans multiple default KB segments
    ];
    for &(m, k, n) in cases {
        for shift in [0u8, 4] {
            let a = activations(m, k, 35, (m * 1000 + k) as u64);
            let w = weights(k, n, n as u64);
            assert_identity(&a, &w, shift);
        }
    }
}

/// All-zero activations exercise the zero-skip path end to end; the
/// requant of an untouched accumulator must still be well-defined.
#[test]
fn all_zero_activations_match() {
    let a = activations(20, 40, 100, 1);
    let w = weights(40, 20, 2);
    assert_identity(&a, &w, 3);
}

/// The intra-op threaded driver is deterministic across thread budgets
/// on a shape large enough to actually split into bands.
#[test]
fn threaded_band_split_is_deterministic() {
    let (m, k, n) = (203, 96, 24);
    let a = activations(m, k, 30, 7);
    let w = weights(k, n, 8);
    let pool = ScratchPool::new();
    let mut first = Vec::new();
    try_matmul_threaded_into(a.as_bytes(), m, k, &w, 2, &pool, 1, &mut first)
        .expect("valid operands");
    for threads in [2, 3, 4, 8, 16] {
        let mut out = Vec::new();
        try_matmul_threaded_into(a.as_bytes(), m, k, &w, 2, &pool, threads, &mut out)
            .expect("valid operands");
        assert_eq!(out, first, "threads={threads}");
    }
    assert_eq!(reference_bytes(&a, &w, 2), first);
}

/// Throughput probe (run explicitly with `--ignored --release`): prints
/// scalar vs auto GMAC/s on an fst-sized GEMM so kernel regressions are
/// easy to spot by hand. Not a correctness gate.
#[test]
#[ignore]
fn perf_probe() {
    let (m, k, n) = (2048, 1152, 128);
    let a = activations(m, k, 40, 42);
    let w = weights(k, n, 43);
    let macs = (m * k * n) as f64;
    let _guard = force_guard();
    for isa in [Some(KernelIsa::Scalar), None] {
        force_isa(isa);
        let mut scratch = GemmScratch::default();
        let mut out = Vec::new();
        // warm (includes autotune probe)
        try_matmul_blocked_into(a.as_bytes(), m, k, &w, 5, &mut scratch, &mut out)
            .expect("valid operands");
        let reps = 3;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            try_matmul_blocked_into(a.as_bytes(), m, k, &w, 5, &mut scratch, &mut out)
                .expect("valid operands");
        }
        let secs = start.elapsed().as_secs_f64() / reps as f64;
        println!(
            "isa={:<6} {:>8.2} ms  {:>6.2} GMAC/s",
            gcd2_kernels::active_isa().name(),
            secs * 1e3,
            macs / secs / 1e9
        );
    }
    force_isa(None);
}
