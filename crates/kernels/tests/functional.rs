//! Functional validation: every SIMD matmul kernel, executed on the
//! simulated DSP with its layout of Figure 2, must agree bit-for-bit with
//! the scalar reference.
//!
//! Inputs are bounded (activations ≤ 15, weights in [-7, 7], K ≤ 48) so
//! the 16-bit accumulators of the `vmpy`/`vmpa` paths cannot overflow —
//! the same constraint real quantized kernels manage by choosing
//! requantization points (see DESIGN.md).
#![allow(clippy::needless_range_loop)]

use gcd2_cgraph::GemmDims;
use gcd2_hvx::Machine;
use gcd2_kernels::{functional_program, matmul_ref, output_matrix_len, SimdInstr};
use gcd2_tensor::{MatrixI8, MatrixU8};

fn run_kernel(a_rm: &[u8], w_rm: &[i8], m: usize, k: usize, n: usize, instr: SimdInstr) {
    let shift = 4u8;
    let a = MatrixU8::from_row_major(m, k, instr.layout(), a_rm);
    let w = MatrixI8::from_row_major(k, n, w_rm);
    let gemm = GemmDims::new(m, k, n);

    let addr_a = 0usize;
    let addr_out = a.padded_len().div_ceil(128) * 128;
    let out_len = output_matrix_len(&gemm, instr);

    let prog = functional_program(&a, &w, instr, shift, addr_a as i64, addr_out as i64);
    let mut machine = Machine::new(addr_out + out_len);
    machine.mem[..a.padded_len()].copy_from_slice(a.as_bytes());
    machine.run(&prog);

    let out_bytes = machine.mem[addr_out..addr_out + out_len].to_vec();
    let got = MatrixU8::from_raw(m, n, instr.layout(), out_bytes);
    let expect = matmul_ref(&a, &w, shift);
    for r in 0..m {
        for c in 0..n {
            assert_eq!(
                got.get(r, c),
                expect[r][c],
                "{instr} M{m} K{k} N{n} at ({r},{c})"
            );
        }
    }
}

fn pseudo(m: usize, k: usize, n: usize, seed: u64) -> (Vec<u8>, Vec<i8>) {
    // Small deterministic LCG, bounded ranges (see module docs).
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let a: Vec<u8> = (0..m * k).map(|_| (next() % 16) as u8).collect();
    let w: Vec<i8> = (0..k * n).map(|_| (next() % 15) as i8 - 7).collect();
    (a, w)
}

#[test]
fn vmpy_matches_reference_exact_panel() {
    let (a, w) = pseudo(128, 8, 4, 1);
    run_kernel(&a, &w, 128, 8, 4, SimdInstr::Vmpy);
}

#[test]
fn vmpa_matches_reference_exact_panel() {
    let (a, w) = pseudo(128, 8, 4, 2);
    run_kernel(&a, &w, 128, 8, 4, SimdInstr::Vmpa);
}

#[test]
fn vrmpy_matches_reference_exact_panel() {
    let (a, w) = pseudo(128, 8, 4, 3);
    run_kernel(&a, &w, 128, 8, 4, SimdInstr::Vrmpy);
}

#[test]
fn all_instructions_on_ragged_shapes() {
    // Shapes exercising every padding path: odd K, odd N, partial panels.
    let shapes = [
        (5, 3, 2),
        (33, 7, 5),
        (70, 9, 3),
        (130, 5, 9),
        (96, 48, 6),
        (32, 1, 1),
    ];
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let (a, w) = pseudo(m, k, n, 100 + i as u64);
        for instr in SimdInstr::ALL {
            run_kernel(&a, &w, m, k, n, instr);
        }
    }
}

#[test]
fn multi_panel_shapes() {
    // More than one panel for each layout (vmpy needs M > 128).
    let (a, w) = pseudo(200, 6, 3, 42);
    for instr in SimdInstr::ALL {
        run_kernel(&a, &w, 200, 6, 3, instr);
    }
}

#[test]
fn identity_weights_pass_through() {
    // w = 16·I and shift 4 → output equals input (values ≤ 15).
    let m = 64;
    let k = 8;
    let (a, _) = pseudo(m, k, k, 7);
    let mut w = vec![0i8; k * k];
    for i in 0..k {
        w[i * k + i] = 16;
    }
    for instr in SimdInstr::ALL {
        let a_m = MatrixU8::from_row_major(m, k, instr.layout(), &a);
        let w_m = MatrixI8::from_row_major(k, k, &w);
        let expect = matmul_ref(&a_m, &w_m, 4);
        for r in 0..m {
            for c in 0..k {
                assert_eq!(expect[r][c], a[r * k + c], "reference sanity");
            }
        }
        run_kernel(&a, &w, m, k, k, instr);
    }
}

/// Full convolution on the simulated DSP: im2col (host side) + the SIMD
/// matmul kernel must match the direct scalar convolution, for every
/// instruction/layout pair.
#[test]
fn convolution_via_simd_matmul_matches_direct_reference() {
    use gcd2_kernels::{conv_ref_chw, conv_weights_as_gemm, im2col_chw};

    let (c, h, w_dim, out_c) = (2usize, 8usize, 7usize, 3usize);
    let kernel = (3, 3);
    let stride = (1, 1);
    let padding = (1, 1);
    let shift = 5u8;
    // Bounded so the 16-bit accumulation paths stay exact (K = 18).
    let input: Vec<u8> = (0..c * h * w_dim).map(|i| (i * 5 % 16) as u8).collect();
    let weights: Vec<i8> = (0..out_c * c * 9)
        .map(|i| ((i * 7 % 15) as i8) - 7)
        .collect();
    let expect = conv_ref_chw(
        &input, &weights, c, h, w_dim, out_c, kernel, stride, padding, shift,
    );

    for instr in SimdInstr::ALL {
        let a = im2col_chw(&input, c, h, w_dim, kernel, stride, padding, instr.layout());
        let wm = conv_weights_as_gemm(&weights, c, out_c, kernel);
        let gemm = GemmDims::new(a.rows(), a.cols(), out_c);

        let addr_out = a.padded_len().div_ceil(128) * 128;
        let out_len = output_matrix_len(&gemm, instr);
        let prog = functional_program(&a, &wm, instr, shift, 0, addr_out as i64);
        let mut machine = Machine::new(addr_out + out_len);
        machine.mem[..a.padded_len()].copy_from_slice(a.as_bytes());
        machine.run(&prog);
        let got = MatrixU8::from_raw(
            a.rows(),
            out_c,
            instr.layout(),
            machine.mem[addr_out..addr_out + out_len].to_vec(),
        );
        for oc in 0..out_c {
            for o in 0..h * w_dim {
                assert_eq!(
                    got.get(o, oc),
                    expect[oc * h * w_dim + o],
                    "{instr} oc={oc} o={o}"
                );
            }
        }
    }
}

/// The functional elementwise programs agree with the scalar references
/// over ragged lengths and shifts.
#[test]
fn elementwise_programs_match_references() {
    use gcd2_hvx::SReg;
    use gcd2_kernels::elementwise::functional::{add_program, mul_program, relu_program};
    use gcd2_kernels::{add_ref, mul_ref};

    for elems in [1usize, 100, 128, 300, 1024] {
        let padded = elems.div_ceil(128) * 128;
        let a: Vec<u8> = (0..elems).map(|i| (i % 200) as u8).collect();
        let b: Vec<u8> = (0..elems).map(|i| (i * 3 % 55) as u8).collect();
        let setup = |m: &mut Machine| {
            m.mem[..elems].copy_from_slice(&a);
            m.mem[padded..padded + elems].copy_from_slice(&b);
            m.set_sreg(SReg::new(0), 0);
            m.set_sreg(SReg::new(1), padded as i64);
            m.set_sreg(SReg::new(2), 2 * padded as i64);
        };

        // Add.
        let mut m = Machine::new(3 * padded);
        setup(&mut m);
        m.run(&add_program(elems, 1));
        assert_eq!(
            &m.mem[2 * padded..2 * padded + elems],
            &add_ref(&a, &b, 1)[..],
            "add {elems}"
        );

        // Mul.
        let mut m = Machine::new(3 * padded);
        setup(&mut m);
        m.run(&mul_program(elems, 4));
        assert_eq!(
            &m.mem[2 * padded..2 * padded + elems],
            &mul_ref(&a, &b, 4)[..],
            "mul {elems}"
        );

        // Relu-style floor clamp (signed max on bytes).
        let mut m = Machine::new(3 * padded);
        setup(&mut m);
        m.run(&relu_program(elems, 3));
        let expect: Vec<u8> = a
            .iter()
            .map(|&x| {
                // Vmax is signed on bytes: values >= 128 are negative.
                if (x as i8) < 3 {
                    3
                } else {
                    x
                }
            })
            .collect();
        assert_eq!(
            &m.mem[2 * padded..2 * padded + elems],
            &expect[..],
            "relu {elems}"
        );
    }
}
