//! Property tests on the kernel generators and cost model.

use gcd2_cgraph::GemmDims;
use gcd2_hvx::ResourceModel;
use gcd2_kernels::{
    adaptive_unroll, gemm_loops, timing_blocks, CostModel, SimdInstr, UnrollConfig,
};
use gcd2_vliw::Packer;
use proptest::prelude::*;

fn arb_gemm() -> impl Strategy<Value = GemmDims> {
    (1usize..600, 1usize..300, 1usize..200).prop_map(|(m, k, n)| GemmDims::new(m, k, n))
}

fn arb_instr() -> impl Strategy<Value = SimdInstr> {
    prop_oneof![
        Just(SimdInstr::Vmpy),
        Just(SimdInstr::Vmpa),
        Just(SimdInstr::Vrmpy)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The iteration space covers at least the padded GEMM volume:
    /// multiplies per body × body trips × MACs per multiply ≥ M·K·N.
    #[test]
    fn iteration_space_covers_the_gemm(gemm in arb_gemm(), instr in arb_instr()) {
        let unroll = UnrollConfig::new(2, 2);
        let loops = gemm_loops(&gemm, instr, unroll);
        let macs_per_insn = 128u64;
        let mpy_per_body = (unroll.n_unroll * unroll.k_unroll) as u64;
        let covered = loops.body_trips * mpy_per_body * macs_per_insn;
        prop_assert!(covered >= gemm.macs(), "covered {covered} < {}", gemm.macs());
        // And not absurdly more than the padded volume.
        let layout = instr.layout();
        let padded = layout.padded_rows(gemm.m) as u64
            * layout.padded_cols(gemm.k) as u64
            * gemm.n.div_ceil(unroll.n_unroll) as u64
            * unroll.n_unroll as u64;
        prop_assert!(covered <= padded * 4, "covered {covered} vs padded {padded}");
    }

    /// Every generated kernel block packs into legal packets.
    #[test]
    fn kernel_blocks_pack_legally(gemm in arb_gemm(), instr in arb_instr(), n_u in 1usize..9, k_u in 1usize..9) {
        let packer = Packer::new();
        let model = ResourceModel::default();
        for block in timing_blocks(&gemm, instr, UnrollConfig::new(n_u, k_u)) {
            let packed = packer.pack_block(&block);
            prop_assert!(packed.is_legal(&model), "illegal schedule for {}", block.label);
            prop_assert_eq!(packed.insn_count(), block.len());
        }
    }

    /// Cost is monotone in the GEMM volume along each axis.
    #[test]
    fn cost_monotone_in_volume(gemm in arb_gemm(), instr in arb_instr()) {
        let m = CostModel::new();
        let unroll = UnrollConfig::NONE;
        let base = m.gemm_cycles(&gemm, instr, unroll);
        let bigger_m = GemmDims::new(gemm.m * 2, gemm.k, gemm.n);
        let bigger_k = GemmDims::new(gemm.m, gemm.k * 2, gemm.n);
        let bigger_n = GemmDims::new(gemm.m, gemm.k, gemm.n * 2);
        prop_assert!(m.gemm_cycles(&bigger_m, instr, unroll) >= base);
        prop_assert!(m.gemm_cycles(&bigger_k, instr, unroll) >= base);
        prop_assert!(m.gemm_cycles(&bigger_n, instr, unroll) >= base);
    }

    /// The adaptive unroll never spills and never loses to no-unrolling
    /// by more than the loop-edge waste bound.
    #[test]
    fn adaptive_unroll_is_safe(gemm in arb_gemm(), instr in arb_instr()) {
        let cfg = adaptive_unroll(&gemm, instr);
        prop_assert_eq!(cfg.spill_count(instr), 0);
        let m = CostModel::new();
        let adaptive = m.gemm_cycles(&gemm, instr, cfg);
        let none = m.gemm_cycles(&gemm, instr, UnrollConfig::NONE);
        // Unrolling can waste edge iterations on tiny shapes but must
        // never blow up.
        prop_assert!(adaptive as f64 <= none as f64 * 1.6, "adaptive {adaptive} vs none {none}");
    }
}
