//! # gcd2-par — scoped parallelism utilities for the compilation pipeline
//!
//! The workspace is offline/vendored, so this crate builds its worker
//! pool on nothing but [`std::thread::scope`]. It provides the two
//! primitives the parallel compiler needs:
//!
//! * [`par_map`] — an order-preserving parallel map over indexed work
//!   items. Work is claimed from a shared atomic counter, so uneven item
//!   costs (a 3×3 conv next to a ReLU) balance automatically; the result
//!   vector is always in item order, which is what makes the parallel
//!   pipeline *bit-identical* to the serial one.
//! * [`ShardedMap`] — a concurrent memo table sharded by key hash, with
//!   hit/miss counters. Shared across worker threads via `Arc`, it backs
//!   the kernel cost cache and the VLIW packing memo.
//!
//! ```
//! use gcd2_par::par_map;
//! let squares = par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The number of worker threads the pipeline uses by default: the
/// `GCD2_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. Resolved once per
/// process.
pub fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("GCD2_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning the results **in item order**.
///
/// `f` receives `(index, &item)`. Items are claimed dynamically from a
/// shared counter, so the schedule (which thread runs which item) is
/// nondeterministic — but because every result lands in its item's slot,
/// the returned vector is identical for every thread count, including 1.
/// `f` must therefore be a pure function of its arguments (interior
/// caches are fine as long as cached values are deterministic).
///
/// A panic on any worker propagates to the caller once all workers have
/// finished.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                })
            })
            .collect();
        // Join explicitly so a worker panic re-raises with its original
        // payload (an unconsumed handle would surface only as the
        // scope's generic "a scoped thread panicked").
        for w in workers {
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Hit/miss counters of a [`ShardedMap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A concurrent memo table: a fixed power-of-two number of
/// `Mutex<HashMap>` shards, selected by key hash, plus hit/miss
/// counters. Values must be deterministic functions of their keys — two
/// threads racing on the same cold key may both compute, and whichever
/// inserts first wins; all callers still observe equal values.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> ShardedMap<K, V> {
    /// The default shard count: enough that 4–16 workers rarely collide.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a map with [`Self::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates a map with `shards` shards (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Lookup/compute counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Total number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    fn shard_of<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        // Shard count is a power of two; take the hash's low bits.
        (self.hasher.hash_one(key) as usize) & (self.shards.len() - 1)
    }

    /// Returns a clone of the cached value, counting a hit or a miss.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let guard = self.shards[self.shard_of(key)]
            .lock()
            .expect("shard poisoned");
        match guard.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` unless the key is already cached (first writer
    /// wins, so racing computations of the same key converge on one
    /// stored value). Does not touch the hit/miss counters — pair it
    /// with [`Self::get`].
    pub fn insert(&self, key: K, value: V) {
        self.shards[self.shard_of(&key)]
            .lock()
            .expect("shard poisoned")
            .entry(key)
            .or_insert(value);
    }

    /// Returns the cached value for `key`, computing and caching it with
    /// `f` on a miss. `f` runs *outside* the shard lock, so a slow
    /// computation never blocks other keys in the same shard.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, f: F) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = f();
        self.insert(key, v.clone());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn par_map_propagates_panics() {
        par_map(2, &[0u32, 1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn sharded_map_basic_hit_miss() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        assert_eq!(m.get(&1), None);
        m.insert(1, 10);
        assert_eq!(m.get(&1), Some(10));
        let s = m.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sharded_map_first_writer_wins() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        m.insert(5, 50);
        m.insert(5, 999);
        assert_eq!(m.get(&5), Some(50));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sharded_map_borrowed_key_lookup() {
        let m: ShardedMap<Vec<u8>, usize> = ShardedMap::new();
        m.insert(vec![1, 2, 3], 6);
        let slice: &[u8] = &[1, 2, 3];
        assert_eq!(m.get(slice), Some(6));
    }

    #[test]
    fn concurrent_hammer_no_lost_inserts() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        let keys: Vec<u64> = (0..64).collect();
        // 8 logical workers each touch every key; values are a pure
        // function of the key, so every lookup must agree.
        let results = par_map(8, &[0usize; 8], |_, _| {
            keys.iter()
                .map(|&k| m.get_or_insert_with(k, || k * 7))
                .collect::<Vec<u64>>()
        });
        for r in &results {
            assert_eq!(r, &keys.iter().map(|k| k * 7).collect::<Vec<_>>());
        }
        assert_eq!(m.len(), keys.len(), "no inserts lost, no duplicates");
        let s = m.stats();
        assert_eq!(s.hits + s.misses, 8 * keys.len() as u64);
        assert!(s.misses >= keys.len() as u64);
    }

    #[test]
    fn cache_stats_hit_rate() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.merge(CacheStats { hits: 3, misses: 1 });
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
