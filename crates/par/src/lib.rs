//! # gcd2-par — scoped parallelism utilities for the compilation pipeline
//!
//! The workspace is offline/vendored, so this crate builds its worker
//! pool on nothing but [`std::thread::scope`]. It provides the two
//! primitives the parallel compiler needs:
//!
//! * [`par_map`] — an order-preserving parallel map over indexed work
//!   items. Work is claimed from a shared atomic counter, so uneven item
//!   costs (a 3×3 conv next to a ReLU) balance automatically; the result
//!   vector is always in item order, which is what makes the parallel
//!   pipeline *bit-identical* to the serial one.
//! * [`try_par_map`] — the panic-isolating variant the compilation
//!   pipeline runs on: worker closures execute under `catch_unwind`, a
//!   panicked item is retried once serially, and only a *repeated* panic
//!   surfaces — as a structured [`WorkerPanic`], never a process abort.
//! * [`par_map_isolated`] — the same isolation with **per-item**
//!   results (`Vec<Result<_, WorkerPanic>>`), so one poisoned item
//!   fails alone instead of sinking the whole map; the batched
//!   inference runtime serves on it.
//! * [`ShardedMap`] — a concurrent memo table sharded by key hash, with
//!   hit/miss counters. Shared across worker threads via `Arc`, it backs
//!   the kernel cost cache and the VLIW packing memo. A shard whose lock
//!   was poisoned by a panicking worker is **quarantined** (cleared and
//!   un-poisoned) on the next access: possibly half-written entries are
//!   dropped and recomputed rather than trusted.
//!
//! ```
//! use gcd2_par::par_map;
//! let squares = par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hash, RandomState};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The number of worker threads the pipeline uses by default: the
/// `GCD2_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. Resolved once per
/// process.
pub fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("GCD2_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning the results **in item order**.
///
/// `f` receives `(index, &item)`. Items are claimed dynamically from a
/// shared counter, so the schedule (which thread runs which item) is
/// nondeterministic — but because every result lands in its item's slot,
/// the returned vector is identical for every thread count, including 1.
/// `f` must therefore be a pure function of its arguments (interior
/// caches are fine as long as cached values are deterministic).
///
/// A panic on any worker propagates to the caller once all workers have
/// finished.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                })
            })
            .collect();
        // Join explicitly so a worker panic re-raises with its original
        // payload (an unconsumed handle would surface only as the
        // scope's generic "a scoped thread panicked").
        for w in workers {
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// A work item panicked twice — once on a worker thread and again on
/// the serial retry — so the failure is persistent, not a transient
/// scheduling artifact. Carries the item index and the panic payload
/// rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "work item {} panicked twice (worker + serial retry): {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a `catch_unwind` payload as text (`&str` and `String`
/// payloads verbatim, anything else a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`] with panic isolation: the map the compilation pipeline
/// runs on, so one panicking operator degrades one compile instead of
/// the process.
///
/// Every item closure runs under `catch_unwind`. An item whose first
/// attempt panicked is retried **once, serially**, after the workers
/// finish — transient failures (a poisoned cache shard, an injected
/// fault) recover and, because `f` is pure, the retried result is
/// bit-identical to an undisturbed run. An item that panics twice
/// returns a structured [`WorkerPanic`]. A worker thread that dies
/// before claiming work (e.g. a startup fault) is tolerated: its items
/// are claimed by surviving workers or swept up serially.
pub fn try_par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_isolated(threads, items, f).into_iter().collect()
}

/// [`try_par_map`] with **per-item** results: the map the batched
/// inference runtime serves on, where one poisoned input must not sink
/// the rest of the batch.
///
/// Isolation and retry are identical to [`try_par_map`] — worker
/// closures run under `catch_unwind`, a first panic is retried once
/// serially, workers that die at startup are tolerated — but an item
/// that panics twice yields `Err(WorkerPanic)` **in its own slot** while
/// every other item still returns its `Ok` value.
pub fn par_map_isolated<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    // Slot states: None = unprocessed, Some(Ok) = done, Some(Err) =
    // first attempt panicked (message kept for diagnostics).
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    if threads > 1 {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        // A worker-startup fault kills this worker only;
                        // the others (or the serial sweep) take its share.
                        if catch_unwind(|| {
                            let _ = gcd2_faults::fire("par.worker");
                        })
                        .is_err()
                        {
                            return;
                        }
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            let r = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                            let r = r.map_err(|p| panic_message(p.as_ref()));
                            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                        }
                    })
                })
                .collect();
            for w in workers {
                // Worker bodies catch every panic, so join only fails on
                // pathological unwind-in-unwind; treat it as a dead worker.
                let _ = w.join();
            }
        });
    }
    // Serial sweep: finish unclaimed items and retry panicked ones once.
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let state = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
            match state {
                Some(Ok(r)) => Ok(r),
                Some(Err(_)) => retry_serial(i, &items[i], &f, 1),
                None => retry_serial(i, &items[i], &f, 2),
            }
        })
        .collect()
}

/// Runs `f(i, item)` under `catch_unwind` up to `attempts` times,
/// converting a final panic into a [`WorkerPanic`].
fn retry_serial<T, R, F>(i: usize, item: &T, f: &F, attempts: usize) -> Result<R, WorkerPanic>
where
    F: Fn(usize, &T) -> R,
{
    let mut last = String::new();
    for _ in 0..attempts.max(1) {
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => return Ok(r),
            Err(p) => last = panic_message(p.as_ref()),
        }
    }
    Err(WorkerPanic {
        index: i,
        message: last,
    })
}

/// Hit/miss counters of a [`ShardedMap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A concurrent memo table: a fixed power-of-two number of
/// `Mutex<HashMap>` shards, selected by key hash, plus hit/miss
/// counters. Values must be deterministic functions of their keys — two
/// threads racing on the same cold key may both compute, and whichever
/// inserts first wins; all callers still observe equal values.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> ShardedMap<K, V> {
    /// The default shard count: enough that 4–16 workers rarely collide.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a map with [`Self::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates a map with `shards` shards (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Locks a shard, quarantining it first if a panicking holder
    /// poisoned the lock: possibly half-written entries are discarded
    /// (values are pure functions of their keys, so dropped entries are
    /// simply recomputed) and the poison flag is cleared.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, HashMap<K, V>> {
        match self.shards[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.shards[idx].clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Number of shard quarantines performed so far (a shard is
    /// quarantined when a panicking worker poisoned its lock; its
    /// entries are dropped and recomputed on demand).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Lookup/compute counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Total number of cached entries.
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> ShardedMap<K, V> {
    fn shard_of<Q: Hash + ?Sized>(&self, key: &Q) -> usize {
        // Shard count is a power of two; take the hash's low bits.
        (self.hasher.hash_one(key) as usize) & (self.shards.len() - 1)
    }

    /// Returns a clone of the cached value, counting a hit or a miss.
    /// An injected `cache.lookup` corruption fault drops the entry and
    /// reports a miss, forcing a (pure, deterministic) recompute.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut guard = self.lock_shard(self.shard_of(key));
        // The fault point sits *inside* the critical section on purpose:
        // an injected panic here poisons the shard lock, which is
        // exactly the condition the quarantine path recovers from.
        let corrupt = matches!(
            gcd2_faults::fire("cache.lookup"),
            gcd2_faults::Injection::CorruptCache
        );
        if corrupt {
            guard.remove(key);
        }
        match guard.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` unless the key is already cached (first writer
    /// wins, so racing computations of the same key converge on one
    /// stored value). Does not touch the hit/miss counters — pair it
    /// with [`Self::get`].
    pub fn insert(&self, key: K, value: V) {
        self.lock_shard(self.shard_of(&key))
            .entry(key)
            .or_insert(value);
    }

    /// Returns the cached value for `key`, computing and caching it with
    /// `f` on a miss. `f` runs *outside* the shard lock, so a slow
    /// computation never blocks other keys in the same shard.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, f: F) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = f();
        self.insert(key, v.clone());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn par_map_propagates_panics() {
        par_map(2, &[0u32, 1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn try_par_map_matches_par_map() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4] {
            let tried = try_par_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 7
            })
            .expect("no panics injected");
            assert_eq!(tried, par_map(threads, &items, |_, &x| x * 7));
        }
    }

    #[test]
    fn try_par_map_recovers_from_transient_panic() {
        // Item 5 panics exactly once (on whichever thread first claims
        // it); the serial retry recomputes it and the result vector is
        // indistinguishable from an undisturbed run.
        let fired = AtomicUsize::new(0);
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 4] {
            fired.store(0, Ordering::SeqCst);
            let out = try_par_map(threads, &items, |_, &x| {
                if x == 5 && fired.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                x + 1
            })
            .expect("transient panic must be retried away");
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_par_map_reports_persistent_panic() {
        let items: Vec<usize> = (0..16).collect();
        for threads in [1, 3] {
            let err = try_par_map(threads, &items, |_, &x| {
                if x == 9 {
                    panic!("persistent failure on 9");
                }
                x
            })
            .expect_err("persistent panic must surface");
            assert_eq!(err.index, 9);
            assert!(err.message.contains("persistent failure"), "{err}");
        }
    }

    #[test]
    fn par_map_isolated_confines_failure_to_its_slot() {
        // Item 9 always panics; every sibling still returns Ok — the
        // per-item contract the batched inference runtime serves on.
        let items: Vec<usize> = (0..16).collect();
        for threads in [1, 3] {
            let out = par_map_isolated(threads, &items, |_, &x| {
                if x == 9 {
                    panic!("poisoned item");
                }
                x * 2
            });
            for (i, r) in out.iter().enumerate() {
                if i == 9 {
                    let err = r.as_ref().expect_err("item 9 must fail");
                    assert_eq!(err.index, 9);
                    assert!(err.message.contains("poisoned item"), "{err}");
                } else {
                    assert_eq!(r.as_ref().copied(), Ok(i * 2));
                }
            }
        }
    }

    #[test]
    fn par_map_isolated_retries_transients_to_all_ok() {
        let fired = AtomicUsize::new(0);
        let items: Vec<usize> = (0..24).collect();
        for threads in [1, 4] {
            fired.store(0, Ordering::SeqCst);
            let out = par_map_isolated(threads, &items, |_, &x| {
                if x == 7 && fired.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient");
                }
                x + 1
            });
            let values: Result<Vec<usize>, _> = out.into_iter().collect();
            assert_eq!(
                values.expect("transient panic must be retried away"),
                items.iter().map(|x| x + 1).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let p = std::panic::catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "plain str");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
    }

    #[test]
    fn sharded_map_basic_hit_miss() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        assert_eq!(m.get(&1), None);
        m.insert(1, 10);
        assert_eq!(m.get(&1), Some(10));
        let s = m.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sharded_map_first_writer_wins() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        m.insert(5, 50);
        m.insert(5, 999);
        assert_eq!(m.get(&5), Some(50));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sharded_map_borrowed_key_lookup() {
        let m: ShardedMap<Vec<u8>, usize> = ShardedMap::new();
        m.insert(vec![1, 2, 3], 6);
        let slice: &[u8] = &[1, 2, 3];
        assert_eq!(m.get(slice), Some(6));
    }

    #[test]
    fn concurrent_hammer_no_lost_inserts() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        let keys: Vec<u64> = (0..64).collect();
        // 8 logical workers each touch every key; values are a pure
        // function of the key, so every lookup must agree.
        let results = par_map(8, &[0usize; 8], |_, _| {
            keys.iter()
                .map(|&k| m.get_or_insert_with(k, || k * 7))
                .collect::<Vec<u64>>()
        });
        for r in &results {
            assert_eq!(r, &keys.iter().map(|k| k * 7).collect::<Vec<_>>());
        }
        assert_eq!(m.len(), keys.len(), "no inserts lost, no duplicates");
        let s = m.stats();
        assert_eq!(s.hits + s.misses, 8 * keys.len() as u64);
        assert!(s.misses >= keys.len() as u64);
    }

    #[test]
    fn cache_stats_hit_rate() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.merge(CacheStats { hits: 3, misses: 1 });
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
