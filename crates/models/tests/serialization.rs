//! Every model in the catalog survives a text serialization round trip.

use gcd2_cgraph::{from_text, to_text};
use gcd2_models::ModelId;

#[test]
fn all_models_round_trip_through_text() {
    for id in ModelId::ALL {
        let g = id.build();
        let text = to_text(&g);
        let back = from_text(&text).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(back.len(), g.len(), "{id}: node count");
        assert_eq!(back.op_count(), g.op_count(), "{id}: op count");
        assert_eq!(back.total_macs(), g.total_macs(), "{id}: MACs");
        assert_eq!(back.edges(), g.edges(), "{id}: edges");
        for (a, b) in g.nodes().iter().zip(back.nodes()) {
            assert_eq!(a.kind, b.kind, "{id}: node {} kind", a.name);
            assert_eq!(a.shape, b.shape, "{id}: node {} shape", a.name);
        }
    }
}
