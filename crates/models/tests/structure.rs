//! Structural regression tests for each evaluation model: operator
//! mixes and architectural signatures (SE blocks, BiFPN cells,
//! attention heads), beyond the MAC/param ranges the unit tests check.

use gcd2_cgraph::{Graph, OpKind};
use gcd2_models::ModelId;

fn count(g: &Graph, pred: impl Fn(&OpKind) -> bool) -> usize {
    g.nodes().iter().filter(|n| pred(&n.kind)).count()
}

fn convs(g: &Graph) -> usize {
    count(g, |k| matches!(k, OpKind::Conv2d { .. }))
}

#[test]
fn resnet50_structure() {
    let g = ModelId::ResNet50.build();
    // Standard ResNet-50: 1 stem + 16 blocks x 3 convs + 4 downsamples = 53.
    assert_eq!(convs(&g), 53);
    assert_eq!(count(&g, |k| *k == OpKind::Add), 16, "16 residual adds");
    assert_eq!(count(&g, |k| matches!(k, OpKind::MatMul { n: 1000 })), 1);
    assert_eq!(count(&g, |k| *k == OpKind::GlobalAvgPool), 1);
}

#[test]
fn mobilenet_v3_structure() {
    let g = ModelId::MobileNetV3.build();
    let dw = count(&g, |k| matches!(k, OpKind::DepthwiseConv2d { .. }));
    assert_eq!(dw, 15, "one depthwise per bneck");
    let se_scales = count(&g, |k| *k == OpKind::Mul);
    assert_eq!(se_scales, 8, "8 squeeze-excite blocks in V3-Large");
    assert_eq!(count(&g, |k| *k == OpKind::Sigmoid), 8);
}

#[test]
fn efficientnet_b0_structure() {
    let g = ModelId::EfficientNetB0.build();
    let dw = count(&g, |k| matches!(k, OpKind::DepthwiseConv2d { .. }));
    assert_eq!(dw, 16, "one depthwise per MBConv");
    assert_eq!(
        count(&g, |k| *k == OpKind::Sigmoid),
        16,
        "SE in every block"
    );
}

#[test]
fn gan_structures() {
    let fst = ModelId::Fst.build();
    assert_eq!(count(&fst, |k| *k == OpKind::Add), 5, "5 residual blocks");
    assert_eq!(count(&fst, |k| matches!(k, OpKind::Upsample { .. })), 2);

    let cg = ModelId::CycleGan.build();
    assert_eq!(count(&cg, |k| *k == OpKind::Add), 9, "9 residual blocks");
    assert_eq!(
        count(&cg, |k| matches!(k, OpKind::ConvTranspose2d { .. })),
        2
    );
}

#[test]
fn detector_structures() {
    let ed = ModelId::EfficientDetD0.build();
    // 5 BiFPN cells x (4 top-down + 4 bottom-up) weighted fusions.
    let fusions = count(&ed, |k| *k == OpKind::Mul) - 16; // minus backbone SE scales
    assert_eq!(fusions, 40, "5 cells x 8 fusion nodes");
    let up = count(&ed, |k| matches!(k, OpKind::Upsample { .. }));
    assert_eq!(up, 20, "4 top-down resizes per cell");

    let px = ModelId::PixOr.build();
    assert_eq!(count(&px, |k| *k == OpKind::Sigmoid), 1, "objectness head");
    assert!(convs(&px) >= 20);
}

#[test]
fn transformer_structures() {
    let tb = ModelId::TinyBert.build();
    assert_eq!(
        count(&tb, |k| *k == OpKind::Softmax),
        6,
        "one attention per layer"
    );
    assert_eq!(count(&tb, |k| *k == OpKind::Gelu), 7, "6 FFNs + pooler");
    assert_eq!(
        count(&tb, |k| *k == OpKind::LayerNorm),
        13,
        "2 per layer + embedding"
    );

    let cf = ModelId::Conformer.build();
    assert_eq!(
        count(&cf, |k| *k == OpKind::Softmax),
        12,
        "one attention per block"
    );
    assert_eq!(
        count(&cf, |k| matches!(k, OpKind::DepthwiseConv2d { .. })),
        12,
        "one conv module per block"
    );
    assert_eq!(
        count(&cf, |k| *k == OpKind::LayerNorm),
        48,
        "4 per macaron block"
    );
}

#[test]
fn every_model_is_connected_and_single_output() {
    for id in ModelId::ALL {
        let g = id.build();
        // Single-output models have one sink; detectors expose one
        // prediction pair per pyramid level.
        let sinks: Vec<_> = g
            .nodes()
            .iter()
            .filter(|n| g.succs(n.id).is_empty())
            .map(|n| n.name.clone())
            .collect();
        let expected_sinks = match id {
            ModelId::EfficientDetD0 => 10, // class+box per P3..P7
            ModelId::PixOr => 2,           // objectness + box regression
            _ => 1,
        };
        assert_eq!(sinks.len(), expected_sinks, "{id}: sinks {sinks:?}");
        // Every non-source node has at least one input, and every input
        // feeds something.
        for n in g.nodes() {
            match n.kind {
                OpKind::Input | OpKind::Constant => {
                    assert!(
                        !g.succs(n.id).is_empty(),
                        "{id}: dangling source {}",
                        n.name
                    );
                }
                _ => assert!(!n.inputs.is_empty(), "{id}: orphan op {}", n.name),
            }
        }
    }
}

#[test]
fn op_counts_within_reference_tolerance() {
    // Operator-count fidelity vs Table IV, with the tolerance DESIGN.md
    // documents (export granularity differs from our IR's).
    for id in ModelId::ALL {
        let g = id.build();
        let reference = id.reference().operators as f64;
        let ours = g.op_count() as f64;
        let ratio = ours / reference;
        assert!(
            (0.3..=1.6).contains(&ratio),
            "{id}: {ours} ops vs paper {reference} (ratio {ratio:.2})"
        );
    }
}
