//! Object-detection workloads: EfficientDet-d0 (2-D detection with a
//! BiFPN neck — the paper's largest graph at 822 operators) and PixOr
//! (birds-eye-view 3-D detection from LiDAR occupancy grids).
#![allow(clippy::needless_range_loop)]

use crate::cnn;
use gcd2_cgraph::{Activation, Graph, NodeId, OpKind, TShape};

fn conv(g: &mut Graph, x: NodeId, out: usize, k: usize, s: usize, p: usize, name: &str) -> NodeId {
    g.add(
        OpKind::Conv2d {
            out_channels: out,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
        },
        &[x],
        name,
    )
}

fn relu(g: &mut Graph, x: NodeId, name: &str) -> NodeId {
    g.add(OpKind::Act(Activation::Relu), &[x], name)
}

fn sep_conv(g: &mut Graph, x: NodeId, ch: usize, name: &str) -> NodeId {
    let dw = g.add(
        OpKind::DepthwiseConv2d {
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
        &[x],
        format!("{name}.dw"),
    );
    let pw = conv(g, dw, ch, 1, 1, 0, &format!("{name}.pw"));
    relu(g, pw, &format!("{name}.act"))
}

/// Weighted feature fusion of two BiFPN inputs (resize → weighted add).
fn fuse(g: &mut Graph, a: NodeId, b: NodeId, ch: usize, name: &str) -> NodeId {
    // Normalized fusion weights show up as an elementwise multiply.
    let scaled = g.add(OpKind::Mul, &[a, a], format!("{name}.wmul"));
    let sum = g.add(OpKind::Add, &[scaled, b], format!("{name}.add"));
    sep_conv(g, sum, ch, name)
}

/// EfficientDet-d0: EfficientNet-b0 backbone + 3 BiFPN cells (64
/// channels, levels P3..P7) + class/box heads (2.6 GMACs, 822 operators,
/// Table IV).
pub fn efficientdet_d0() -> Graph {
    let mut g = cnn::efficientnet_b0_backbone(512);
    // Feature levels tapped from the backbone (P3..P5), plus P6/P7 from
    // downsampling.
    let taps = cnn::backbone_taps(&g);
    let fpn_ch = 64;
    let mut levels: Vec<NodeId> = Vec::new();
    for (i, &t) in taps.iter().enumerate() {
        levels.push(conv(
            &mut g,
            t,
            fpn_ch,
            1,
            1,
            0,
            &format!("p{}.lateral", i + 3),
        ));
    }
    let mut p6 = g.add(
        OpKind::MaxPool {
            kernel: (2, 2),
            stride: (2, 2),
        },
        &[*levels.last().unwrap()],
        "p6.down",
    );
    p6 = conv(&mut g, p6, fpn_ch, 1, 1, 0, "p6.lateral");
    let p7 = g.add(
        OpKind::MaxPool {
            kernel: (2, 2),
            stride: (2, 2),
        },
        &[p6],
        "p7.down",
    );
    levels.push(p6);
    levels.push(p7);

    // BiFPN cells: top-down then bottom-up weighted fusion. (Five
    // cells approximate the exported graph's operator count, which
    // includes requantize bookkeeping our IR folds into kernels.)
    for cell in 0..5 {
        // Top-down pathway.
        let mut td: Vec<NodeId> = vec![*levels.last().unwrap()];
        for i in (0..levels.len() - 1).rev() {
            let up = g.add(
                OpKind::Upsample { factor: 2 },
                &[*td.last().unwrap()],
                format!("bifpn{cell}.td{i}.up"),
            );
            td.push(fuse(
                &mut g,
                up,
                levels[i],
                fpn_ch,
                &format!("bifpn{cell}.td{i}"),
            ));
        }
        td.reverse(); // td[0] is the finest level now
                      // Bottom-up pathway.
        let mut new_levels: Vec<NodeId> = vec![td[0]];
        for i in 1..levels.len() {
            let down = g.add(
                OpKind::MaxPool {
                    kernel: (2, 2),
                    stride: (2, 2),
                },
                &[*new_levels.last().unwrap()],
                format!("bifpn{cell}.bu{i}.down"),
            );
            new_levels.push(fuse(
                &mut g,
                down,
                td[i],
                fpn_ch,
                &format!("bifpn{cell}.bu{i}"),
            ));
        }
        levels = new_levels;
    }

    // Class and box heads: 3 separable convs + predictor per level.
    for (li, &lvl) in levels.iter().enumerate() {
        for head in ["class", "box"] {
            let mut cur = lvl;
            for d in 0..3 {
                cur = sep_conv(&mut g, cur, fpn_ch, &format!("{head}{li}.conv{d}"));
            }
            let outputs = if head == "class" { 90 * 3 } else { 4 * 3 };
            conv(
                &mut g,
                cur,
                outputs,
                3,
                1,
                1,
                &format!("{head}{li}.predict"),
            );
        }
    }
    g
}

/// PixOr: birds-eye-view 3-D detector over a 800×704×36 LiDAR occupancy
/// grid (8.8 GMACs, Table IV).
pub fn pixor() -> Graph {
    let mut g = Graph::new();
    let x = g.input("bev", TShape::nchw(1, 36, 800, 704));
    // Backbone: resnet-ish trunk with early downsampling.
    let c1 = conv(&mut g, x, 32, 3, 2, 1, "b1.conv1");
    let a1 = relu(&mut g, c1, "b1.relu1");
    let c2 = conv(&mut g, a1, 32, 3, 1, 1, "b1.conv2");
    let mut cur = relu(&mut g, c2, "b1.relu2");
    let plan: [(usize, usize, usize); 3] = [(48, 2, 2), (64, 2, 2), (96, 2, 2)];
    for (si, &(ch, blocks, stride)) in plan.iter().enumerate() {
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            let name = format!("s{si}.b{b}");
            let c = conv(&mut g, cur, ch, 3, s, 1, &format!("{name}.conv1"));
            let a = relu(&mut g, c, &format!("{name}.relu1"));
            let c = conv(&mut g, a, ch, 3, 1, 1, &format!("{name}.conv2"));
            let a = relu(&mut g, c, &format!("{name}.relu2"));
            let short = if s != 1 {
                conv(&mut g, cur, ch, 1, s, 0, &format!("{name}.short"))
            } else {
                cur
            };
            cur = g.add(OpKind::Add, &[a, short], format!("{name}.add"));
        }
    }
    // Upsample header back to /4 resolution with lateral fusion.
    let up1 = g.add(OpKind::Upsample { factor: 2 }, &[cur], "head.up1");
    let l1 = conv(&mut g, up1, 96, 3, 1, 1, "head.conv1");
    let a1 = relu(&mut g, l1, "head.relu1");
    let up2 = g.add(OpKind::Upsample { factor: 2 }, &[a1], "head.up2");
    let l2 = conv(&mut g, up2, 32, 3, 1, 1, "head.conv2");
    let f = relu(&mut g, l2, "head.relu2");
    // Detection heads: classification (1 ch) + box regression (6 ch).
    let mut cls = f;
    let mut reg = f;
    for d in 0..3 {
        cls = conv(&mut g, cls, 32, 3, 1, 1, &format!("cls.conv{d}"));
        cls = relu(&mut g, cls, &format!("cls.relu{d}"));
        reg = conv(&mut g, reg, 32, 3, 1, 1, &format!("reg.conv{d}"));
        reg = relu(&mut g, reg, &format!("reg.relu{d}"));
    }
    let cls_out = conv(&mut g, cls, 1, 3, 1, 1, "cls.predict");
    g.add(OpKind::Sigmoid, &[cls_out], "cls.sigmoid");
    conv(&mut g, reg, 6, 3, 1, 1, "reg.predict");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficientdet_matches_paper_scale() {
        let g = efficientdet_d0();
        let macs = g.total_macs() as f64;
        assert!(
            (1.5e9..4.5e9).contains(&macs),
            "EfficientDet-d0 MACs {macs:.3e}"
        );
        assert!((400..900).contains(&g.op_count()), "ops {}", g.op_count());
    }

    #[test]
    fn pixor_matches_paper_scale() {
        let g = pixor();
        let macs = g.total_macs() as f64;
        assert!((6e9..13e9).contains(&macs), "PixOr MACs {macs:.3e}");
        assert!((30..160).contains(&g.op_count()), "ops {}", g.op_count());
    }
}
