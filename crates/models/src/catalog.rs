//! The model catalog: the ten evaluation workloads of Table IV, with the
//! paper-reported reference statistics used for validation and reporting.

use gcd2_cgraph::Graph;
use std::fmt;

/// The ten DNNs of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// MobileNet-V3 (2D CNN, classification).
    MobileNetV3,
    /// EfficientNet-b0 (2D CNN, classification).
    EfficientNetB0,
    /// ResNet-50 (2D CNN, classification).
    ResNet50,
    /// Fast Style Transfer (2D CNN, style transfer).
    Fst,
    /// CycleGAN generator (GAN, image translation).
    CycleGan,
    /// WDSR-b (2D CNN, super resolution).
    WdsrB,
    /// EfficientDet-d0 (2D CNN, object detection).
    EfficientDetD0,
    /// PixOr (2D CNN, 3D object detection from point clouds).
    PixOr,
    /// TinyBERT (transformer, NLP).
    TinyBert,
    /// Conformer (transformer, speech recognition).
    Conformer,
}

impl ModelId {
    /// All models, in Table IV order.
    pub const ALL: [ModelId; 10] = [
        ModelId::MobileNetV3,
        ModelId::EfficientNetB0,
        ModelId::ResNet50,
        ModelId::Fst,
        ModelId::CycleGan,
        ModelId::WdsrB,
        ModelId::EfficientDetD0,
        ModelId::PixOr,
        ModelId::TinyBert,
        ModelId::Conformer,
    ];

    /// Builds the model's computational graph.
    pub fn build(self) -> Graph {
        match self {
            ModelId::MobileNetV3 => crate::cnn::mobilenet_v3(),
            ModelId::EfficientNetB0 => crate::cnn::efficientnet_b0(),
            ModelId::ResNet50 => crate::cnn::resnet50(),
            ModelId::Fst => crate::gan::fst(),
            ModelId::CycleGan => crate::gan::cyclegan(),
            ModelId::WdsrB => crate::gan::wdsr_b(),
            ModelId::EfficientDetD0 => crate::detect::efficientdet_d0(),
            ModelId::PixOr => crate::detect::pixor(),
            ModelId::TinyBert => crate::transformer::tinybert(),
            ModelId::Conformer => crate::transformer::conformer(),
        }
    }

    /// Paper-reported reference statistics (Table IV).
    pub fn reference(self) -> ModelRef {
        match self {
            ModelId::MobileNetV3 => ModelRef::new(
                "MobileNet-V3",
                0.22e9,
                5.5e6,
                193,
                Some(7.5),
                Some(6.2),
                4.0,
            ),
            ModelId::EfficientNetB0 => ModelRef::new(
                "EfficientNet-b0",
                0.40e9,
                4.0e6,
                254,
                Some(9.1),
                Some(9.2),
                6.0,
            ),
            ModelId::ResNet50 => {
                ModelRef::new("ResNet-50", 4.1e9, 25.5e6, 140, Some(13.9), Some(11.6), 7.1)
            }
            ModelId::Fst => ModelRef::new("FST", 161e9, 1.7e6, 64, Some(935.0), Some(870.0), 211.0),
            ModelId::CycleGan => {
                ModelRef::new("CycleGAN", 186e9, 11e6, 84, Some(450.0), Some(366.0), 181.0)
            }
            ModelId::WdsrB => {
                ModelRef::new("WDSR-b", 11.5e9, 22.2e3, 32, Some(400.0), Some(137.0), 66.7)
            }
            ModelId::EfficientDetD0 => {
                ModelRef::new("EfficientDet-d0", 2.6e9, 4.3e6, 822, Some(62.8), None, 26.0)
            }
            ModelId::PixOr => {
                ModelRef::new("PixOr", 8.8e9, 2.1e6, 150, Some(43.0), Some(26.4), 11.7)
            }
            ModelId::TinyBert => ModelRef::new("TinyBERT", 1.4e9, 4.7e6, 211, None, None, 12.2),
            ModelId::Conformer => ModelRef::new("Conformer", 5.6e9, 1.2e6, 675, None, None, 65.0),
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reference().name)
    }
}

/// Reference (paper-reported) numbers for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRef {
    /// Model name as printed in Table IV.
    pub name: &'static str,
    /// Multiply-accumulate count.
    pub macs: f64,
    /// Parameter count.
    pub params: f64,
    /// Operator count.
    pub operators: usize,
    /// TFLite DSP latency in ms (`None` = unsupported).
    pub tflite_ms: Option<f64>,
    /// SNPE DSP latency in ms (`None` = unsupported).
    pub snpe_ms: Option<f64>,
    /// GCD2 DSP latency in ms.
    pub gcd2_ms: f64,
}

impl ModelRef {
    fn new(
        name: &'static str,
        macs: f64,
        params: f64,
        operators: usize,
        tflite_ms: Option<f64>,
        snpe_ms: Option<f64>,
        gcd2_ms: f64,
    ) -> Self {
        ModelRef {
            name,
            macs,
            params,
            operators,
            tflite_ms,
            snpe_ms,
            gcd2_ms,
        }
    }

    /// True when the paper reports neither TFLite nor SNPE support
    /// (TinyBERT, Conformer — the models GCD2 runs "for the first time").
    pub fn dsp_first_enabled(&self) -> bool {
        self.tflite_ms.is_none() && self.snpe_ms.is_none()
    }
}
