//! # gcd2-models — the ten Table IV evaluation workloads
//!
//! Structurally faithful builders for the DNNs GCD2 is evaluated on:
//! operator sequences, shapes, and channel plans follow the published
//! architectures so that MAC, parameter, and operator counts land on the
//! paper's Table IV numbers. Trained weights are not materialized —
//! inference latency depends only on graph structure (see DESIGN.md).
//!
//! ```
//! use gcd2_models::ModelId;
//!
//! let resnet = ModelId::ResNet50.build();
//! let macs = resnet.total_macs() as f64;
//! assert!((3.3e9..5.0e9).contains(&macs));
//! ```

pub mod catalog;
pub mod cnn;
pub mod detect;
pub mod gan;
pub mod transformer;

pub use catalog::{ModelId, ModelRef};
