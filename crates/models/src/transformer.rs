//! Transformer workloads: TinyBERT (NLP) and Conformer (speech
//! recognition) — the two models GCD2 runs on a mobile DSP "for the
//! first time" (they need `MatMul` variants and `Pow`, unsupported by
//! the TFLite/SNPE DSP delegates).

use gcd2_cgraph::{Graph, NodeId, OpKind, TShape};

/// A dense layer as it appears in the quantized graph: matmul followed
/// by a bias addition against a constant.
fn linear(g: &mut Graph, x: NodeId, n: usize, name: &str) -> NodeId {
    let m = g.add(OpKind::MatMul { n }, &[x], format!("{name}.matmul"));
    let shape = g.node(m).shape.clone();
    let bias = g.constant(format!("{name}.bias"), shape);
    g.add(OpKind::Add, &[m, bias], format!("{name}.bias_add"))
}

/// Multi-head self-attention over a `[seq, d]` activation, with the
/// per-head reshape/transpose plumbing of the exported graph.
fn attention(g: &mut Graph, x: NodeId, d: usize, heads: usize, name: &str) -> NodeId {
    let seq = g.node(x).shape.dim(0);
    let q = linear(g, x, d, &format!("{name}.q"));
    let k = linear(g, x, d, &format!("{name}.k"));
    let v = linear(g, x, d, &format!("{name}.v"));
    let head_shape = TShape::new(vec![heads, seq, d / heads]);
    let qh = g.add(
        OpKind::Reshape {
            shape: head_shape.clone(),
        },
        &[q],
        format!("{name}.q_heads"),
    );
    let kh = g.add(
        OpKind::Reshape {
            shape: head_shape.clone(),
        },
        &[k],
        format!("{name}.k_heads"),
    );
    let vh = g.add(
        OpKind::Reshape { shape: head_shape },
        &[v],
        format!("{name}.v_heads"),
    );
    let kt = g.add(OpKind::Transpose, &[kh], format!("{name}.kT"));
    // scores = q · k^T (seq × seq per head), scaled (Pow implements the
    // 1/sqrt(d_k) scaling in the quantized graph), softmaxed, applied to v.
    let scores = g.add(
        OpKind::BatchMatMul { n: seq },
        &[qh, kt],
        format!("{name}.scores"),
    );
    let scaled = g.add(OpKind::Pow, &[scores], format!("{name}.scale"));
    let probs = g.add(OpKind::Softmax, &[scaled], format!("{name}.softmax"));
    let ctx = g.add(
        OpKind::BatchMatMul { n: d / heads },
        &[probs, vh],
        format!("{name}.context"),
    );
    let merged = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![seq, d]),
        },
        &[ctx],
        format!("{name}.merge_heads"),
    );
    linear(g, merged, d, &format!("{name}.out"))
}

fn layer_norm_add(g: &mut Graph, x: NodeId, residual: NodeId, name: &str) -> NodeId {
    let sum = g.add(OpKind::Add, &[x, residual], format!("{name}.add"));
    g.add(OpKind::LayerNorm, &[sum], format!("{name}.ln"))
}

fn ffn(g: &mut Graph, x: NodeId, d: usize, hidden: usize, name: &str) -> NodeId {
    let h = linear(g, x, hidden, &format!("{name}.fc1"));
    let a = g.add(OpKind::Gelu, &[h], format!("{name}.gelu"));
    linear(g, a, d, &format!("{name}.fc2"))
}

/// TinyBERT (6 layers, hidden 312, FFN 1200, sequence 128):
/// 1.4 GMACs, 211 operators (Table IV).
pub fn tinybert() -> Graph {
    let (layers, d, hidden, seq) = (6, 312, 1200, 128);
    let mut g = Graph::new();
    let ids = g.input("token_embeddings", TShape::new(vec![seq, d]));
    let mut cur = g.add(OpKind::LayerNorm, &[ids], "embed.ln");
    for l in 0..layers {
        let name = format!("layer{l}");
        let att = attention(&mut g, cur, d, 12, &format!("{name}.attn"));
        let x1 = layer_norm_add(&mut g, att, cur, &format!("{name}.post_attn"));
        let ff = ffn(&mut g, x1, d, hidden, &format!("{name}.ffn"));
        cur = layer_norm_add(&mut g, ff, x1, &format!("{name}.post_ffn"));
    }
    let pooled = linear(&mut g, cur, d, "pooler");
    g.add(OpKind::Gelu, &[pooled], "pooler.act");
    g
}

/// One Conformer block: macaron FFN, attention, convolution module, FFN.
fn conformer_block(g: &mut Graph, x: NodeId, d: usize, seq: usize, name: &str) -> NodeId {
    // Half-step FFN (macaron).
    let f1 = ffn(g, x, d, 4 * d, &format!("{name}.ffn1"));
    let x1 = layer_norm_add(g, f1, x, &format!("{name}.post_ffn1"));
    // Self-attention.
    let att = attention(g, x1, d, 4, &format!("{name}.attn"));
    let x2 = layer_norm_add(g, att, x1, &format!("{name}.post_attn"));
    // Convolution module: pointwise (gated), depthwise, pointwise.
    let pw1 = linear(g, x2, 2 * d, &format!("{name}.conv.pw1"));
    let gate = g.add(OpKind::Sigmoid, &[pw1], format!("{name}.conv.glu_gate"));
    let glu = g.add(OpKind::Mul, &[pw1, gate], format!("{name}.conv.glu"));
    // Reshape [seq, 2d] to a feature map for the depthwise conv.
    let as_map = g.add(
        OpKind::Reshape {
            shape: TShape::nchw(1, 2 * d, 1, seq),
        },
        &[glu],
        format!("{name}.conv.to_map"),
    );
    let dw = g.add(
        OpKind::DepthwiseConv2d {
            kernel: (1, 15),
            stride: (1, 1),
            padding: (0, 7),
        },
        &[as_map],
        format!("{name}.conv.dw"),
    );
    let back = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![seq, 2 * d]),
        },
        &[dw],
        format!("{name}.conv.from_map"),
    );
    let pw2 = linear(g, back, d, &format!("{name}.conv.pw2"));
    let x3 = layer_norm_add(g, pw2, x2, &format!("{name}.post_conv"));
    // Second half-step FFN.
    let f2 = ffn(g, x3, d, 4 * d, &format!("{name}.ffn2"));
    layer_norm_add(g, f2, x3, &format!("{name}.post_ffn2"))
}

/// Conformer (16 blocks, d = 160, sequence 500): 5.6 GMACs, 675
/// operators (Table IV).
pub fn conformer() -> Graph {
    let (blocks, d, seq) = (12, 160, 500);
    let mut g = Graph::new();
    let x = g.input("features", TShape::new(vec![seq, d]));
    let mut cur = g.add(OpKind::MatMul { n: d }, &[x], "subsample.proj");
    for b in 0..blocks {
        cur = conformer_block(&mut g, cur, d, seq, &format!("block{b}"));
    }
    g.add(OpKind::MatMul { n: 1000 }, &[cur], "ctc_head");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tinybert_matches_paper_scale() {
        let g = tinybert();
        let macs = g.total_macs() as f64;
        assert!((0.7e9..2.2e9).contains(&macs), "TinyBERT MACs {macs:.3e}");
        assert!((120..300).contains(&g.op_count()), "ops {}", g.op_count());
    }

    #[test]
    fn conformer_matches_paper_scale() {
        let g = conformer();
        let macs = g.total_macs() as f64;
        assert!((3e9..9e9).contains(&macs), "Conformer MACs {macs:.3e}");
        assert!((450..900).contains(&g.op_count()), "ops {}", g.op_count());
    }

    #[test]
    fn transformers_use_pow_and_matmul_variants() {
        // The operators TFLite/SNPE's DSP delegates lack — the reason
        // GCD2 runs these models "for the first time".
        for g in [tinybert(), conformer()] {
            assert!(g.nodes().iter().any(|n| n.kind == OpKind::Pow));
            assert!(g
                .nodes()
                .iter()
                .any(|n| matches!(n.kind, OpKind::BatchMatMul { .. })));
        }
    }
}
