//! Classification CNNs: ResNet-50, MobileNet-V3, EfficientNet-b0.
//!
//! Structure (operator sequences, shapes, channel plans) follows the
//! original architectures; weights are irrelevant to latency and are not
//! materialized (see DESIGN.md substitutions).

use gcd2_cgraph::{Activation, Graph, NodeId, OpKind, TShape};

fn conv(g: &mut Graph, x: NodeId, out: usize, k: usize, s: usize, p: usize, name: &str) -> NodeId {
    g.add(
        OpKind::Conv2d {
            out_channels: out,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
        },
        &[x],
        name,
    )
}

fn relu(g: &mut Graph, x: NodeId, name: &str) -> NodeId {
    g.add(OpKind::Act(Activation::Relu), &[x], name)
}

fn hswish(g: &mut Graph, x: NodeId, name: &str) -> NodeId {
    g.add(OpKind::Act(Activation::HardSwish), &[x], name)
}

fn dwconv(g: &mut Graph, x: NodeId, k: usize, s: usize, name: &str) -> NodeId {
    g.add(
        OpKind::DepthwiseConv2d {
            kernel: (k, k),
            stride: (s, s),
            padding: (k / 2, k / 2),
        },
        &[x],
        name,
    )
}

/// Squeeze-and-excite block: GAP → 1×1 reduce → ReLU → 1×1 expand →
/// sigmoid → channel-wise multiply.
fn squeeze_excite(g: &mut Graph, x: NodeId, channels: usize, name: &str) -> NodeId {
    let gap = g.add(OpKind::GlobalAvgPool, &[x], format!("{name}.se.gap"));
    let r = conv(
        g,
        gap,
        (channels / 4).max(8),
        1,
        1,
        0,
        &format!("{name}.se.reduce"),
    );
    let a = relu(g, r, &format!("{name}.se.relu"));
    let e = conv(g, a, channels, 1, 1, 0, &format!("{name}.se.expand"));
    let s = g.add(OpKind::Sigmoid, &[e], format!("{name}.se.sigmoid"));
    g.add(OpKind::Mul, &[x, s], format!("{name}.se.scale"))
}

/// ResNet-50 at 224×224 (4.1 GMACs, Table IV).
pub fn resnet50() -> Graph {
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, 224, 224));
    let stem = conv(&mut g, x, 64, 7, 2, 3, "stem.conv");
    let stem = relu(&mut g, stem, "stem.relu");
    let mut cur = g.add(
        OpKind::MaxPool {
            kernel: (2, 2),
            stride: (2, 2),
        },
        &[stem],
        "stem.maxpool",
    );

    let stages: [(usize, usize, usize, usize); 4] = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    let mut in_ch = 64;
    for (si, &(mid, out, blocks, stride)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let name = format!("s{si}.b{b}");
            let s = if b == 0 { stride } else { 1 };
            let c1 = conv(&mut g, cur, mid, 1, 1, 0, &format!("{name}.conv1"));
            let a1 = relu(&mut g, c1, &format!("{name}.relu1"));
            let c2 = conv(&mut g, a1, mid, 3, s, 1, &format!("{name}.conv2"));
            let a2 = relu(&mut g, c2, &format!("{name}.relu2"));
            let c3 = conv(&mut g, a2, out, 1, 1, 0, &format!("{name}.conv3"));
            let shortcut = if b == 0 && (in_ch != out || s != 1) {
                conv(&mut g, cur, out, 1, s, 0, &format!("{name}.downsample"))
            } else {
                cur
            };
            let sum = g.add(OpKind::Add, &[c3, shortcut], format!("{name}.add"));
            cur = relu(&mut g, sum, &format!("{name}.relu3"));
            in_ch = out;
        }
    }
    let gap = g.add(OpKind::GlobalAvgPool, &[cur], "gap");
    let flat = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![1, 2048]),
        },
        &[gap],
        "flatten",
    );
    g.add(OpKind::MatMul { n: 1000 }, &[flat], "fc");
    g
}

/// One MobileNet-V3 / EfficientNet inverted-residual block.
#[allow(clippy::too_many_arguments)]
fn inverted_residual(
    g: &mut Graph,
    x: NodeId,
    in_ch: usize,
    exp_ch: usize,
    out_ch: usize,
    k: usize,
    s: usize,
    se: bool,
    hs: bool,
    name: &str,
) -> NodeId {
    let mut cur = x;
    if exp_ch != in_ch {
        cur = conv(g, cur, exp_ch, 1, 1, 0, &format!("{name}.expand"));
        cur = if hs {
            hswish(g, cur, &format!("{name}.expand.act"))
        } else {
            relu(g, cur, &format!("{name}.expand.act"))
        };
    }
    cur = dwconv(g, cur, k, s, &format!("{name}.dw"));
    cur = if hs {
        hswish(g, cur, &format!("{name}.dw.act"))
    } else {
        relu(g, cur, &format!("{name}.dw.act"))
    };
    if se {
        cur = squeeze_excite(g, cur, exp_ch, name);
    }
    cur = conv(g, cur, out_ch, 1, 1, 0, &format!("{name}.project"));
    if s == 1 && in_ch == out_ch {
        cur = g.add(OpKind::Add, &[cur, x], format!("{name}.add"));
    }
    cur
}

/// MobileNet-V3-Large at 224×224 (0.22 GMACs, Table IV).
pub fn mobilenet_v3() -> Graph {
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, 224, 224));
    let stem = conv(&mut g, x, 16, 3, 2, 1, "stem.conv");
    let mut cur = hswish(&mut g, stem, "stem.act");

    // (kernel, expand, out, SE, hard-swish, stride)
    let cfg: [(usize, usize, usize, bool, bool, usize); 15] = [
        (3, 16, 16, false, false, 1),
        (3, 64, 24, false, false, 2),
        (3, 72, 24, false, false, 1),
        (5, 72, 40, true, false, 2),
        (5, 120, 40, true, false, 1),
        (5, 120, 40, true, false, 1),
        (3, 240, 80, false, true, 2),
        (3, 200, 80, false, true, 1),
        (3, 184, 80, false, true, 1),
        (3, 184, 80, false, true, 1),
        (3, 480, 112, true, true, 1),
        (3, 672, 112, true, true, 1),
        (5, 672, 160, true, true, 2),
        (5, 960, 160, true, true, 1),
        (5, 960, 160, true, true, 1),
    ];
    let mut in_ch = 16;
    for (i, &(k, exp, out, se, hs, s)) in cfg.iter().enumerate() {
        cur = inverted_residual(
            &mut g,
            cur,
            in_ch,
            exp,
            out,
            k,
            s,
            se,
            hs,
            &format!("bneck{i}"),
        );
        in_ch = out;
    }
    let head = conv(&mut g, cur, 960, 1, 1, 0, "head.conv");
    let head = hswish(&mut g, head, "head.act");
    let gap = g.add(OpKind::GlobalAvgPool, &[head], "gap");
    let flat = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![1, 960]),
        },
        &[gap],
        "flatten",
    );
    let fc1 = g.add(OpKind::MatMul { n: 1280 }, &[flat], "fc1");
    let fc1 = g.add(OpKind::Act(Activation::HardSwish), &[fc1], "fc1.act");
    g.add(OpKind::MatMul { n: 1000 }, &[fc1], "fc2");
    g
}

/// The EfficientNet-b0 feature extractor (no classification head) at a
/// configurable input resolution; EfficientDet-d0 uses 512×512.
pub fn efficientnet_b0_backbone(input: usize) -> Graph {
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, input, input));
    let stem = conv(&mut g, x, 32, 3, 2, 1, "stem.conv");
    let mut cur = hswish(&mut g, stem, "stem.act");
    let cfg: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut in_ch = 32;
    for (si, &(er, out, reps, stride, k)) in cfg.iter().enumerate() {
        for r in 0..reps {
            let s = if r == 0 { stride } else { 1 };
            cur = inverted_residual(
                &mut g,
                cur,
                in_ch,
                in_ch * er,
                out,
                k,
                s,
                true,
                true,
                &format!("mb{si}.{r}"),
            );
            in_ch = out;
        }
    }
    g
}

/// Feature-pyramid tap points of the EfficientNet backbone: the last
/// node producing 40, 112, and 320 channels (strides 8/16/32 — the
/// P3/P4/P5 inputs of the BiFPN).
pub fn backbone_taps(g: &Graph) -> Vec<NodeId> {
    let mut taps = Vec::new();
    for want in [40usize, 112, 320] {
        let tap = g
            .nodes()
            .iter()
            .filter(|n| n.shape.rank() == 4 && n.shape.channels() == want)
            .map(|n| n.id)
            .next_back()
            .expect("backbone produces the expected channel counts");
        taps.push(tap);
    }
    taps
}

/// EfficientNet-b0 at 224×224 (0.40 GMACs, Table IV).
pub fn efficientnet_b0() -> Graph {
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, 224, 224));
    let stem = conv(&mut g, x, 32, 3, 2, 1, "stem.conv");
    let mut cur = hswish(&mut g, stem, "stem.act");

    // (expand ratio, out channels, repeats, stride, kernel)
    let cfg: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut in_ch = 32;
    for (si, &(er, out, reps, stride, k)) in cfg.iter().enumerate() {
        for r in 0..reps {
            let s = if r == 0 { stride } else { 1 };
            cur = inverted_residual(
                &mut g,
                cur,
                in_ch,
                in_ch * er,
                out,
                k,
                s,
                true,
                true,
                &format!("mb{si}.{r}"),
            );
            in_ch = out;
        }
    }
    let head = conv(&mut g, cur, 1280, 1, 1, 0, "head.conv");
    let head = hswish(&mut g, head, "head.act");
    let gap = g.add(OpKind::GlobalAvgPool, &[head], "gap");
    let flat = g.add(
        OpKind::Reshape {
            shape: TShape::new(vec![1, 1280]),
        },
        &[gap],
        "flatten",
    );
    g.add(OpKind::MatMul { n: 1000 }, &[flat], "fc");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_macs_match_paper() {
        let g = resnet50();
        let macs = g.total_macs() as f64;
        assert!((3.3e9..5.0e9).contains(&macs), "ResNet-50 MACs {macs:.3e}");
        assert!((100..180).contains(&g.op_count()), "ops {}", g.op_count());
        let params = g.total_params() as f64;
        assert!((20e6..30e6).contains(&params), "params {params:.3e}");
    }

    #[test]
    fn mobilenet_v3_macs_match_paper() {
        let g = mobilenet_v3();
        let macs = g.total_macs() as f64;
        assert!(
            (0.15e9..0.35e9).contains(&macs),
            "MobileNet-V3 MACs {macs:.3e}"
        );
        assert!((140..260).contains(&g.op_count()), "ops {}", g.op_count());
    }

    #[test]
    fn efficientnet_b0_macs_match_paper() {
        let g = efficientnet_b0();
        let macs = g.total_macs() as f64;
        assert!(
            (0.28e9..0.60e9).contains(&macs),
            "EfficientNet-b0 MACs {macs:.3e}"
        );
        assert!((180..330).contains(&g.op_count()), "ops {}", g.op_count());
    }
}
