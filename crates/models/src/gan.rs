//! Image-to-image workloads: Fast Style Transfer, the CycleGAN
//! generator, and the WDSR-b super-resolution network.

use gcd2_cgraph::{Activation, Graph, NodeId, OpKind, TShape};

fn conv(g: &mut Graph, x: NodeId, out: usize, k: usize, s: usize, p: usize, name: &str) -> NodeId {
    g.add(
        OpKind::Conv2d {
            out_channels: out,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
        },
        &[x],
        name,
    )
}

fn relu(g: &mut Graph, x: NodeId, name: &str) -> NodeId {
    g.add(OpKind::Act(Activation::Relu), &[x], name)
}

fn res_block(g: &mut Graph, x: NodeId, ch: usize, name: &str) -> NodeId {
    let c1 = conv(g, x, ch, 3, 1, 1, &format!("{name}.conv1"));
    let a1 = relu(g, c1, &format!("{name}.relu"));
    let c2 = conv(g, a1, ch, 3, 1, 1, &format!("{name}.conv2"));
    g.add(OpKind::Add, &[c2, x], format!("{name}.add"))
}

/// Fast Style Transfer (Johnson et al.) at 1024×1024
/// (161 GMACs, Table IV; the paper runs high-resolution stylization).
pub fn fst() -> Graph {
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, 1024, 1024));
    let c1 = conv(&mut g, x, 32, 9, 1, 4, "down1");
    let a1 = relu(&mut g, c1, "down1.relu");
    let c2 = conv(&mut g, a1, 64, 3, 2, 1, "down2");
    let a2 = relu(&mut g, c2, "down2.relu");
    let c3 = conv(&mut g, a2, 128, 3, 2, 1, "down3");
    let mut cur = relu(&mut g, c3, "down3.relu");
    for i in 0..5 {
        cur = res_block(&mut g, cur, 128, &format!("res{i}"));
    }
    let u1 = g.add(OpKind::Upsample { factor: 2 }, &[cur], "up1.resize");
    let c4 = conv(&mut g, u1, 64, 3, 1, 1, "up1.conv");
    let a4 = relu(&mut g, c4, "up1.relu");
    let u2 = g.add(OpKind::Upsample { factor: 2 }, &[a4], "up2.resize");
    let c5 = conv(&mut g, u2, 32, 3, 1, 1, "up2.conv");
    let a5 = relu(&mut g, c5, "up2.relu");
    let out = conv(&mut g, a5, 3, 9, 1, 4, "out.conv");
    g.add(OpKind::Sigmoid, &[out], "out.act");
    g
}

/// CycleGAN ResNet generator (9 blocks) at 512×512
/// (186 GMACs, Table IV).
pub fn cyclegan() -> Graph {
    let mut g = Graph::new();
    let x = g.input("image", TShape::nchw(1, 3, 512, 512));
    let c1 = conv(&mut g, x, 64, 7, 1, 3, "c7s1-64");
    let a1 = relu(&mut g, c1, "c7s1-64.relu");
    let c2 = conv(&mut g, a1, 128, 3, 2, 1, "d128");
    let a2 = relu(&mut g, c2, "d128.relu");
    let c3 = conv(&mut g, a2, 256, 3, 2, 1, "d256");
    let mut cur = relu(&mut g, c3, "d256.relu");
    for i in 0..9 {
        cur = res_block(&mut g, cur, 256, &format!("R256.{i}"));
    }
    let u1 = g.add(
        OpKind::ConvTranspose2d {
            out_channels: 128,
            kernel: (3, 3),
            stride: (2, 2),
        },
        &[cur],
        "u128",
    );
    let a4 = relu(&mut g, u1, "u128.relu");
    let u2 = g.add(
        OpKind::ConvTranspose2d {
            out_channels: 64,
            kernel: (3, 3),
            stride: (2, 2),
        },
        &[a4],
        "u64",
    );
    let a5 = relu(&mut g, u2, "u64.relu");
    let out = conv(&mut g, a5, 3, 7, 1, 3, "c7s1-3");
    g.add(OpKind::Sigmoid, &[out], "tanh");
    g
}

/// WDSR-b super-resolution (3 wide-activation residual blocks, 24 base
/// channels) on a 720×540 low-resolution input — 11.5 GMACs from only
/// 22 K parameters (Table IV; its tiny weights over a large image give
/// WDSR the most shape-diverse feature maps of the suite).
pub fn wdsr_b() -> Graph {
    let mut g = Graph::new();
    let x = g.input("lr_image", TShape::nchw(1, 3, 540, 720));
    let mut cur = conv(&mut g, x, 24, 3, 1, 1, "head");
    for i in 0..3 {
        let name = format!("block{i}");
        let e = conv(&mut g, cur, 72, 1, 1, 0, &format!("{name}.expand"));
        let a = relu(&mut g, e, &format!("{name}.relu"));
        let l = conv(&mut g, a, 16, 1, 1, 0, &format!("{name}.linear"));
        let c = conv(&mut g, l, 24, 3, 1, 1, &format!("{name}.conv"));
        cur = g.add(OpKind::Add, &[c, cur], format!("{name}.add"));
    }
    // Pixel-shuffle upsampling: conv to r^2 * 3 channels, then reshape.
    let tail = conv(&mut g, cur, 48, 3, 1, 1, "tail.conv");
    g.add(
        OpKind::Reshape {
            shape: TShape::nchw(1, 3, 2160, 2880),
        },
        &[tail],
        "pixel_shuffle",
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fst_macs_match_paper() {
        let g = fst();
        let macs = g.total_macs() as f64;
        assert!((120e9..200e9).contains(&macs), "FST MACs {macs:.3e}");
        assert!((20..80).contains(&g.op_count()), "ops {}", g.op_count());
    }

    #[test]
    fn cyclegan_macs_match_paper() {
        let g = cyclegan();
        let macs = g.total_macs() as f64;
        assert!((150e9..230e9).contains(&macs), "CycleGAN MACs {macs:.3e}");
        assert!((30..100).contains(&g.op_count()), "ops {}", g.op_count());
    }

    #[test]
    fn wdsr_macs_and_params_match_paper() {
        let g = wdsr_b();
        let macs = g.total_macs() as f64;
        assert!((8e9..16e9).contains(&macs), "WDSR-b MACs {macs:.3e}");
        let params = g.total_params() as f64;
        assert!(params < 80e3, "WDSR-b params {params:.3e}");
        assert!((14..50).contains(&g.op_count()), "ops {}", g.op_count());
    }

    #[test]
    fn wdsr_shapes_vary_block_to_block() {
        // The paper attributes WDSR's 6.0x speedup to its highly varied
        // feature-map shapes; verify the expand/linear pattern exists.
        let g = wdsr_b();
        let channel_counts: std::collections::HashSet<usize> = g
            .nodes()
            .iter()
            .filter(|n| n.shape.rank() == 4)
            .map(|n| n.shape.channels())
            .collect();
        assert!(channel_counts.len() >= 4, "{channel_counts:?}");
    }
}
