//! Property tests on the DSP substrate's invariants.

use gcd2_hvx::{
    classify, Block, DepKind, Insn, Lane, Machine, PackedBlock, Packet, SReg, VPair, VReg,
};
use proptest::prelude::*;

fn arb_insn() -> impl Strategy<Value = Insn> {
    (0u8..10, 0u8..6, 0u8..4, any::<bool>()).prop_map(|(kind, a, b, acc)| {
        let v = |i: u8| VReg::new(i % 30);
        let w = |i: u8| VPair::new((i % 14) * 2);
        let r = |i: u8| SReg::new(i % 10);
        match kind {
            0 => Insn::Vmpy {
                dst: w(a),
                src: v(b + 8),
                weights: r(b),
                acc,
            },
            1 => Insn::Vmpa {
                dst: v(a),
                src: v(b + 8),
                weights: r(b),
                acc,
            },
            2 => Insn::Vrmpy {
                dst: v(a),
                src: v(b + 8),
                weights: r(b),
                acc,
            },
            3 => Insn::Vadd {
                lane: Lane::H,
                dst: v(a),
                a: v(b),
                b: v(b + 1),
            },
            4 => Insn::VasrHB {
                dst: v(a),
                src: w(b),
                shift: 3,
            },
            5 => Insn::VLoad {
                dst: v(a),
                base: r(b),
                offset: (a as i64) * 128,
            },
            6 => Insn::VStore {
                src: v(a),
                base: r(b),
                offset: (a as i64) * 128,
            },
            7 => Insn::AddI {
                dst: r(a % 4),
                a: r(a % 4),
                imm: 128,
            },
            // Loaded values land in high registers so they never become
            // base addresses (the machine traps out-of-bounds accesses).
            8 => Insn::Ld {
                dst: SReg::new(16 + (a % 8)),
                base: r(b),
                offset: 8,
            },
            _ => Insn::VshuffB {
                dst: w(a),
                src: w(b),
            },
        }
    })
}

proptest! {
    /// Packet cost is bounded below by its longest instruction and above
    /// by the fully serialized sum.
    #[test]
    fn packet_cost_bounds(insns in proptest::collection::vec(arb_insn(), 1..5)) {
        let p = Packet::from_insns(insns.clone());
        let max_lat = insns.iter().map(Insn::latency).max().unwrap();
        let sum_lat: u32 = insns.iter().map(Insn::latency).sum();
        prop_assert!(p.cycles() >= max_lat);
        prop_assert!(p.cycles() <= sum_lat + insns.len() as u32);
        prop_assert_eq!(p.stall_cycles(), p.cycles() - max_lat);
    }

    /// Dependence classification is deterministic and self-conflicting
    /// instructions (same insn twice) are never independent unless they
    /// write nothing.
    #[test]
    fn classification_properties(a in arb_insn(), b in arb_insn()) {
        prop_assert_eq!(classify(&a, &b), classify(&a, &b));
        let self_dep = classify(&a, &a);
        if !a.defs().is_empty() {
            // An instruction re-run depends on itself (WAW at least).
            prop_assert!(self_dep != DepKind::None);
        }
    }

    /// The functional machine is deterministic: running the same program
    /// twice from the same state produces identical memory and registers.
    #[test]
    fn machine_determinism(insns in proptest::collection::vec(arb_insn(), 1..12), trips in 1u64..4) {
        let mut block = Block::with_trip_count("p", trips);
        block.extend(insns);
        let packed = PackedBlock::sequential(&block);
        let run = || {
            let mut m = Machine::new(16 * 1024);
            for i in 0..10 {
                m.set_sreg(SReg::new(i), 1024 + 256 * i as i64);
            }
            for i in 0..16 * 1024 {
                m.mem[i] = (i % 251) as u8;
            }
            m.run_block(&packed);
            (m.mem.clone(), (0..10).map(|i| m.sreg(SReg::new(i))).collect::<Vec<_>>())
        };
        prop_assert_eq!(run(), run());
    }

    /// Static stats algebra: scaled() distributes over accumulate().
    #[test]
    fn stats_scaling(trips in 1u64..20, insns in proptest::collection::vec(arb_insn(), 1..8)) {
        let mut b1 = Block::with_trip_count("a", 1);
        b1.extend(insns);
        let once = PackedBlock::sequential(&b1).stats();
        let mut bn = b1.clone();
        bn.trip_count = trips;
        let many = PackedBlock::sequential(&bn).stats();
        prop_assert_eq!(many, once.scaled(trips));
    }
}
