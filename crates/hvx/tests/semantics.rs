//! Exhaustive per-instruction semantic tests for the functional
//! simulator — every opcode, including the ones the kernel generators
//! exercise only indirectly.

use gcd2_hvx::{pack_weights, simd, Insn, Lane, Machine, Packet, SReg, VPair, VReg, VBYTES};

fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn w(i: u8) -> VPair {
    VPair::new(i)
}
fn r(i: u8) -> SReg {
    SReg::new(i)
}

fn run1(m: &mut Machine, insn: Insn) {
    m.run_packet(&Packet::from_insns(vec![insn]));
}

fn filled(f: impl Fn(usize) -> u8) -> [u8; VBYTES] {
    let mut out = [0u8; VBYTES];
    for (i, b) in out.iter_mut().enumerate() {
        *b = f(i);
    }
    out
}

#[test]
fn vadd_vsub_lanes() {
    let mut m = Machine::new(0);
    m.set_vreg(v(1), filled(|i| i as u8));
    m.set_vreg(v(2), filled(|_| 3));
    run1(
        &mut m,
        Insn::Vadd {
            lane: Lane::B,
            dst: v(3),
            a: v(1),
            b: v(2),
        },
    );
    assert_eq!(m.vreg(v(3))[5], 8);
    // i8 wrapping at lane level.
    assert_eq!(m.vreg(v(3))[125], 125u8.wrapping_add(3));
    run1(
        &mut m,
        Insn::Vsub {
            lane: Lane::B,
            dst: v(4),
            a: v(1),
            b: v(2),
        },
    );
    assert_eq!(m.vreg(v(4))[5], 2);
    assert_eq!(m.vreg(v(4))[0] as i8, -3);
}

#[test]
fn vadd_halfword_and_word_lanes() {
    let mut m = Machine::new(0);
    let mut a = [0u8; VBYTES];
    let mut b = [0u8; VBYTES];
    for k in 0..64 {
        simd::set_h(&mut a, k, 1000 + k as i16);
        simd::set_h(&mut b, k, -500);
    }
    m.set_vreg(v(1), a);
    m.set_vreg(v(2), b);
    run1(
        &mut m,
        Insn::Vadd {
            lane: Lane::H,
            dst: v(3),
            a: v(1),
            b: v(2),
        },
    );
    assert_eq!(simd::get_h(m.vreg(v(3)), 10), 510);

    let mut aw = [0u8; VBYTES];
    let mut bw = [0u8; VBYTES];
    for k in 0..32 {
        simd::set_w(&mut aw, k, 1 << 20);
        simd::set_w(&mut bw, k, k as i32);
    }
    m.set_vreg(v(4), aw);
    m.set_vreg(v(5), bw);
    run1(
        &mut m,
        Insn::Vadd {
            lane: Lane::W,
            dst: v(6),
            a: v(4),
            b: v(5),
        },
    );
    assert_eq!(simd::get_w(m.vreg(v(6)), 7), (1 << 20) + 7);
}

#[test]
fn vmax_vmin_signed() {
    let mut m = Machine::new(0);
    m.set_vreg(v(1), filled(|i| if i % 2 == 0 { 0xFF } else { 5 })); // -1 / 5 as i8
    m.set_vreg(v(2), filled(|_| 0));
    run1(
        &mut m,
        Insn::Vmax {
            lane: Lane::B,
            dst: v(3),
            a: v(1),
            b: v(2),
        },
    );
    assert_eq!(m.vreg(v(3))[0], 0, "max(-1, 0) = 0 signed");
    assert_eq!(m.vreg(v(3))[1], 5);
    run1(
        &mut m,
        Insn::Vmin {
            lane: Lane::B,
            dst: v(4),
            a: v(1),
            b: v(2),
        },
    );
    assert_eq!(m.vreg(v(4))[0] as i8, -1);
    assert_eq!(m.vreg(v(4))[1], 0);
}

#[test]
fn vsplat_broadcasts_32_bits() {
    let mut m = Machine::new(0);
    m.set_sreg(r(1), 0x0403_0201);
    run1(
        &mut m,
        Insn::Vsplat {
            dst: v(0),
            src: r(1),
        },
    );
    for k in 0..VBYTES / 4 {
        assert_eq!(&m.vreg(v(0))[4 * k..4 * k + 4], &[1, 2, 3, 4]);
    }
}

#[test]
fn vlut_indexes_modulo_table() {
    let mut m = Machine::new(0);
    m.set_vreg(v(1), filled(|i| (i as u8).wrapping_mul(3))); // indices incl. >128
    m.set_vreg(v(31), filled(|i| (255 - i) as u8)); // table
    run1(
        &mut m,
        Insn::VlutB {
            dst: v(2),
            idx: v(1),
            table: v(31),
        },
    );
    for i in 0..VBYTES {
        let idx = (i * 3) % 256 % 128;
        assert_eq!(m.vreg(v(2))[i], (255 - idx) as u8, "lane {i}");
    }
}

#[test]
fn vmul_ub_h_products() {
    let mut m = Machine::new(0);
    m.set_vreg(v(1), filled(|i| i as u8));
    m.set_vreg(v(2), filled(|_| 200));
    run1(
        &mut m,
        Insn::VmulUbH {
            dst: w(4),
            a: v(1),
            b: v(2),
        },
    );
    // p[i] = i * 200 wrapped to i16; even lanes in lo, odd in hi.
    assert_eq!(simd::get_h(m.vreg(v(4)), 1), (2 * 200) as i16);
    assert_eq!(simd::get_h(m.vreg(v(5)), 1), (3 * 200) as i16);
    assert_eq!(simd::get_h(m.vreg(v(4)), 60), ((120 * 200) as u16) as i16);
}

#[test]
fn vasr_wh_saturates() {
    let mut m = Machine::new(0);
    let mut a = [0u8; VBYTES];
    let mut b = [0u8; VBYTES];
    for k in 0..32 {
        simd::set_w(&mut a, k, 1 << 24); // saturates after >> 2
        simd::set_w(&mut b, k, -(1 << 24));
    }
    m.set_vreg(v(1), a);
    m.set_vreg(v(2), b);
    run1(
        &mut m,
        Insn::VasrWH {
            dst: v(3),
            a: v(1),
            b: v(2),
            shift: 2,
        },
    );
    assert_eq!(simd::get_h(m.vreg(v(3)), 0), i16::MAX);
    assert_eq!(simd::get_h(m.vreg(v(3)), 1), i16::MIN);
}

#[test]
fn scalar_alu_ops() {
    let mut m = Machine::new(64);
    m.set_sreg(r(1), 100);
    m.set_sreg(r(2), 7);
    run1(
        &mut m,
        Insn::Sub {
            dst: r(3),
            a: r(1),
            b: r(2),
        },
    );
    assert_eq!(m.sreg(r(3)), 93);
    run1(
        &mut m,
        Insn::Mul {
            dst: r(4),
            a: r(1),
            b: r(2),
        },
    );
    assert_eq!(m.sreg(r(4)), 700);
    run1(
        &mut m,
        Insn::Div {
            dst: r(5),
            a: r(1),
            b: r(2),
        },
    );
    assert_eq!(m.sreg(r(5)), 14);
    run1(
        &mut m,
        Insn::Shl {
            dst: r(6),
            a: r(2),
            imm: 3,
        },
    );
    assert_eq!(m.sreg(r(6)), 56);
    run1(
        &mut m,
        Insn::Shr {
            dst: r(7),
            a: r(1),
            imm: 2,
        },
    );
    assert_eq!(m.sreg(r(7)), 25);
}

#[test]
fn division_by_zero_yields_zero() {
    let mut m = Machine::new(0);
    m.set_sreg(r(1), 42);
    m.set_sreg(r(2), 0);
    run1(
        &mut m,
        Insn::Div {
            dst: r(3),
            a: r(1),
            b: r(2),
        },
    );
    assert_eq!(m.sreg(r(3)), 0);
}

#[test]
fn scalar_memory_round_trip() {
    let mut m = Machine::new(64);
    m.set_sreg(r(0), 8);
    m.set_sreg(r(1), -123456789);
    run1(
        &mut m,
        Insn::St {
            src: r(1),
            base: r(0),
            offset: 16,
        },
    );
    run1(
        &mut m,
        Insn::Ld {
            dst: r(2),
            base: r(0),
            offset: 16,
        },
    );
    assert_eq!(m.sreg(r(2)), -123456789);
}

#[test]
fn vgather_loads_like_vload() {
    let mut m = Machine::new(VBYTES * 2);
    for i in 0..VBYTES {
        m.mem[i] = (i * 7 % 256) as u8;
    }
    run1(
        &mut m,
        Insn::VGather {
            dst: v(0),
            base: r(0),
            offset: 0,
        },
    );
    run1(
        &mut m,
        Insn::VLoad {
            dst: v(1),
            base: r(0),
            offset: 0,
        },
    );
    assert_eq!(m.vreg(v(0)), m.vreg(v(1)));
    // But its latency models strided DRAM access.
    assert!(
        Insn::VGather {
            dst: v(0),
            base: r(0),
            offset: 0
        }
        .latency()
            > 100
    );
}

#[test]
fn vmpa_alternating_weight_pairs() {
    let mut m = Machine::new(0);
    // Interleaved (x0, y0, x1, y1, ...) input.
    m.set_vreg(v(1), filled(|i| if i % 2 == 0 { 10 } else { 1 }));
    m.set_sreg(r(0), pack_weights([2, 3, -4, 5]));
    run1(
        &mut m,
        Insn::Vmpa {
            dst: v(2),
            src: v(1),
            weights: r(0),
            acc: false,
        },
    );
    // Even result lanes use (2, 3): 10*2 + 1*3 = 23.
    assert_eq!(simd::get_h(m.vreg(v(2)), 0), 23);
    // Odd result lanes use (-4, 5): 10*-4 + 1*5 = -35.
    assert_eq!(simd::get_h(m.vreg(v(2)), 1), -35);
}

#[test]
fn nop_and_movi() {
    let mut m = Machine::new(0);
    run1(&mut m, Insn::Nop);
    run1(
        &mut m,
        Insn::Movi {
            dst: r(9),
            imm: i64::MIN / 2,
        },
    );
    assert_eq!(m.sreg(r(9)), i64::MIN / 2);
}

#[test]
fn display_all_instruction_forms() {
    // Every opcode has a non-empty, register-faithful rendering.
    let insns = vec![
        Insn::Vmpy {
            dst: w(0),
            src: v(2),
            weights: r(1),
            acc: false,
        },
        Insn::Vmpa {
            dst: v(0),
            src: v(2),
            weights: r(1),
            acc: true,
        },
        Insn::Vrmpy {
            dst: v(0),
            src: v(2),
            weights: r(1),
            acc: false,
        },
        Insn::Vtmpy {
            dst: w(0),
            src: w(2),
            weights: r(1),
            acc: true,
        },
        Insn::Vadd {
            lane: Lane::W,
            dst: v(0),
            a: v(1),
            b: v(2),
        },
        Insn::Vsub {
            lane: Lane::H,
            dst: v(0),
            a: v(1),
            b: v(2),
        },
        Insn::Vmax {
            lane: Lane::B,
            dst: v(0),
            a: v(1),
            b: v(2),
        },
        Insn::Vmin {
            lane: Lane::B,
            dst: v(0),
            a: v(1),
            b: v(2),
        },
        Insn::VaddUbH {
            dst: w(0),
            a: v(2),
            b: v(3),
        },
        Insn::VaddHAcc {
            dst: v(0),
            src: v(1),
        },
        Insn::VmulUbH {
            dst: w(0),
            a: v(2),
            b: v(3),
        },
        Insn::Vsplat {
            dst: v(0),
            src: r(1),
        },
        Insn::VasrHB {
            dst: v(0),
            src: w(2),
            shift: 4,
        },
        Insn::VasrWH {
            dst: v(0),
            a: v(1),
            b: v(2),
            shift: 4,
        },
        Insn::VshuffH {
            dst: w(0),
            src: w(2),
        },
        Insn::VdealH {
            dst: w(0),
            src: w(2),
        },
        Insn::VshuffB {
            dst: w(0),
            src: w(2),
        },
        Insn::VdealB {
            dst: w(0),
            src: w(2),
        },
        Insn::VlutB {
            dst: v(0),
            idx: v(1),
            table: v(2),
        },
        Insn::VLoad {
            dst: v(0),
            base: r(1),
            offset: 128,
        },
        Insn::VGather {
            dst: v(0),
            base: r(1),
            offset: 128,
        },
        Insn::VStore {
            src: v(0),
            base: r(1),
            offset: 128,
        },
        Insn::Movi { dst: r(0), imm: 7 },
        Insn::Add {
            dst: r(0),
            a: r(1),
            b: r(2),
        },
        Insn::AddI {
            dst: r(0),
            a: r(1),
            imm: 7,
        },
        Insn::Sub {
            dst: r(0),
            a: r(1),
            b: r(2),
        },
        Insn::Mul {
            dst: r(0),
            a: r(1),
            b: r(2),
        },
        Insn::Div {
            dst: r(0),
            a: r(1),
            b: r(2),
        },
        Insn::Shl {
            dst: r(0),
            a: r(1),
            imm: 2,
        },
        Insn::Shr {
            dst: r(0),
            a: r(1),
            imm: 2,
        },
        Insn::Ld {
            dst: r(0),
            base: r(1),
            offset: 8,
        },
        Insn::St {
            src: r(0),
            base: r(1),
            offset: 8,
        },
        Insn::Nop,
    ];
    for i in &insns {
        let text = i.to_string();
        assert!(!text.is_empty());
        // Rendering mentions each register the instruction touches.
        for reg in i.defs().iter().chain(i.uses().iter()) {
            let tag = reg.to_string();
            // Pairs render as wN; their halves v2k/v2k+1 both map to it.
            if !text.contains(&tag) {
                let covered = match reg {
                    gcd2_hvx::Reg::V(vr) => text.contains(&format!("w{}", vr.index() / 2)),
                    _ => false,
                };
                assert!(covered, "{text} missing {tag}");
            }
        }
    }
}

#[test]
fn trip_count_zero_executes_nothing() {
    let mut m = Machine::new(64);
    let mut b = gcd2_hvx::Block::with_trip_count("nope", 0);
    b.push(Insn::Movi { dst: r(1), imm: 99 });
    m.run_block(&gcd2_hvx::PackedBlock::sequential(&b));
    assert_eq!(m.sreg(r(1)), 0);
}

#[test]
fn traced_execution_matches_untraced() {
    use gcd2_hvx::{Block, PackedBlock, Program};
    let mut block = Block::with_trip_count("trace me", 3);
    block.extend([
        Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: 0,
        },
        Insn::VStore {
            src: v(0),
            base: r(1),
            offset: 0,
        },
        Insn::AddI {
            dst: r(0),
            a: r(0),
            imm: VBYTES as i64,
        },
        Insn::AddI {
            dst: r(1),
            a: r(1),
            imm: VBYTES as i64,
        },
    ]);
    let mut program = Program::new();
    program.push(PackedBlock::sequential(&block));

    let mut plain = Machine::new(4096);
    for i in 0..3 * VBYTES {
        plain.mem[i] = (i % 250) as u8;
    }
    plain.set_sreg(r(1), 2048);
    let mut traced = plain.clone();
    plain.run(&program);
    let trace = traced.run_traced(&program);
    assert_eq!(plain.mem, traced.mem, "trace must not perturb execution");
    // 4 packets x 3 trips, with a running cycle counter matching the
    // static estimate.
    assert_eq!(trace.events.len(), 12);
    assert_eq!(trace.cycles(), program.stats().cycles);
    assert!(trace.events[0].to_string().contains("trace me"));
    assert!(trace.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
}

#[test]
fn legacy_resource_model_is_stricter() {
    use gcd2_hvx::ResourceModel;
    let old = ResourceModel::hexagon680();
    let new = ResourceModel::hexagon698();
    let l0 = Insn::VLoad {
        dst: v(0),
        base: r(0),
        offset: 0,
    };
    let l1 = Insn::VLoad {
        dst: v(1),
        base: r(0),
        offset: 128,
    };
    // Two loads per packet on the new generation, one on the old.
    assert!(new.admits(std::slice::from_ref(&l0), &l1));
    assert!(!old.admits(std::slice::from_ref(&l0), &l1));
}

#[test]
fn occupancy_histogram_counts_packets() {
    use gcd2_hvx::{Block, PackedBlock, Packet};
    let mut pb = PackedBlock::sequential(&{
        let mut b = Block::new("x");
        b.push(Insn::Nop);
        b.push(Insn::Nop);
        b
    });
    pb.packets.push(Packet::from_insns(vec![
        Insn::Nop,
        Insn::AddI {
            dst: r(0),
            a: r(0),
            imm: 1,
        },
        Insn::AddI {
            dst: r(1),
            a: r(1),
            imm: 1,
        },
    ]));
    let hist = pb.occupancy_histogram();
    assert_eq!(hist, [2, 0, 1, 0]);
}
