//! Functional simulator for the HVX-like DSP.
//!
//! [`Machine`] executes [`crate::program::Program`]s against real register
//! and memory state, so kernel numerics can be validated against scalar
//! reference implementations. Timing is *not* modeled here instruction by
//! instruction; it is derived statically by [`crate::program::Program::stats`]
//! (packets do not overlap, so static costing is exact).
//!
//! # Packet semantics
//!
//! All instructions in a packet conceptually read the register file in
//! parallel at packet start. Two refinements model the paper's hard/soft
//! distinction:
//!
//! * A consumer with a **soft** dependency on an earlier instruction in
//!   the same packet reads the *forwarded* (new) value — the hardware
//!   guarantees correctness at a stall cost.
//! * A consumer with a **hard** dependency reads the *stale* pre-packet
//!   value. A correct packer never creates this situation; the simulator
//!   supports it so tests can demonstrate that violating hard
//!   dependencies corrupts results.
#![allow(clippy::needless_range_loop)]

use crate::deps::classify;
use crate::insn::{Insn, Lane};
use crate::packet::Packet;
use crate::program::{PackedBlock, Program};
use crate::reg::{Reg, SReg, VPair, VReg, NUM_SREGS, NUM_VREGS, VBYTES};
use std::fmt;

/// One vector register's contents.
pub type VData = [u8; VBYTES];

/// One recorded packet execution (see [`Machine::run_traced`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Label of the block the packet belongs to.
    pub block: String,
    /// Which execution of the block (0-based trip index).
    pub trip: u64,
    /// Packet index within the block.
    pub packet: usize,
    /// Cycle counter after this packet commits.
    pub cycle: u64,
    /// Rendered instructions of the packet.
    pub insns: Vec<String>,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] {}#{} trip {}: {}",
            self.cycle,
            self.block,
            self.packet,
            self.trip,
            self.insns.join(" ; ")
        )
    }
}

/// An execution trace: the committed packets in order, with running
/// cycle counts — the simulator's analogue of a profiler timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in commit order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Total cycles of the traced run.
    pub fn cycles(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }
}

/// Lane accessors shared by the simulator, the kernels, and tests.
pub mod simd {
    use super::VData;

    /// Reads the signed 16-bit lane `k` (64 lanes).
    pub fn get_h(v: &VData, k: usize) -> i16 {
        i16::from_le_bytes([v[2 * k], v[2 * k + 1]])
    }

    /// Writes the signed 16-bit lane `k`.
    pub fn set_h(v: &mut VData, k: usize, x: i16) {
        v[2 * k..2 * k + 2].copy_from_slice(&x.to_le_bytes());
    }

    /// Reads the signed 32-bit lane `k` (32 lanes).
    pub fn get_w(v: &VData, k: usize) -> i32 {
        i32::from_le_bytes([v[4 * k], v[4 * k + 1], v[4 * k + 2], v[4 * k + 3]])
    }

    /// Writes the signed 32-bit lane `k`.
    pub fn set_w(v: &mut VData, k: usize, x: i32) {
        v[4 * k..4 * k + 4].copy_from_slice(&x.to_le_bytes());
    }

    /// Saturates a 16-bit value shifted right by `s` into an unsigned byte.
    pub fn satub(x: i16, s: u8) -> u8 {
        (x >> s).clamp(0, 255) as u8
    }

    /// Saturates a 32-bit value shifted right by `s` into a signed 16-bit.
    pub fn sath(x: i32, s: u8) -> i16 {
        (x >> s).clamp(i16::MIN as i32, i16::MAX as i32) as i16
    }
}

use simd::{get_h, get_w, sath, satub, set_h, set_w};

/// The architectural state of the simulated DSP plus a flat byte memory.
#[derive(Debug, Clone)]
pub struct Machine {
    vregs: Vec<VData>,
    sregs: [i64; NUM_SREGS as usize],
    /// Flat byte-addressable memory. Kernels receive base addresses into
    /// this buffer via scalar registers.
    pub mem: Vec<u8>,
}

impl Machine {
    /// Creates a machine with `mem_bytes` of zeroed memory.
    pub fn new(mem_bytes: usize) -> Self {
        Machine {
            vregs: vec![[0u8; VBYTES]; NUM_VREGS as usize],
            sregs: [0i64; NUM_SREGS as usize],
            mem: vec![0u8; mem_bytes],
        }
    }

    /// Reads a scalar register.
    pub fn sreg(&self, r: SReg) -> i64 {
        self.sregs[r.index() as usize]
    }

    /// Writes a scalar register.
    pub fn set_sreg(&mut self, r: SReg, x: i64) {
        self.sregs[r.index() as usize] = x;
    }

    /// Reads a vector register.
    pub fn vreg(&self, r: VReg) -> &VData {
        &self.vregs[r.index() as usize]
    }

    /// Writes a vector register.
    pub fn set_vreg(&mut self, r: VReg, x: VData) {
        self.vregs[r.index() as usize] = x;
    }

    /// Executes a whole program functionally.
    ///
    /// # Panics
    /// Panics on out-of-bounds or misaligned memory accesses (kernel bugs).
    pub fn run(&mut self, program: &Program) {
        for block in &program.blocks {
            self.run_block(block);
        }
    }

    /// Executes a whole program functionally while recording a
    /// per-packet [`Trace`] (for debugging small programs; the trace
    /// grows with *executed* packets, so avoid it on large trip counts).
    pub fn run_traced(&mut self, program: &Program) -> Trace {
        let mut trace = Trace::default();
        let mut cycle = 0u64;
        for block in &program.blocks {
            for trip in 0..block.trip_count {
                for (pi, packet) in block.packets.iter().enumerate() {
                    self.run_packet(packet);
                    cycle += packet.cycles() as u64;
                    trace.events.push(TraceEvent {
                        block: block.label.clone(),
                        trip,
                        packet: pi,
                        cycle,
                        insns: packet.insns().iter().map(|i| i.to_string()).collect(),
                    });
                }
            }
        }
        trace
    }

    /// Executes one packed block `trip_count` times.
    pub fn run_block(&mut self, block: &PackedBlock) {
        for _ in 0..block.trip_count {
            for packet in &block.packets {
                self.run_packet(packet);
            }
        }
    }

    /// Executes one packet under the parallel-read semantics described in
    /// the module docs.
    pub fn run_packet(&mut self, packet: &Packet) {
        let snapshot_v = self.vregs.clone();
        let snapshot_s = self.sregs;
        let insns = packet.insns();
        for (j, insn) in insns.iter().enumerate() {
            // Registers this consumer must read stale (hard intra-packet
            // dependency on an earlier instruction in the packet).
            let mut stale: Vec<Reg> = Vec::new();
            for prod in &insns[..j] {
                if classify(prod, insn).is_hard() {
                    for d in prod.defs() {
                        if insn.uses().contains(&d) {
                            stale.push(d);
                        }
                    }
                }
            }
            self.exec_insn(insn, &stale, &snapshot_v, &snapshot_s);
        }
    }

    fn read_v(&self, r: VReg, stale: &[Reg], snapshot_v: &[VData]) -> VData {
        if stale.contains(&Reg::V(r)) {
            snapshot_v[r.index() as usize]
        } else {
            self.vregs[r.index() as usize]
        }
    }

    fn read_pair(&self, w: VPair, stale: &[Reg], snapshot_v: &[VData]) -> (VData, VData) {
        (
            self.read_v(w.lo(), stale, snapshot_v),
            self.read_v(w.hi(), stale, snapshot_v),
        )
    }

    fn read_s(&self, r: SReg, stale: &[Reg], snapshot_s: &[i64]) -> i64 {
        if stale.contains(&Reg::S(r)) {
            snapshot_s[r.index() as usize]
        } else {
            self.sregs[r.index() as usize]
        }
    }

    fn write_v(&mut self, r: VReg, x: VData) {
        self.vregs[r.index() as usize] = x;
    }

    fn write_pair(&mut self, w: VPair, lo: VData, hi: VData) {
        self.write_v(w.lo(), lo);
        self.write_v(w.hi(), hi);
    }

    /// Weight byte `j` of a scalar register, sign-extended.
    fn weight_byte(s: i64, j: usize) -> i32 {
        ((s >> (8 * j)) & 0xFF) as u8 as i8 as i32
    }

    fn exec_insn(&mut self, insn: &Insn, stale: &[Reg], snapshot_v: &[VData], snapshot_s: &[i64]) {
        match *insn {
            Insn::Vmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                let v = self.read_v(src, stale, snapshot_v);
                let s = self.read_s(weights, stale, snapshot_s);
                let (mut lo, mut hi) = if acc {
                    self.read_pair(dst, stale, snapshot_v)
                } else {
                    ([0u8; VBYTES], [0u8; VBYTES])
                };
                for i in 0..VBYTES {
                    let p = (v[i] as i32) * Self::weight_byte(s, i % 4);
                    let half = if i % 2 == 0 { &mut lo } else { &mut hi };
                    let k = i / 2;
                    let cur = if acc { get_h(half, k) } else { 0 };
                    set_h(half, k, cur.wrapping_add(p as i16));
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::Vmpa {
                dst,
                src,
                weights,
                acc,
            } => {
                let v = self.read_v(src, stale, snapshot_v);
                let s = self.read_s(weights, stale, snapshot_s);
                let mut out = if acc {
                    self.read_v(dst, stale, snapshot_v)
                } else {
                    [0u8; VBYTES]
                };
                for i in 0..VBYTES / 2 {
                    let (w0, w1) = if i % 2 == 0 {
                        (Self::weight_byte(s, 0), Self::weight_byte(s, 1))
                    } else {
                        (Self::weight_byte(s, 2), Self::weight_byte(s, 3))
                    };
                    let p = (v[2 * i] as i32) * w0 + (v[2 * i + 1] as i32) * w1;
                    let cur = if acc { get_h(&out, i) } else { 0 };
                    set_h(&mut out, i, cur.wrapping_add(p as i16));
                }
                self.write_v(dst, out);
            }
            Insn::Vrmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                let v = self.read_v(src, stale, snapshot_v);
                let s = self.read_s(weights, stale, snapshot_s);
                let mut out = if acc {
                    self.read_v(dst, stale, snapshot_v)
                } else {
                    [0u8; VBYTES]
                };
                for j in 0..VBYTES / 4 {
                    let mut dot = 0i32;
                    for t in 0..4 {
                        dot += (v[4 * j + t] as i32) * Self::weight_byte(s, t);
                    }
                    let cur = if acc { get_w(&out, j) } else { 0 };
                    set_w(&mut out, j, cur.wrapping_add(dot));
                }
                self.write_v(dst, out);
            }
            Insn::Vtmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                let (slo, shi) = self.read_pair(src, stale, snapshot_v);
                let s = self.read_s(weights, stale, snapshot_s);
                let (mut lo, mut hi) = if acc {
                    self.read_pair(dst, stale, snapshot_v)
                } else {
                    ([0u8; VBYTES], [0u8; VBYTES])
                };
                let seq = |j: usize| -> i32 {
                    if j < VBYTES {
                        slo[j] as i32
                    } else if j < 2 * VBYTES {
                        shi[j - VBYTES] as i32
                    } else {
                        0
                    }
                };
                for i in 0..VBYTES {
                    let p = seq(i) * Self::weight_byte(s, 0)
                        + seq(i + 1) * Self::weight_byte(s, 1)
                        + seq(i + 2) * Self::weight_byte(s, 2);
                    // Sequential layout: first 64 lanes in lo, next 64 in hi.
                    let (half, k) = if i < 64 {
                        (&mut lo, i)
                    } else {
                        (&mut hi, i - 64)
                    };
                    let cur = if acc { get_h(half, k) } else { 0 };
                    set_h(half, k, cur.wrapping_add(p as i16));
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::Vadd { lane, dst, a, b } => {
                let x = self.read_v(a, stale, snapshot_v);
                let y = self.read_v(b, stale, snapshot_v);
                self.write_v(dst, lanewise(lane, &x, &y, |a, b| a.wrapping_add(b)));
            }
            Insn::Vsub { lane, dst, a, b } => {
                let x = self.read_v(a, stale, snapshot_v);
                let y = self.read_v(b, stale, snapshot_v);
                self.write_v(dst, lanewise(lane, &x, &y, |a, b| a.wrapping_sub(b)));
            }
            Insn::Vmax { lane, dst, a, b } => {
                let x = self.read_v(a, stale, snapshot_v);
                let y = self.read_v(b, stale, snapshot_v);
                self.write_v(dst, lanewise(lane, &x, &y, i64::max));
            }
            Insn::Vmin { lane, dst, a, b } => {
                let x = self.read_v(a, stale, snapshot_v);
                let y = self.read_v(b, stale, snapshot_v);
                self.write_v(dst, lanewise(lane, &x, &y, i64::min));
            }
            Insn::VmulUbH { dst, a, b } => {
                let x = self.read_v(a, stale, snapshot_v);
                let y = self.read_v(b, stale, snapshot_v);
                let (mut lo, mut hi) = ([0u8; VBYTES], [0u8; VBYTES]);
                for i in 0..VBYTES {
                    let p = (x[i] as i32 * y[i] as i32) as i16;
                    let half = if i % 2 == 0 { &mut lo } else { &mut hi };
                    set_h(half, i / 2, p);
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::VaddUbH { dst, a, b } => {
                let x = self.read_v(a, stale, snapshot_v);
                let y = self.read_v(b, stale, snapshot_v);
                let mut lo = [0u8; VBYTES];
                let mut hi = [0u8; VBYTES];
                for i in 0..VBYTES {
                    let sum = x[i] as i16 + y[i] as i16;
                    let (half, k) = if i < 64 {
                        (&mut lo, i)
                    } else {
                        (&mut hi, i - 64)
                    };
                    set_h(half, k, sum);
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::VaddHAcc { dst, src } => {
                let x = self.read_v(src, stale, snapshot_v);
                let mut d = self.read_v(dst, stale, snapshot_v);
                for k in 0..VBYTES / 2 {
                    let sum = get_h(&d, k).wrapping_add(get_h(&x, k));
                    set_h(&mut d, k, sum);
                }
                self.write_v(dst, d);
            }
            Insn::Vsplat { dst, src } => {
                let s = self.read_s(src, stale, snapshot_s) as u32;
                let mut out = [0u8; VBYTES];
                for k in 0..VBYTES / 4 {
                    out[4 * k..4 * k + 4].copy_from_slice(&s.to_le_bytes());
                }
                self.write_v(dst, out);
            }
            Insn::VasrHB { dst, src, shift } => {
                let (lo, hi) = self.read_pair(src, stale, snapshot_v);
                let mut out = [0u8; VBYTES];
                for k in 0..VBYTES / 2 {
                    out[2 * k] = satub(get_h(&lo, k), shift);
                    out[2 * k + 1] = satub(get_h(&hi, k), shift);
                }
                self.write_v(dst, out);
            }
            Insn::VasrWH { dst, a, b, shift } => {
                let x = self.read_v(a, stale, snapshot_v);
                let y = self.read_v(b, stale, snapshot_v);
                let mut out = [0u8; VBYTES];
                for k in 0..VBYTES / 4 {
                    set_h(&mut out, 2 * k, sath(get_w(&x, k), shift));
                    set_h(&mut out, 2 * k + 1, sath(get_w(&y, k), shift));
                }
                self.write_v(dst, out);
            }
            Insn::VshuffH { dst, src } => {
                let (slo, shi) = self.read_pair(src, stale, snapshot_v);
                let (mut lo, mut hi) = ([0u8; VBYTES], [0u8; VBYTES]);
                for k in 0..VBYTES / 2 {
                    // Sequential lane 2k = slo.h[k], 2k+1 = shi.h[k].
                    let (half, kk) = if 2 * k < 64 {
                        (&mut lo, 2 * k)
                    } else {
                        (&mut hi, 2 * k - 64)
                    };
                    set_h(half, kk, get_h(&slo, k));
                    let (half, kk) = if 2 * k + 1 < 64 {
                        (&mut lo, 2 * k + 1)
                    } else {
                        (&mut hi, 2 * k + 1 - 64)
                    };
                    set_h(half, kk, get_h(&shi, k));
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::VdealH { dst, src } => {
                let (slo, shi) = self.read_pair(src, stale, snapshot_v);
                let (mut lo, mut hi) = ([0u8; VBYTES], [0u8; VBYTES]);
                let seq = |i: usize| {
                    if i < 64 {
                        get_h(&slo, i)
                    } else {
                        get_h(&shi, i - 64)
                    }
                };
                for k in 0..VBYTES / 2 {
                    set_h(&mut lo, k, seq(2 * k));
                    set_h(&mut hi, k, seq(2 * k + 1));
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::VshuffB { dst, src } => {
                let (slo, shi) = self.read_pair(src, stale, snapshot_v);
                let (mut lo, mut hi) = ([0u8; VBYTES], [0u8; VBYTES]);
                for k in 0..VBYTES {
                    let write = |buf_lo: &mut VData, buf_hi: &mut VData, j: usize, x: u8| {
                        if j < VBYTES {
                            buf_lo[j] = x;
                        } else {
                            buf_hi[j - VBYTES] = x;
                        }
                    };
                    write(&mut lo, &mut hi, 2 * k, slo[k]);
                    write(&mut lo, &mut hi, 2 * k + 1, shi[k]);
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::VdealB { dst, src } => {
                let (slo, shi) = self.read_pair(src, stale, snapshot_v);
                let (mut lo, mut hi) = ([0u8; VBYTES], [0u8; VBYTES]);
                let seq = |j: usize| if j < VBYTES { slo[j] } else { shi[j - VBYTES] };
                for k in 0..VBYTES {
                    lo[k] = seq(2 * k);
                    hi[k] = seq(2 * k + 1);
                }
                self.write_pair(dst, lo, hi);
            }
            Insn::VlutB { dst, idx, table } => {
                let i = self.read_v(idx, stale, snapshot_v);
                let t = self.read_v(table, stale, snapshot_v);
                let mut out = [0u8; VBYTES];
                for k in 0..VBYTES {
                    out[k] = t[(i[k] as usize) & (VBYTES - 1)];
                }
                self.write_v(dst, out);
            }
            Insn::VGather { dst, base, offset } | Insn::VLoad { dst, base, offset } => {
                let addr = (self.read_s(base, stale, snapshot_s) + offset) as usize;
                let mut out = [0u8; VBYTES];
                out.copy_from_slice(&self.mem[addr..addr + VBYTES]);
                self.write_v(dst, out);
            }
            Insn::VStore { src, base, offset } => {
                let addr = (self.read_s(base, stale, snapshot_s) + offset) as usize;
                let v = self.read_v(src, stale, snapshot_v);
                self.mem[addr..addr + VBYTES].copy_from_slice(&v);
            }
            Insn::Movi { dst, imm } => self.set_sreg(dst, imm),
            Insn::Add { dst, a, b } => {
                let x = self.read_s(a, stale, snapshot_s);
                let y = self.read_s(b, stale, snapshot_s);
                self.set_sreg(dst, x.wrapping_add(y));
            }
            Insn::AddI { dst, a, imm } => {
                let x = self.read_s(a, stale, snapshot_s);
                self.set_sreg(dst, x.wrapping_add(imm));
            }
            Insn::Sub { dst, a, b } => {
                let x = self.read_s(a, stale, snapshot_s);
                let y = self.read_s(b, stale, snapshot_s);
                self.set_sreg(dst, x.wrapping_sub(y));
            }
            Insn::Mul { dst, a, b } => {
                let x = self.read_s(a, stale, snapshot_s);
                let y = self.read_s(b, stale, snapshot_s);
                self.set_sreg(dst, x.wrapping_mul(y));
            }
            Insn::Div { dst, a, b } => {
                let x = self.read_s(a, stale, snapshot_s);
                let y = self.read_s(b, stale, snapshot_s);
                self.set_sreg(dst, if y == 0 { 0 } else { x.wrapping_div(y) });
            }
            Insn::Shl { dst, a, imm } => {
                let x = self.read_s(a, stale, snapshot_s);
                self.set_sreg(dst, x.wrapping_shl(imm as u32));
            }
            Insn::Shr { dst, a, imm } => {
                let x = self.read_s(a, stale, snapshot_s);
                self.set_sreg(dst, x.wrapping_shr(imm as u32));
            }
            Insn::Ld { dst, base, offset } => {
                let addr = (self.read_s(base, stale, snapshot_s) + offset) as usize;
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.mem[addr..addr + 8]);
                self.set_sreg(dst, i64::from_le_bytes(b));
            }
            Insn::St { src, base, offset } => {
                let addr = (self.read_s(base, stale, snapshot_s) + offset) as usize;
                let x = self.read_s(src, stale, snapshot_s);
                self.mem[addr..addr + 8].copy_from_slice(&x.to_le_bytes());
            }
            Insn::Nop => {}
        }
    }
}

fn lanewise(lane: Lane, a: &VData, b: &VData, f: impl Fn(i64, i64) -> i64) -> VData {
    let mut out = [0u8; VBYTES];
    match lane {
        Lane::B => {
            for i in 0..VBYTES {
                out[i] = f(a[i] as i8 as i64, b[i] as i8 as i64) as i8 as u8;
            }
        }
        Lane::H => {
            for k in 0..VBYTES / 2 {
                set_h(
                    &mut out,
                    k,
                    f(get_h(a, k) as i64, get_h(b, k) as i64) as i16,
                );
            }
        }
        Lane::W => {
            for k in 0..VBYTES / 4 {
                set_w(
                    &mut out,
                    k,
                    f(get_w(a, k) as i64, get_w(b, k) as i64) as i32,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;
    use crate::packet::Packet;
    use crate::program::{Block, PackedBlock};

    fn v(i: u8) -> VReg {
        VReg::new(i)
    }
    fn w(i: u8) -> VPair {
        VPair::new(i)
    }
    fn r(i: u8) -> SReg {
        SReg::new(i)
    }

    /// Packs 4 weight bytes into a scalar value.
    fn weights(b: [i8; 4]) -> i64 {
        i64::from_le_bytes([b[0] as u8, b[1] as u8, b[2] as u8, b[3] as u8, 0, 0, 0, 0])
    }

    #[test]
    fn vmpy_even_odd_split() {
        let mut m = Machine::new(0);
        let mut src = [0u8; VBYTES];
        for (i, x) in src.iter_mut().enumerate() {
            *x = (i % 16) as u8;
        }
        m.set_vreg(v(2), src);
        m.set_sreg(r(0), weights([2, 3, -1, 5]));
        m.run_packet(&Packet::from_insns(vec![Insn::Vmpy {
            dst: w(4),
            src: v(2),
            weights: r(0),
            acc: false,
        }]));
        for i in 0..VBYTES {
            let wgt = [2i32, 3, -1, 5][i % 4];
            let expect = (src[i] as i32 * wgt) as i16;
            let got = if i % 2 == 0 {
                simd::get_h(m.vreg(v(4)), i / 2)
            } else {
                simd::get_h(m.vreg(v(5)), i / 2)
            };
            assert_eq!(got, expect, "lane {i}");
        }
    }

    #[test]
    fn vrmpy_dot_groups() {
        let mut m = Machine::new(0);
        let mut src = [0u8; VBYTES];
        for (i, x) in src.iter_mut().enumerate() {
            *x = (i * 3 % 101) as u8;
        }
        m.set_vreg(v(1), src);
        m.set_sreg(r(0), weights([1, -2, 3, -4]));
        m.run_packet(&Packet::from_insns(vec![Insn::Vrmpy {
            dst: v(8),
            src: v(1),
            weights: r(0),
            acc: false,
        }]));
        for j in 0..VBYTES / 4 {
            let wgt = [1i32, -2, 3, -4];
            let expect: i32 = (0..4).map(|t| src[4 * j + t] as i32 * wgt[t]).sum();
            assert_eq!(simd::get_w(m.vreg(v(8)), j), expect, "group {j}");
        }
    }

    #[test]
    fn vrmpy_accumulates() {
        let mut m = Machine::new(0);
        let src = [1u8; VBYTES];
        m.set_vreg(v(1), src);
        m.set_sreg(r(0), weights([1, 1, 1, 1]));
        let i = Insn::Vrmpy {
            dst: v(8),
            src: v(1),
            weights: r(0),
            acc: true,
        };
        m.run_packet(&Packet::from_insns(vec![i.clone()]));
        m.run_packet(&Packet::from_insns(vec![i]));
        assert_eq!(simd::get_w(m.vreg(v(8)), 0), 8);
    }

    #[test]
    fn vasr_hb_reinterleaves() {
        let mut m = Machine::new(0);
        let mut lo = [0u8; VBYTES];
        let mut hi = [0u8; VBYTES];
        for k in 0..64 {
            simd::set_h(&mut lo, k, (4 * (2 * k)) as i16);
            simd::set_h(&mut hi, k, (4 * (2 * k + 1)) as i16);
        }
        m.set_vreg(v(2), lo);
        m.set_vreg(v(3), hi);
        m.run_packet(&Packet::from_insns(vec![Insn::VasrHB {
            dst: v(0),
            src: w(2),
            shift: 2,
        }]));
        for i in 0..VBYTES {
            assert_eq!(m.vreg(v(0))[i], i as u8, "byte {i}");
        }
    }

    #[test]
    fn shuffle_b_round_trip() {
        let mut m = Machine::new(0);
        let mut lo = [0u8; VBYTES];
        let mut hi = [0u8; VBYTES];
        for i in 0..VBYTES {
            lo[i] = i as u8;
            hi[i] = (i + 128) as u8;
        }
        m.set_vreg(v(2), lo);
        m.set_vreg(v(3), hi);
        m.run_packet(&Packet::from_insns(vec![Insn::VshuffB {
            dst: w(4),
            src: w(2),
        }]));
        m.run_packet(&Packet::from_insns(vec![Insn::VdealB {
            dst: w(6),
            src: w(4),
        }]));
        assert_eq!(m.vreg(v(6)), &lo);
        assert_eq!(m.vreg(v(7)), &hi);
    }

    #[test]
    fn shuffle_h_round_trip() {
        let mut m = Machine::new(0);
        let mut lo = [0u8; VBYTES];
        let mut hi = [0u8; VBYTES];
        for k in 0..64 {
            simd::set_h(&mut lo, k, k as i16);
            simd::set_h(&mut hi, k, (k + 64) as i16);
        }
        m.set_vreg(v(2), lo);
        m.set_vreg(v(3), hi);
        m.run_packet(&Packet::from_insns(vec![Insn::VshuffH {
            dst: w(4),
            src: w(2),
        }]));
        m.run_packet(&Packet::from_insns(vec![Insn::VdealH {
            dst: w(6),
            src: w(4),
        }]));
        assert_eq!(m.vreg(v(6)), &lo);
        assert_eq!(m.vreg(v(7)), &hi);
    }

    #[test]
    fn soft_forwarding_within_packet() {
        // load -> add in one packet: the add sees the loaded value.
        let mut m = Machine::new(64);
        m.mem[..8].copy_from_slice(&42i64.to_le_bytes());
        m.set_sreg(r(0), 0); // base
        m.set_sreg(r(2), 100);
        m.run_packet(&Packet::from_insns(vec![
            Insn::Ld {
                dst: r(1),
                base: r(0),
                offset: 0,
            },
            Insn::Add {
                dst: r(3),
                a: r(2),
                b: r(1),
            },
        ]));
        assert_eq!(m.sreg(r(3)), 142);
    }

    #[test]
    fn hard_violation_reads_stale_value() {
        // vmpy -> vasr illegally packed together: vasr sees the stale pair.
        let mut m = Machine::new(0);
        m.set_vreg(v(2), [3u8; VBYTES]);
        m.set_sreg(r(0), weights([1, 1, 1, 1]));
        let illegal = Packet::from_insns(vec![
            Insn::Vmpy {
                dst: w(4),
                src: v(2),
                weights: r(0),
                acc: false,
            },
            Insn::VasrHB {
                dst: v(0),
                src: w(4),
                shift: 0,
            },
        ]);
        m.run_packet(&illegal);
        // Stale w(4) was zero, so the narrowed result is zero, not 3.
        assert_eq!(m.vreg(v(0))[0], 0);
    }

    #[test]
    fn loop_with_pointer_bump() {
        // Copy 4 vectors using a 1-vector loop body.
        let mut m = Machine::new(VBYTES * 8);
        for i in 0..VBYTES * 4 {
            m.mem[i] = (i % 251) as u8;
        }
        m.set_sreg(r(0), 0); // src
        m.set_sreg(r(1), (VBYTES * 4) as i64); // dst
        let mut b = Block::with_trip_count("copy", 4);
        b.push(Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: 0,
        });
        b.push(Insn::VStore {
            src: v(0),
            base: r(1),
            offset: 0,
        });
        b.push(Insn::AddI {
            dst: r(0),
            a: r(0),
            imm: VBYTES as i64,
        });
        b.push(Insn::AddI {
            dst: r(1),
            a: r(1),
            imm: VBYTES as i64,
        });
        m.run_block(&PackedBlock::sequential(&b));
        for i in 0..VBYTES * 4 {
            assert_eq!(m.mem[VBYTES * 4 + i], (i % 251) as u8);
        }
    }

    #[test]
    fn vtmpy_three_tap() {
        let mut m = Machine::new(0);
        let mut lo = [0u8; VBYTES];
        let hi = [7u8; VBYTES];
        for i in 0..VBYTES {
            lo[i] = i as u8;
        }
        m.set_vreg(v(2), lo);
        m.set_vreg(v(3), hi);
        m.set_sreg(r(0), weights([1, 2, 1, 0]));
        m.run_packet(&Packet::from_insns(vec![Insn::Vtmpy {
            dst: w(4),
            src: w(2),
            weights: r(0),
            acc: false,
        }]));
        // p[10] = 10*1 + 11*2 + 12*1 = 44, sequential lane 10 lives in lo.
        assert_eq!(simd::get_h(m.vreg(v(4)), 10), 44);
        // p[126] crosses into hi: 126 + 2*127 + 7 = 387; lane 126 is hi[62].
        assert_eq!(simd::get_h(m.vreg(v(5)), 62), 387);
    }
}
