//! Textual assembly for the simulated DSP: a printer for whole programs
//! (packets in braces, Hexagon style) and a parser for the same syntax,
//! so kernels can be written, diffed, and golden-tested as text.
//!
//! ```text
//! // matmul body (x128)
//! {
//!     v0 = vmem(r0+#0)
//!     r3 = mem(r1+#0)
//!     w4.h += vmpy(v8.ub, r3.b)
//!     r0 = add(r0, #128)
//! }
//! ```

use crate::insn::{Insn, Lane};
use crate::packet::Packet;
use crate::program::{PackedBlock, Program};
use crate::reg::{SReg, VPair, VReg};
use std::fmt::Write as _;

/// Renders a whole program, one brace-delimited packet per issue slot,
/// with block labels and trip counts as comments.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for block in &program.blocks {
        let _ = writeln!(out, "// {} (x{})", block.label, block.trip_count);
        for packet in &block.packets {
            let _ = writeln!(out, "{packet}");
        }
    }
    out
}

/// A parse failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Parses the printer's syntax back into a program. Block comments of
/// the form `// label (xN)` start a new block with trip count `N`;
/// packets are brace-delimited.
pub fn parse_program(text: &str) -> Result<Program, ParseAsmError> {
    let mut program = Program::new();
    let mut block: Option<PackedBlock> = None;
    let mut packet: Option<Vec<Insn>> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        let err = |message: &str| ParseAsmError {
            line: lineno,
            message: message.into(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("//") {
            // New block header.
            if let Some(b) = block.take() {
                program.push(b);
            }
            let rest = rest.trim();
            let (label, trips) = match rest.rfind("(x") {
                Some(p) if rest.ends_with(')') => {
                    let trips: u64 = rest[p + 2..rest.len() - 1]
                        .parse()
                        .map_err(|_| err("bad trip count"))?;
                    (rest[..p].trim().to_string(), trips)
                }
                _ => (rest.to_string(), 1),
            };
            block = Some(PackedBlock {
                packets: Vec::new(),
                trip_count: trips,
                label,
            });
        } else if line == "{" {
            if packet.is_some() {
                return Err(err("nested packet"));
            }
            packet = Some(Vec::new());
        } else if line == "}" {
            let insns = packet.take().ok_or_else(|| err("unmatched '}'"))?;
            let b = block.get_or_insert_with(|| PackedBlock {
                packets: Vec::new(),
                trip_count: 1,
                label: "block".into(),
            });
            b.packets.push(Packet::from_insns(insns));
        } else {
            let p = packet
                .as_mut()
                .ok_or_else(|| err("instruction outside a packet"))?;
            p.push(parse_insn(line).map_err(|m| err(&m))?);
        }
    }
    if packet.is_some() {
        return Err(ParseAsmError {
            line: text.lines().count(),
            message: "unclosed packet".into(),
        });
    }
    if let Some(b) = block.take() {
        program.push(b);
    }
    Ok(program)
}

fn vreg(tok: &str) -> Result<VReg, String> {
    let n: u8 = tok
        .strip_prefix('v')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad vector register '{tok}'"))?;
    if n >= 32 {
        return Err(format!("vector register out of range '{tok}'"));
    }
    Ok(VReg::new(n))
}

fn vpair(tok: &str) -> Result<VPair, String> {
    let n: u8 = tok
        .strip_prefix('w')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad vector pair '{tok}'"))?;
    if n >= 16 {
        return Err(format!("vector pair out of range '{tok}'"));
    }
    Ok(VPair::new(n * 2))
}

fn sreg(tok: &str) -> Result<SReg, String> {
    let n: u8 = tok
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad scalar register '{tok}'"))?;
    if n >= 32 {
        return Err(format!("scalar register out of range '{tok}'"));
    }
    Ok(SReg::new(n))
}

fn imm(tok: &str) -> Result<i64, String> {
    tok.strip_prefix('#')
        .unwrap_or(tok)
        .parse()
        .map_err(|_| format!("bad immediate '{tok}'"))
}

/// Strips a `.b`/`.h`/`.w`/`.ub` suffix.
fn base(tok: &str) -> &str {
    tok.split('.').next().unwrap_or(tok)
}

fn lane_of(dst: &str) -> Result<Lane, String> {
    match dst.split('.').nth(1) {
        Some("b") | Some("ub") => Ok(Lane::B),
        Some("h") => Ok(Lane::H),
        Some("w") => Ok(Lane::W),
        other => Err(format!("missing lane suffix ('{other:?}')")),
    }
}

/// Splits `f(a, b, c)` into (`f`, [`a`, `b`, `c`]).
fn call(expr: &str) -> Result<(&str, Vec<&str>), String> {
    let open = expr
        .find('(')
        .ok_or_else(|| format!("expected call syntax in '{expr}'"))?;
    let inner = expr[open + 1..]
        .strip_suffix(')')
        .or_else(|| expr[open + 1..].strip_suffix("):sat"))
        .ok_or_else(|| format!("unterminated call in '{expr}'"))?;
    Ok((&expr[..open], inner.split(',').map(str::trim).collect()))
}

/// Splits `mem(base+#off)`-style address expressions.
fn mem_addr(arg: &str) -> Result<(SReg, i64), String> {
    let (base_tok, off_tok) = arg
        .split_once('+')
        .ok_or_else(|| format!("bad address '{arg}'"))?;
    Ok((sreg(base_tok.trim())?, imm(off_tok.trim())?))
}

/// Parses one instruction in the printer's syntax.
pub fn parse_insn(line: &str) -> Result<Insn, String> {
    let line = line.trim();
    if line == "nop" {
        return Ok(Insn::Nop);
    }
    // Store forms have the memory access on the left.
    if line.starts_with("vmem(") || line.starts_with("mem(") {
        let (lhs, rhs) = line.split_once('=').ok_or("missing '='")?;
        let (kind, args) = call(lhs.trim())?;
        let (b, off) = mem_addr(args.first().ok_or("missing address")?)?;
        return match kind {
            "vmem" => Ok(Insn::VStore {
                src: vreg(base(rhs.trim()))?,
                base: b,
                offset: off,
            }),
            "mem" => Ok(Insn::St {
                src: sreg(base(rhs.trim()))?,
                base: b,
                offset: off,
            }),
            _ => Err(format!("unknown store '{kind}'")),
        };
    }

    let (lhs, rhs) = line.split_once('=').ok_or("missing '='")?;
    let acc = lhs.trim_end().ends_with('+');
    let dst = lhs.trim_end().trim_end_matches('+').trim();
    let rhs = rhs.trim();

    // Pure immediate move: `r0 = #42`.
    if rhs.starts_with('#') {
        return Ok(Insn::Movi {
            dst: sreg(base(dst))?,
            imm: imm(rhs)?,
        });
    }
    // Accumulating vector add: `v4.h += v6.h` prints as `v4.h += v6.h`.
    if !rhs.contains('(') {
        return Ok(Insn::VaddHAcc {
            dst: vreg(base(dst))?,
            src: vreg(base(rhs))?,
        });
    }

    let (op, args) = call(rhs)?;
    let arg = |i: usize| -> Result<&str, String> {
        args.get(i)
            .copied()
            .ok_or_else(|| format!("missing operand {i} of '{op}'"))
    };
    match op {
        "vmpy" => {
            // vector-vector (elementwise) vs vector-scalar form.
            if arg(1)?.starts_with('v') {
                Ok(Insn::VmulUbH {
                    dst: vpair(base(dst))?,
                    a: vreg(base(arg(0)?))?,
                    b: vreg(base(arg(1)?))?,
                })
            } else {
                Ok(Insn::Vmpy {
                    dst: vpair(base(dst))?,
                    src: vreg(base(arg(0)?))?,
                    weights: sreg(base(arg(1)?))?,
                    acc,
                })
            }
        }
        "vmpa" => Ok(Insn::Vmpa {
            dst: vreg(base(dst))?,
            src: vreg(base(arg(0)?))?,
            weights: sreg(base(arg(1)?))?,
            acc,
        }),
        "vrmpy" => Ok(Insn::Vrmpy {
            dst: vreg(base(dst))?,
            src: vreg(base(arg(0)?))?,
            weights: sreg(base(arg(1)?))?,
            acc,
        }),
        "vtmpy" => Ok(Insn::Vtmpy {
            dst: vpair(base(dst))?,
            src: vpair(base(arg(0)?))?,
            weights: sreg(base(arg(1)?))?,
            acc,
        }),
        "vadd" => {
            if arg(0)?.ends_with(".ub") {
                Ok(Insn::VaddUbH {
                    dst: vpair(base(dst))?,
                    a: vreg(base(arg(0)?))?,
                    b: vreg(base(arg(1)?))?,
                })
            } else {
                Ok(Insn::Vadd {
                    lane: lane_of(dst)?,
                    dst: vreg(base(dst))?,
                    a: vreg(base(arg(0)?))?,
                    b: vreg(base(arg(1)?))?,
                })
            }
        }
        "vsub" => Ok(Insn::Vsub {
            lane: lane_of(dst)?,
            dst: vreg(base(dst))?,
            a: vreg(base(arg(0)?))?,
            b: vreg(base(arg(1)?))?,
        }),
        "vmax" => Ok(Insn::Vmax {
            lane: lane_of(dst)?,
            dst: vreg(base(dst))?,
            a: vreg(base(arg(0)?))?,
            b: vreg(base(arg(1)?))?,
        }),
        "vmin" => Ok(Insn::Vmin {
            lane: lane_of(dst)?,
            dst: vreg(base(dst))?,
            a: vreg(base(arg(0)?))?,
            b: vreg(base(arg(1)?))?,
        }),
        "vsplat" => Ok(Insn::Vsplat {
            dst: vreg(base(dst))?,
            src: sreg(base(arg(0)?))?,
        }),
        "vasr" => {
            if args.len() == 3 {
                Ok(Insn::VasrWH {
                    dst: vreg(base(dst))?,
                    a: vreg(base(arg(0)?))?,
                    b: vreg(base(arg(1)?))?,
                    shift: imm(arg(2)?)? as u8,
                })
            } else {
                Ok(Insn::VasrHB {
                    dst: vreg(base(dst))?,
                    src: vpair(base(arg(0)?))?,
                    shift: imm(arg(1)?)? as u8,
                })
            }
        }
        "vshuff" => {
            let dst_pair = vpair(base(dst))?;
            let src_pair = vpair(base(arg(0)?))?;
            if dst.ends_with(".b") {
                Ok(Insn::VshuffB {
                    dst: dst_pair,
                    src: src_pair,
                })
            } else {
                Ok(Insn::VshuffH {
                    dst: dst_pair,
                    src: src_pair,
                })
            }
        }
        "vdeal" => {
            let dst_pair = vpair(base(dst))?;
            let src_pair = vpair(base(arg(0)?))?;
            if dst.ends_with(".b") {
                Ok(Insn::VdealB {
                    dst: dst_pair,
                    src: src_pair,
                })
            } else {
                Ok(Insn::VdealH {
                    dst: dst_pair,
                    src: src_pair,
                })
            }
        }
        "vlut" => Ok(Insn::VlutB {
            dst: vreg(base(dst))?,
            idx: vreg(base(arg(0)?))?,
            table: vreg(base(arg(1)?))?,
        }),
        "vmem" => {
            let (b, off) = mem_addr(arg(0)?)?;
            Ok(Insn::VLoad {
                dst: vreg(base(dst))?,
                base: b,
                offset: off,
            })
        }
        "vgather" => {
            let (b, off) = mem_addr(arg(0)?)?;
            Ok(Insn::VGather {
                dst: vreg(base(dst))?,
                base: b,
                offset: off,
            })
        }
        "mem" => {
            let (b, off) = mem_addr(arg(0)?)?;
            Ok(Insn::Ld {
                dst: sreg(base(dst))?,
                base: b,
                offset: off,
            })
        }
        "add" => {
            let second = arg(1)?;
            if second.starts_with('#') {
                Ok(Insn::AddI {
                    dst: sreg(base(dst))?,
                    a: sreg(base(arg(0)?))?,
                    imm: imm(second)?,
                })
            } else {
                Ok(Insn::Add {
                    dst: sreg(base(dst))?,
                    a: sreg(base(arg(0)?))?,
                    b: sreg(base(second))?,
                })
            }
        }
        "sub" => Ok(Insn::Sub {
            dst: sreg(base(dst))?,
            a: sreg(base(arg(0)?))?,
            b: sreg(base(arg(1)?))?,
        }),
        "mul" => Ok(Insn::Mul {
            dst: sreg(base(dst))?,
            a: sreg(base(arg(0)?))?,
            b: sreg(base(arg(1)?))?,
        }),
        "div" => Ok(Insn::Div {
            dst: sreg(base(dst))?,
            a: sreg(base(arg(0)?))?,
            b: sreg(base(arg(1)?))?,
        }),
        "asl" => Ok(Insn::Shl {
            dst: sreg(base(dst))?,
            a: sreg(base(arg(0)?))?,
            imm: imm(arg(1)?)? as u8,
        }),
        "asr" => Ok(Insn::Shr {
            dst: sreg(base(dst))?,
            a: sreg(base(arg(0)?))?,
            imm: imm(arg(1)?)? as u8,
        }),
        other => Err(format!("unknown mnemonic '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;
    use crate::program::Block;

    fn all_printable_insns() -> Vec<Insn> {
        let v = VReg::new;
        let w = |i: u8| VPair::new(i);
        let r = SReg::new;
        vec![
            Insn::Vmpy {
                dst: w(4),
                src: v(2),
                weights: r(1),
                acc: true,
            },
            Insn::Vmpa {
                dst: v(3),
                src: v(2),
                weights: r(1),
                acc: false,
            },
            Insn::Vrmpy {
                dst: v(3),
                src: v(2),
                weights: r(1),
                acc: true,
            },
            Insn::Vtmpy {
                dst: w(4),
                src: w(6),
                weights: r(1),
                acc: false,
            },
            Insn::Vadd {
                lane: Lane::H,
                dst: v(1),
                a: v(2),
                b: v(3),
            },
            Insn::Vsub {
                lane: Lane::W,
                dst: v(1),
                a: v(2),
                b: v(3),
            },
            Insn::Vmax {
                lane: Lane::B,
                dst: v(1),
                a: v(2),
                b: v(3),
            },
            Insn::Vmin {
                lane: Lane::H,
                dst: v(1),
                a: v(2),
                b: v(3),
            },
            Insn::VaddUbH {
                dst: w(4),
                a: v(1),
                b: v(2),
            },
            Insn::VaddHAcc {
                dst: v(4),
                src: v(6),
            },
            Insn::VmulUbH {
                dst: w(4),
                a: v(1),
                b: v(2),
            },
            Insn::Vsplat {
                dst: v(9),
                src: r(7),
            },
            Insn::VasrHB {
                dst: v(1),
                src: w(4),
                shift: 6,
            },
            Insn::VasrWH {
                dst: v(1),
                a: v(8),
                b: v(10),
                shift: 2,
            },
            Insn::VshuffH {
                dst: w(4),
                src: w(6),
            },
            Insn::VdealH {
                dst: w(4),
                src: w(6),
            },
            Insn::VshuffB {
                dst: w(4),
                src: w(6),
            },
            Insn::VdealB {
                dst: w(4),
                src: w(6),
            },
            Insn::VlutB {
                dst: v(1),
                idx: v(2),
                table: v(31),
            },
            Insn::VLoad {
                dst: v(5),
                base: r(0),
                offset: 256,
            },
            Insn::VGather {
                dst: v(5),
                base: r(0),
                offset: 384,
            },
            Insn::VStore {
                src: v(5),
                base: r(1),
                offset: 128,
            },
            Insn::Movi {
                dst: r(3),
                imm: -42,
            },
            Insn::Add {
                dst: r(3),
                a: r(1),
                b: r(2),
            },
            Insn::AddI {
                dst: r(3),
                a: r(3),
                imm: 128,
            },
            Insn::Sub {
                dst: r(3),
                a: r(1),
                b: r(2),
            },
            Insn::Mul {
                dst: r(3),
                a: r(1),
                b: r(2),
            },
            Insn::Div {
                dst: r(3),
                a: r(1),
                b: r(2),
            },
            Insn::Shl {
                dst: r(3),
                a: r(1),
                imm: 4,
            },
            Insn::Shr {
                dst: r(3),
                a: r(1),
                imm: 4,
            },
            Insn::Ld {
                dst: r(3),
                base: r(0),
                offset: 8,
            },
            Insn::St {
                src: r(3),
                base: r(0),
                offset: 8,
            },
            Insn::Nop,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        for insn in all_printable_insns() {
            let text = insn.to_string();
            let parsed = parse_insn(&text).unwrap_or_else(|e| panic!("'{text}': {e}"));
            assert_eq!(parsed, insn, "round trip of '{text}'");
        }
    }

    #[test]
    fn program_round_trips() {
        let mut block = Block::with_trip_count("kernel body", 17);
        block.extend(all_printable_insns());
        let packed = crate::program::PackedBlock::sequential(&block);
        let mut program = Program::new();
        program.push(packed);
        let text = print_program(&program);
        let back = parse_program(&text).expect("parse");
        assert_eq!(back, program);
        assert_eq!(back.blocks[0].trip_count, 17);
        assert_eq!(back.blocks[0].label, "kernel body");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_program("{\n  v0 = bogus(v1)\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
        let err = parse_program("v0 = vsplat(r1)").unwrap_err();
        assert!(err.message.contains("outside"));
        assert!(parse_program("{\n{\n").is_err());
    }

    #[test]
    fn hand_written_packet_executes() {
        let text = "\
// copy loop (x2)
{
    v0 = vmem(r0+#0)
    r0 = add(r0, #128)
}
{
    vmem(r1+#0) = v0
    r1 = add(r1, #128)
}
";
        let program = parse_program(text).expect("parse");
        let mut m = crate::machine::Machine::new(1024);
        for i in 0..256 {
            m.mem[i] = (i % 100) as u8;
        }
        m.set_sreg(SReg::new(1), 512);
        m.run(&program);
        assert_eq!(&m.mem[512..768], &m.mem[..256].to_vec()[..]);
    }
}
