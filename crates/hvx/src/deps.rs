//! Hard/soft dependency classification between instructions.
//!
//! The paper's key micro-architectural observation (Section IV-C) is that
//! dependencies between instructions fall into two classes with respect to
//! placing them in the *same* VLIW packet:
//!
//! * **hard** — packing them together likely produces incorrect results
//!   (the consumer would read a stale register value under the packet's
//!   parallel-read semantics);
//! * **soft** — the hardware guarantees correct results via forwarding,
//!   but execution is delayed by a stall penalty (e.g. a load feeding a
//!   consumer, or a scalar addition feeding its consumer — the paper's
//!   Figure 4 examples).
//!
//! Which dependencies are soft is a property of the micro-architecture;
//! this module encodes the model of our simulated DSP:
//!
//! | producer → consumer (RAW) | class |
//! |---|---|
//! | load → any consumer of the loaded register | soft (+1 cycle) |
//! | scalar ALU → any consumer | soft (+1 cycle) |
//! | any producer → store of the produced value | soft (+1 cycle) |
//! | vector op → vector/shift/permute consumer | hard |
//!
//! WAR dependencies are soft with zero penalty (parallel reads make them
//! safe), WAW and memory (store↔memory-op) dependencies are hard. This
//! matches the paper's footnote 3: soft dependencies can only be RAW or
//! WAR.

use crate::insn::{Insn, Unit};

/// The dependence class between two instructions, from the point of view
/// of placing them in the same VLIW packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// No dependence; the instructions may be packed freely.
    None,
    /// Packing is legal but costs `penalty` stall cycles.
    Soft {
        /// Stall cycles incurred when both ends share a packet.
        penalty: u32,
    },
    /// Packing would produce incorrect results.
    Hard,
}

impl DepKind {
    /// Returns the stronger of two classifications
    /// (`Hard > Soft{bigger} > Soft{smaller} > None`).
    pub fn max(self, other: DepKind) -> DepKind {
        use DepKind::*;
        match (self, other) {
            (Hard, _) | (_, Hard) => Hard,
            (Soft { penalty: a }, Soft { penalty: b }) => Soft { penalty: a.max(b) },
            (Soft { penalty }, None) | (None, Soft { penalty }) => Soft { penalty },
            (None, None) => None,
        }
    }

    /// True for [`DepKind::Soft`].
    pub fn is_soft(self) -> bool {
        matches!(self, DepKind::Soft { .. })
    }

    /// True for [`DepKind::Hard`].
    pub fn is_hard(self) -> bool {
        self == DepKind::Hard
    }

    /// The stall penalty (zero unless soft).
    pub fn penalty(self) -> u32 {
        match self {
            DepKind::Soft { penalty } => penalty,
            _ => 0,
        }
    }
}

/// Stall cycles added per forwarded (soft RAW) hop inside one packet.
pub const SOFT_RAW_PENALTY: u32 = 1;

/// Classifies the dependence from `producer` (earlier in program order) to
/// `consumer` (later).
///
/// The result is the strongest class over all register and memory
/// conflicts between the two instructions. [`DepKind::None`] means the two
/// instructions are entirely independent.
pub fn classify(producer: &Insn, consumer: &Insn) -> DepKind {
    let mut kind = DepKind::None;

    let pdefs = producer.defs();
    let puses = producer.uses();
    let cdefs = consumer.defs();
    let cuses = consumer.uses();

    // RAW: consumer reads a register the producer writes.
    for d in &pdefs {
        if cuses.contains(d) {
            let raw = raw_kind(producer, consumer, *d);
            kind = kind.max(raw);
        }
    }

    // WAR: consumer writes a register the producer reads. Safe under
    // parallel packet reads -> soft with zero penalty.
    for d in &cdefs {
        if puses.contains(d) {
            kind = kind.max(DepKind::Soft { penalty: 0 });
        }
    }

    // WAW: both write the same register -> hard (final value ambiguous).
    for d in &cdefs {
        if pdefs.contains(d) {
            kind = kind.max(DepKind::Hard);
        }
    }

    // Memory: conservative aliasing — a store conflicts with any later
    // memory access.
    if producer.is_store() && (consumer.is_load() || consumer.is_store()) {
        kind = kind.max(DepKind::Hard);
    }
    // load -> store is an anti-dependence through memory: safe.
    if producer.is_load() && consumer.is_store() {
        kind = kind.max(DepKind::Soft { penalty: 0 });
    }

    kind
}

fn raw_kind(producer: &Insn, consumer: &Insn, reg: crate::reg::Reg) -> DepKind {
    // Loads forward their result within a packet at a stall (Figure 4a).
    if producer.is_load() {
        return DepKind::Soft {
            penalty: SOFT_RAW_PENALTY,
        };
    }
    // Scalar ALU results forward within a packet at a stall.
    if producer.resource() == Unit::SAlu {
        return DepKind::Soft {
            penalty: SOFT_RAW_PENALTY,
        };
    }
    // A store of a value produced in the same packet waits for the write
    // stage (Figure 4b) — soft, regardless of producer kind.
    if let Insn::VStore { src, .. } = consumer {
        if crate::reg::Reg::V(*src) == reg {
            return DepKind::Soft {
                penalty: SOFT_RAW_PENALTY,
            };
        }
    }
    if let Insn::St { src, .. } = consumer {
        if crate::reg::Reg::S(*src) == reg {
            return DepKind::Soft {
                penalty: SOFT_RAW_PENALTY,
            };
        }
    }
    // Vector producers feeding vector consumers need the full write-back.
    DepKind::Hard
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{SReg, VPair, VReg};

    fn v(i: u8) -> VReg {
        VReg::new(i)
    }
    fn w(i: u8) -> VPair {
        VPair::new(i)
    }
    fn r(i: u8) -> SReg {
        SReg::new(i)
    }

    #[test]
    fn load_to_use_is_soft() {
        // Figure 4 (a): R1 = load(ad); R3 = R2 + R1.
        let load = Insn::Ld {
            dst: r(1),
            base: r(0),
            offset: 0,
        };
        let add = Insn::Add {
            dst: r(3),
            a: r(2),
            b: r(1),
        };
        assert_eq!(
            classify(&load, &add),
            DepKind::Soft {
                penalty: SOFT_RAW_PENALTY
            }
        );
    }

    #[test]
    fn alu_to_store_is_soft() {
        // Figure 4 (b): R3 = R1 + R2; store(R3, ad).
        let add = Insn::Add {
            dst: r(3),
            a: r(1),
            b: r(2),
        };
        let st = Insn::St {
            src: r(3),
            base: r(0),
            offset: 0,
        };
        assert_eq!(
            classify(&add, &st),
            DepKind::Soft {
                penalty: SOFT_RAW_PENALTY
            }
        );
    }

    #[test]
    fn vector_mult_to_vector_use_is_hard() {
        let mpy = Insn::Vmpy {
            dst: w(0),
            src: v(2),
            weights: r(0),
            acc: false,
        };
        let asr = Insn::VasrHB {
            dst: v(4),
            src: w(0),
            shift: 4,
        };
        assert_eq!(classify(&mpy, &asr), DepKind::Hard);
    }

    #[test]
    fn vector_op_to_store_of_result_is_soft() {
        let add = Insn::Vadd {
            lane: crate::insn::Lane::H,
            dst: v(3),
            a: v(1),
            b: v(2),
        };
        let st = Insn::VStore {
            src: v(3),
            base: r(0),
            offset: 0,
        };
        assert!(classify(&add, &st).is_soft());
    }

    #[test]
    fn war_is_soft_free() {
        let use_first = Insn::Vadd {
            lane: crate::insn::Lane::B,
            dst: v(3),
            a: v(1),
            b: v(2),
        };
        let overwrite = Insn::VLoad {
            dst: v(1),
            base: r(0),
            offset: 0,
        };
        assert_eq!(
            classify(&use_first, &overwrite),
            DepKind::Soft { penalty: 0 }
        );
    }

    #[test]
    fn waw_is_hard() {
        let a = Insn::Movi { dst: r(1), imm: 1 };
        let b = Insn::AddI {
            dst: r(1),
            a: r(2),
            imm: 4,
        };
        assert_eq!(classify(&a, &b), DepKind::Hard);
    }

    #[test]
    fn store_then_load_is_hard() {
        let st = Insn::VStore {
            src: v(0),
            base: r(0),
            offset: 0,
        };
        let ld = Insn::VLoad {
            dst: v(1),
            base: r(1),
            offset: 0,
        };
        assert_eq!(classify(&st, &ld), DepKind::Hard);
    }

    #[test]
    fn independent_is_none() {
        let a = Insn::Vadd {
            lane: crate::insn::Lane::H,
            dst: v(0),
            a: v(1),
            b: v(2),
        };
        let b = Insn::Vadd {
            lane: crate::insn::Lane::H,
            dst: v(3),
            a: v(4),
            b: v(5),
        };
        assert_eq!(classify(&a, &b), DepKind::None);
    }

    #[test]
    fn dep_ordering() {
        assert_eq!(
            DepKind::Hard.max(DepKind::Soft { penalty: 3 }),
            DepKind::Hard
        );
        assert_eq!(
            DepKind::Soft { penalty: 1 }.max(DepKind::Soft { penalty: 2 }),
            DepKind::Soft { penalty: 2 }
        );
        assert_eq!(DepKind::None.max(DepKind::None), DepKind::None);
    }
}
