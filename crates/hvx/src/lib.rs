//! # gcd2-hvx — simulated Hexagon-like mobile DSP
//!
//! The GCD2 paper (MICRO 2022) targets the Qualcomm Hexagon 698 DSP: a
//! VLIW machine with 1024-bit HVX vector extensions, disparate widening
//! multiply instructions (`vmpy`, `vmpa`, `vrmpy`, `vtmpy`), 4-slot
//! packets with per-unit resource constraints, and a pipeline that
//! tolerates *soft* dependencies inside a packet at a stall penalty.
//!
//! That hardware (and its toolchain) is unavailable here, so this crate
//! provides a faithful substitute: a functional **and** timing simulator
//! exposing exactly the architectural features the paper's algorithms
//! exploit. All higher layers — kernels, the global layout/instruction
//! optimizer, and the SDA VLIW packer — compile to and are measured on
//! this machine.
//!
//! ## Quick tour
//!
//! ```
//! use gcd2_hvx::{Block, Insn, Machine, PackedBlock, Packet, SReg, VReg};
//!
//! // Build a tiny block: load a vector, bump the pointer.
//! let mut block = Block::with_trip_count("copy", 2);
//! block.push(Insn::VLoad { dst: VReg::new(0), base: SReg::new(0), offset: 0 });
//! block.push(Insn::AddI { dst: SReg::new(0), a: SReg::new(0), imm: 128 });
//!
//! // Trivial schedule: one instruction per packet.
//! let packed = PackedBlock::sequential(&block);
//! assert_eq!(packed.body_cycles(), 6);
//!
//! // Or pack them together — the pointer bump is independent
//! // (load reads the old pointer; packet reads are parallel).
//! let packet = Packet::from_insns(block.insns.clone());
//! assert!(packet.is_legal(&gcd2_hvx::ResourceModel::default()));
//!
//! // Functional execution.
//! let mut m = Machine::new(1024);
//! m.run_block(&packed);
//! assert_eq!(m.sreg(SReg::new(0)), 256);
//! ```

pub mod asm;
pub mod deps;
pub mod energy;
pub mod insn;
pub mod machine;
pub mod packet;
pub mod program;
pub mod reg;
pub mod stats;

pub use asm::{parse_insn, parse_program, print_program, ParseAsmError};
pub use deps::{classify, DepKind, SOFT_RAW_PENALTY};
pub use energy::EnergyModel;
pub use insn::{Insn, Lane, Unit};
pub use machine::{simd, Machine, Trace, TraceEvent, VData};
pub use packet::{Packet, ResourceModel};
pub use program::{Block, PackedBlock, Program};
pub use reg::{Reg, SReg, VPair, VReg, HLANES, NUM_SREGS, NUM_VREGS, VBYTES, WLANES};
pub use stats::{ExecStats, CLOCK_HZ};

/// Packs four signed weight bytes into a scalar-register value, the form
/// consumed by the multiply instructions' `weights` operand.
///
/// ```
/// let w = gcd2_hvx::pack_weights([1, -2, 3, -4]);
/// assert_eq!(w & 0xFF, 0x01);
/// assert_eq!((w >> 8) & 0xFF, 0xFE);
/// ```
pub fn pack_weights(bytes: [i8; 4]) -> i64 {
    i64::from_le_bytes([
        bytes[0] as u8,
        bytes[1] as u8,
        bytes[2] as u8,
        bytes[3] as u8,
        0,
        0,
        0,
        0,
    ])
}

#[cfg(test)]
mod tests {
    #[test]
    fn pack_weights_layout() {
        let w = super::pack_weights([0x11, 0x22, 0x33, 0x44]);
        assert_eq!(w, 0x4433_2211);
    }
}
