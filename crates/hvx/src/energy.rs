//! Activity-based energy/power model for the simulated DSP.
//!
//! The paper reports power via the Android system interface and the
//! Snapdragon Profiler; our substitute charges a per-instruction energy by
//! functional unit plus a static leakage term per cycle, yielding total
//! energy, average power, and frames-per-Watt. Constants are chosen so
//! that a fully-utilized DSP draws on the order of 2–3 W at 1 GHz, the
//! envelope the paper reports for DSP solutions (Figure 13, Table V).

use crate::stats::{ExecStats, CLOCK_HZ};

/// Per-unit dynamic energy (picojoules per instruction) and static power.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Vector memory access energy (pJ); scalar accesses charge 1/4.
    pub mem_pj: f64,
    /// Vector multiply energy (pJ).
    pub vmpy_pj: f64,
    /// Vector shift energy (pJ).
    pub vshift_pj: f64,
    /// Vector permute/lookup energy (pJ).
    pub vperm_pj: f64,
    /// Vector ALU energy (pJ).
    pub valu_pj: f64,
    /// Scalar ALU energy (pJ).
    pub salu_pj: f64,
    /// Static/leakage energy per cycle (pJ).
    pub static_pj_per_cycle: f64,
}

impl EnergyModel {
    /// The default model for the simulated Hexagon-698-like DSP.
    ///
    /// Constants are expressed per *simulator packet-cycle*, which the
    /// calibrated [`CLOCK_HZ`] maps to real time; they are chosen so a
    /// fully-busy DSP draws 1–3 W and a multiply-heavy full model about
    /// 1.1 W — the envelope of the paper's Figure 13.
    pub fn hexagon698() -> Self {
        EnergyModel {
            mem_pj: 52.0,
            vmpy_pj: 82.0,
            vshift_pj: 28.0,
            vperm_pj: 33.0,
            valu_pj: 26.0,
            salu_pj: 3.5,
            static_pj_per_cycle: 40.0,
        }
    }

    /// Total energy in picojoules for a run.
    pub fn energy_pj(&self, stats: &ExecStats) -> f64 {
        let [mem, vmpy, vshift, vperm, valu, salu] = stats.unit_insns;
        mem as f64 * self.mem_pj
            + vmpy as f64 * self.vmpy_pj
            + vshift as f64 * self.vshift_pj
            + vperm as f64 * self.vperm_pj
            + valu as f64 * self.valu_pj
            + salu as f64 * self.salu_pj
            + stats.cycles as f64 * self.static_pj_per_cycle
    }

    /// Average power in Watts over the run at [`CLOCK_HZ`].
    pub fn power_w(&self, stats: &ExecStats) -> f64 {
        if stats.cycles == 0 {
            return 0.0;
        }
        let seconds = stats.cycles as f64 / CLOCK_HZ;
        self.energy_pj(stats) * 1e-12 / seconds
    }

    /// Inference frames per Watt for a run that computes one frame
    /// (`fps / power`, the paper's FPW metric).
    pub fn frames_per_watt(&self, stats: &ExecStats) -> f64 {
        let joules = self.energy_pj(stats) * 1e-12;
        if joules == 0.0 {
            return 0.0;
        }
        1.0 / joules
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::hexagon698()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_dsp_draws_watts() {
        // Fully packed multiply-heavy workload: ~4 insns/packet, packets
        // take ~4 cycles.
        let stats = ExecStats {
            cycles: 4_000_000,
            packets: 1_000_000,
            insns: 4_000_000,
            unit_insns: [1_000_000, 1_000_000, 500_000, 0, 500_000, 1_000_000],
            ..Default::default()
        };
        let m = EnergyModel::default();
        let p = m.power_w(&stats);
        assert!(
            p > 0.5 && p < 5.0,
            "power {p} W outside mobile-DSP envelope"
        );
    }

    #[test]
    fn idle_cycles_cost_static_energy_only() {
        let stats = ExecStats {
            cycles: 1000,
            ..Default::default()
        };
        let m = EnergyModel::default();
        assert!((m.energy_pj(&stats) - 40.0 * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn fpw_inverse_of_energy() {
        let stats = ExecStats {
            cycles: 1_000_000,
            unit_insns: [0, 1_000_000, 0, 0, 0, 0],
            ..Default::default()
        };
        let m = EnergyModel::default();
        let e_j = m.energy_pj(&stats) * 1e-12;
        assert!((m.frames_per_watt(&stats) - 1.0 / e_j).abs() < 1e-6);
    }
}
