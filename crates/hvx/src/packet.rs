//! VLIW packets and the packet resource model.
//!
//! A packet holds up to [`ResourceModel::MAX_SLOTS`] instructions that
//! issue together. Per-unit capacities constrain which instructions can
//! share a packet (e.g. a single vector-multiply per packet, and no two
//! shift operations together — the constraint the paper calls out
//! explicitly). Because the simulated pipeline does not overlap packets
//! (paper footnote 5), a packet's cost is the maximum instruction latency
//! plus the stalls introduced by intra-packet soft dependencies.

use crate::deps::{classify, DepKind};
use crate::insn::{Insn, Unit};
use std::fmt;

/// Per-packet functional-unit capacities of the simulated DSP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceModel {
    /// Maximum memory-unit instructions per packet (loads + stores).
    pub mem: u8,
    /// Maximum stores per packet.
    pub store: u8,
    /// Maximum vector-multiply instructions per packet.
    pub vmpy: u8,
    /// Maximum vector-shift instructions per packet.
    pub vshift: u8,
    /// Maximum vector permute/lookup instructions per packet.
    pub vperm: u8,
    /// Maximum vector-ALU instructions per packet.
    pub valu: u8,
}

impl ResourceModel {
    /// Instructions per packet on the simulated DSP.
    pub const MAX_SLOTS: usize = 4;

    /// The default model (Hexagon-698-like).
    pub fn hexagon698() -> Self {
        ResourceModel {
            mem: 2,
            store: 1,
            vmpy: 1,
            vshift: 1,
            vperm: 1,
            valu: 2,
        }
    }

    /// An older-generation model (Hexagon-680-like: the paper notes it
    /// also evaluated "older series Snapdragon platforms" with similar
    /// gains): a single memory port and a single vector ALU slot.
    pub fn hexagon680() -> Self {
        ResourceModel {
            mem: 1,
            store: 1,
            vmpy: 1,
            vshift: 1,
            vperm: 1,
            valu: 1,
        }
    }

    /// Whether `candidate` can be added to a packet currently holding
    /// `current`, considering only slot and unit capacities (not
    /// dependencies).
    pub fn admits(&self, current: &[Insn], candidate: &Insn) -> bool {
        if current.len() >= Self::MAX_SLOTS {
            return false;
        }
        let mut mem = 0u8;
        let mut store = 0u8;
        let mut vmpy = 0u8;
        let mut vshift = 0u8;
        let mut vperm = 0u8;
        let mut valu = 0u8;
        for i in current.iter().chain(std::iter::once(candidate)) {
            match i.resource() {
                Unit::Mem => mem += 1,
                Unit::VMpy => vmpy += 1,
                Unit::VShift => vshift += 1,
                Unit::VPerm => vperm += 1,
                Unit::VAlu => valu += 1,
                Unit::SAlu => {}
            }
            if i.is_store() {
                store += 1;
            }
        }
        mem <= self.mem
            && store <= self.store
            && vmpy <= self.vmpy
            && vshift <= self.vshift
            && vperm <= self.vperm
            && valu <= self.valu
    }
}

impl Default for ResourceModel {
    fn default() -> Self {
        Self::hexagon698()
    }
}

/// A VLIW packet: instructions that issue in the same cycle.
///
/// Instructions keep their program order inside the packet; intra-packet
/// soft dependencies are honoured by forwarding (at a stall), and
/// intra-packet *hard* dependencies — which a correct packer never creates
/// — make the consumer read the stale pre-packet register value when
/// executed by [`crate::machine::Machine`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Packet {
    insns: Vec<Insn>,
}

impl Packet {
    /// Creates an empty packet.
    pub fn new() -> Self {
        Packet { insns: Vec::new() }
    }

    /// Creates a packet from instructions.
    ///
    /// # Panics
    /// Panics if more than [`ResourceModel::MAX_SLOTS`] instructions are
    /// given.
    pub fn from_insns(insns: Vec<Insn>) -> Self {
        assert!(
            insns.len() <= ResourceModel::MAX_SLOTS,
            "packet overflows {} slots",
            ResourceModel::MAX_SLOTS
        );
        Packet { insns }
    }

    /// Appends an instruction.
    ///
    /// # Panics
    /// Panics if the packet is already full.
    pub fn push(&mut self, insn: Insn) {
        assert!(
            self.insns.len() < ResourceModel::MAX_SLOTS,
            "packet is full"
        );
        self.insns.push(insn);
    }

    /// The instructions in the packet, in program order.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when the packet holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// True when no intra-packet dependency is hard and the resource model
    /// admits every instruction.
    pub fn is_legal(&self, model: &ResourceModel) -> bool {
        for (j, cons) in self.insns.iter().enumerate() {
            if !model.admits(&self.insns[..j], cons) {
                return false;
            }
            for prod in &self.insns[..j] {
                if classify(prod, cons).is_hard() {
                    return false;
                }
            }
        }
        true
    }

    /// Cycles this packet takes to commit.
    ///
    /// `max(latency) + stalls`, where the stall term is the deepest chain
    /// of soft-RAW forwards inside the packet (each hop costs its
    /// [`DepKind::penalty`]). The paper's Figure 4 example — two 3-cycle
    /// instructions with a soft dependency — therefore costs 4 cycles
    /// packed versus 6 split.
    pub fn cycles(&self) -> u32 {
        let n = self.insns.len();
        if n == 0 {
            return 0;
        }
        let mut depth = vec![0u32; n];
        let mut cost = 0u32;
        for j in 0..n {
            for i in 0..j {
                let k = classify(&self.insns[i], &self.insns[j]);
                if let DepKind::Soft { penalty } = k {
                    depth[j] = depth[j].max(depth[i] + penalty);
                }
            }
            cost = cost.max(self.insns[j].latency() + depth[j]);
        }
        cost
    }

    /// Total stall cycles attributable to intra-packet soft dependencies:
    /// the difference between [`Packet::cycles`] and the stall-free cost.
    pub fn stall_cycles(&self) -> u32 {
        let base = self.insns.iter().map(Insn::latency).max().unwrap_or(0);
        self.cycles() - base
    }

    /// Bytes of memory traffic generated by one execution of the packet.
    pub fn mem_bytes(&self) -> u64 {
        self.insns.iter().map(Insn::mem_bytes).sum()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for i in &self.insns {
            writeln!(f, "    {i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Insn> for Packet {
    fn from_iter<T: IntoIterator<Item = Insn>>(iter: T) -> Self {
        Packet::from_insns(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Lane;
    use crate::reg::{SReg, VPair, VReg};

    fn v(i: u8) -> VReg {
        VReg::new(i)
    }
    fn w(i: u8) -> VPair {
        VPair::new(i)
    }
    fn r(i: u8) -> SReg {
        SReg::new(i)
    }

    #[test]
    fn figure4_soft_packing_cost() {
        // Two 3-cycle instructions with a soft dep: 4 cycles packed.
        let p = Packet::from_insns(vec![
            Insn::Ld {
                dst: r(1),
                base: r(0),
                offset: 0,
            },
            Insn::Add {
                dst: r(3),
                a: r(2),
                b: r(1),
            },
        ]);
        assert_eq!(p.cycles(), 4);
        assert_eq!(p.stall_cycles(), 1);
        assert!(p.is_legal(&ResourceModel::default()));
    }

    #[test]
    fn independent_packet_costs_max_latency() {
        let p = Packet::from_insns(vec![
            Insn::Vmpy {
                dst: w(0),
                src: v(4),
                weights: r(0),
                acc: false,
            },
            Insn::VLoad {
                dst: v(6),
                base: r(1),
                offset: 0,
            },
        ]);
        assert_eq!(p.cycles(), 8);
        assert_eq!(p.stall_cycles(), 0);
    }

    #[test]
    fn soft_chain_accumulates() {
        // load -> add -> store: two soft hops, depth 2.
        let p = Packet::from_insns(vec![
            Insn::Ld {
                dst: r(1),
                base: r(0),
                offset: 0,
            },
            Insn::Add {
                dst: r(3),
                a: r(2),
                b: r(1),
            },
            Insn::St {
                src: r(3),
                base: r(4),
                offset: 0,
            },
        ]);
        assert_eq!(p.cycles(), 5);
    }

    #[test]
    fn two_shifts_rejected() {
        let m = ResourceModel::default();
        let s1 = Insn::VasrHB {
            dst: v(0),
            src: w(2),
            shift: 4,
        };
        let s2 = Insn::VasrHB {
            dst: v(1),
            src: w(4),
            shift: 4,
        };
        assert!(m.admits(&[], &s1));
        assert!(!m.admits(std::slice::from_ref(&s1), &s2));
    }

    #[test]
    fn two_multiplies_rejected() {
        let m = ResourceModel::default();
        let a = Insn::Vmpy {
            dst: w(0),
            src: v(4),
            weights: r(0),
            acc: false,
        };
        let b = Insn::Vrmpy {
            dst: v(8),
            src: v(5),
            weights: r(1),
            acc: false,
        };
        assert!(!m.admits(std::slice::from_ref(&a), &b));
    }

    #[test]
    fn three_memory_ops_rejected() {
        let m = ResourceModel::default();
        let l0 = Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: 0,
        };
        let l1 = Insn::VLoad {
            dst: v(1),
            base: r(0),
            offset: 128,
        };
        let l2 = Insn::VLoad {
            dst: v(2),
            base: r(0),
            offset: 256,
        };
        assert!(m.admits(std::slice::from_ref(&l0), &l1));
        assert!(!m.admits(&[l0, l1], &l2));
    }

    #[test]
    fn two_stores_rejected() {
        let m = ResourceModel::default();
        let s0 = Insn::VStore {
            src: v(0),
            base: r(0),
            offset: 0,
        };
        let s1 = Insn::VStore {
            src: v(1),
            base: r(0),
            offset: 128,
        };
        assert!(!m.admits(std::slice::from_ref(&s0), &s1));
    }

    #[test]
    fn hard_dep_makes_packet_illegal() {
        let p = Packet::from_insns(vec![
            Insn::Vmpy {
                dst: w(0),
                src: v(4),
                weights: r(0),
                acc: false,
            },
            Insn::VasrHB {
                dst: v(6),
                src: w(0),
                shift: 4,
            },
        ]);
        assert!(!p.is_legal(&ResourceModel::default()));
    }

    #[test]
    fn slot_cap() {
        let m = ResourceModel::default();
        let mk = |d: u8| Insn::AddI {
            dst: r(d),
            a: r(d),
            imm: 1,
        };
        let current = [mk(1), mk(2), mk(3), mk(4)];
        assert!(!m.admits(&current, &mk(5)));
    }

    #[test]
    fn valu_cap_two() {
        let m = ResourceModel::default();
        let mk = |d: u8| Insn::Vadd {
            lane: Lane::H,
            dst: v(d),
            a: v(10),
            b: v(11),
        };
        assert!(m.admits(&[mk(0)], &mk(1)));
        assert!(!m.admits(&[mk(0), mk(1)], &mk(2)));
    }
}
