//! Execution statistics: the simulator's stand-in for the Snapdragon
//! Profiler counters the paper reports (Figures 8, 9, 13).

use crate::insn::Unit;
use crate::packet::ResourceModel;

/// Converts simulator packet-cycles into wall time.
///
/// This is *not* a physical clock frequency: the timing model issues one
/// non-overlapping packet per "cycle" step, bundling away the real
/// Hexagon 698's pipelined packet issue and its multiple 1024-bit MAC
/// arrays. The scale is calibrated once so that the simulated GCD2
/// ResNet-50 latency lands at the paper's measured 7.1 ms; all
/// comparisons in the evaluation are ratios, which the calibration does
/// not affect.
pub const CLOCK_HZ: f64 = 46.0e9;

/// Counters accumulated over a (simulated or statically-costed) run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Total cycles, including stalls.
    pub cycles: u64,
    /// Stall cycles caused by intra-packet soft dependencies.
    pub stall_cycles: u64,
    /// Packets issued.
    pub packets: u64,
    /// Instructions issued.
    pub insns: u64,
    /// Bytes read from memory.
    pub mem_read_bytes: u64,
    /// Bytes written to memory.
    pub mem_write_bytes: u64,
    /// Instructions issued per functional unit:
    /// `[Mem, VMpy, VShift, VPerm, VAlu, SAlu]`.
    pub unit_insns: [u64; 6],
}

/// Index into [`ExecStats::unit_insns`] for a unit.
pub fn unit_index(unit: Unit) -> usize {
    match unit {
        Unit::Mem => 0,
        Unit::VMpy => 1,
        Unit::VShift => 2,
        Unit::VPerm => 3,
        Unit::VAlu => 4,
        Unit::SAlu => 5,
    }
}

impl ExecStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self` (e.g. accumulating per-operator runs).
    pub fn accumulate(&mut self, other: &ExecStats) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.packets += other.packets;
        self.insns += other.insns;
        self.mem_read_bytes += other.mem_read_bytes;
        self.mem_write_bytes += other.mem_write_bytes;
        for (a, b) in self.unit_insns.iter_mut().zip(other.unit_insns.iter()) {
            *a += *b;
        }
    }

    /// Returns `self` scaled by a repetition count (a loop executed
    /// `times` times).
    pub fn scaled(&self, times: u64) -> ExecStats {
        let mut s = *self;
        s.cycles *= times;
        s.stall_cycles *= times;
        s.packets *= times;
        s.insns *= times;
        s.mem_read_bytes *= times;
        s.mem_write_bytes *= times;
        for u in &mut s.unit_insns {
            *u *= times;
        }
        s
    }

    /// Slot utilization in `[0, 1]`: issued instructions over available
    /// packet slots (the profiler-style "DSP utilization" proxy).
    pub fn utilization(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.insns as f64 / (self.packets as f64 * ResourceModel::MAX_SLOTS as f64)
    }

    /// Average memory bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.mem_read_bytes + self.mem_write_bytes) as f64 / self.cycles as f64
    }

    /// Wall time in milliseconds at [`CLOCK_HZ`].
    pub fn latency_ms(&self) -> f64 {
        self.cycles as f64 / CLOCK_HZ * 1e3
    }

    /// Number of multiply instructions issued (throughput accounting).
    pub fn multiply_insns(&self) -> u64 {
        self.unit_insns[unit_index(Unit::VMpy)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_scale() {
        let mut a = ExecStats {
            cycles: 10,
            packets: 2,
            insns: 6,
            ..Default::default()
        };
        let b = ExecStats {
            cycles: 5,
            packets: 1,
            insns: 4,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.utilization(), 10.0 / 12.0);
        let s = a.scaled(3);
        assert_eq!(s.cycles, 45);
        assert_eq!(s.packets, 9);
    }

    #[test]
    fn bandwidth() {
        let s = ExecStats {
            cycles: 100,
            mem_read_bytes: 256,
            mem_write_bytes: 144,
            ..Default::default()
        };
        assert!((s.bytes_per_cycle() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = ExecStats::new();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.bytes_per_cycle(), 0.0);
        assert_eq!(s.latency_ms(), 0.0);
    }
}
