//! Program representation: basic blocks of instructions, their packed
//! (scheduled) form, and whole programs with loop trip counts.
//!
//! The simulator does not model scalar branch execution; instead each
//! block carries a `trip_count` and its body is (functionally and
//! temporally) executed that many times. Loop induction — pointer bumps
//! via [`crate::insn::Insn::AddI`] — lives inside the block body so that
//! repeated execution is functionally correct.

use crate::insn::Insn;
use crate::packet::{Packet, ResourceModel};
use crate::stats::{unit_index, ExecStats};
use std::fmt;

/// An unscheduled basic block: straight-line instructions plus the number
/// of times the block executes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Instructions in program order.
    pub insns: Vec<Insn>,
    /// How many times the block body runs.
    pub trip_count: u64,
    /// Human-readable label (operator name etc.).
    pub label: String,
}

impl Block {
    /// Creates a block that executes once.
    pub fn new(label: impl Into<String>) -> Self {
        Block {
            insns: Vec::new(),
            trip_count: 1,
            label: label.into(),
        }
    }

    /// Creates a block with a trip count.
    pub fn with_trip_count(label: impl Into<String>, trip_count: u64) -> Self {
        Block {
            insns: Vec::new(),
            trip_count,
            label: label.into(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Appends many instructions.
    pub fn extend(&mut self, insns: impl IntoIterator<Item = Insn>) {
        self.insns.extend(insns);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// A scheduled basic block: VLIW packets plus the trip count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedBlock {
    /// Packets in issue order.
    pub packets: Vec<Packet>,
    /// How many times the block body runs.
    pub trip_count: u64,
    /// Label inherited from the source [`Block`].
    pub label: String,
}

impl PackedBlock {
    /// The trivial schedule: one instruction per packet, program order.
    /// This is the "unpacked" baseline every packer is measured against.
    pub fn sequential(block: &Block) -> Self {
        PackedBlock {
            packets: block
                .insns
                .iter()
                .cloned()
                .map(|i| Packet::from_insns(vec![i]))
                .collect(),
            trip_count: block.trip_count,
            label: block.label.clone(),
        }
    }

    /// Cycles for one execution of the block body.
    pub fn body_cycles(&self) -> u64 {
        self.packets.iter().map(|p| p.cycles() as u64).sum()
    }

    /// Static timing and counter estimate for all `trip_count` runs.
    pub fn stats(&self) -> ExecStats {
        let mut s = ExecStats::new();
        for p in &self.packets {
            s.cycles += p.cycles() as u64;
            s.stall_cycles += p.stall_cycles() as u64;
            s.packets += 1;
            s.insns += p.len() as u64;
            for i in p.insns() {
                s.unit_insns[unit_index(i.resource())] += 1;
                if i.is_load() {
                    s.mem_read_bytes += i.mem_bytes();
                } else if i.is_store() {
                    s.mem_write_bytes += i.mem_bytes();
                }
            }
        }
        s.scaled(self.trip_count)
    }

    /// True when every packet is legal under `model`.
    pub fn is_legal(&self, model: &ResourceModel) -> bool {
        self.packets.iter().all(|p| p.is_legal(model))
    }

    /// Total instructions across all packets (one body execution).
    pub fn insn_count(&self) -> usize {
        self.packets.iter().map(Packet::len).sum()
    }

    /// Histogram of packet occupancy: `hist[k]` counts packets holding
    /// `k+1` instructions (schedule-density diagnostics).
    pub fn occupancy_histogram(&self) -> [u64; ResourceModel::MAX_SLOTS] {
        let mut hist = [0u64; ResourceModel::MAX_SLOTS];
        for p in &self.packets {
            if !p.is_empty() {
                hist[p.len() - 1] += 1;
            }
        }
        hist
    }
}

impl fmt::Display for PackedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// {} (x{})", self.label, self.trip_count)?;
        for p in &self.packets {
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

/// A complete program: packed blocks executed in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Blocks in execution order.
    pub blocks: Vec<PackedBlock>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program { blocks: Vec::new() }
    }

    /// Appends a block.
    pub fn push(&mut self, block: PackedBlock) {
        self.blocks.push(block);
    }

    /// Static timing/counters for the whole program, without functional
    /// execution. This is how end-to-end model latencies are estimated:
    /// cycles scale with trip counts, so multi-GMAC workloads cost
    /// microseconds to evaluate.
    pub fn stats(&self) -> ExecStats {
        let mut s = ExecStats::new();
        for b in &self.blocks {
            s.accumulate(&b.stats());
        }
        s
    }

    /// Total cycles (see [`Program::stats`]).
    pub fn cycles(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.body_cycles() * b.trip_count)
            .sum()
    }

    /// Total packets issued across all executions.
    pub fn packets_issued(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.packets.len() as u64 * b.trip_count)
            .sum()
    }

    /// Static packet count (one body execution per block), the metric of
    /// the paper's Figure 7 (right).
    pub fn static_packets(&self) -> u64 {
        self.blocks.iter().map(|b| b.packets.len() as u64).sum()
    }
}

impl FromIterator<PackedBlock> for Program {
    fn from_iter<T: IntoIterator<Item = PackedBlock>>(iter: T) -> Self {
        Program {
            blocks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn;
    use crate::reg::SReg;

    fn r(i: u8) -> SReg {
        SReg::new(i)
    }

    #[test]
    fn sequential_schedule_counts() {
        let mut b = Block::with_trip_count("loop", 10);
        b.push(Insn::Ld {
            dst: r(1),
            base: r(0),
            offset: 0,
        });
        b.push(Insn::AddI {
            dst: r(0),
            a: r(0),
            imm: 8,
        });
        let pb = PackedBlock::sequential(&b);
        assert_eq!(pb.packets.len(), 2);
        assert_eq!(pb.body_cycles(), 6);
        let s = pb.stats();
        assert_eq!(s.cycles, 60);
        assert_eq!(s.packets, 20);
        assert_eq!(s.insns, 20);
        assert_eq!(s.mem_read_bytes, 80);
    }

    #[test]
    fn program_stats_accumulate() {
        let mut b = Block::new("b");
        b.push(Insn::Nop);
        let pb = PackedBlock::sequential(&b);
        let prog: Program = vec![pb.clone(), pb].into_iter().collect();
        assert_eq!(prog.cycles(), 6);
        assert_eq!(prog.static_packets(), 2);
        assert_eq!(prog.packets_issued(), 2);
    }
}
