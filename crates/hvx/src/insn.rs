//! Instruction set of the simulated HVX-like DSP.
//!
//! The set mirrors the features of the Qualcomm Hexagon HVX ISA that the
//! GCD2 paper exploits:
//!
//! * the three disparate widening multiply instructions of the paper's
//!   Figure 1 — [`Insn::Vmpy`], [`Insn::Vmpa`], [`Insn::Vrmpy`] — plus the
//!   additionally mentioned [`Insn::Vtmpy`];
//! * narrowing saturating shifts used for requantization
//!   ([`Insn::VasrHB`], [`Insn::VasrWH`]);
//! * permute/shuffle instructions ([`Insn::VshuffH`], [`Insn::VdealH`],
//!   [`Insn::VlutB`] — the latter backs the paper's
//!   "division → database lookup" optimization);
//! * vector and scalar memory accesses and scalar ALU instructions,
//!   including an expensive [`Insn::Div`] that the lookup optimization
//!   replaces.
//!
//! Every instruction knows its latency in cycles ([`Insn::latency`]) and
//! the functional unit it occupies ([`Insn::resource`]); those two pieces
//! of metadata drive both the VLIW packing algorithms and the timing
//! simulation.

use crate::reg::{Reg, SReg, VPair, VReg};
use std::fmt;

/// Lane width selector for the simple vector ALU instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// 8-bit lanes (128 per register).
    B,
    /// 16-bit lanes (64 per register).
    H,
    /// 32-bit lanes (32 per register).
    W,
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lane::B => write!(f, "b"),
            Lane::H => write!(f, "h"),
            Lane::W => write!(f, "w"),
        }
    }
}

/// Functional-unit class an instruction occupies inside a VLIW packet.
///
/// Packet legality rules (see [`crate::packet::ResourceModel`]) bound how
/// many instructions of each class fit in one packet; e.g. only one
/// instruction may use the vector-multiply unit, and "packing two shift
/// operations together is not allowed" (paper, Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Memory access (load side); capacity 2 per packet.
    Mem,
    /// Vector multiply unit; capacity 1 per packet.
    VMpy,
    /// Vector shift unit; capacity 1 per packet.
    VShift,
    /// Vector permute/lookup unit; capacity 1 per packet.
    VPerm,
    /// Vector ALU; capacity 2 per packet.
    VAlu,
    /// Scalar ALU; capacity 4 per packet.
    SAlu,
}

/// One machine instruction.
///
/// Multiply instructions with `acc = true` add into the destination
/// (multiply-accumulate); they then both read and write it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Insn {
    // ---- vector multiplies (paper Figure 1) -------------------------------
    /// `Vdd[.h] (+)= vmpy(Vu.ub, Rt.b)` — each unsigned byte of `src` is
    /// multiplied by the signed weight byte `weights.b[i % 4]`; the 128
    /// 16-bit products are split even/odd across the destination pair
    /// (`dst.lo.h[k] = p[2k]`, `dst.hi.h[k] = p[2k+1]`).
    Vmpy {
        dst: VPair,
        src: VReg,
        weights: SReg,
        acc: bool,
    },
    /// `Vd[.h] (+)= vmpa(Vu.ub, Rt.b)` — bytes are consumed in adjacent
    /// pairs `(b[2i], b[2i+1])` (64 rows × 2 interleaved columns of the
    /// 2-column layout); even pairs use weights `(b0, b1)`, odd pairs
    /// `(b2, b3)`: `p[i] = b[2i]·w + b[2i+1]·w'`. The 64 16-bit results
    /// land sequentially in the destination register.
    Vmpa {
        dst: VReg,
        src: VReg,
        weights: SReg,
        acc: bool,
    },
    /// `Vd[.w] (+)= vrmpy(Vu.ub, Rt.b)` — reducing multiply: each group of
    /// four consecutive bytes is dot-multiplied with the four weight
    /// bytes, producing 32 32-bit lanes.
    Vrmpy {
        dst: VReg,
        src: VReg,
        weights: SReg,
        acc: bool,
    },
    /// `Vdd[.h] (+)= vtmpy(Vuu.ub, Rt.b)` — sliding 3-tap multiply over
    /// the 256 sequential bytes of the source pair:
    /// `p[i] = b[i]·w0 + b[i+1]·w1 + b[i+2]·w2` for `i` in `0..128`,
    /// stored as 128 sequential 16-bit lanes across the destination pair.
    Vtmpy {
        dst: VPair,
        src: VPair,
        weights: SReg,
        acc: bool,
    },

    // ---- vector ALU --------------------------------------------------------
    /// Elementwise wrapping add on `lane`-wide lanes.
    Vadd {
        lane: Lane,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// Elementwise wrapping subtract on `lane`-wide lanes.
    Vsub {
        lane: Lane,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// Elementwise signed max on `lane`-wide lanes (ReLU-style clamps).
    Vmax {
        lane: Lane,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// Elementwise signed min on `lane`-wide lanes.
    Vmin {
        lane: Lane,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// Widening add: `dst` pair receives 128 sequential 16-bit sums of the
    /// unsigned bytes of `a` and `b` (used by the paper's Figure 5
    /// element-wise Add example, `R = A + B + C` with `int16` result).
    VaddUbH { dst: VPair, a: VReg, b: VReg },
    /// Accumulating 16-bit add of a register into one half of a pair-held
    /// accumulator: `dst.h[k] += src.h[k]` (wrapping).
    VaddHAcc { dst: VReg, src: VReg },
    /// Broadcast the low 32 bits of a scalar register across all lanes.
    Vsplat { dst: VReg, src: SReg },
    /// Elementwise widening vector×vector multiply:
    /// `p[i] = a.ub[i] · b.ub[i]`, 128 16-bit products split even/odd
    /// across the destination pair (elementwise `Mul` operators).
    VmulUbH { dst: VPair, a: VReg, b: VReg },

    // ---- vector shift / permute -------------------------------------------
    /// Narrowing saturating shift `h → ub`, re-interleaving the even/odd
    /// split of a multiply destination pair:
    /// `dst.b[2k] = satub(src.lo.h[k] >> shift)`,
    /// `dst.b[2k+1] = satub(src.hi.h[k] >> shift)`.
    VasrHB { dst: VReg, src: VPair, shift: u8 },
    /// Narrowing saturating shift `w → h`:
    /// `dst.h[2k] = sath(a.w[k] >> shift)`, `dst.h[2k+1] = sath(b.w[k] >> shift)`.
    VasrWH {
        dst: VReg,
        a: VReg,
        b: VReg,
        shift: u8,
    },
    /// Shuffle: interleave the halves of a pair of 16-bit vectors —
    /// `dst.seq_h[2k] = src.lo.h[k]`, `dst.seq_h[2k+1] = src.hi.h[k]`
    /// where `seq_h` views the pair as 128 sequential lanes.
    VshuffH { dst: VPair, src: VPair },
    /// Deal: the inverse of [`Insn::VshuffH`] — de-interleave sequential
    /// lanes into even/odd halves.
    VdealH { dst: VPair, src: VPair },
    /// Byte shuffle: interleave the bytes of a pair's halves —
    /// `dst.seq_b[2k] = src.lo.b[k]`, `dst.seq_b[2k+1] = src.hi.b[k]`.
    /// Used to emit 2-column-layout output from the `vmpa` kernels.
    VshuffB { dst: VPair, src: VPair },
    /// Byte deal: the inverse of [`Insn::VshuffB`].
    VdealB { dst: VPair, src: VPair },
    /// Byte table lookup: `dst.b[i] = table.b[idx.b[i] & 127]`. Backs the
    /// division-to-lookup-table replacement.
    VlutB { dst: VReg, idx: VReg, table: VReg },

    // ---- vector memory -----------------------------------------------------
    /// Aligned 128-byte vector load from `[base + offset]`.
    VLoad { dst: VReg, base: SReg, offset: i64 },
    /// Strided/gathering 128-byte vector load crossing panel boundaries
    /// (layout transformations). Functionally a load; its latency models
    /// the DRAM-bandwidth-bound cost of non-contiguous access that the
    /// flat memory model otherwise hides.
    VGather { dst: VReg, base: SReg, offset: i64 },
    /// Aligned 128-byte vector store to `[base + offset]`.
    VStore { src: VReg, base: SReg, offset: i64 },

    // ---- scalar ------------------------------------------------------------
    /// Load a 64-bit immediate.
    Movi { dst: SReg, imm: i64 },
    /// Scalar add.
    Add { dst: SReg, a: SReg, b: SReg },
    /// Scalar add-immediate (pointer bumps in loop bodies).
    AddI { dst: SReg, a: SReg, imm: i64 },
    /// Scalar subtract.
    Sub { dst: SReg, a: SReg, b: SReg },
    /// Scalar multiply (slower than add).
    Mul { dst: SReg, a: SReg, b: SReg },
    /// Scalar divide — deliberately expensive; the "other optimizations"
    /// pass replaces it with [`Insn::VlutB`]-based lookups.
    Div { dst: SReg, a: SReg, b: SReg },
    /// Scalar shift left by immediate.
    Shl { dst: SReg, a: SReg, imm: u8 },
    /// Scalar arithmetic shift right by immediate.
    Shr { dst: SReg, a: SReg, imm: u8 },
    /// Scalar 64-bit load from `[base + offset]`.
    Ld { dst: SReg, base: SReg, offset: i64 },
    /// Scalar 64-bit store to `[base + offset]`.
    St { src: SReg, base: SReg, offset: i64 },
    /// No operation (empty packet slot).
    Nop,
}

impl Insn {
    /// Latency of the instruction in cycles, end to end.
    ///
    /// Every instruction passes through the three VLIW pipeline stages
    /// (read, execute, write); simple instructions spend one cycle per
    /// stage (3 total) while multiplies, table lookups, and the scalar
    /// divider spend extra execute cycles. Because packets do not overlap
    /// (paper, footnote 5), a packet costs the maximum latency of its
    /// instructions plus any soft-dependency stalls.
    ///
    /// The widening multiplies carry deliberately spread latencies
    /// (8/9/10): all three process 128 MACs per issue, so on a
    /// multiply-bound kernel the per-MAC cost ratios are 1.00 : 1.125 :
    /// 1.25 — calibrated to the paper's Table II zero-padding column
    /// (1.00 : 1.10 : 1.23). `vmpa`'s extra cycle pays for its
    /// partial-sum combine, `vrmpy`'s two for the 32-bit reduce tree.
    pub fn latency(&self) -> u32 {
        match self {
            Insn::Vmpy { .. } | Insn::VmulUbH { .. } => 8,
            Insn::Vmpa { .. } | Insn::Vtmpy { .. } => 9,
            Insn::Vrmpy { .. } => 10,
            Insn::VlutB { .. } => 5,
            Insn::VGather { .. } => 1200,
            Insn::Mul { .. } => 5,
            Insn::Div { .. } => 16,
            _ => 3,
        }
    }

    /// The functional unit this instruction occupies.
    pub fn resource(&self) -> Unit {
        match self {
            Insn::Vmpy { .. }
            | Insn::Vmpa { .. }
            | Insn::Vrmpy { .. }
            | Insn::Vtmpy { .. }
            | Insn::VmulUbH { .. } => Unit::VMpy,
            Insn::VasrHB { .. } | Insn::VasrWH { .. } => Unit::VShift,
            Insn::VshuffH { .. }
            | Insn::VdealH { .. }
            | Insn::VshuffB { .. }
            | Insn::VdealB { .. }
            | Insn::VlutB { .. } => Unit::VPerm,
            Insn::Vadd { .. }
            | Insn::Vsub { .. }
            | Insn::Vmax { .. }
            | Insn::Vmin { .. }
            | Insn::VaddUbH { .. }
            | Insn::VaddHAcc { .. }
            | Insn::Vsplat { .. } => Unit::VAlu,
            Insn::VLoad { .. }
            | Insn::VGather { .. }
            | Insn::VStore { .. }
            | Insn::Ld { .. }
            | Insn::St { .. } => Unit::Mem,
            Insn::Movi { .. }
            | Insn::Add { .. }
            | Insn::AddI { .. }
            | Insn::Sub { .. }
            | Insn::Mul { .. }
            | Insn::Div { .. }
            | Insn::Shl { .. }
            | Insn::Shr { .. }
            | Insn::Nop => Unit::SAlu,
        }
    }

    /// Whether the instruction reads memory.
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Insn::VLoad { .. } | Insn::VGather { .. } | Insn::Ld { .. }
        )
    }

    /// Whether the instruction writes memory.
    pub fn is_store(&self) -> bool {
        matches!(self, Insn::VStore { .. } | Insn::St { .. })
    }

    /// Registers written by this instruction.
    pub fn defs(&self) -> Vec<Reg> {
        match *self {
            Insn::Vmpy { dst, .. } | Insn::Vtmpy { dst, .. } => {
                vec![dst.lo().into(), dst.hi().into()]
            }
            Insn::Vmpa { dst, .. } | Insn::Vrmpy { dst, .. } => vec![dst.into()],
            Insn::Vadd { dst, .. }
            | Insn::Vsub { dst, .. }
            | Insn::Vmax { dst, .. }
            | Insn::Vmin { dst, .. } => vec![dst.into()],
            Insn::VaddUbH { dst, .. } | Insn::VmulUbH { dst, .. } => {
                vec![dst.lo().into(), dst.hi().into()]
            }
            Insn::VaddHAcc { dst, .. } => vec![dst.into()],
            Insn::Vsplat { dst, .. } => vec![dst.into()],
            Insn::VasrHB { dst, .. } | Insn::VasrWH { dst, .. } => vec![dst.into()],
            Insn::VshuffH { dst, .. }
            | Insn::VdealH { dst, .. }
            | Insn::VshuffB { dst, .. }
            | Insn::VdealB { dst, .. } => {
                vec![dst.lo().into(), dst.hi().into()]
            }
            Insn::VlutB { dst, .. } => vec![dst.into()],
            Insn::VLoad { dst, .. } | Insn::VGather { dst, .. } => vec![dst.into()],
            Insn::VStore { .. } | Insn::St { .. } | Insn::Nop => vec![],
            Insn::Movi { dst, .. }
            | Insn::Add { dst, .. }
            | Insn::AddI { dst, .. }
            | Insn::Sub { dst, .. }
            | Insn::Mul { dst, .. }
            | Insn::Div { dst, .. }
            | Insn::Shl { dst, .. }
            | Insn::Shr { dst, .. }
            | Insn::Ld { dst, .. } => vec![dst.into()],
        }
    }

    /// Registers read by this instruction (accumulating multiplies also
    /// read their destination).
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Insn::Vmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                let mut u: Vec<Reg> = vec![src.into(), weights.into()];
                if acc {
                    u.push(dst.lo().into());
                    u.push(dst.hi().into());
                }
                u
            }
            Insn::Vtmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                let mut u: Vec<Reg> = vec![src.lo().into(), src.hi().into(), weights.into()];
                if acc {
                    u.push(dst.lo().into());
                    u.push(dst.hi().into());
                }
                u
            }
            Insn::Vmpa {
                dst,
                src,
                weights,
                acc,
            }
            | Insn::Vrmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                let mut u: Vec<Reg> = vec![src.into(), weights.into()];
                if acc {
                    u.push(dst.into());
                }
                u
            }
            Insn::Vadd { a, b, .. }
            | Insn::Vsub { a, b, .. }
            | Insn::Vmax { a, b, .. }
            | Insn::Vmin { a, b, .. } => vec![a.into(), b.into()],
            Insn::VaddUbH { a, b, .. } | Insn::VmulUbH { a, b, .. } => vec![a.into(), b.into()],
            Insn::VaddHAcc { dst, src } => vec![dst.into(), src.into()],
            Insn::Vsplat { src, .. } => vec![src.into()],
            Insn::VasrHB { src, .. } => vec![src.lo().into(), src.hi().into()],
            Insn::VasrWH { a, b, .. } => vec![a.into(), b.into()],
            Insn::VshuffH { src, .. }
            | Insn::VdealH { src, .. }
            | Insn::VshuffB { src, .. }
            | Insn::VdealB { src, .. } => {
                vec![src.lo().into(), src.hi().into()]
            }
            Insn::VlutB { idx, table, .. } => vec![idx.into(), table.into()],
            Insn::VLoad { base, .. } | Insn::VGather { base, .. } => vec![base.into()],
            Insn::VStore { src, base, .. } => vec![src.into(), base.into()],
            Insn::Movi { .. } | Insn::Nop => vec![],
            Insn::Add { a, b, .. }
            | Insn::Sub { a, b, .. }
            | Insn::Mul { a, b, .. }
            | Insn::Div { a, b, .. } => vec![a.into(), b.into()],
            Insn::AddI { a, .. } | Insn::Shl { a, .. } | Insn::Shr { a, .. } => vec![a.into()],
            Insn::Ld { base, .. } => vec![base.into()],
            Insn::St { src, base, .. } => vec![src.into(), base.into()],
        }
    }

    /// Bytes this instruction moves to/from memory (for bandwidth stats).
    pub fn mem_bytes(&self) -> u64 {
        match self {
            Insn::VLoad { .. } | Insn::VGather { .. } | Insn::VStore { .. } => {
                crate::reg::VBYTES as u64
            }
            Insn::Ld { .. } | Insn::St { .. } => 8,
            _ => 0,
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn eq(acc: bool) -> &'static str {
            if acc {
                "+="
            } else {
                "="
            }
        }
        match *self {
            Insn::Vmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                write!(f, "{dst}.h {} vmpy({src}.ub, {weights}.b)", eq(acc))
            }
            Insn::Vmpa {
                dst,
                src,
                weights,
                acc,
            } => {
                write!(f, "{dst}.h {} vmpa({src}.ub, {weights}.b)", eq(acc))
            }
            Insn::Vrmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                write!(f, "{dst}.w {} vrmpy({src}.ub, {weights}.b)", eq(acc))
            }
            Insn::Vtmpy {
                dst,
                src,
                weights,
                acc,
            } => {
                write!(f, "{dst}.h {} vtmpy({src}.ub, {weights}.b)", eq(acc))
            }
            Insn::Vadd { lane, dst, a, b } => write!(f, "{dst}.{lane} = vadd({a}, {b})"),
            Insn::Vsub { lane, dst, a, b } => write!(f, "{dst}.{lane} = vsub({a}, {b})"),
            Insn::Vmax { lane, dst, a, b } => write!(f, "{dst}.{lane} = vmax({a}, {b})"),
            Insn::Vmin { lane, dst, a, b } => write!(f, "{dst}.{lane} = vmin({a}, {b})"),
            Insn::VaddUbH { dst, a, b } => write!(f, "{dst}.h = vadd({a}.ub, {b}.ub)"),
            Insn::VmulUbH { dst, a, b } => write!(f, "{dst}.h = vmpy({a}.ub, {b}.ub)"),
            Insn::VaddHAcc { dst, src } => write!(f, "{dst}.h += {src}.h"),
            Insn::Vsplat { dst, src } => write!(f, "{dst} = vsplat({src})"),
            Insn::VasrHB { dst, src, shift } => {
                write!(f, "{dst}.ub = vasr({src}.h, #{shift}):sat")
            }
            Insn::VasrWH { dst, a, b, shift } => {
                write!(f, "{dst}.h = vasr({a}.w, {b}.w, #{shift}):sat")
            }
            Insn::VshuffH { dst, src } => write!(f, "{dst}.h = vshuff({src}.h)"),
            Insn::VdealH { dst, src } => write!(f, "{dst}.h = vdeal({src}.h)"),
            Insn::VshuffB { dst, src } => write!(f, "{dst}.b = vshuff({src}.b)"),
            Insn::VdealB { dst, src } => write!(f, "{dst}.b = vdeal({src}.b)"),
            Insn::VlutB { dst, idx, table } => write!(f, "{dst}.b = vlut({idx}.b, {table}.b)"),
            Insn::VLoad { dst, base, offset } => write!(f, "{dst} = vmem({base}+#{offset})"),
            Insn::VGather { dst, base, offset } => {
                write!(f, "{dst} = vgather({base}+#{offset})")
            }
            Insn::VStore { src, base, offset } => write!(f, "vmem({base}+#{offset}) = {src}"),
            Insn::Movi { dst, imm } => write!(f, "{dst} = #{imm}"),
            Insn::Add { dst, a, b } => write!(f, "{dst} = add({a}, {b})"),
            Insn::AddI { dst, a, imm } => write!(f, "{dst} = add({a}, #{imm})"),
            Insn::Sub { dst, a, b } => write!(f, "{dst} = sub({a}, {b})"),
            Insn::Mul { dst, a, b } => write!(f, "{dst} = mul({a}, {b})"),
            Insn::Div { dst, a, b } => write!(f, "{dst} = div({a}, {b})"),
            Insn::Shl { dst, a, imm } => write!(f, "{dst} = asl({a}, #{imm})"),
            Insn::Shr { dst, a, imm } => write!(f, "{dst} = asr({a}, #{imm})"),
            Insn::Ld { dst, base, offset } => write!(f, "{dst} = mem({base}+#{offset})"),
            Insn::St { src, base, offset } => write!(f, "mem({base}+#{offset}) = {src}"),
            Insn::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{SReg, VPair, VReg};

    fn v(i: u8) -> VReg {
        VReg::new(i)
    }
    fn w(i: u8) -> VPair {
        VPair::new(i)
    }
    fn r(i: u8) -> SReg {
        SReg::new(i)
    }

    #[test]
    fn acc_multiplies_read_their_destination() {
        let i = Insn::Vmpy {
            dst: w(0),
            src: v(2),
            weights: r(0),
            acc: true,
        };
        assert!(i.uses().contains(&v(0).into()));
        assert!(i.uses().contains(&v(1).into()));
        let i = Insn::Vmpy {
            dst: w(0),
            src: v(2),
            weights: r(0),
            acc: false,
        };
        assert!(!i.uses().contains(&v(0).into()));
    }

    #[test]
    fn latency_spread() {
        assert_eq!(
            Insn::Div {
                dst: r(0),
                a: r(1),
                b: r(2)
            }
            .latency(),
            16
        );
        assert_eq!(
            Insn::Vrmpy {
                dst: v(0),
                src: v(1),
                weights: r(0),
                acc: false
            }
            .latency(),
            10
        );
        assert_eq!(
            Insn::Vmpy {
                dst: w(0),
                src: v(1),
                weights: r(0),
                acc: false
            }
            .latency(),
            8
        );
        assert_eq!(Insn::Nop.latency(), 3);
    }

    #[test]
    fn resources() {
        assert_eq!(
            Insn::VLoad {
                dst: v(0),
                base: r(0),
                offset: 0
            }
            .resource(),
            Unit::Mem
        );
        assert_eq!(
            Insn::VasrHB {
                dst: v(0),
                src: w(2),
                shift: 4
            }
            .resource(),
            Unit::VShift
        );
        assert_eq!(
            Insn::Vmpa {
                dst: v(0),
                src: v(2),
                weights: r(0),
                acc: false
            }
            .resource(),
            Unit::VMpy
        );
    }

    #[test]
    fn display_round_trips_registers() {
        let i = Insn::Vmpy {
            dst: w(4),
            src: v(7),
            weights: r(3),
            acc: true,
        };
        assert_eq!(i.to_string(), "w2.h += vmpy(v7.ub, r3.b)");
    }

    #[test]
    fn store_defs_empty_and_mem_bytes() {
        let s = Insn::VStore {
            src: v(1),
            base: r(0),
            offset: 128,
        };
        assert!(s.defs().is_empty());
        assert!(s.is_store());
        assert_eq!(s.mem_bytes(), 128);
    }
}
