//! Register newtypes for the simulated HVX-like DSP.
//!
//! The machine has 32 scalar registers (`R0..R31`, 64-bit in the simulator,
//! 32-bit semantics for packed weight bytes) and 32 vector registers
//! (`V0..V31`, each [`VBYTES`] = 128 bytes wide, i.e. 1024 bits like the
//! Hexagon 698 HVX). Adjacent even/odd vector registers can be addressed as
//! a *vector pair* (`W0 = V1:V0`, `W2 = V3:V2`, ...), matching Hexagon's
//! `Vdd` pair operands.

use std::fmt;

/// Width of one vector register in bytes (1024 bits).
pub const VBYTES: usize = 128;
/// Number of 16-bit lanes in one vector register.
pub const HLANES: usize = VBYTES / 2;
/// Number of 32-bit lanes in one vector register.
pub const WLANES: usize = VBYTES / 4;
/// Number of vector registers.
pub const NUM_VREGS: u8 = 32;
/// Number of scalar registers.
pub const NUM_SREGS: u8 = 32;

/// A scalar register `R0..R31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SReg(u8);

impl SReg {
    /// Creates a scalar register handle.
    ///
    /// # Panics
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            index < NUM_SREGS,
            "scalar register index {index} out of range"
        );
        SReg(index)
    }

    /// The register index (0..32).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A vector register `V0..V31` (128 bytes wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(u8);

impl VReg {
    /// Creates a vector register handle.
    ///
    /// # Panics
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!(
            index < NUM_VREGS,
            "vector register index {index} out of range"
        );
        VReg(index)
    }

    /// The register index (0..32).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A vector register pair `W(n/2) = V(n+1):V(n)`, `n` even.
///
/// Pairs hold 256 bytes and are the destination of the widening multiply
/// instructions (`vmpy`, `vmpa`, `vtmpy`) and the source of narrowing
/// shifts. `lo()` is the even register, `hi()` the odd one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VPair(u8);

impl VPair {
    /// Creates a pair rooted at an even vector register index.
    ///
    /// # Panics
    /// Panics if `even_index` is odd or `>= 32`.
    pub fn new(even_index: u8) -> Self {
        assert!(
            even_index < NUM_VREGS,
            "vector pair index {even_index} out of range"
        );
        assert!(
            even_index.is_multiple_of(2),
            "vector pair must be rooted at an even register"
        );
        VPair(even_index)
    }

    /// The low (even) register of the pair.
    pub fn lo(self) -> VReg {
        VReg(self.0)
    }

    /// The high (odd) register of the pair.
    pub fn hi(self) -> VReg {
        VReg(self.0 + 1)
    }

    /// The even root index.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for VPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0 / 2)
    }
}

/// Any architectural register, used by dependence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// A scalar register.
    S(SReg),
    /// A vector register (pairs are expanded into their two halves).
    V(VReg),
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::S(r) => write!(f, "{r}"),
            Reg::V(r) => write!(f, "{r}"),
        }
    }
}

impl From<SReg> for Reg {
    fn from(r: SReg) -> Self {
        Reg::S(r)
    }
}

impl From<VReg> for Reg {
    fn from(r: VReg) -> Self {
        Reg::V(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_halves() {
        let w = VPair::new(4);
        assert_eq!(w.lo(), VReg::new(4));
        assert_eq!(w.hi(), VReg::new(5));
        assert_eq!(w.to_string(), "w2");
    }

    #[test]
    #[should_panic(expected = "even register")]
    fn odd_pair_rejected() {
        let _ = VPair::new(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vreg_out_of_range() {
        let _ = VReg::new(32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SReg::new(7).to_string(), "r7");
        assert_eq!(VReg::new(31).to_string(), "v31");
        assert_eq!(Reg::from(SReg::new(1)).to_string(), "r1");
    }
}
