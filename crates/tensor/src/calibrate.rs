//! Quantization calibration — the paper's second future-work item
//! ("design and integrate a more advanced (or customized) Quantization
//! approach").
//!
//! The evaluation uses standard TFLite post-training quantization; this
//! module implements that baseline plus two refinements:
//!
//! * [`CalibrationMethod::MinMax`] — the TFLite default: the range is
//!   the observed min/max;
//! * [`CalibrationMethod::MovingAverage`] — exponentially smoothed
//!   ranges, robust to single-batch outliers;
//! * [`CalibrationMethod::Percentile`] — clips the top/bottom tail,
//!   trading saturation of outliers for finer resolution of the bulk.

use crate::quant::QuantParams;

/// How observed activations map to a quantization range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationMethod {
    /// Exact observed min/max (TFLite post-training default).
    MinMax,
    /// Exponential moving average of per-batch min/max with the given
    /// smoothing factor in `(0, 1]`.
    MovingAverage(f32),
    /// Clip to the given two-sided percentile in `(0.5, 1.0]`
    /// (e.g. 0.999 keeps 99.9% of mass in range).
    Percentile(f64),
}

/// Accumulates value statistics for one tensor across calibration
/// batches and produces [`QuantParams`].
#[derive(Debug, Clone)]
pub struct Observer {
    method: CalibrationMethod,
    running_min: f32,
    running_max: f32,
    batches: usize,
    /// Reservoir of samples for percentile estimation.
    samples: Vec<f32>,
}

/// Maximum reservoir size for percentile calibration.
const MAX_SAMPLES: usize = 1 << 16;

impl Observer {
    /// Creates an observer.
    pub fn new(method: CalibrationMethod) -> Self {
        if let CalibrationMethod::MovingAverage(alpha) = method {
            assert!(
                alpha > 0.0 && alpha <= 1.0,
                "smoothing factor must be in (0, 1]"
            );
        }
        if let CalibrationMethod::Percentile(p) = method {
            assert!(p > 0.5 && p <= 1.0, "percentile must be in (0.5, 1.0]");
        }
        Observer {
            method,
            running_min: f32::INFINITY,
            running_max: f32::NEG_INFINITY,
            batches: 0,
            samples: Vec::new(),
        }
    }

    /// Feeds one batch of real-valued activations.
    ///
    /// # Panics
    /// Panics if the batch is empty.
    pub fn observe(&mut self, batch: &[f32]) {
        assert!(!batch.is_empty(), "empty calibration batch");
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &x in batch {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        match self.method {
            CalibrationMethod::MinMax => {
                self.running_min = self.running_min.min(lo);
                self.running_max = self.running_max.max(hi);
            }
            CalibrationMethod::MovingAverage(alpha) => {
                if self.batches == 0 {
                    self.running_min = lo;
                    self.running_max = hi;
                } else {
                    self.running_min = (1.0 - alpha) * self.running_min + alpha * lo;
                    self.running_max = (1.0 - alpha) * self.running_max + alpha * hi;
                }
            }
            CalibrationMethod::Percentile(_) => {
                // Deterministic stride-based reservoir.
                let room = MAX_SAMPLES.saturating_sub(self.samples.len());
                if room > 0 {
                    let stride = batch.len().div_ceil(room).max(1);
                    self.samples.extend(batch.iter().step_by(stride).copied());
                }
                self.running_min = self.running_min.min(lo);
                self.running_max = self.running_max.max(hi);
            }
        }
        self.batches += 1;
    }

    /// Number of batches observed.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Produces quantization parameters from the observed statistics.
    ///
    /// # Panics
    /// Panics if no batch was observed.
    pub fn finish(&self) -> QuantParams {
        assert!(self.batches > 0, "observer saw no data");
        let (lo, hi) = match self.method {
            CalibrationMethod::Percentile(p) => {
                let mut s = self.samples.clone();
                s.sort_by(f32::total_cmp);
                let n = s.len();
                let cut = (((1.0 - p) * n as f64) as usize).min(n.saturating_sub(1) / 2);
                (s[cut], s[n - 1 - cut])
            }
            _ => (self.running_min, self.running_max),
        };
        // Always include zero so that zero-padding quantizes exactly.
        let lo = lo.min(0.0);
        let hi = hi.max(lo + f32::EPSILON).max(0.0 + f32::EPSILON);
        QuantParams::from_range(lo, hi)
    }
}

/// Quantizes a float weight tensor symmetrically to i8, returning the
/// bytes and the scale (`real = scale * q`).
///
/// # Panics
/// Panics if `weights` is empty.
pub fn quantize_weights_symmetric(weights: &[f32]) -> (Vec<i8>, f32) {
    assert!(!weights.is_empty(), "empty weight tensor");
    let max_abs = weights
        .iter()
        .fold(0f32, |m, &x| m.max(x.abs()))
        .max(f32::EPSILON);
    let scale = max_abs / 127.0;
    let q = weights
        .iter()
        .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

/// Mean squared quantization error of `params` over `data` — the metric
/// for comparing calibration methods.
pub fn quantization_mse(params: &QuantParams, data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter()
        .map(|&x| {
            let err = params.dequantize(params.quantize(x)) - x;
            (err as f64) * (err as f64)
        })
        .sum::<f64>()
        / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_ish(n: usize, outliers: usize) -> Vec<f32> {
        // Deterministic bulk in [-1, 1] plus a few large outliers.
        let mut v: Vec<f32> = (0..n)
            .map(|i| {
                let t = i as f32 / n as f32 * std::f32::consts::TAU;
                t.sin() * 0.8
            })
            .collect();
        for k in 0..outliers {
            v.push(20.0 + k as f32);
        }
        v
    }

    #[test]
    fn minmax_covers_everything() {
        let data = gaussian_ish(1000, 2);
        let mut obs = Observer::new(CalibrationMethod::MinMax);
        obs.observe(&data);
        let q = obs.finish();
        // The outlier is representable...
        assert!((q.dequantize(q.quantize(21.0)) - 21.0).abs() < q.scale);
        // ...at the cost of a coarse step.
        assert!(q.scale > 0.05);
    }

    #[test]
    fn percentile_beats_minmax_on_outliers() {
        let data = gaussian_ish(4000, 4);
        let mut mm = Observer::new(CalibrationMethod::MinMax);
        let mut pc = Observer::new(CalibrationMethod::Percentile(0.995));
        mm.observe(&data);
        pc.observe(&data);
        // Evaluate on the bulk (what accuracy depends on).
        let bulk = gaussian_ish(4000, 0);
        let mse_mm = quantization_mse(&mm.finish(), &bulk);
        let mse_pc = quantization_mse(&pc.finish(), &bulk);
        assert!(
            mse_pc < mse_mm / 4.0,
            "percentile {mse_pc:.3e} vs minmax {mse_mm:.3e}"
        );
    }

    #[test]
    fn moving_average_smooths_spiky_batches() {
        let mut ma = Observer::new(CalibrationMethod::MovingAverage(0.1));
        for b in 0..20 {
            let spike = if b == 3 { 50.0 } else { 1.0 };
            ma.observe(&[-spike, 0.0, spike]);
        }
        let q = ma.finish();
        // The single spike batch decays; range stays near the bulk.
        assert!(q.scale < 50.0 / 255.0, "scale {}", q.scale);
    }

    #[test]
    fn zero_is_exact() {
        for method in [
            CalibrationMethod::MinMax,
            CalibrationMethod::MovingAverage(0.3),
            CalibrationMethod::Percentile(0.99),
        ] {
            let mut obs = Observer::new(method);
            obs.observe(&[0.5, 1.5, 2.5]);
            let q = obs.finish();
            assert_eq!(q.dequantize(q.quantize(0.0)), 0.0, "{method:?}");
        }
    }

    #[test]
    fn symmetric_weight_quantization_round_trips() {
        let w: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 10.0).collect();
        let (q, scale) = quantize_weights_symmetric(&w);
        for (orig, &qi) in w.iter().zip(&q) {
            let back = qi as f32 * scale;
            assert!((back - orig).abs() <= scale / 2.0 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn finish_without_data_panics() {
        Observer::new(CalibrationMethod::MinMax).finish();
    }
}
