//! Uniform affine quantization, the int8 scheme the paper inherits from
//! TFLite post-training quantization ("8-bit integers for weights and
//! feature maps").

/// Parameters of a uniform affine quantizer: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real-valued step between adjacent quantized levels.
    pub scale: f32,
    /// Quantized value representing real zero.
    pub zero_point: i32,
}

impl QuantParams {
    /// Creates parameters covering the real interval `[min, max]` with
    /// 256 levels.
    ///
    /// # Panics
    /// Panics if `max <= min`.
    pub fn from_range(min: f32, max: f32) -> Self {
        assert!(max > min, "empty quantization range");
        let scale = (max - min) / 255.0;
        let zero_point = (-min / scale).round().clamp(0.0, 255.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Quantizes a real value to u8.
    pub fn quantize(&self, x: f32) -> u8 {
        ((x / self.scale).round() as i32 + self.zero_point).clamp(0, 255) as u8
    }

    /// Dequantizes a u8 back to a real value.
    pub fn dequantize(&self, q: u8) -> f32 {
        self.scale * (q as i32 - self.zero_point) as f32
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        QuantParams {
            scale: 1.0,
            zero_point: 0,
        }
    }
}

/// Requantizes a 32-bit accumulator to u8 by an arithmetic right shift
/// with saturation — the shape of the DSP's `vasr` narrowing path.
pub fn requantize_shift(acc: i32, shift: u8) -> u8 {
    (acc >> shift).clamp(0, 255) as u8
}

/// The shift that maps the largest expected accumulator magnitude into
/// u8 range (a simple power-of-two output scale).
pub fn shift_for_max(max_abs_acc: i32) -> u8 {
    let mut s = 0u8;
    let mut m = max_abs_acc.max(1);
    while m > 255 {
        m >>= 1;
        s += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trip_error_bounded() {
        let q = QuantParams::from_range(-4.0, 4.0);
        for i in 0..100 {
            let x = -4.0 + 8.0 * (i as f32) / 99.0;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.scale / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn zero_maps_to_zero_point() {
        let q = QuantParams::from_range(-1.0, 3.0);
        assert_eq!(q.quantize(0.0) as i32, q.zero_point);
    }

    #[test]
    fn requant_saturates() {
        assert_eq!(requantize_shift(-5, 0), 0);
        assert_eq!(requantize_shift(300, 0), 255);
        assert_eq!(requantize_shift(1024, 2), 255);
        assert_eq!(requantize_shift(1020, 2), 255);
        assert_eq!(requantize_shift(1000, 4), 62);
    }

    #[test]
    fn shift_covers_range() {
        for m in [1, 200, 255, 256, 4096, 1 << 20] {
            let s = shift_for_max(m);
            assert!((m >> s) <= 255, "m={m} s={s}");
            if s > 0 {
                assert!((m >> (s - 1)) > 255);
            }
        }
    }
}
