//! # gcd2-tensor — quantized tensors and the paper's matrix layouts
//!
//! This crate provides the data-side substrate of the GCD2 reproduction:
//!
//! * [`Layout`] — the 1-column / 2-column / 4-column dense matrix formats
//!   of the paper's Figure 2, each tailored to one widening multiply
//!   instruction, plus a framework-neutral row-major format;
//! * [`MatrixU8`] / [`MatrixI8`] — quantized activation and weight
//!   matrices stored in those layouts;
//! * [`QuantParams`] — uniform affine (TFLite-style) quantization;
//! * [`transform`] — the layout-transformation cost model, i.e. the
//!   `TC(ep_i, ep_j)` edge term of the paper's global optimization
//!   objective.
//!
//! ```
//! use gcd2_tensor::{Layout, MatrixU8};
//!
//! let m = MatrixU8::from_fn(100, 8, Layout::Col2, |r, c| (r + c) as u8);
//! assert_eq!(m.get(99, 7), 106);
//! // Padded to 128 rows x 8 cols.
//! assert_eq!(m.padded_len(), 128 * 8);
//! // Converting to the vrmpy-friendly layout preserves values.
//! assert_eq!(m.to_layout(Layout::Col4).get(99, 7), 106);
//! ```

pub mod calibrate;
pub mod layout;
pub mod matrix;
pub mod quant;
pub mod transform;

pub use calibrate::{quantization_mse, quantize_weights_symmetric, CalibrationMethod, Observer};
pub use layout::Layout;
pub use matrix::{MatrixI8, MatrixU8};
pub use quant::{requantize_shift, shift_for_max, QuantParams};
pub use transform::{transform_block, transform_cycles};
