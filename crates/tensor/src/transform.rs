//! Layout transformation cost model and DSP transform routines.
//!
//! Converting a tensor between layouts is the `TC(ep_i, ep_j)` term of the
//! paper's global optimization objective (Equation 1): it costs nothing
//! when producer and consumer agree on a layout, and real DSP cycles when
//! they do not. This module provides:
//!
//! * [`transform_cycles`] — the analytic cycle cost the optimizer uses;
//! * [`transform_block`] — a timing-faithful instruction stream for the
//!   transform (vector loads, permutes, stores, pointer bumps) so that
//!   end-to-end programs account for transforms with the same packet
//!   machinery as compute kernels. Functionally the byte permutation is
//!   performed by the runtime ([`crate::matrix::MatrixU8::to_layout`]);
//!   the emitted block reproduces its *cost*, not its bytes.

use crate::layout::Layout;
use gcd2_hvx::{Block, Insn, SReg, VPair, VReg, VBYTES};

/// Fixed per-transform overhead in cycles (DMA descriptor setup, loop
/// prologue/epilogue).
pub const TRANSFORM_OVERHEAD_CYCLES: u64 = 2000;

/// Cycles per 128-byte vector for panel-to-panel (ColX → ColY)
/// reshuffles. Layout transforms stride across panel boundaries, so they
/// run at strided-DRAM bandwidth, not at the vector unit's pace: two
/// [`gcd2_hvx::Insn::VGather`] accesses share a packet, giving 600
/// cycles per vector (≈10 GB/s effective at the calibrated clock) — the
/// reason transformation costs matter to the global optimizer at all.
pub const VECTOR_SHUFFLE_CYCLES_PER_VEC: u64 = 600;

/// Cycles per 128-byte vector when one side is row-major: a full
/// element-wise scatter/gather, about 2× slower again.
pub const SCALAR_GATHER_CYCLES_PER_VEC: u64 = 1200;

/// Analytic cycle cost of converting a `rows × cols` u8 matrix from
/// layout `from` to layout `to`. Zero when the layouts match.
pub fn transform_cycles(rows: usize, cols: usize, from: Layout, to: Layout) -> u64 {
    if from == to {
        return 0;
    }
    let bytes = from.padded_len(rows, cols).max(to.padded_len(rows, cols));
    let vecs = bytes.div_ceil(VBYTES) as u64;
    let per_vec = if from == Layout::RowMajor || to == Layout::RowMajor {
        SCALAR_GATHER_CYCLES_PER_VEC
    } else {
        VECTOR_SHUFFLE_CYCLES_PER_VEC
    };
    vecs * per_vec + TRANSFORM_OVERHEAD_CYCLES
}

/// Emits the transform routine as an instruction block whose packed cost
/// approximates [`transform_cycles`]. `src_base`/`dst_base` are the
/// scalar registers holding the source and destination addresses.
pub fn transform_block(
    rows: usize,
    cols: usize,
    from: Layout,
    to: Layout,
    src_base: SReg,
    dst_base: SReg,
) -> Block {
    let mut block = Block::new(format!("transform {from} -> {to}"));
    if from == to {
        return block;
    }
    let bytes = from.padded_len(rows, cols).max(to.padded_len(rows, cols));
    let pair_iters = bytes.div_ceil(2 * VBYTES) as u64;
    block.trip_count = pair_iters.max(1);

    let v0 = VReg::new(0);
    let v1 = VReg::new(1);
    let w0 = VPair::new(0);
    let w2 = VPair::new(2);
    if from == Layout::RowMajor || to == Layout::RowMajor {
        // Element-wise scatter/gather path: every vector of data needs a
        // strided gather on both sides.
        block.push(Insn::VGather {
            dst: v0,
            base: src_base,
            offset: 0,
        });
        block.push(Insn::VGather {
            dst: v0,
            base: src_base,
            offset: VBYTES as i64,
        });
        block.push(Insn::VGather {
            dst: v1,
            base: src_base,
            offset: 2 * VBYTES as i64,
        });
        block.push(Insn::VGather {
            dst: v1,
            base: src_base,
            offset: 3 * VBYTES as i64,
        });
        block.push(Insn::VshuffB { dst: w2, src: w0 });
        block.push(Insn::VStore {
            src: w2.lo(),
            base: dst_base,
            offset: 0,
        });
        block.push(Insn::VStore {
            src: w2.hi(),
            base: dst_base,
            offset: VBYTES as i64,
        });
        block.push(Insn::AddI {
            dst: src_base,
            a: src_base,
            imm: 2 * VBYTES as i64,
        });
        block.push(Insn::AddI {
            dst: dst_base,
            a: dst_base,
            imm: 2 * VBYTES as i64,
        });
    } else {
        // Panel reshuffle path: gather a pair across panels, byte-shuffle,
        // store contiguously.
        block.push(Insn::VGather {
            dst: v0,
            base: src_base,
            offset: 0,
        });
        block.push(Insn::VGather {
            dst: v1,
            base: src_base,
            offset: VBYTES as i64,
        });
        block.push(Insn::VshuffB { dst: w2, src: w0 });
        block.push(Insn::VStore {
            src: w2.lo(),
            base: dst_base,
            offset: 0,
        });
        block.push(Insn::VStore {
            src: w2.hi(),
            base: dst_base,
            offset: VBYTES as i64,
        });
        block.push(Insn::AddI {
            dst: src_base,
            a: src_base,
            imm: 2 * VBYTES as i64,
        });
        block.push(Insn::AddI {
            dst: dst_base,
            a: dst_base,
            imm: 2 * VBYTES as i64,
        });
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_hvx::PackedBlock;

    #[test]
    fn same_layout_is_free() {
        assert_eq!(transform_cycles(128, 128, Layout::Col1, Layout::Col1), 0);
        let b = transform_block(
            128,
            128,
            Layout::Col2,
            Layout::Col2,
            SReg::new(0),
            SReg::new(1),
        );
        assert!(b.is_empty());
    }

    #[test]
    fn row_major_transforms_cost_more() {
        let fast = transform_cycles(256, 256, Layout::Col1, Layout::Col4);
        let slow = transform_cycles(256, 256, Layout::RowMajor, Layout::Col4);
        assert!(
            slow as f64 > 1.5 * fast as f64,
            "gather path {slow} vs shuffle path {fast}"
        );
    }

    #[test]
    fn cost_scales_with_size() {
        let small = transform_cycles(128, 128, Layout::Col1, Layout::Col2);
        let big = transform_cycles(512, 512, Layout::Col1, Layout::Col2);
        assert!(big > 10 * small);
    }

    #[test]
    fn block_cost_tracks_analytic_cost() {
        let b = transform_block(
            512,
            512,
            Layout::Col1,
            Layout::Col2,
            SReg::new(0),
            SReg::new(1),
        );
        let sequential = PackedBlock::sequential(&b);
        let cycles = sequential.body_cycles() * sequential.trip_count;
        let analytic = transform_cycles(512, 512, Layout::Col1, Layout::Col2);
        // The sequential (unpacked) schedule is an upper bound; packing
        // brings it near the analytic number. Check the right ballpark.
        assert!(
            cycles >= analytic / 2,
            "sequential {cycles} vs analytic {analytic}"
        );
        assert!(
            cycles <= analytic * 6,
            "sequential {cycles} vs analytic {analytic}"
        );
    }

    #[test]
    fn padding_drives_cost_asymmetry() {
        // Transforming a short matrix into Col1 pays for the 128-row pad.
        let into_col1 = transform_cycles(32, 512, Layout::Col4, Layout::Col1);
        let into_col4 = transform_cycles(32, 512, Layout::Col1, Layout::Col4);
        assert_eq!(into_col1, into_col4); // max() of both paddings on each side
        assert!(into_col1 > transform_cycles(32, 128, Layout::Col4, Layout::Col2));
    }
}
