//! The dense matrix layouts of the paper's Figure 2.
//!
//! Each of the DSP's widening multiply instructions wants its operand
//! matrix stored differently:
//!
//! * [`Layout::Col1`] — "1-column layout" (Figure 2a, for `vmpy`):
//!   128-row panels stored column-major; one vector load grabs 128 rows
//!   of a single column.
//! * [`Layout::Col2`] — "2-column layout" (Figure 2b, for `vmpa`):
//!   64-row panels with values for 2 adjacent columns interleaved; one
//!   vector load grabs 64 rows × 2 columns.
//! * [`Layout::Col4`] — "4-column layout" (Figure 2c, for `vrmpy`):
//!   32-row panels with 4 adjacent column values per row; one vector load
//!   grabs 32 rows × 4 columns.
//! * [`Layout::RowMajor`] — the framework-neutral interchange layout.
//!
//! A layout pads the matrix to its panel height and column group, which
//! is exactly the space overhead Table II reports.

use std::fmt;

/// A dense matrix storage layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layout {
    /// Plain row-major storage, no padding.
    RowMajor,
    /// 1-column layout: 128-row panels, column-major within a panel.
    Col1,
    /// 2-column layout: 64-row panels, 2 adjacent columns interleaved.
    Col2,
    /// 4-column layout: 32-row panels, 4 adjacent columns per row.
    Col4,
}

impl Layout {
    /// All layouts, in a stable order.
    pub const ALL: [Layout; 4] = [Layout::RowMajor, Layout::Col1, Layout::Col2, Layout::Col4];

    /// Panel height in rows (vector loads span one panel).
    pub fn panel_rows(self) -> usize {
        match self {
            Layout::RowMajor => 1,
            Layout::Col1 => 128,
            Layout::Col2 => 64,
            Layout::Col4 => 32,
        }
    }

    /// Number of adjacent columns stored together.
    pub fn col_group(self) -> usize {
        match self {
            Layout::RowMajor => 1,
            Layout::Col1 => 1,
            Layout::Col2 => 2,
            Layout::Col4 => 4,
        }
    }

    /// Rows after padding to the panel height.
    pub fn padded_rows(self, rows: usize) -> usize {
        let p = self.panel_rows();
        rows.div_ceil(p) * p
    }

    /// Columns after padding to the column group.
    pub fn padded_cols(self, cols: usize) -> usize {
        let g = self.col_group();
        cols.div_ceil(g) * g
    }

    /// Total bytes a `rows × cols` u8 matrix occupies in this layout.
    pub fn padded_len(self, rows: usize, cols: usize) -> usize {
        if self == Layout::RowMajor {
            rows * cols
        } else {
            self.padded_rows(rows) * self.padded_cols(cols)
        }
    }

    /// Linear byte offset of element `(r, c)` in a `rows × cols` matrix.
    ///
    /// ```
    /// use gcd2_tensor::Layout;
    /// // Figure 2 (a): the 1-column layout stores 128-row panels
    /// // column-major, so (1, 0) follows (0, 0) and column 1 starts at
    /// // offset 128.
    /// assert_eq!(Layout::Col1.offset(256, 4, 1, 0), 1);
    /// assert_eq!(Layout::Col1.offset(256, 4, 0, 1), 128);
    /// ```
    ///
    /// # Panics
    /// Panics if `(r, c)` is out of bounds.
    pub fn offset(self, rows: usize, cols: usize, r: usize, c: usize) -> usize {
        assert!(
            r < rows && c < cols,
            "index ({r}, {c}) out of {rows}x{cols}"
        );
        match self {
            Layout::RowMajor => r * cols + c,
            _ => {
                let p = self.panel_rows();
                let g = self.col_group();
                let pc = self.padded_cols(cols);
                let panel = r / p;
                let r_in = r % p;
                (panel * p * pc) + (c / g) * (p * g) + r_in * g + (c % g)
            }
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::RowMajor => write!(f, "row-major"),
            Layout::Col1 => write!(f, "1-column"),
            Layout::Col2 => write!(f, "2-column"),
            Layout::Col4 => write!(f, "4-column"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2a_offsets() {
        // 1-column layout on a 256x4 matrix: element (r, c) for r < 128 is
        // at c*128 + r; the second panel follows.
        let l = Layout::Col1;
        assert_eq!(l.offset(256, 4, 0, 0), 0);
        assert_eq!(l.offset(256, 4, 1, 0), 1);
        assert_eq!(l.offset(256, 4, 0, 1), 128);
        assert_eq!(l.offset(256, 4, 127, 3), 3 * 128 + 127);
        assert_eq!(l.offset(256, 4, 128, 0), 512);
    }

    #[test]
    fn figure2b_offsets() {
        // 2-column layout on a 128x4 matrix, matching the figure's
        // "0,1 / 2,3 / … / 126,127" then "128,129 …" pattern.
        let l = Layout::Col2;
        assert_eq!(l.offset(128, 4, 0, 0), 0);
        assert_eq!(l.offset(128, 4, 0, 1), 1);
        assert_eq!(l.offset(128, 4, 1, 0), 2);
        assert_eq!(l.offset(128, 4, 63, 1), 127);
        assert_eq!(l.offset(128, 4, 0, 2), 128);
        assert_eq!(l.offset(128, 4, 0, 3), 129);
        // Second panel (rows 64..128) starts after the full first panel.
        assert_eq!(l.offset(128, 4, 64, 0), 256);
    }

    #[test]
    fn figure2c_offsets() {
        // 4-column layout on a 64x8 matrix: "0,1,2,3 / 4,5,6,7" per row.
        let l = Layout::Col4;
        assert_eq!(l.offset(64, 8, 0, 0), 0);
        assert_eq!(l.offset(64, 8, 0, 3), 3);
        assert_eq!(l.offset(64, 8, 1, 0), 4);
        assert_eq!(l.offset(64, 8, 31, 3), 127);
        assert_eq!(l.offset(64, 8, 0, 4), 128);
        assert_eq!(l.offset(64, 8, 32, 0), 256);
    }

    #[test]
    fn padding_matches_table2_pattern() {
        // M=K=32: Col1 pads rows to 128 (4x), Col2 to 64 (2x), Col4 exact.
        assert_eq!(Layout::Col1.padded_len(32, 32), 128 * 32);
        assert_eq!(Layout::Col2.padded_len(32, 32), 64 * 32);
        assert_eq!(Layout::Col4.padded_len(32, 32), 32 * 32);
        // M=K=128: all exact.
        for l in [Layout::Col1, Layout::Col2, Layout::Col4] {
            assert_eq!(l.padded_len(128, 128), 128 * 128);
        }
    }

    #[test]
    fn offsets_are_unique_and_in_bounds() {
        for l in Layout::ALL {
            let (rows, cols) = (70, 6);
            let len = l.padded_len(rows, cols);
            let mut seen = std::collections::HashSet::new();
            for r in 0..rows {
                for c in 0..cols {
                    let o = l.offset(rows, cols, r, c);
                    assert!(o < len, "{l}: offset {o} >= len {len}");
                    assert!(seen.insert(o), "{l}: duplicate offset {o}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_bounds_panics() {
        Layout::Col1.offset(10, 10, 10, 0);
    }
}
