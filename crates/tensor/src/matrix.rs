//! Quantized (u8) matrices stored in one of the paper's layouts.

use crate::layout::Layout;
use std::fmt;

/// A dense matrix of unsigned 8-bit quantized values in a given
/// [`Layout`]. Padding bytes introduced by the layout are zero, which is
/// the additive identity for the multiply-accumulate kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixU8 {
    rows: usize,
    cols: usize,
    layout: Layout,
    data: Vec<u8>,
}

impl MatrixU8 {
    /// Creates a zeroed matrix.
    pub fn zeros(rows: usize, cols: usize, layout: Layout) -> Self {
        MatrixU8 {
            rows,
            cols,
            layout,
            data: vec![0; layout.padded_len(rows, cols)],
        }
    }

    /// Wraps raw bytes already in `layout` order (e.g. read back from
    /// simulator memory).
    ///
    /// # Panics
    /// Panics if `data.len() != layout.padded_len(rows, cols)`.
    pub fn from_raw(rows: usize, cols: usize, layout: Layout, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            layout.padded_len(rows, cols),
            "raw length mismatch"
        );
        MatrixU8 {
            rows,
            cols,
            layout,
            data,
        }
    }

    /// Creates a matrix from row-major data, storing it in `layout`.
    ///
    /// # Panics
    /// Panics if `values.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, layout: Layout, values: &[u8]) -> Self {
        assert_eq!(values.len(), rows * cols, "value count mismatch");
        let mut m = Self::zeros(rows, cols, layout);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, values[r * cols + c]);
            }
        }
        m
    }

    /// Builds a matrix by evaluating `f(r, c)` at every position.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        layout: Layout,
        mut f: impl FnMut(usize, usize) -> u8,
    ) -> Self {
        let mut m = Self::zeros(rows, cols, layout);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Logical row count (unpadded).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count (unpadded).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The raw (padded) backing storage in layout order.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Total padded storage size in bytes (the Table II space metric).
    pub fn padded_len(&self) -> usize {
        self.data.len()
    }

    /// Reads element `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[self.layout.offset(self.rows, self.cols, r, c)]
    }

    /// Writes element `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, x: u8) {
        let o = self.layout.offset(self.rows, self.cols, r, c);
        self.data[o] = x;
    }

    /// Re-stores the matrix in another layout (the runtime side of the
    /// paper's data-transformation edges; the cycle cost of doing this on
    /// the DSP comes from [`crate::transform::transform_cycles`]).
    pub fn to_layout(&self, layout: Layout) -> MatrixU8 {
        if layout == self.layout {
            return self.clone();
        }
        MatrixU8::from_fn(self.rows, self.cols, layout, |r, c| self.get(r, c))
    }

    /// The matrix as a row-major `Vec` (for comparisons in tests).
    pub fn to_row_major_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.push(self.get(r, c));
            }
        }
        out
    }
}

impl fmt::Display for MatrixU8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatrixU8[{}x{}, {}]", self.rows, self.cols, self.layout)
    }
}

/// A dense matrix of signed 8-bit weights, stored row-major. Weights are
/// consumed from scalar registers (4 bytes at a time) rather than vector
/// loads, so they do not need the special layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixI8 {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
}

impl MatrixI8 {
    /// Creates a zeroed weight matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixI8 {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a weight matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `values.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, values: &[i8]) -> Self {
        assert_eq!(values.len(), rows * cols, "value count mismatch");
        MatrixI8 {
            rows,
            cols,
            data: values.to_vec(),
        }
    }

    /// Builds a weight matrix by evaluating `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i8) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads element `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> i8 {
        self.data[r * self.cols + c]
    }

    /// The raw row-major storage (`rows * cols` values, no padding).
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Writes element `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, x: i8) {
        self.data[r * self.cols + c] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_layouts() {
        let values: Vec<u8> = (0..70u32 * 6).map(|i| (i % 251) as u8).collect();
        for l in Layout::ALL {
            let m = MatrixU8::from_row_major(70, 6, l, &values);
            assert_eq!(m.to_row_major_vec(), values, "{l}");
        }
    }

    #[test]
    fn layout_conversion_preserves_values() {
        let values: Vec<u8> = (0..130u32 * 5).map(|i| (i * 7 % 253) as u8).collect();
        let m = MatrixU8::from_row_major(130, 5, Layout::Col1, &values);
        for l in Layout::ALL {
            assert_eq!(m.to_layout(l).to_row_major_vec(), values, "{l}");
        }
    }

    #[test]
    fn padding_is_zero() {
        let m = MatrixU8::from_row_major(10, 3, Layout::Col4, &[9; 30]);
        // Padded to 32 rows x 4 cols = 128 bytes; 30 live values.
        assert_eq!(m.padded_len(), 128);
        let live: u32 = m.as_bytes().iter().map(|&b| b as u32).sum();
        assert_eq!(live, 9 * 30);
    }

    #[test]
    fn weights_row_major() {
        let w = MatrixI8::from_fn(3, 4, |r, c| (r * 4 + c) as i8 - 6);
        assert_eq!(w.get(0, 0), -6);
        assert_eq!(w.get(2, 3), 5);
    }
}
