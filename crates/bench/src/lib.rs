//! # gcd2-bench — the evaluation harness
//!
//! One binary per table and figure of the paper's evaluation section
//! (`table1`..`table5`, `fig7`..`fig13`, and `all`), plus Criterion
//! micro-benchmarks of the compiler itself. Each binary prints the same
//! rows/series the paper reports; EXPERIMENTS.md records paper-reported
//! vs. measured values.

use gcd2_cgraph::{Graph, OpKind};
use gcd2_models::ModelId;

/// The five representative models used by Figures 8, 9, and 11.
pub fn representative_models() -> Vec<ModelId> {
    vec![
        ModelId::EfficientNetB0,
        ModelId::ResNet50,
        ModelId::Fst,
        ModelId::WdsrB,
        ModelId::PixOr,
    ]
}

/// Geometric mean of a non-empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Extracts the sub-graph consisting of the graph's sources plus its
/// first `op_count` operator nodes (the paper's "partial computational
/// graphs extracted using contiguous operators" for Figure 10).
pub fn prefix_graph(graph: &Graph, op_count: usize) -> Graph {
    let mut out = Graph::new();
    let mut ops = 0usize;
    for node in graph.nodes() {
        if ops >= op_count && !matches!(node.kind, OpKind::Input | OpKind::Constant) {
            break;
        }
        match node.kind {
            OpKind::Input => {
                out.input(node.name.clone(), node.shape.clone());
            }
            OpKind::Constant => {
                out.constant(node.name.clone(), node.shape.clone());
            }
            _ => {
                // Prefix construction preserves node ids.
                out.add(node.kind.clone(), &node.inputs, node.name.clone());
                ops += 1;
            }
        }
    }
    out
}

/// The first 8 unique Conv2d GEMM shapes of ResNet-50 (the Figure 7 /
/// Figure 12 kernels C0..C7).
pub fn resnet_conv_kernels() -> Vec<gcd2_cgraph::GemmDims> {
    let g = ModelId::ResNet50.build();
    let mut seen = std::collections::HashSet::new();
    let mut kernels = Vec::new();
    for node in g.nodes() {
        if let OpKind::Conv2d { .. } = node.kind {
            if let Some(dims) = g.gemm_dims(node.id) {
                if seen.insert((dims.m, dims.k, dims.n)) {
                    kernels.push(dims);
                    if kernels.len() == 8 {
                        break;
                    }
                }
            }
        }
    }
    kernels
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats an optional latency cell.
pub fn ms_cell(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_twos() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_graph_counts() {
        let g = ModelId::ResNet50.build();
        for n in [5, 10, 25] {
            let p = prefix_graph(&g, n);
            assert_eq!(p.op_count(), n);
        }
    }

    #[test]
    fn eight_unique_resnet_kernels() {
        let k = resnet_conv_kernels();
        assert_eq!(k.len(), 8);
        let set: std::collections::HashSet<_> = k.iter().map(|d| (d.m, d.k, d.n)).collect();
        assert_eq!(set.len(), 8);
    }
}
