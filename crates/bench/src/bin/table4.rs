//! Table IV: overall latency comparison — TFLite vs SNPE vs GCD2 on all
//! ten models, with speedups and the geometric mean.

use gcd2::Compiler;
use gcd2_baselines::Framework;
use gcd2_bench::{geomean, ms_cell, row};
use gcd2_models::ModelId;
use std::time::Instant;

fn main() {
    println!("# Table IV: end-to-end DSP latency, TFLite / SNPE / GCD2\n");
    row(&[
        "Model".into(),
        "#MACs".into(),
        "#Params".into(),
        "#Ops".into(),
        "TFLite (ms)".into(),
        "SNPE (ms)".into(),
        "GCD2 (ms)".into(),
        "OverT".into(),
        "OverS".into(),
        "Compile (s)".into(),
    ]);
    let mut over_t = Vec::new();
    let mut over_s = Vec::new();
    for id in ModelId::ALL {
        let g = id.build();
        let t0 = Instant::now();
        let compiled = Compiler::new().compile(&g);
        let compile_s = t0.elapsed().as_secs_f64();
        let gcd2_ms = compiled.latency_ms();
        let tflite = Framework::Tflite.run(&g).map(|r| r.latency_ms());
        let snpe = Framework::Snpe.run(&g).map(|r| r.latency_ms());
        if let Some(t) = tflite {
            over_t.push(t / gcd2_ms);
        }
        if let Some(s) = snpe {
            over_s.push(s / gcd2_ms);
        }
        row(&[
            id.to_string(),
            format!("{:.2}G", g.total_macs() as f64 / 1e9),
            format!("{:.1}M", g.total_params() as f64 / 1e6),
            g.op_count().to_string(),
            ms_cell(tflite),
            ms_cell(snpe),
            format!("{gcd2_ms:.1}"),
            tflite
                .map(|t| format!("{:.1}", t / gcd2_ms))
                .unwrap_or_else(|| "-".into()),
            snpe.map(|s| format!("{:.1}", s / gcd2_ms))
                .unwrap_or_else(|| "-".into()),
            format!("{compile_s:.1}"),
        ]);
    }
    println!(
        "\nGeomean speedup over TFLite: {:.2}x (paper: 2.8x)",
        geomean(&over_t)
    );
    println!(
        "Geomean speedup over SNPE:   {:.2}x (paper: 2.1x)",
        geomean(&over_s)
    );
    println!(
        "TinyBERT and Conformer run only under GCD2 (first mobile-DSP execution, as in the paper)."
    );
}
