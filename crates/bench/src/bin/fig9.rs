//! Figure 9: performance breakdown — incremental speedup of the three
//! optimization stages (instruction/layout selection, SDA VLIW packing,
//! other optimizations) over the no-optimization baseline, plus
//! utilization and bandwidth per rung.

use gcd2::{Compiler, Packing};
use gcd2_bench::{representative_models, row};

fn main() {
    println!("# Figure 9: optimization breakdown (speedup over no-opt)\n");
    row(&[
        "Model".into(),
        "+instr/layout".into(),
        "+VLIW".into(),
        "+other (full)".into(),
        "util% no-opt/full".into(),
        "bw% no-opt/full".into(),
    ]);
    for id in representative_models() {
        let g = id.build();
        // Rung 0: uniform kernels in framework interchange format,
        // sequential issue, no lookup ops.
        let none = Compiler::no_opt().compile(&g);
        // Rung 1: + global instruction/layout selection (formats planned
        // end-to-end, no per-op interchange conversions).
        let layout = Compiler::new()
            .with_packing(Packing::Sequential)
            .with_lut_ops(false)
            .compile(&g);
        // Rung 2: + SDA VLIW packing.
        let vliw = Compiler::new().with_lut_ops(false).compile(&g);
        // Rung 3: + other optimizations (division -> lookup) = full GCD2.
        let full = Compiler::new().compile(&g);
        let base = none.cycles() as f64;
        row(&[
            id.to_string(),
            format!("{:.2}", base / layout.cycles() as f64),
            format!("{:.2}", base / vliw.cycles() as f64),
            format!("{:.2}", base / full.cycles() as f64),
            format!(
                "{:.0}/{:.0}",
                100.0 * none.utilization() / full.utilization(),
                100.0
            ),
            format!(
                "{:.0}/{:.0}",
                100.0 * none.bytes_per_cycle() / full.bytes_per_cycle(),
                100.0
            ),
        ]);
        // Sanity guard: the Uniform baseline must never beat full GCD2.
        assert!(full.cycles() <= none.cycles());
    }
    println!("\nPaper: instruction/layout selection contributes 1.4-2.9x, VLIW scheduling another 1.2-2.0x, other optimizations 1.1-1.4x.");
}
