//! Gateway-throughput benchmark: what dynamic batching buys batch-1
//! callers.
//!
//! For each GEMM-heavy catalog model, drives the same closed-loop
//! stream of independent single-input requests through an
//! [`gcd2::InferServer`] gateway twice at **equal worker count**:
//!
//! * `off` — `max_batch = 1`, `max_wait = 0`: the gateway degenerates
//!   to a plain worker pool, every request executes single-shot;
//! * `on` — `max_batch = 16`, `max_wait = 2ms`: queued requests for
//!   the model coalesce into stacked-GEMM batches.
//!
//! `batch_speedup` is the answered-requests-per-second ratio on/off.
//! The honest caveat, measured and documented in DESIGN.md §6f: on a
//! single-core host the only batching win is pack/launch amortization
//! of the stacked GEMM, which tops out well below the multi-worker
//! figure — ratios near 1.0 here are expected, not a bug. The number
//! this benchmark gates is **bit-identity**: every gateway output must
//! equal `InferencePlan::execute` on the same input, in both modes,
//! and the process exits non-zero if any byte diverges.
//!
//! Per mode the JSON also records the gateway's own telemetry: batches
//! dispatched, the largest coalesced batch, and the p50/p99 bucket
//! bounds for queue wait and batch execution from [`gcd2::ModelStats`].
//!
//! Worker counts are chosen from the host: with ≥4 cores each model is
//! benched at 2 and 4 workers, with ≥2 cores at 2 workers, and only a
//! single-core host falls back to the 1-worker regime — so the recorded
//! ratios reflect real multi-worker contention whenever the machine can
//! express it. Results go to `BENCH_serve.json`; `--smoke` runs one
//! small model with a short stream (for CI).

use gcd2::{Compiler, ExecOptions, GatewayConfig, InferError, InferServer, ModelStats};
use gcd2_models::ModelId;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

const SEED: u64 = 0xC0DE;
/// Batching-on knobs: how many requests one batch may coalesce, and how
/// long the dispatcher may hold a batch open waiting for more.
const MAX_BATCH: usize = 16;
const MAX_WAIT: Duration = Duration::from_millis(2);
/// Bound on requests in flight per client loop: deep enough to keep the
/// batcher fed, small enough to model a real caller population.
const PIPELINE: usize = 32;
/// Requests per model per mode; transformer-sized models get the short
/// stream so the full run stays tractable.
const REQUESTS: usize = 48;
const HEAVY_REQUESTS: usize = 16;
const HEAVY_MACS: u64 = 3_000_000_000;

/// The GEMM-dominated slice of the catalog: the two transformers plus
/// the two light CNNs whose im2col convs stack well.
const SERVE_MODELS: [ModelId; 4] = [
    ModelId::MobileNetV3,
    ModelId::EfficientNetB0,
    ModelId::TinyBert,
    ModelId::Conformer,
];

struct ModeResult {
    wall_ms: f64,
    inf_per_s: f64,
    batches: u64,
    largest_batch: u64,
    queue_p50_us: u128,
    queue_p99_us: u128,
    exec_p50_us: u128,
    exec_p99_us: u128,
    supervision: SupervisionCounters,
}

/// The self-healing layer's event counters for one gateway run. The
/// bench runs without fault injection, so every field must stay zero —
/// a nonzero count means the supervisor intervened in healthy traffic
/// (spurious hang verdicts, breaker trips, phantom retries) and the
/// throughput numbers above are not measuring what they claim.
#[derive(Default)]
struct SupervisionCounters {
    hung: u64,
    workers_replaced: u64,
    retries: u64,
    demotions: u64,
    breaker_rejected: u64,
    abandoned: u64,
}

impl SupervisionCounters {
    fn total(&self) -> u64 {
        self.hung
            + self.workers_replaced
            + self.retries
            + self.demotions
            + self.breaker_rejected
            + self.abandoned
    }
}

struct ModelResult {
    name: String,
    ops: usize,
    gemm_macs: u64,
    requests: usize,
    workers: usize,
    bit_identical: bool,
    off: ModeResult,
    on: ModeResult,
    batch_speedup: f64,
}

fn deterministic_input(len: usize, variant: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 7 + 13 * (variant + 1)) % 16) as u8)
        .collect()
}

/// Closed-loop client: submit the whole stream with at most `PIPELINE`
/// outstanding tickets, retiring in submission order, then drain.
/// Returns the wall-clock for all answers plus the outputs in order.
fn drive(
    server: &InferServer,
    model: &str,
    inputs: &[Vec<u8>],
) -> (Duration, Vec<Vec<u8>>, ModelStats) {
    let mut pending = VecDeque::new();
    let mut outputs = Vec::with_capacity(inputs.len());
    let t0 = Instant::now();
    for input in inputs {
        loop {
            match server.submit_to(model, input.clone(), 0) {
                Ok(ticket) => {
                    pending.push_back(ticket);
                    break;
                }
                Err(InferError::QueueFull { .. }) => {
                    // Backpressure: retire the oldest in-flight request,
                    // freeing a queue slot, then retry.
                    let ticket = pending
                        .pop_front()
                        .expect("queue full implies in-flight work");
                    outputs.push(ticket.wait().expect("served"));
                }
                Err(e) => panic!("gateway refused a request: {e}"),
            }
        }
        while pending.len() >= PIPELINE {
            let ticket = pending.pop_front().expect("pipeline bound implies pending");
            outputs.push(ticket.wait().expect("served"));
        }
    }
    for ticket in pending {
        outputs.push(ticket.wait().expect("served"));
    }
    let wall = t0.elapsed();
    let stats = server.model_stats(model).expect("model registered");
    (wall, outputs, stats)
}

fn run_mode(
    plan: &gcd2::InferencePlan,
    name: &str,
    inputs: &[Vec<u8>],
    expected: &[Vec<u8>],
    workers: usize,
    (max_batch, max_wait): (usize, Duration),
    bit_identical: &mut bool,
) -> ModeResult {
    let server = InferServer::gateway(GatewayConfig {
        workers,
        capacity: (2 * workers * max_batch).max(PIPELINE),
        max_batch,
        max_wait,
        opts: ExecOptions::default(),
        ..GatewayConfig::default()
    });
    server.register(name, plan.clone()).expect("register");
    let (wall, outputs, stats) = drive(&server, name, inputs);
    let totals = server.shutdown();
    *bit_identical &= outputs == expected;
    let wall_ms = wall.as_secs_f64() * 1e3;
    ModeResult {
        wall_ms,
        inf_per_s: inputs.len() as f64 / wall.as_secs_f64(),
        batches: stats.batches,
        largest_batch: stats.max_batch_observed,
        queue_p50_us: stats.queue_wait.p50.as_micros(),
        queue_p99_us: stats.queue_wait.p99.as_micros(),
        exec_p50_us: stats.execute.p50.as_micros(),
        exec_p99_us: stats.execute.p99.as_micros(),
        supervision: SupervisionCounters {
            hung: totals.hung,
            workers_replaced: totals.workers_replaced,
            retries: totals.retries,
            demotions: totals.demotions,
            breaker_rejected: totals.breaker_rejected,
            abandoned: totals.abandoned,
        },
    }
}

fn bench_model(id: ModelId, workers: usize, smoke: bool) -> ModelResult {
    let graph = id.build();
    let name = id.reference().name.to_lowercase();
    let plan = Compiler::new().compile(&graph).inference_plan(SEED);

    let requests = if smoke {
        12
    } else if plan.gemm_macs() > HEAVY_MACS {
        HEAVY_REQUESTS
    } else {
        REQUESTS
    };
    let inputs: Vec<Vec<u8>> = (0..requests)
        .map(|v| deterministic_input(plan.input_len(), v))
        .collect();
    // Single-shot references double as the bit-identity oracle and the
    // warm-up (weights staged, autotuner cache hot for both modes).
    let expected: Vec<Vec<u8>> = inputs.iter().map(|i| plan.execute(i)).collect();

    let mut bit_identical = true;
    let off = run_mode(
        &plan,
        &name,
        &inputs,
        &expected,
        workers,
        (1, Duration::ZERO),
        &mut bit_identical,
    );
    let on = run_mode(
        &plan,
        &name,
        &inputs,
        &expected,
        workers,
        (MAX_BATCH, MAX_WAIT),
        &mut bit_identical,
    );

    ModelResult {
        name,
        ops: graph.op_count(),
        gemm_macs: plan.gemm_macs(),
        requests,
        workers,
        bit_identical,
        batch_speedup: on.inf_per_s / off.inf_per_s,
        off,
        on,
    }
}

fn mode_json(m: &ModeResult) -> String {
    format!(
        "{{\"wall_ms\": {:.3}, \"inf_per_s\": {:.2}, \"batches\": {}, \
         \"largest_batch\": {}, \"queue_p50_us\": {}, \"queue_p99_us\": {}, \
         \"exec_p50_us\": {}, \"exec_p99_us\": {}, \"hung\": {}, \
         \"workers_replaced\": {}, \"retries\": {}, \"demotions\": {}, \
         \"breaker_rejected\": {}, \"abandoned\": {}}}",
        m.wall_ms,
        m.inf_per_s,
        m.batches,
        m.largest_batch,
        m.queue_p50_us,
        m.queue_p99_us,
        m.exec_p50_us,
        m.exec_p99_us,
        m.supervision.hung,
        m.supervision.workers_replaced,
        m.supervision.retries,
        m.supervision.demotions,
        m.supervision.breaker_rejected,
        m.supervision.abandoned,
    )
}

fn model_json(r: &ModelResult) -> String {
    format!(
        "    {{\n      \"model\": \"{}\",\n      \"ops\": {},\n      \"gemm_macs\": {},\n      \
         \"requests\": {},\n      \"workers\": {},\n      \"bit_identical\": {},\n      \
         \"batching_off\": {},\n      \"batching_on\": {},\n      \"batch_speedup\": {:.3}\n    }}",
        r.name,
        r.ops,
        r.gemm_macs,
        r.requests,
        r.workers,
        r.bit_identical,
        mode_json(&r.off),
        mode_json(&r.on),
        r.batch_speedup,
    )
}

/// The worker counts worth measuring on this host: multi-worker regimes
/// whenever the core count allows it, the 1-worker regime only as a
/// last resort. Detected cores are capped by `gcd2_par::default_threads`
/// so `GCD2_THREADS`-style pinning still constrains the bench.
fn worker_counts() -> (usize, Vec<usize>) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(gcd2_par::default_threads().max(1));
    let counts = if cores >= 4 {
        vec![2, 4]
    } else if cores >= 2 {
        vec![2]
    } else {
        vec![1]
    };
    (cores, counts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let models: Vec<ModelId> = if smoke {
        vec![ModelId::MobileNetV3]
    } else {
        SERVE_MODELS.to_vec()
    };
    let (cores, counts) = worker_counts();

    println!("# Serving-gateway throughput: dynamic batching on vs off, equal workers\n");
    println!(
        "cores: {cores}, worker counts: {counts:?}, pipeline: {PIPELINE} in flight, \
         on = max_batch {MAX_BATCH} / max_wait {MAX_WAIT:?}, off = max_batch 1\n"
    );
    println!(
        "{:<18} {:>5} {:>8} {:>5} {:>10} {:>10} {:>8} {:>8} {:>12} {:>12} {:>8} {:>6}",
        "model",
        "reqs",
        "GMACs",
        "wrk",
        "off inf/s",
        "on inf/s",
        "speedup",
        "batches",
        "queue p99",
        "exec p99",
        "largest",
        "ident"
    );

    let mut results = Vec::new();
    for id in models {
        for &workers in &counts {
            let r = bench_model(id, workers, smoke);
            println!(
                "{:<18} {:>5} {:>8.2} {:>5} {:>10.1} {:>10.1} {:>7.2}x {:>8} {:>10}µs {:>10}µs {:>8} {:>6}",
                r.name,
                r.requests,
                r.gemm_macs as f64 / 1e9,
                r.workers,
                r.off.inf_per_s,
                r.on.inf_per_s,
                r.batch_speedup,
                r.on.batches,
                r.on.queue_p99_us,
                r.on.exec_p99_us,
                r.on.largest_batch,
                if r.bit_identical { "yes" } else { "NO" },
            );
            results.push(r);
        }
    }

    let rows: Vec<String> = results.iter().map(model_json).collect();
    let counts_json: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"baseline\": \"same gateway, same worker \
         count, max_batch = 1 (every request single-shot)\",\n  \"seed\": {SEED},\n  \
         \"cores\": {cores},\n  \"worker_counts\": [{}],\n  \"pipeline\": {PIPELINE},\n  \
         \"max_batch\": {MAX_BATCH},\n  \"max_wait_us\": {},\n  \"models\": [\n{}\n  ]\n}}\n",
        counts_json.join(", "),
        MAX_WAIT.as_micros(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    if results.iter().any(|r| !r.bit_identical) {
        eprintln!("ERROR: a gateway output diverged from InferencePlan::execute");
        std::process::exit(1);
    }
    // No faults are armed in this benchmark, so the self-healing layer
    // must have been invisible: zero hangs, retries, breaker rejections,
    // demotions, replacements, and abandoned tickets across every run.
    let spurious: u64 = results
        .iter()
        .map(|r| r.off.supervision.total() + r.on.supervision.total())
        .sum();
    if spurious != 0 {
        eprintln!("ERROR: supervisor intervened {spurious} time(s) in a fault-free benchmark run");
        std::process::exit(1);
    }
    println!("supervision clean: zero self-healing events across all fault-free runs");
}
