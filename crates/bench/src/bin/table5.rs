//! Table V: inference speed and energy efficiency of the GCD2 mobile-DSP
//! solution vs EdgeTPU and Jetson Xavier on ResNet-50.

use gcd2::Compiler;
use gcd2_baselines::table5_accelerators;
use gcd2_bench::row;
use gcd2_models::ModelId;

fn main() {
    println!("# Table V: ResNet-50 FPS / Power / FPW across platforms\n");
    row(&[
        "Platform".into(),
        "Device".into(),
        "FPS".into(),
        "Power (W)".into(),
        "FPW".into(),
    ]);
    for acc in table5_accelerators() {
        row(&[
            acc.platform.into(),
            acc.device.into(),
            format!("{:.1}", acc.fps),
            format!("{:.1}", acc.power_w),
            format!("{:.1}", acc.fpw()),
        ]);
    }
    let compiled = Compiler::new().compile(&ModelId::ResNet50.build());
    row(&[
        "GCD2 (this work)".into(),
        "DSP (int8)".into(),
        format!("{:.1}", compiled.fps()),
        format!("{:.1}", compiled.power_w()),
        format!("{:.1}", compiled.frames_per_watt()),
    ]);
    println!(
        "\nPaper: GCD2 141 FPS @ 2.6 W = 54.2 FPW — 6.1x EdgeTPU's and 1.48x Jetson-int8's energy efficiency."
    );
}
