//! Figure 7: per-kernel speedup (left) and packet counts (right) of
//! Halide / TVM / RAKE / GCD_b / GCD2 on the first 8 unique ResNet-50
//! Conv2d kernels, normalized to Halide.

use gcd2_baselines::{compile_kernel, KernelCompiler};
use gcd2_bench::{geomean, resnet_conv_kernels, row};

fn main() {
    println!("# Figure 7: kernel speedup and packet count vs Halide\n");
    let kernels = resnet_conv_kernels();

    println!("## Speedup over Halide (higher is better)\n");
    let mut header = vec!["Compiler".to_string()];
    header.extend((0..kernels.len()).map(|i| format!("C{i}")));
    header.push("geomean".into());
    row(&header);
    let halide: Vec<_> = kernels
        .iter()
        .map(|g| compile_kernel(KernelCompiler::Halide, g))
        .collect();
    for compiler in KernelCompiler::ALL {
        let mut cells = vec![compiler.name().to_string()];
        let mut speedups = Vec::new();
        for (g, base) in kernels.iter().zip(&halide) {
            let r = compile_kernel(compiler, g);
            let s = base.cycles as f64 / r.cycles as f64;
            speedups.push(s);
            cells.push(format!("{s:.2}"));
        }
        cells.push(format!("{:.2}", geomean(&speedups)));
        row(&cells);
    }

    println!("\n## Packets issued, normalized to Halide (lower is better)\n");
    row(&header);
    for compiler in KernelCompiler::ALL {
        let mut cells = vec![compiler.name().to_string()];
        let mut ratios = Vec::new();
        for (g, base) in kernels.iter().zip(&halide) {
            let r = compile_kernel(compiler, g);
            let ratio = r.packets as f64 / base.packets as f64;
            ratios.push(ratio);
            cells.push(format!("{ratio:.2}"));
        }
        cells.push(format!("{:.2}", geomean(&ratios)));
        row(&cells);
    }
    println!("\nPaper: GCD_b up to 3.8x over Halide (tensor opts only); full GCD2 adds SDA packing; GCD2 packs ~25% fewer packets than Halide.");
}
