//! Extension study: how GCD2's advantage scales with input resolution.
//!
//! The paper evaluates each model at one resolution; this harness sweeps
//! the EfficientNet-b0 backbone across input sizes and reports GCD2 and
//! simulated-TFLite latency, the speedup, and the achieved throughput —
//! showing where the framework's fixed costs (conversions, dispatch)
//! amortize away and where GCD2's per-shape kernel selection keeps
//! paying.

use gcd2::Compiler;
use gcd2_baselines::Framework;
use gcd2_bench::row;
use gcd2_models::cnn::efficientnet_b0_backbone;

fn main() {
    println!("# Extension: resolution scaling (EfficientNet-b0 backbone)\n");
    row(&[
        "input".into(),
        "GMACs".into(),
        "TFLite (ms)".into(),
        "GCD2 (ms)".into(),
        "speedup".into(),
        "GCD2 TOPS".into(),
    ]);
    for size in [128usize, 224, 320, 512] {
        let g = efficientnet_b0_backbone(size);
        let compiled = Compiler::new().compile(&g);
        let tflite = Framework::Tflite.run(&g).expect("CNN supported");
        row(&[
            format!("{size}x{size}"),
            format!("{:.2}", g.total_macs() as f64 / 1e9),
            format!("{:.2}", tflite.latency_ms()),
            format!("{:.2}", compiled.latency_ms()),
            format!(
                "{:.2}x",
                tflite.stats.cycles as f64 / compiled.cycles() as f64
            ),
            format!("{:.2}", compiled.tops()),
        ]);
    }
    println!("\nLarger inputs raise achieved TOPS (better amortization of per-kernel overheads);");
    println!("the speedup over the uniform-kernel framework persists across the sweep because");
    println!("it comes from per-shape selection and padding, not from fixed costs.");
}
