//! Table II: execution latency and padded data size of matrix multiply
//! under the three SIMD instructions (and their layouts), for square
//! operands of 32/64/96/128.

use gcd2_bench::row;
use gcd2_cgraph::GemmDims;
use gcd2_kernels::{CostModel, SimdInstr, UnrollConfig};
use gcd2_tensor::MatrixU8;

fn padded_total(size: usize, instr: SimdInstr) -> usize {
    // Input (M x K) + output (M x N) in the instruction's layout,
    // plus the row-major weights (K x N) — the Table II accounting.
    let layout = instr.layout();
    let a = MatrixU8::zeros(size, size, layout).padded_len();
    let out = MatrixU8::zeros(size, size, layout).padded_len();
    a + out + size * size
}

fn main() {
    println!("# Table II: MatMul latency & padded size per SIMD instruction\n");
    row(&[
        "M=K=N".into(),
        "vmpy lat".into(),
        "vmpa lat".into(),
        "vrmpy lat".into(),
        "vmpy pad".into(),
        "vmpa pad".into(),
        "vrmpy pad".into(),
        "winner".into(),
    ]);
    let model = CostModel::new();
    for size in [32usize, 64, 96, 128] {
        let gemm = GemmDims::new(size, size, size);
        let cycles: Vec<u64> = SimdInstr::ALL
            .iter()
            .map(|&i| model.gemm_cycles(&gemm, i, UnrollConfig::new(2, 2)))
            .collect();
        let pads: Vec<usize> = SimdInstr::ALL
            .iter()
            .map(|&i| padded_total(size, i))
            .collect();
        let base_lat = cycles[0] as f64;
        let base_pad = pads[0] as f64;
        let winner = SimdInstr::ALL[cycles
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap()];
        row(&[
            size.to_string(),
            format!("{:.2}", cycles[0] as f64 / base_lat),
            format!("{:.2}", cycles[1] as f64 / base_lat),
            format!("{:.2}", cycles[2] as f64 / base_lat),
            format!("{:.2}", pads[0] as f64 / base_pad),
            format!("{:.2}", pads[1] as f64 / base_pad),
            format!("{:.2}", pads[2] as f64 / base_pad),
            winner.to_string(),
        ]);
    }
    println!("\nPaper winners: 32 -> vrmpy (0.63), 64 -> vmpa (0.69), 96 -> vrmpy (0.89), 128 -> vmpy (1.00).");
}
