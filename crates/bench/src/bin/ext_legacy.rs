//! Extension study: an older-generation DSP (Hexagon-680-class resource
//! model — single memory port, single vector-ALU slot). The paper: "We
//! also tested our framework on older series Snapdragon platforms,
//! which show the similar performance gains against other baseline
//! frameworks. We omit the results due to the space constraints."
//! This harness regenerates that omitted result.

use gcd2::{Compiler, Packing};
use gcd2_bench::row;
use gcd2_hvx::ResourceModel;
use gcd2_models::ModelId;

fn main() {
    println!("# Extension: older-generation DSP (Hexagon-680-class resource model)\n");
    row(&[
        "Model".into(),
        "698 GCD2 (ms)".into(),
        "680 GCD2 (ms)".into(),
        "680 vs 698".into(),
        "680 SDA over soft_to_hard".into(),
    ]);
    for id in [
        ModelId::MobileNetV3,
        ModelId::ResNet50,
        ModelId::WdsrB,
        ModelId::PixOr,
    ] {
        let g = id.build();
        let new_gen = Compiler::new().compile(&g);
        let old_gen = Compiler::new()
            .with_resource_model(ResourceModel::hexagon680())
            .compile(&g);
        let old_s2h = Compiler::new()
            .with_resource_model(ResourceModel::hexagon680())
            .with_packing(Packing::SoftToHard)
            .compile(&g);
        row(&[
            id.to_string(),
            format!("{:.2}", new_gen.latency_ms()),
            format!("{:.2}", old_gen.latency_ms()),
            format!("{:.2}x", old_gen.cycles() as f64 / new_gen.cycles() as f64),
            format!("{:.3}x", old_s2h.cycles() as f64 / old_gen.cycles() as f64),
        ]);
    }
    println!("\nThe tighter packet resources slow everything down, but GCD2's scheduling gains");
    println!("persist on the older generation — the paper's omitted similar-gains observation.");
}
