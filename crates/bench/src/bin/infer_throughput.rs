//! Inference-throughput benchmark for the compiled runtime layer.
//!
//! For every catalog model, measures host inference wall-clock in four
//! configurations:
//!
//! * `baseline_naive_ms` — the original single-shot runtime: the
//!   node-by-node interpreter with the naive gold GEMM
//!   (`gcd2::execute_reference_naive`). This is the pre-plan baseline
//!   the headline speedup is computed against. Skipped (null) for the
//!   two super-heavy models, where it would take minutes per inference;
//! * `interp_ms` — the interpreter with the cache-blocked host GEMM
//!   (`gcd2::execute_reference`): isolates what the plan's schedule,
//!   slot arena, and staged weights add beyond the fast GEMM alone;
//! * `plan_ms` — one inference through the precompiled
//!   [`gcd2::InferencePlan`] with a reused arena, on the auto-detected
//!   GEMM kernel tier (the `isa` field records which);
//! * `plan_scalar_ms` — the same plan with the GEMM dispatcher pinned to
//!   the scalar oracle ([`gcd2_kernels::force_isa`]), so the JSON keeps
//!   a per-ISA scalar-vs-SIMD pair and `simd_speedup` their ratio;
//! * `batch_ms[n]` — a whole input batch fanned across `n` worker
//!   threads via `InferencePlan::execute_batch`.
//!
//! `gemm_gflops` is the effective GEMM arithmetic rate of the best
//! single-shot plan run (2 ops per MAC).
//!
//! Every path must produce bit-identical outputs (the plan against the
//! interpreter per input, and every thread count against one thread);
//! the `bit_identical` field records the check and the process exits
//! non-zero if it ever fails. Results go to `BENCH_infer.json` and a
//! human-readable table on stdout. `--smoke` runs one small model (for
//! CI).
//!
//! The two super-heavy models (>20 GMACs per inference) run a reduced
//! batch and thread sweep so the full-catalog run stays tractable; the
//! `batch` field records what was actually run.

use gcd2::{execute_reference, execute_reference_naive, Compiler};
use gcd2_kernels::{detected_isa, force_isa, KernelIsa};
use gcd2_models::ModelId;
use std::time::Instant;

const SEED: u64 = 0xC0DE;
const BATCH: usize = 8;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
/// Models above this many GEMM MACs per inference get the reduced sweep.
const HEAVY_MACS: u64 = 20_000_000_000;
const HEAVY_BATCH: usize = 2;
const HEAVY_THREAD_COUNTS: [usize; 2] = [1, 4];

struct ModelResult {
    name: String,
    ops: usize,
    gemm_macs: u64,
    batch: usize,
    bit_identical: bool,
    plan_build_ms: f64,
    /// The pre-plan single-shot runtime (naive gold GEMM); `None` for
    /// super-heavy models where it is skipped.
    baseline_naive_ms: Option<f64>,
    interp_ms: f64,
    /// The GEMM kernel tier the auto-detected runs dispatched to.
    isa: &'static str,
    plan_ms: f64,
    /// Single-shot plan latency with the dispatcher pinned to the scalar
    /// oracle — the per-ISA counterpart of `plan_ms`.
    plan_scalar_ms: f64,
    /// `plan_scalar_ms / plan_ms`: what the SIMD tier buys end to end.
    simd_speedup: f64,
    /// Effective GEMM arithmetic rate of the best auto-detected
    /// single-shot run, at 2 ops per MAC.
    gemm_gflops: f64,
    batch_ms: Vec<(usize, f64)>,
    /// Batch throughput at the widest sweep point vs the pre-plan
    /// single-shot baseline running the same inputs one at a time
    /// (falls back to `interp_ms` when the naive baseline is skipped).
    speedup_vs_baseline: f64,
    /// Same ratio against the blocked-GEMM interpreter.
    speedup_vs_interp: f64,
    infer_per_s: f64,
}

fn deterministic_input(len: usize, variant: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 7 + 13 * (variant + 1)) % 16) as u8)
        .collect()
}

fn bench_model(id: ModelId, iters: usize) -> ModelResult {
    let graph = id.build();
    let name = id.reference().name.to_lowercase();
    let compiled = Compiler::new().compile(&graph);

    let t0 = Instant::now();
    let plan = compiled.inference_plan(SEED);
    let plan_build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let heavy = plan.gemm_macs() > HEAVY_MACS;
    let batch = if heavy { HEAVY_BATCH } else { BATCH };
    let threads: &[usize] = if heavy {
        &HEAVY_THREAD_COUNTS
    } else {
        &THREAD_COUNTS
    };
    let iters = if heavy { 1 } else { iters };
    let inputs: Vec<Vec<u8>> = (0..batch)
        .map(|b| deterministic_input(plan.input_len(), b))
        .collect();

    // Interpreter baseline + the bit-identity reference outputs.
    let mut interp_ms = f64::INFINITY;
    let mut references: Vec<Vec<u8>> = Vec::new();
    for input in &inputs {
        let t0 = Instant::now();
        references.push(execute_reference(&compiled, input, SEED));
        interp_ms = interp_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }

    // The original runtime (naive gold GEMM): one shot, and it must
    // also agree bit for bit.
    let mut bit_identical = true;
    let baseline_naive_ms = (!heavy).then(|| {
        let t0 = Instant::now();
        let out = execute_reference_naive(&compiled, &inputs[0], SEED);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        bit_identical &= out == references[0];
        ms
    });

    // Single-inference plan latency with a reused arena, on the
    // auto-detected kernel tier.
    let mut arena = plan.new_arena();
    let mut out = Vec::new();
    let plan_ms = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            plan.execute_into(&inputs[0], &mut arena, &mut out);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);
    bit_identical &= out == references[0];

    // Same plan with the dispatcher pinned to the scalar oracle: the
    // per-ISA pair for the JSON, and one more bit-identity check (every
    // tier must produce the same bytes).
    force_isa(Some(KernelIsa::Scalar));
    let mut scalar_out = Vec::new();
    let plan_scalar_ms = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            plan.execute_into(&inputs[0], &mut arena, &mut scalar_out);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);
    force_isa(None);
    bit_identical &= scalar_out == references[0];

    // Batched execution across the thread sweep; every count must match
    // the interpreter references exactly.
    let mut batch_ms = Vec::new();
    for &n in threads {
        let t0 = Instant::now();
        let outs = plan.execute_batch(&inputs, n);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        bit_identical &= outs == references;
        batch_ms.push((n, ms));
    }

    let widest = batch_ms.last().map(|&(_, ms)| ms).unwrap_or(f64::NAN);
    ModelResult {
        name,
        ops: graph.op_count(),
        gemm_macs: plan.gemm_macs(),
        batch,
        bit_identical,
        plan_build_ms,
        baseline_naive_ms,
        interp_ms,
        isa: detected_isa().name(),
        plan_ms,
        plan_scalar_ms,
        simd_speedup: plan_scalar_ms / plan_ms,
        gemm_gflops: plan.gemm_macs() as f64 * 2.0 / (plan_ms / 1e3) / 1e9,
        batch_ms,
        speedup_vs_baseline: baseline_naive_ms.unwrap_or(interp_ms) * batch as f64 / widest,
        speedup_vs_interp: interp_ms * batch as f64 / widest,
        infer_per_s: batch as f64 / (widest / 1e3),
    }
}

fn model_json(r: &ModelResult) -> String {
    let batches: Vec<String> = r
        .batch_ms
        .iter()
        .map(|(n, ms)| format!("\"{n}\": {ms:.3}"))
        .collect();
    let baseline = r
        .baseline_naive_ms
        .map(|ms| format!("{ms:.3}"))
        .unwrap_or_else(|| "null".to_string());
    format!(
        "    {{\n      \"model\": \"{}\",\n      \"ops\": {},\n      \"gemm_macs\": {},\n      \
         \"batch\": {},\n      \"bit_identical\": {},\n      \"plan_build_ms\": {:.3},\n      \
         \"baseline_naive_ms\": {},\n      \"interp_ms\": {:.3},\n      \"isa\": \"{}\",\n      \
         \"plan_ms\": {:.3},\n      \"plan_scalar_ms\": {:.3},\n      \
         \"simd_speedup\": {:.3},\n      \"gemm_gflops\": {:.3},\n      \
         \"batch_ms\": {{{}}},\n      \"speedup_vs_baseline\": {:.3},\n      \
         \"speedup_vs_interp\": {:.3},\n      \"infer_per_s\": {:.3}\n    }}",
        r.name,
        r.ops,
        r.gemm_macs,
        r.batch,
        r.bit_identical,
        r.plan_build_ms,
        baseline,
        r.interp_ms,
        r.isa,
        r.plan_ms,
        r.plan_scalar_ms,
        r.simd_speedup,
        r.gemm_gflops,
        batches.join(", "),
        r.speedup_vs_baseline,
        r.speedup_vs_interp,
        r.infer_per_s,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    // Positional args select models by catalog name (diagnostic runs);
    // such filtered runs still overwrite BENCH_infer.json, so regenerate
    // with a full run before committing the artifact.
    let named: Vec<ModelId> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| {
            ModelId::ALL
                .into_iter()
                .find(|id| id.reference().name.eq_ignore_ascii_case(a))
                .unwrap_or_else(|| {
                    eprintln!("unknown model: {a}");
                    std::process::exit(2);
                })
        })
        .collect();
    let (models, iters): (Vec<ModelId>, usize) = if smoke {
        (vec![ModelId::MobileNetV3], 1)
    } else if !named.is_empty() {
        (named, 3)
    } else {
        (ModelId::ALL.to_vec(), 3)
    };

    println!("# Inference throughput: compiled plan + batched execution vs interpreter\n");
    println!("kernel isa: {}\n", detected_isa().name());
    println!(
        "{:<18} {:>5} {:>8} {:>11} {:>10} {:>10} {:>10} {:>8} {:>10} {:>8} {:>9} {:>6}",
        "model",
        "ops",
        "GMACs",
        "baseline ms",
        "interp ms",
        "scalar ms",
        "plan ms",
        "simd x",
        "GFLOP/s",
        "inf/s",
        "speedup",
        "ident"
    );

    let mut results = Vec::new();
    for id in models {
        let r = bench_model(id, iters);
        println!(
            "{:<18} {:>5} {:>8.2} {:>11} {:>10.2} {:>10.2} {:>10.2} {:>7.2}x {:>10.2} {:>8.1} {:>8.2}x {:>6}",
            r.name,
            r.ops,
            r.gemm_macs as f64 / 1e9,
            r.baseline_naive_ms
                .map(|ms| format!("{ms:.2}"))
                .unwrap_or_else(|| "-".to_string()),
            r.interp_ms,
            r.plan_scalar_ms,
            r.plan_ms,
            r.simd_speedup,
            r.gemm_gflops,
            r.infer_per_s,
            r.speedup_vs_baseline,
            if r.bit_identical { "yes" } else { "NO" },
        );
        results.push(r);
    }

    let rows: Vec<String> = results.iter().map(model_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"infer_throughput\",\n  \"baseline\": \"node-by-node interpreter \
         with the naive gold GEMM (execute_reference_naive), single-shot\",\n  \
         \"seed\": {SEED},\n  \"iterations\": {iters},\n  \"models\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_infer.json", &json).expect("write BENCH_infer.json");
    println!("\nwrote BENCH_infer.json");

    if results.iter().any(|r| !r.bit_identical) {
        eprintln!("ERROR: some execution path diverged from the interpreter reference");
        std::process::exit(1);
    }
}
