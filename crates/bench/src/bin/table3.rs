//! Table III: SIMD instructions selected and performance of RAKE vs
//! GCD2 on three representative ResNet-50 Conv2d kernels.

use gcd2_baselines::KernelCompiler;
use gcd2_bench::row;
use gcd2_cgraph::GemmDims;
use gcd2_kernels::CostModel;

fn main() {
    println!("# Table III: instruction selection, RAKE vs GCD2\n");
    row(&[
        "Conv2d".into(),
        "GEMM (MxKxN)".into(),
        "RAKE instr".into(),
        "GCD2 instr".into(),
        "Speedup (ours/RAKE)".into(),
    ]);
    // (description, M = out spatial, K = in_c*kh*kw, N = out_c) — the
    // three Table III kernels.
    let kernels = [
        (
            "1x3x224x224 w 64x3x7x7",
            GemmDims::new(112 * 112, 3 * 49, 64),
        ),
        ("1x64x56x56 w 64x64x1x1", GemmDims::new(56 * 56, 64, 64)),
        (
            "1x128x28x28 w 128x128x3x3",
            GemmDims::new(28 * 28, 128 * 9, 128),
        ),
    ];
    // Isolate *instruction selection*: both compilers get layout-ready
    // inputs and the same scheduler, so the speedup measures only the
    // chosen instruction (Figure 7 covers the full-system comparison).
    let model = CostModel::new();
    for (desc, gemm) in kernels {
        let rake_instr = KernelCompiler::Rake.select_instruction(&gemm, &model);
        let ours_instr = KernelCompiler::Gcd2.select_instruction(&gemm, &model);
        let rake_cycles = model.gemm_cycles(
            &gemm,
            rake_instr,
            KernelCompiler::Rake.unroll(&gemm, rake_instr),
        );
        let ours_cycles = model.gemm_cycles(
            &gemm,
            ours_instr,
            KernelCompiler::Gcd2.unroll(&gemm, ours_instr),
        );
        row(&[
            desc.into(),
            format!("{gemm}"),
            rake_instr.to_string(),
            ours_instr.to_string(),
            format!("{:.2}x", rake_cycles as f64 / ours_cycles as f64),
        ]);
    }
    println!("\nPaper: RAKE picks [vrmpy, vmpy, vrmpy]; GCD2 picks [vmpy, vmpa, vmpy]; speedups 1.63x / 1.98x / 2.06x.");
}
