//! Figure 12: unrolling analysis — (a) factor sweep of the Out and Mid
//! strategies on a single MatMul kernel against the adaptive GCD2
//! setting and the exhaustive search; (b) strategy comparison across the
//! 8 ResNet-50 kernels.

use gcd2_bench::{resnet_conv_kernels, row};
use gcd2_cgraph::GemmDims;
use gcd2_kernels::{
    adaptive_unroll, CostModel, SimdInstr, UnrollConfig, UnrollStrategy, UNROLL_CANDIDATES,
};
use std::time::Instant;

fn main() {
    let model = CostModel::new();
    let instr = SimdInstr::Vmpy;

    println!("# Figure 12 (a): unroll-factor sweep on one MatMul kernel\n");
    let gemm = GemmDims::new(512, 256, 256);
    let none = model.gemm_cycles(&gemm, instr, UnrollConfig::NONE) as f64;
    row(&[
        "factor".into(),
        "Out (n-unroll) speedup".into(),
        "Mid (k-unroll) speedup".into(),
    ]);
    for &f in &UNROLL_CANDIDATES {
        let out = model.gemm_cycles(&gemm, instr, UnrollConfig::new(f, 1)) as f64;
        let mid = model.gemm_cycles(&gemm, instr, UnrollConfig::new(1, f)) as f64;
        row(&[
            f.to_string(),
            format!("{:.2}", none / out),
            format!("{:.2}", none / mid),
        ]);
    }
    let adaptive = adaptive_unroll(&gemm, instr);
    let (best_cfg, best) = model.best_unroll(&gemm, instr, UnrollStrategy::Exhaustive);
    println!(
        "\nGCD2 adaptive setting: {adaptive} -> {:.2}x | exhaustive best: {best_cfg} -> {:.2}x",
        none / model.gemm_cycles(&gemm, instr, adaptive) as f64,
        none / best as f64,
    );

    println!("\n# Figure 12 (b): strategies across the 8 ResNet-50 kernels (speedup over no unrolling)\n");
    let kernels = resnet_conv_kernels();
    let mut header = vec!["Strategy".to_string()];
    header.extend((0..kernels.len()).map(|i| format!("O{}", i + 1)));
    header.push("search time".into());
    row(&header);
    for (label, strategy) in [
        ("Out(4)", UnrollStrategy::Out(4)),
        ("Mid(4)", UnrollStrategy::Mid(4)),
        ("Exhaustive", UnrollStrategy::Exhaustive),
        ("GCD2 adaptive", UnrollStrategy::Adaptive),
    ] {
        let mut cells = vec![label.to_string()];
        let t0 = Instant::now();
        for g in &kernels {
            let base = model.gemm_cycles(g, instr, UnrollConfig::NONE) as f64;
            let (_, c) = model.best_unroll(g, instr, strategy);
            cells.push(format!("{:.2}", base / c as f64));
        }
        cells.push(format!("{:.2}s", t0.elapsed().as_secs_f64()));
        row(&cells);
    }
    println!("\nPaper: exhaustive best is 4-4; GCD2's adaptive choice matches it within noise while avoiding the >3 min/kernel search; too-large factors regress via register spills.");
}
