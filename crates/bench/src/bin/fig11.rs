//! Figure 11: VLIW scheduling analysis — full SDA vs the soft_to_hard
//! and soft_to_none ablations on five representative models (baseline:
//! soft_to_hard).

use gcd2::{Compiler, Packing};
use gcd2_bench::{representative_models, row};
use gcd2_cgraph::GemmDims;
use gcd2_kernels::{timing_blocks, SimdInstr, UnrollConfig};
use gcd2_vliw::{pack_topdown, Packer};

fn main() {
    println!("# Figure 11: SDA vs soft_to_hard vs soft_to_none (speedup over soft_to_hard)\n");
    row(&[
        "Model".into(),
        "soft_to_hard".into(),
        "soft_to_none".into(),
        "SDA (GCD2)".into(),
        "stall cyc s2n/SDA".into(),
    ]);
    for id in representative_models() {
        let g = id.build();
        let s2h = Compiler::new()
            .with_packing(Packing::SoftToHard)
            .compile(&g);
        let s2n = Compiler::new()
            .with_packing(Packing::SoftToNone)
            .compile(&g);
        let sda = Compiler::new().compile(&g);
        let base = s2h.cycles() as f64;
        row(&[
            id.to_string(),
            "1.00".into(),
            format!("{:.3}", base / s2n.cycles() as f64),
            format!("{:.3}", base / sda.cycles() as f64),
            format!("{}/{}", s2n.stats().stall_cycles, sda.stats().stall_cycles),
        ]);
        assert!(
            sda.cycles() <= s2h.cycles(),
            "SDA must not lose to soft_to_hard"
        );
    }
    println!("\nPaper: SDA reaches up to 2.1x over soft_to_hard and 1.4x over soft_to_none (better packing density than s2h, fewer runtime stalls than s2n).");

    // Related-work comparison (Section VI): bottom-up SDA vs the
    // top-down Coffman-Graham-style scheduler of Six et al., on
    // representative kernel bodies.
    println!("\n## Bottom-up SDA vs top-down list scheduling (kernel bodies)\n");
    row(&[
        "kernel body".into(),
        "SDA cyc/iter".into(),
        "top-down cyc/iter".into(),
        "ratio".into(),
    ]);
    for (label, gemm, instr) in [
        (
            "conv 3x3 (vmpy)",
            GemmDims::new(784, 1152, 128),
            SimdInstr::Vmpy,
        ),
        (
            "conv 1x1 (vmpa)",
            GemmDims::new(3136, 64, 64),
            SimdInstr::Vmpa,
        ),
        ("fc (vrmpy)", GemmDims::new(1, 2048, 1000), SimdInstr::Vrmpy),
    ] {
        let body = &timing_blocks(&gemm, instr, UnrollConfig::new(4, 2))[2];
        let sda = Packer::new().pack_block(body).body_cycles();
        let td = pack_topdown(body).body_cycles();
        row(&[
            label.into(),
            sda.to_string(),
            td.to_string(),
            format!("{:.3}", sda as f64 / td as f64),
        ]);
    }
}
