//! Runs every table and figure harness in sequence (the full
//! evaluation), echoing to stdout and archiving each report under
//! `results/`.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "ext_fusion",
        "ext_scaling",
        "ext_legacy",
    ];
    let results_dir = std::path::Path::new("results");
    std::fs::create_dir_all(results_dir).expect("create results/");
    for bin in bins {
        println!("\n==================== {bin} ====================\n");
        let output = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
            .output()
            .expect("run sibling harness binary");
        assert!(output.status.success(), "{bin} failed");
        let text = String::from_utf8_lossy(&output.stdout);
        print!("{text}");
        std::fs::write(results_dir.join(format!("{bin}.md")), text.as_bytes())
            .expect("write report");
    }
    println!("\nreports archived under results/");
}
