//! Extension ablation (paper future work): DSP-friendly elementwise
//! operator fusion — speedup of folding standalone activations into
//! their elementwise producers, across the model suite.

use gcd2::Compiler;
use gcd2_bench::row;
use gcd2_models::ModelId;

fn main() {
    println!("# Extension: DSP-friendly elementwise fusion (paper future work)\n");
    row(&[
        "Model".into(),
        "GCD2 (ms)".into(),
        "+fusion (ms)".into(),
        "speedup".into(),
        "ops".into(),
    ]);
    for id in ModelId::ALL {
        let g = id.build();
        let base = Compiler::new().compile(&g);
        let fused = Compiler::new().with_elementwise_fusion(true).compile(&g);
        row(&[
            id.to_string(),
            format!("{:.2}", base.latency_ms()),
            format!("{:.2}", fused.latency_ms()),
            format!("{:.3}x", base.cycles() as f64 / fused.cycles() as f64),
            format!("{} -> {}", base.graph.op_count(), fused.graph.op_count()),
        ]);
    }
    println!("\nFusion removes standalone elementwise activations (ResNet-50: 16 nodes) and their");
    println!("kernel-dispatch overheads; on this conv-dominated suite the latency effect is small");
    println!("(<1%), consistent with fusion being future work rather than a core contribution.");
}
