//! Compile-time benchmark for the parallel compilation pipeline.
//!
//! For every catalog model, measures end-to-end *compile* wall-clock
//! (not simulated inference cycles) in three configurations:
//!
//! * `baseline_serial` — one thread, structural packing memo disabled,
//!   and a **fresh compiler per iteration**: the seed-equivalent
//!   pipeline that re-packs every block from scratch with cold caches;
//! * `serial` — one thread with the sharded cost cache and packing memo,
//!   reusing one compiler so the persistent cost cache stays warm across
//!   compiles (the recompile workload of an iterative session);
//! * `threads_ms[n]` — the full parallel pipeline at `n` worker threads,
//!   likewise warm.
//!
//! Every configuration must produce bit-identical output (same cycles,
//! same plan assignment); the `bit_identical` field records the check.
//! `cost_cache` reports the first (cold) compile's hit/miss traffic —
//! structural sharing within one model — and `cost_cache_warm` a
//! recompile with the persistent cache populated. Results go to
//! `BENCH_compile.json` and a human-readable table on stdout. `--smoke`
//! runs a single small model once (for CI).

use gcd2::Compiler;
use gcd2_models::ModelId;
use gcd2_par::CacheStats;
use std::time::Instant;

const THREAD_COUNTS: [usize; 2] = [2, 4];
/// Seed for the AOT-artifact cold-start comparison plans.
const SEED: u64 = 0xC0DE;

struct ModelResult {
    name: String,
    ops: usize,
    cycles: u64,
    bit_identical: bool,
    baseline_serial_ms: f64,
    serial_ms: f64,
    threads_ms: Vec<(usize, f64)>,
    speedup_at_4: f64,
    thread_scaling_at_4: f64,
    /// Full cold start without an artifact: compile + plan lowering.
    compile_plan_ms: f64,
    /// Cold start from a serialized artifact: decode + verify.
    artifact_load_ms: f64,
    /// `artifact_load_ms` must beat `compile_plan_ms` — the whole point
    /// of the AOT store — and the decoded plan must hash identically.
    artifact_wins: bool,
    cost_cache: CacheStats,
    cost_cache_warm: CacheStats,
    pack_memo: CacheStats,
}

/// Best-of-`iters` compile wall-clock in milliseconds, reusing
/// `compiler` (its persistent cost cache stays warm across iterations).
fn time_compile(compiler: &Compiler, graph: &gcd2_cgraph::Graph, iters: usize) -> f64 {
    (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            let compiled = compiler.compile(graph);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(compiled.cycles());
            ms
        })
        .fold(f64::INFINITY, f64::min)
}

/// Best-of-`iters` with a fresh compiler per iteration — every compile
/// runs cold, as the seed pipeline did.
fn time_compile_cold(make: impl Fn() -> Compiler, graph: &gcd2_cgraph::Graph, iters: usize) -> f64 {
    (0..iters)
        .map(|_| {
            let compiler = make();
            let t0 = Instant::now();
            let compiled = compiler.compile(graph);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(compiled.cycles());
            ms
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_model(id: ModelId, iters: usize) -> ModelResult {
    let graph = id.build();
    let name = id.reference().name.to_lowercase();

    // Reference output: the seed-equivalent serial configuration, cold
    // on every iteration.
    let make_baseline = || Compiler::new().with_threads(1).with_pack_memo(false);
    let reference = make_baseline().compile(&graph);
    let baseline_serial_ms = time_compile_cold(make_baseline, &graph, iters);

    let serial = Compiler::new().with_threads(1);
    let serial_compiled = serial.compile(&graph);
    let serial_ms = time_compile(&serial, &graph, iters);

    let mut bit_identical = serial_compiled.cycles() == reference.cycles()
        && serial_compiled.assignment.choice == reference.assignment.choice;

    let mut threads_ms = Vec::new();
    let mut cost_cache = CacheStats::default();
    let mut cost_cache_warm = CacheStats::default();
    let mut pack_memo = CacheStats::default();
    for n in THREAD_COUNTS {
        let compiler = Compiler::new().with_threads(n);
        let (compiled, report) = compiler.compile_timed(&graph);
        bit_identical &= compiled.cycles() == reference.cycles()
            && compiled.assignment.choice == reference.assignment.choice;
        if n == *THREAD_COUNTS.last().unwrap() {
            cost_cache = report.cost_cache;
            pack_memo = report.pack_memo;
            // A recompile with the persistent cache populated.
            let (_, warm) = compiler.compile_timed(&graph);
            cost_cache_warm = warm.cost_cache;
        }
        threads_ms.push((n, time_compile(&compiler, &graph, iters)));
    }

    // AOT cold-start comparison: recompile-from-text vs decode-from-
    // artifact, both yielding a ready-to-execute plan.
    let compiler = Compiler::new();
    let compiled = compiler.compile(&graph);
    let plan = compiled.inference_plan(SEED);
    let bytes = gcd2::artifact::encode(&compiled, &plan, &name).expect("encode artifact");
    let compile_plan_ms = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            let c = compiler.compile(&graph);
            let p = c.inference_plan(SEED);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(p.checksum());
            ms
        })
        .fold(f64::INFINITY, f64::min);
    let mut artifact_wins = true;
    let artifact_load_ms = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            let loaded = gcd2::artifact::decode(&bytes).expect("decode artifact");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            artifact_wins &= loaded.plan.checksum() == plan.checksum();
            ms
        })
        .fold(f64::INFINITY, f64::min);
    artifact_wins &= artifact_load_ms < compile_plan_ms;

    let at4 = threads_ms
        .iter()
        .find(|(n, _)| *n == 4)
        .map(|&(_, ms)| ms)
        .unwrap_or(serial_ms);
    ModelResult {
        name,
        ops: graph.op_count(),
        cycles: reference.cycles(),
        bit_identical,
        baseline_serial_ms,
        serial_ms,
        threads_ms,
        speedup_at_4: baseline_serial_ms / at4,
        thread_scaling_at_4: serial_ms / at4,
        compile_plan_ms,
        artifact_load_ms,
        artifact_wins,
        cost_cache,
        cost_cache_warm,
        pack_memo,
    }
}

fn cache_json(s: &CacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}",
        s.hits,
        s.misses,
        s.hit_rate()
    )
}

fn model_json(r: &ModelResult) -> String {
    let threads: Vec<String> = r
        .threads_ms
        .iter()
        .map(|(n, ms)| format!("\"{n}\": {ms:.3}"))
        .collect();
    format!(
        "    {{\n      \"model\": \"{}\",\n      \"ops\": {},\n      \"cycles\": {},\n      \
         \"bit_identical\": {},\n      \"baseline_serial_ms\": {:.3},\n      \
         \"serial_ms\": {:.3},\n      \"threads_ms\": {{{}}},\n      \
         \"speedup_at_4_vs_baseline\": {:.3},\n      \"thread_scaling_at_4\": {:.3},\n      \
         \"compile_plan_ms\": {:.3},\n      \"artifact_load_ms\": {:.3},\n      \
         \"artifact_wins\": {},\n      \
         \"cost_cache\": {},\n      \"cost_cache_warm\": {},\n      \"pack_memo\": {}\n    }}",
        r.name,
        r.ops,
        r.cycles,
        r.bit_identical,
        r.baseline_serial_ms,
        r.serial_ms,
        threads.join(", "),
        r.speedup_at_4,
        r.thread_scaling_at_4,
        r.compile_plan_ms,
        r.artifact_load_ms,
        r.artifact_wins,
        cache_json(&r.cost_cache),
        cache_json(&r.cost_cache_warm),
        cache_json(&r.pack_memo),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let (models, iters): (Vec<ModelId>, usize) = if smoke {
        (vec![ModelId::WdsrB], 1)
    } else {
        (ModelId::ALL.to_vec(), 3)
    };

    println!("# Compile-time: parallel pipeline + sharded caches vs seed-equivalent serial\n");
    println!(
        "{:<18} {:>5} {:>12} {:>10} {:>10} {:>10} {:>9} {:>10} {:>9} {:>6}",
        "model",
        "ops",
        "baseline ms",
        "serial ms",
        "2t ms",
        "4t ms",
        "speedup",
        "replan ms",
        "load ms",
        "ident"
    );

    let mut results = Vec::new();
    for id in models {
        let r = bench_model(id, iters);
        let ms_at = |n: usize| {
            r.threads_ms
                .iter()
                .find(|(t, _)| *t == n)
                .map(|&(_, ms)| ms)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<18} {:>5} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>8.2}x {:>10.2} {:>9.2} {:>6}",
            r.name,
            r.ops,
            r.baseline_serial_ms,
            r.serial_ms,
            ms_at(2),
            ms_at(4),
            r.speedup_at_4,
            r.compile_plan_ms,
            r.artifact_load_ms,
            if r.bit_identical && r.artifact_wins {
                "yes"
            } else {
                "NO"
            },
        );
        results.push(r);
    }

    let rows: Vec<String> = results.iter().map(model_json).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"compile_time\",\n  \"baseline\": \"1 thread, packing memo off \
         (seed-equivalent)\",\n  \"thread_counts\": [2, 4],\n  \"iterations\": {iters},\n  \
         \"models\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_compile.json", &json).expect("write BENCH_compile.json");
    println!("\nwrote BENCH_compile.json");

    if results.iter().any(|r| !r.bit_identical) {
        eprintln!("ERROR: some configuration diverged from the serial reference output");
        std::process::exit(1);
    }
    if results.iter().any(|r| !r.artifact_wins) {
        eprintln!("ERROR: artifact load failed to beat recompile (or decoded non-identically)");
        std::process::exit(1);
    }
}
