//! Figure 13: total power consumption and energy efficiency
//! (inference frames per Watt) of TFLite-GPU, TFLite-DSP, SNPE-DSP, and
//! GCD2-DSP on four representative models.

use gcd2::Compiler;
use gcd2_baselines::{DeviceModel, Framework};
use gcd2_bench::row;
use gcd2_hvx::EnergyModel;
use gcd2_models::ModelId;

fn main() {
    println!("# Figure 13: power (W) and energy efficiency (frames/Watt)\n");
    row(&[
        "Model".into(),
        "TFLite-GPU W".into(),
        "TFLite-DSP W".into(),
        "SNPE-DSP W".into(),
        "GCD2-DSP W".into(),
        "TFLite-GPU FPW".into(),
        "TFLite-DSP FPW".into(),
        "SNPE-DSP FPW".into(),
        "GCD2-DSP FPW".into(),
    ]);
    let gpu = DeviceModel::mobile_gpu();
    let em = EnergyModel::default();
    for id in [
        ModelId::EfficientNetB0,
        ModelId::ResNet50,
        ModelId::PixOr,
        ModelId::CycleGan,
    ] {
        let g = id.build();
        let gcd2 = Compiler::new().compile(&g);
        let t = Framework::Tflite.run(&g).expect("supported");
        let s = Framework::Snpe.run(&g).expect("supported");
        let fpw = |stats: &gcd2_hvx::ExecStats| 1.0 / (em.energy_pj(stats) * 1e-12);
        let gpu_fps = 1e3 / gpu.latency_ms(&g);
        row(&[
            id.to_string(),
            format!("{:.2}", gpu.power_w),
            format!("{:.2}", em.power_w(&t.stats)),
            format!("{:.2}", em.power_w(&s.stats)),
            format!("{:.2}", gcd2.power_w()),
            format!("{:.1}", gpu_fps / gpu.power_w),
            format!("{:.1}", fpw(&t.stats)),
            format!("{:.1}", fpw(&s.stats)),
            format!("{:.1}", gcd2.frames_per_watt()),
        ]);
    }
    println!("\nPaper: GCD2-DSP draws slightly more power than the other DSP stacks (better utilization) but wins energy efficiency by ~1.7x over TFLite-DSP, ~1.5x over SNPE-DSP, and 2.9x over TFLite-GPU.");
}
