//! Figure 8: DSP utilization and memory bandwidth of TFLite and SNPE
//! relative to GCD2 on five representative models.

use gcd2::Compiler;
use gcd2_baselines::Framework;
use gcd2_bench::{representative_models, row};
use gcd2_hvx::ExecStats;

/// Issue-slot throughput: instructions issued per cycle (busy-ness, the
/// profiler-style utilization proxy; idle dispatch/conversion cycles
/// count against it).
fn util(stats: &ExecStats) -> f64 {
    stats.insns as f64 / stats.cycles as f64
}

/// Effective bandwidth: *useful* (logical tensor) bytes moved per cycle.
/// Padded/duplicated traffic does not count, so wasted work lowers the
/// score rather than inflating it.
fn effective_bw(graph: &gcd2_cgraph::Graph, cycles: u64) -> f64 {
    let logical: u64 = graph.nodes().iter().map(|n| n.shape.elems() as u64).sum();
    2.0 * logical as f64 / cycles as f64
}

fn main() {
    println!("# Figure 8: utilization & effective memory bandwidth (normalized to GCD2 = 100%)\n");
    row(&[
        "Model".into(),
        "TFLite util %".into(),
        "SNPE util %".into(),
        "GCD2 util %".into(),
        "TFLite bw %".into(),
        "SNPE bw %".into(),
        "GCD2 bw %".into(),
    ]);
    for id in representative_models() {
        let g = id.build();
        let gcd2 = Compiler::new().compile(&g);
        let stats = gcd2.stats();
        let g_util = util(&stats);
        let g_bw = effective_bw(&g, stats.cycles);
        let t = Framework::Tflite.run(&g).expect("supported");
        let s = Framework::Snpe.run(&g).expect("supported");
        row(&[
            id.to_string(),
            format!("{:.0}", 100.0 * util(&t.stats) / g_util),
            format!("{:.0}", 100.0 * util(&s.stats) / g_util),
            "100".into(),
            format!("{:.0}", 100.0 * effective_bw(&g, t.stats.cycles) / g_bw),
            format!("{:.0}", 100.0 * effective_bw(&g, s.stats.cycles) / g_bw),
            "100".into(),
        ]);
    }
    println!("\nPaper: TFLite reaches 88-93% and SNPE 89-95% of GCD2's utilization; bandwidth 86-93% / 90-94%.");
    println!("Absolute GCD2 effective throughput on ResNet-50 (Section V-B peak discussion):");
    let m = Compiler::new().compile(&gcd2_models::ModelId::ResNet50.build());
    println!(
        "  {:.2} TOPS achieved (paper: up to 1.51 TOPS of the 3.7 TOPS practical peak).",
        m.tops()
    );
}
