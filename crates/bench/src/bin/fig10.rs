//! Figure 10: layout-optimization analysis on ResNet-50 prefix chains —
//! speedup over the local-optimal baseline (left) and search time
//! (right) for Local / Global exhaustive / GCD2(13) / GCD2(17).

use gcd2_bench::{prefix_graph, row};
use gcd2_globalopt::{enumerate_plans, exhaustive, gcd2_select, local_optimal, pbqp_select};
use gcd2_kernels::CostModel;
use gcd2_models::ModelId;
use std::time::Instant;

fn main() {
    println!("# Figure 10: global layout selection — quality and search time\n");
    row(&[
        "#ops".into(),
        "local cost".into(),
        "global speedup".into(),
        "GCD2(13) speedup".into(),
        "GCD2(17) speedup".into(),
        "PBQP speedup".into(),
        "t_global (s)".into(),
        "t_GCD2(13) (s)".into(),
        "t_GCD2(17) (s)".into(),
    ]);
    let resnet = ModelId::ResNet50.build();
    for ops in [5usize, 10, 15, 20, 25] {
        let g = prefix_graph(&resnet, ops);
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        let local = local_optimal(&g, &plans);

        // Exhaustive global search gets intractable quickly; cap its
        // scope like the paper caps its wall-clock (80+ hours at 25 ops).
        let (global_cell, tg_cell) = if ops <= 25 {
            let scope: Vec<_> = g
                .nodes()
                .iter()
                .filter(|n| {
                    !matches!(
                        n.kind,
                        gcd2_cgraph::OpKind::Input | gcd2_cgraph::OpKind::Constant
                    )
                })
                .map(|n| n.id)
                .collect();
            let t0 = Instant::now();
            let global = exhaustive(&g, &plans, &scope);
            let tg = t0.elapsed().as_secs_f64();
            (
                format!("{:.2}", local.cost as f64 / global.cost as f64),
                format!("{tg:.3}"),
            )
        } else {
            ("(skipped)".into(), ">hours".into())
        };

        let pbqp = pbqp_select(&g, &plans);
        let t0 = Instant::now();
        let g13 = gcd2_select(&g, &plans, 13);
        let t13 = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let g17 = gcd2_select(&g, &plans, 17);
        let t17 = t0.elapsed().as_secs_f64();

        row(&[
            ops.to_string(),
            local.cost.to_string(),
            global_cell,
            format!("{:.2}", local.cost as f64 / g13.cost as f64),
            format!("{:.2}", local.cost as f64 / g17.cost as f64),
            format!("{:.2}", local.cost as f64 / pbqp.cost as f64),
            tg_cell,
            format!("{t13:.3}"),
            format!("{t17:.3}"),
        ]);
    }
    println!("\nPaper: GCD2 brings 1.55-1.7x over local (global optimal 1.56-1.72x); GCD2(13) search < 2 s, GCD2(17) < 1 min, global > 80 h at 25 ops.");
    println!(
        "Note: our exhaustive search carries a branch-and-bound suffix lower bound, so it stays"
    );
    println!("tractable at sizes where the paper's plain enumeration needed 80+ hours.");
}
