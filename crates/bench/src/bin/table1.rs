//! Table I: latency and power comparison among mobile CPU, GPU, and DSP
//! (all under TFLite), motivating DSP execution.

use gcd2_baselines::{DeviceModel, Framework};
use gcd2_bench::row;
use gcd2_hvx::EnergyModel;
use gcd2_models::ModelId;

fn main() {
    println!("# Table I: Mobile CPU vs GPU vs DSP under TFLite\n");
    row(&[
        "Model".into(),
        "#MACs".into(),
        "CPU (ms)".into(),
        "GPU (ms)".into(),
        "DSP (ms)".into(),
        "CPU energy (x DSP)".into(),
        "GPU energy (x DSP)".into(),
        "DSP energy (x)".into(),
    ]);
    let cpu = DeviceModel::mobile_cpu();
    let gpu = DeviceModel::mobile_gpu();
    let energy_model = EnergyModel::default();
    for id in [
        ModelId::EfficientNetB0,
        ModelId::ResNet50,
        ModelId::PixOr,
        ModelId::CycleGan,
    ] {
        let g = id.build();
        let dsp = Framework::Tflite.run(&g).expect("TFLite supports CNNs");
        let dsp_ms = dsp.latency_ms();
        let dsp_energy = energy_model.energy_pj(&dsp.stats) * 1e-12;
        let cpu_ms = cpu.latency_ms(&g);
        let gpu_ms = gpu.latency_ms(&g);
        row(&[
            id.to_string(),
            format!("{:.2}G", g.total_macs() as f64 / 1e9),
            format!("{cpu_ms:.1}"),
            format!("{gpu_ms:.1}"),
            format!("{dsp_ms:.1}"),
            format!("{:.1}", cpu.energy_j(&g) / dsp_energy),
            format!("{:.1}", gpu.energy_j(&g) / dsp_energy),
            "1.0".into(),
        ]);
    }
    println!("\nPaper: DSP wins both latency and energy on every model (energy 5.5-10.7x CPU, 1.2-2.3x GPU).");
}
