//! Criterion bench behind Table II: cost-model evaluation speed for the
//! three SIMD instructions across the square MatMul shapes, plus
//! functional-simulation throughput of one kernel per instruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd2_cgraph::GemmDims;
use gcd2_hvx::Machine;
use gcd2_kernels::{functional_program, output_matrix_len, CostModel, SimdInstr, UnrollConfig};
use gcd2_tensor::{MatrixI8, MatrixU8};

fn cost_model_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_cost_eval");
    for size in [32usize, 64, 96, 128] {
        for instr in SimdInstr::ALL {
            group.bench_with_input(
                BenchmarkId::new(instr.to_string(), size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        // Fresh model each pass: measure generation +
                        // SDA packing, not the memo cache.
                        let model = CostModel::new();
                        let gemm = GemmDims::new(size, size, size);
                        std::hint::black_box(model.gemm_cycles(
                            &gemm,
                            instr,
                            UnrollConfig::new(2, 2),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn functional_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_matmul_sim");
    let (m, k, n) = (128, 16, 8);
    let a_rm: Vec<u8> = (0..m * k).map(|i| (i % 16) as u8).collect();
    let w_rm: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
    for instr in SimdInstr::ALL {
        let a = MatrixU8::from_row_major(m, k, instr.layout(), &a_rm);
        let w = MatrixI8::from_row_major(k, n, &w_rm);
        let gemm = GemmDims::new(m, k, n);
        let addr_out = a.padded_len().div_ceil(128) * 128;
        let out_len = output_matrix_len(&gemm, instr);
        let prog = functional_program(&a, &w, instr, 4, 0, addr_out as i64);
        group.bench_function(instr.to_string(), |b| {
            b.iter(|| {
                let mut machine = Machine::new(addr_out + out_len);
                machine.mem[..a.padded_len()].copy_from_slice(a.as_bytes());
                machine.run(&prog);
                std::hint::black_box(machine.mem[addr_out])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cost_model_eval, functional_simulation);
criterion_main!(benches);
