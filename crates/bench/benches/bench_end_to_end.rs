//! Criterion bench: full-model compilation time (the paper reports 5-25
//! minutes on their toolchain; our compiler is measured here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd2::Compiler;
use gcd2_models::ModelId;

fn compile_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(10);
    for id in [ModelId::ResNet50, ModelId::WdsrB, ModelId::Fst] {
        let graph = id.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(id.to_string()),
            &graph,
            |b, g| b.iter(|| std::hint::black_box(Compiler::new().compile(g).cycles())),
        );
    }
    group.finish();
}

criterion_group!(benches, compile_models);
criterion_main!(benches);
