//! Criterion bench behind Figure 11: scheduling speed of the SDA packer
//! and its ablation variants on representative basic blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd2_cgraph::GemmDims;
use gcd2_hvx::Block;
use gcd2_kernels::{timing_blocks, SimdInstr, UnrollConfig};
use gcd2_vliw::{Packer, SoftDepPolicy};

fn kernel_body() -> Block {
    // The multiply body of a moderately unrolled GEMM kernel — the block
    // shape the packer sees most.
    timing_blocks(
        &GemmDims::new(512, 256, 256),
        SimdInstr::Vmpy,
        UnrollConfig::new(4, 4),
    )
    .remove(2)
}

fn packing_speed(c: &mut Criterion) {
    let block = kernel_body();
    let mut group = c.benchmark_group("sda_packing");
    group.throughput(criterion::Throughput::Elements(block.insns.len() as u64));
    for (name, policy) in [
        ("sda", SoftDepPolicy::Sda),
        ("soft_to_hard", SoftDepPolicy::SoftToHard),
        ("soft_to_none", SoftDepPolicy::SoftToNone),
    ] {
        let packer = Packer::new().with_policy(policy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &block, |b, block| {
            b.iter(|| std::hint::black_box(packer.pack_block(block)))
        });
    }
    group.finish();
}

fn packing_scaling(c: &mut Criterion) {
    // Block size scaling: the packer is O(n^2)-ish; confirm it stays
    // usable at large unrolled bodies.
    let mut group = c.benchmark_group("sda_packing_scaling");
    for unroll in [1usize, 4, 8] {
        let blocks = timing_blocks(
            &GemmDims::new(512, 256, 256),
            SimdInstr::Vmpy,
            UnrollConfig::new(unroll, 4),
        );
        let body = &blocks[2];
        group.bench_with_input(
            BenchmarkId::from_parameter(body.insns.len()),
            body,
            |b, body| {
                let packer = Packer::new();
                b.iter(|| std::hint::black_box(packer.pack_block(body)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, packing_speed, packing_scaling);
criterion_main!(benches);
