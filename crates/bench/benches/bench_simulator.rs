//! Criterion bench: functional-simulator throughput (packets/s) on a
//! vector-heavy block — the substrate every experiment stands on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcd2_hvx::{Block, Insn, Machine, SReg, VPair, VReg, VBYTES};

fn simulator_throughput(c: &mut Criterion) {
    let v = VReg::new;
    let w = VPair::new;
    let r = SReg::new;
    let mut block = Block::with_trip_count("stream", 64);
    block.extend([
        Insn::VLoad {
            dst: v(0),
            base: r(0),
            offset: 0,
        },
        Insn::VLoad {
            dst: v(1),
            base: r(0),
            offset: VBYTES as i64,
        },
        Insn::VaddUbH {
            dst: w(2),
            a: v(0),
            b: v(1),
        },
        Insn::Vmpy {
            dst: w(4),
            src: v(0),
            weights: r(2),
            acc: true,
        },
        Insn::VasrHB {
            dst: v(6),
            src: w(4),
            shift: 4,
        },
        Insn::VStore {
            src: v(6),
            base: r(1),
            offset: 0,
        },
        Insn::AddI {
            dst: r(0),
            a: r(0),
            imm: 2 * VBYTES as i64,
        },
        Insn::AddI {
            dst: r(1),
            a: r(1),
            imm: VBYTES as i64,
        },
    ]);
    let packed = gcd2_vliw::Packer::new().pack_block(&block);
    let packets = packed.packets.len() as u64 * packed.trip_count;

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(packets));
    group.bench_function("functional_packets", |b| {
        b.iter(|| {
            let mut m = Machine::new(64 * 1024);
            m.set_sreg(r(1), 32 * 1024);
            m.run_block(&packed);
            std::hint::black_box(m.sreg(r(1)))
        })
    });
    group.bench_function("static_costing", |b| {
        b.iter(|| std::hint::black_box(packed.stats()))
    });
    group.finish();
}

criterion_group!(benches, simulator_throughput);
criterion_main!(benches);
