//! Criterion bench behind Figure 10 (right): search time of the
//! layout/instruction selection algorithms as the graph grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd2_bench::prefix_graph;
use gcd2_globalopt::{enumerate_plans, exhaustive, gcd2_select, local_optimal};
use gcd2_kernels::CostModel;
use gcd2_models::ModelId;

fn search_time(c: &mut Criterion) {
    let resnet = ModelId::ResNet50.build();
    let mut group = c.benchmark_group("fig10_search_time");
    group.sample_size(10);
    for ops in [5usize, 10, 15] {
        let g = prefix_graph(&resnet, ops);
        let model = CostModel::new();
        let plans = enumerate_plans(&g, &model);
        group.bench_with_input(BenchmarkId::new("local", ops), &ops, |b, _| {
            b.iter(|| std::hint::black_box(local_optimal(&g, &plans)))
        });
        group.bench_with_input(BenchmarkId::new("gcd2_13", ops), &ops, |b, _| {
            b.iter(|| std::hint::black_box(gcd2_select(&g, &plans, 13)))
        });
        if ops <= 10 {
            let scope: Vec<_> = g
                .nodes()
                .iter()
                .filter(|n| {
                    !matches!(
                        n.kind,
                        gcd2_cgraph::OpKind::Input | gcd2_cgraph::OpKind::Constant
                    )
                })
                .map(|n| n.id)
                .collect();
            group.bench_with_input(BenchmarkId::new("global", ops), &ops, |b, _| {
                b.iter(|| std::hint::black_box(exhaustive(&g, &plans, &scope)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, search_time);
criterion_main!(benches);
