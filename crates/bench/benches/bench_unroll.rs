//! Criterion bench behind Figure 12: unroll-strategy search cost —
//! the adaptive heuristic vs the exhaustive factor-grid sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcd2_cgraph::GemmDims;
use gcd2_kernels::{CostModel, SimdInstr, UnrollStrategy};

fn unroll_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_unroll_search");
    group.sample_size(10);
    let gemm = GemmDims::new(512, 256, 256);
    for (name, strategy) in [
        ("adaptive", UnrollStrategy::Adaptive),
        ("out4", UnrollStrategy::Out(4)),
        ("exhaustive", UnrollStrategy::Exhaustive),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &gemm, |b, gemm| {
            b.iter(|| {
                // Fresh cost model: measure real search, not memoization.
                let model = CostModel::new();
                std::hint::black_box(model.best_unroll(gemm, SimdInstr::Vmpy, strategy))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, unroll_search);
criterion_main!(benches);
