//! # gcd2-artifact — versioned plan artifacts and the on-disk cache
//!
//! The container layer of the AOT artifact store: a versioned,
//! self-describing binary envelope for compiled-plan payloads, plus a
//! content-addressed on-disk cache with crash-safe writes. The *payload*
//! codec (how an `InferencePlan` becomes section bytes) lives in
//! `gcd2::artifact`; this crate knows nothing about plans — only about
//! sections, checksums, bounds, and files — so the container can be
//! fuzzed and reasoned about in isolation.
//!
//! ## Wire layout
//!
//! ```text
//! magic[8] = "GCD2ART\0"
//! version  u32 LE          (FORMAT_VERSION; skew is a structured error)
//! count    u32 LE          (section count, capped)
//! table    count × { id u32, offset u64, len u64, checksum u64 }
//! payloads concatenated, in table order, contiguous
//! chain    u64 LE          (FNV-1a over the table, bound to the plan
//!                           integrity checksum — see verify_chain)
//! ```
//!
//! Every offset and length in the table is validated against the file
//! size and the running cursor **before** any payload is touched, all
//! payload sizes are capped, and the crate forbids `unsafe` outright —
//! a hostile artifact can only ever produce an [`ArtifactError`].
//!
//! ## Integrity model
//!
//! * per-section FNV-1a checksums catch bit flips inside a payload;
//! * the trailing **chain** checksum hashes the whole section table and
//!   then the plan's own PR-5 integrity checksum (the `bind` value), so
//!   a valid table spliced onto a different plan, or a reordered table,
//!   fails [`Artifact::verify_chain`];
//! * none of this is cryptographic — it detects corruption, not a
//!   deliberate forger, which is why loaders re-run plan integrity and
//!   the arena-soundness analyzer on every decoded plan.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(clippy::undocumented_unsafe_blocks)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// The artifact file magic, first eight bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"GCD2ART\0";

/// Container format version. Bumped on any incompatible layout change;
/// readers refuse other versions with [`ArtifactError::VersionSkew`]
/// (the cache key includes the version, so skewed files are simply
/// never hit).
pub const FORMAT_VERSION: u32 = 1;

/// Hard cap on sections per artifact: far above the handful the plan
/// codec emits, low enough that a forged count cannot drive a large
/// allocation.
pub const MAX_SECTIONS: usize = 64;

/// Hard cap on a single section payload (and therefore on any length a
/// decoder allocates from).
pub const MAX_SECTION_BYTES: u64 = 1 << 30;

/// Bytes of fixed header before the section table.
const HEADER_BYTES: usize = 8 + 4 + 4;
/// Bytes per section-table entry: id + offset + len + checksum.
const TABLE_ENTRY_BYTES: usize = 4 + 8 + 8 + 8;

/// Why an artifact could not be decoded, verified, or moved through the
/// cache. The decode paths produce only the first six variants; `Io` is
/// reserved for the on-disk cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The first eight bytes are not the artifact magic: not an
    /// artifact at all (or one truncated into its magic).
    BadMagic,
    /// The artifact was written by a different format version.
    VersionSkew {
        /// Version stamped in the file.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The file ends before a declared structure does.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the structure still needed.
        need: usize,
    },
    /// A section's payload no longer hashes to its table checksum.
    SectionChecksum {
        /// The section id.
        section: u32,
        /// Checksum declared in the table.
        expected: u64,
        /// Checksum of the payload as read.
        got: u64,
    },
    /// A declared count, offset, or length escapes its validated range.
    Bounds {
        /// Which field was out of range.
        what: &'static str,
        /// The declared value.
        value: u64,
        /// The cap or expected value it violated.
        limit: u64,
    },
    /// The chain checksum does not match: the section table and the
    /// plan integrity checksum it binds no longer agree with the
    /// trailer (tampered table, spliced payload, or a stale trailer).
    IntegrityMismatch {
        /// Chain checksum stored in the trailer.
        expected: u64,
        /// Chain checksum recomputed from the table and bind value.
        got: u64,
    },
    /// A cache filesystem operation failed (never produced by decode).
    Io {
        /// The operation that failed (`read`, `write`, `rename`, ...).
        op: &'static str,
        /// The OS error, rendered.
        message: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a gcd2 artifact (bad magic)"),
            ArtifactError::VersionSkew { found, supported } => write!(
                f,
                "artifact format version {found} (this build reads {supported})"
            ),
            ArtifactError::Truncated { offset, need } => {
                write!(f, "artifact truncated at byte {offset} ({need} more needed)")
            }
            ArtifactError::SectionChecksum {
                section,
                expected,
                got,
            } => write!(
                f,
                "section {section} checksum mismatch: table says {expected:#018x}, payload hashes to {got:#018x}"
            ),
            ArtifactError::Bounds { what, value, limit } => {
                write!(f, "artifact {what} = {value} violates bound {limit}")
            }
            ArtifactError::IntegrityMismatch { expected, got } => write!(
                f,
                "artifact chain checksum mismatch: trailer {expected:#018x}, recomputed {got:#018x}"
            ),
            ArtifactError::Io { op, message } => {
                write!(f, "artifact cache {op} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Incremental FNV-1a (64-bit): the checksum primitive of the artifact
/// container, matching the plan-integrity hash in `gcd2::infer`. Not
/// cryptographic — it detects corruption, not adversaries.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the hash.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        self
    }

    /// Folds a little-endian `u64` into the hash.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.bytes(bytes);
    h.finish()
}

/// A growing little-endian byte buffer for payload encoders.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn len_bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.len_bytes(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian cursor over untrusted bytes: every
/// read validates the remaining length first and every length-prefixed
/// read validates the declared length against a caller cap *before*
/// allocating, so a hostile payload can only produce
/// [`ArtifactError::Truncated`] / [`ArtifactError::Bounds`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Borrows the next `n` bytes, advancing the cursor.
    ///
    /// # Errors
    /// [`ArtifactError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        if self.remaining() < n {
            return Err(ArtifactError::Truncated {
                offset: self.pos,
                need: n - self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`ArtifactError::Truncated`] at end of buffer.
    pub fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`ArtifactError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`ArtifactError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a `u64` and validates it as a count/length/index against
    /// `limit` (inclusive), naming `what` in the error.
    ///
    /// # Errors
    /// [`ArtifactError::Bounds`] if the value exceeds `limit`;
    /// [`ArtifactError::Truncated`] if the field itself is cut off.
    pub fn u64_capped(&mut self, what: &'static str, limit: u64) -> Result<u64, ArtifactError> {
        let v = self.u64()?;
        if v > limit {
            return Err(ArtifactError::Bounds {
                what,
                value: v,
                limit,
            });
        }
        Ok(v)
    }

    /// Reads a `u32`-length-prefixed byte run, capping the declared
    /// length at `limit` before touching the payload.
    ///
    /// # Errors
    /// [`ArtifactError::Bounds`] for an oversized declared length,
    /// [`ArtifactError::Truncated`] if the run is cut off.
    pub fn len_bytes(&mut self, what: &'static str, limit: u64) -> Result<&'a [u8], ArtifactError> {
        let len = self.u32()? as u64;
        if len > limit {
            return Err(ArtifactError::Bounds {
                what,
                value: len,
                limit,
            });
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string (lossy: invalid UTF-8 in a
    /// checksum-valid artifact is forgery; the string is diagnostic
    /// only, so it is replaced rather than erroring).
    ///
    /// # Errors
    /// As [`ByteReader::len_bytes`].
    pub fn str(&mut self, what: &'static str, limit: u64) -> Result<String, ArtifactError> {
        Ok(String::from_utf8_lossy(self.len_bytes(what, limit)?).into_owned())
    }
}

/// One decoded section: id plus its verified payload.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section id (the plan codec assigns meanings).
    pub id: u32,
    /// The payload bytes, already checksum-verified.
    pub bytes: Vec<u8>,
}

/// Builds an artifact: sections in, a checksummed container out.
#[derive(Debug, Default)]
pub struct ArtifactWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// An empty artifact under construction.
    pub fn new() -> ArtifactWriter {
        ArtifactWriter::default()
    }

    /// Appends a section. Order is preserved and hashed into the chain.
    pub fn section(&mut self, id: u32, bytes: Vec<u8>) {
        self.sections.push((id, bytes));
    }

    /// Serializes the container, binding the chain checksum to `bind`
    /// (the plan's integrity checksum). Hosts the `artifact.encode`
    /// fault point.
    ///
    /// # Errors
    /// [`ArtifactError::Bounds`] if a section exceeds
    /// [`MAX_SECTION_BYTES`] or there are more than [`MAX_SECTIONS`].
    pub fn finish(self, bind: u64) -> Result<Vec<u8>, ArtifactError> {
        let _ = gcd2_faults::fire("artifact.encode");
        if self.sections.len() > MAX_SECTIONS {
            return Err(ArtifactError::Bounds {
                what: "section count",
                value: self.sections.len() as u64,
                limit: MAX_SECTIONS as u64,
            });
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = (HEADER_BYTES + TABLE_ENTRY_BYTES * self.sections.len()) as u64;
        let mut chain = Fnv64::new();
        chain.u64(FORMAT_VERSION as u64);
        chain.u64(self.sections.len() as u64);
        for (id, bytes) in &self.sections {
            if bytes.len() as u64 > MAX_SECTION_BYTES {
                return Err(ArtifactError::Bounds {
                    what: "section length",
                    value: bytes.len() as u64,
                    limit: MAX_SECTION_BYTES,
                });
            }
            let checksum = fnv64(bytes);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum.to_le_bytes());
            chain.u64(*id as u64);
            chain.u64(offset);
            chain.u64(bytes.len() as u64);
            chain.u64(checksum);
            offset += bytes.len() as u64;
        }
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
        }
        chain.u64(bind);
        out.extend_from_slice(&chain.finish().to_le_bytes());
        Ok(out)
    }
}

/// A decoded artifact container: verified sections plus the stored
/// chain checksum, still awaiting [`Artifact::verify_chain`] against
/// the plan integrity checksum the payload declares.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The format version stamped in the header (always
    /// [`FORMAT_VERSION`] after a successful decode).
    pub version: u32,
    /// The sections, in table order, payloads checksum-verified.
    pub sections: Vec<Section>,
    /// The chain checksum stored in the trailer.
    pub stored_chain: u64,
    /// The chain recomputed over the table (before binding).
    table_chain: Fnv64,
}

impl Artifact {
    /// Decodes and verifies the container: magic, version, table
    /// bounds, contiguity, and every per-section checksum. No payload
    /// byte is interpreted beyond hashing. Hosts the `artifact.decode`
    /// fault point.
    ///
    /// # Errors
    /// Every container defect maps to one [`ArtifactError`] variant:
    /// wrong magic → `BadMagic`, other version → `VersionSkew`, short
    /// file → `Truncated`, forged counts/offsets/lengths → `Bounds`,
    /// flipped payload or table checksum → `SectionChecksum`.
    pub fn decode(buf: &[u8]) -> Result<Artifact, ArtifactError> {
        let _ = gcd2_faults::fire("artifact.decode");
        let mut r = ByteReader::new(buf);
        if r.take(8)? != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(ArtifactError::VersionSkew {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = r.u32()? as usize;
        if count > MAX_SECTIONS {
            return Err(ArtifactError::Bounds {
                what: "section count",
                value: count as u64,
                limit: MAX_SECTIONS as u64,
            });
        }
        let mut chain = Fnv64::new();
        chain.u64(version as u64);
        chain.u64(count as u64);
        let mut table = Vec::with_capacity(count);
        let mut expected_offset = (HEADER_BYTES + TABLE_ENTRY_BYTES * count) as u64;
        for _ in 0..count {
            let id = r.u32()?;
            let offset = r.u64()?;
            let len = r.u64()?;
            let checksum = r.u64()?;
            if offset != expected_offset {
                return Err(ArtifactError::Bounds {
                    what: "section offset",
                    value: offset,
                    limit: expected_offset,
                });
            }
            if len > MAX_SECTION_BYTES {
                return Err(ArtifactError::Bounds {
                    what: "section length",
                    value: len,
                    limit: MAX_SECTION_BYTES,
                });
            }
            chain.u64(id as u64);
            chain.u64(offset);
            chain.u64(len);
            chain.u64(checksum);
            table.push((id, len, checksum));
            expected_offset += len;
        }
        // The trailer must still fit after the last payload.
        if (expected_offset as usize).checked_add(8).is_none()
            || expected_offset as usize + 8 > buf.len()
        {
            return Err(ArtifactError::Truncated {
                offset: buf.len(),
                need: expected_offset as usize + 8 - buf.len(),
            });
        }
        if expected_offset as usize + 8 < buf.len() {
            return Err(ArtifactError::Bounds {
                what: "trailing bytes",
                value: buf.len() as u64,
                limit: expected_offset + 8,
            });
        }
        let mut sections = Vec::with_capacity(count);
        for (id, len, checksum) in table {
            let bytes = r.take(len as usize)?;
            let got = fnv64(bytes);
            if got != checksum {
                return Err(ArtifactError::SectionChecksum {
                    section: id,
                    expected: checksum,
                    got,
                });
            }
            sections.push(Section {
                id,
                bytes: bytes.to_vec(),
            });
        }
        let stored_chain = r.u64()?;
        Ok(Artifact {
            version,
            sections,
            stored_chain,
            table_chain: chain,
        })
    }

    /// The payload of the first section with `id`, if present.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.bytes.as_slice())
    }

    /// Verifies the chain checksum against `bind` (the plan integrity
    /// checksum the payload declares): catches a tampered trailer, a
    /// spliced table, or a payload transplanted onto another plan.
    ///
    /// # Errors
    /// [`ArtifactError::IntegrityMismatch`] on disagreement.
    pub fn verify_chain(&self, bind: u64) -> Result<(), ArtifactError> {
        let mut chain = self.table_chain.clone();
        chain.u64(bind);
        let got = chain.finish();
        if got != self.stored_chain {
            return Err(ArtifactError::IntegrityMismatch {
                expected: self.stored_chain,
                got,
            });
        }
        Ok(())
    }
}

/// How long an orphaned temp file or lock may sit in the cache
/// directory before garbage collection reclaims it: long enough that a
/// live writer is never raced, short enough that a crashed writer does
/// not wedge the key forever.
pub const STALE_TEMP_AGE: Duration = Duration::from_secs(3600);

const TEMP_PREFIX: &str = ".tmp.";
const LOCK_SUFFIX: &str = ".lock";
const ARTIFACT_SUFFIX: &str = ".gcd2art";

/// A content-addressed artifact cache directory with crash-safe writes.
///
/// * **Addressing** — keys are hex FNV-1a digests of the inputs that
///   determine the artifact bytes (graph text, compiler options,
///   format version, seed); see [`ArtifactCache::content_key`].
/// * **Crash safety** — [`ArtifactCache::store`] writes a temp file in
///   the cache directory, fsyncs it, atomically renames it over the
///   final name, then fsyncs the directory. A crash at any point leaves
///   either the old state or the new state, never a torn final file;
///   orphaned temps are swept by [`ArtifactCache::gc_stale_temps`].
/// * **Duplicate-work avoidance** — [`ArtifactCache::try_lock`] takes a
///   per-key advisory lock file so concurrent processes compiling the
///   same key can elect one builder; losers poll for the winner's
///   artifact instead of recompiling.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
}

/// A held per-key advisory lock; dropped (or crashed past
/// [`STALE_TEMP_AGE`]) it releases the key.
#[derive(Debug)]
pub struct CacheLock {
    path: PathBuf,
}

impl Drop for CacheLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn io_err(op: &'static str, e: std::io::Error) -> ArtifactError {
    ArtifactError::Io {
        op,
        message: e.to_string(),
    }
}

impl ArtifactCache {
    /// Opens (creating if needed) the cache directory and sweeps temp
    /// files older than [`STALE_TEMP_AGE`].
    ///
    /// # Errors
    /// [`ArtifactError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ArtifactCache, ArtifactError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create-dir", e))?;
        let cache = ArtifactCache { dir };
        let _ = cache.gc_stale_temps(STALE_TEMP_AGE);
        Ok(cache)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Derives the content-address for an artifact from the byte strings
    /// that determine it. Each part is length-framed before hashing so
    /// part boundaries cannot alias (`["ab","c"]` ≠ `["a","bc"]`).
    pub fn content_key(parts: &[&[u8]]) -> String {
        let mut h = Fnv64::new();
        for part in parts {
            h.u64(part.len() as u64);
            h.bytes(part);
        }
        format!("{:016x}", h.finish())
    }

    /// The final on-disk path for `key`.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}{ARTIFACT_SUFFIX}"))
    }

    /// Reads the artifact stored under `key`. A missing file is
    /// `Ok(None)` (a cache miss, not an error). Hosts the `artifact.io`
    /// fault point.
    ///
    /// # Errors
    /// [`ArtifactError::Io`] for any filesystem failure other than
    /// not-found.
    pub fn load(&self, key: &str) -> Result<Option<Vec<u8>>, ArtifactError> {
        let _ = gcd2_faults::fire("artifact.io");
        match fs::read(self.path_for(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", e)),
        }
    }

    /// Stores `bytes` under `key` crash-safely: temp file + fsync +
    /// atomic rename + directory fsync. Returns the final path. Hosts
    /// the `artifact.io` fault point.
    ///
    /// # Errors
    /// [`ArtifactError::Io`] on any filesystem failure; the final path
    /// is never left torn.
    pub fn store(&self, key: &str, bytes: &[u8]) -> Result<PathBuf, ArtifactError> {
        let _ = gcd2_faults::fire("artifact.io");
        let final_path = self.path_for(key);
        let tmp_path = self
            .dir
            .join(format!("{TEMP_PREFIX}{key}.{}", std::process::id()));
        {
            let mut tmp = fs::File::create(&tmp_path).map_err(|e| io_err("create-temp", e))?;
            tmp.write_all(bytes).map_err(|e| io_err("write", e))?;
            tmp.sync_all().map_err(|e| io_err("fsync", e))?;
        }
        if let Err(e) = fs::rename(&tmp_path, &final_path) {
            let _ = fs::remove_file(&tmp_path);
            return Err(io_err("rename", e));
        }
        // Persist the rename itself; without this a crash can lose the
        // directory entry even though the data blocks are on disk.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(final_path)
    }

    /// Removes the artifact stored under `key`; returns whether one
    /// existed.
    ///
    /// # Errors
    /// [`ArtifactError::Io`] for failures other than not-found.
    pub fn evict(&self, key: &str) -> Result<bool, ArtifactError> {
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("remove", e)),
        }
    }

    /// Tries to take the per-key advisory build lock. `None` means
    /// another live process holds it (a lock older than
    /// [`STALE_TEMP_AGE`] is presumed crashed and is reclaimed).
    pub fn try_lock(&self, key: &str) -> Option<CacheLock> {
        self.try_lock_with_age(key, STALE_TEMP_AGE)
    }

    /// [`ArtifactCache::try_lock`] with an explicit staleness age —
    /// chaos tests shorten it to exercise crashed-holder reclamation
    /// without hour-long sleeps.
    ///
    /// Reclamation is a two-step atomic takeover. A stale lock is never
    /// deleted in place: the contender `rename`s it to a per-process
    /// steal name first, so exactly one of any number of concurrent
    /// contenders wins the rename (the losers' renames fail and they
    /// fall back to the `create_new` race). Because `rename` preserves
    /// the mtime, the winner re-checks staleness *after* the rename —
    /// if the file at the lock path had been released and re-created by
    /// a live holder between the check and the steal, the yanked lock
    /// is fresh, and it is renamed straight back. The old
    /// check-then-delete protocol could delete a fresh lock a faster
    /// contender had just created, electing two builders.
    pub fn try_lock_with_age(&self, key: &str, stale_age: Duration) -> Option<CacheLock> {
        let path = self.dir.join(format!("{key}{LOCK_SUFFIX}"));
        for _ in 0..2 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    return Some(CacheLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if !file_older_than(&path, stale_age) {
                        return None;
                    }
                    let steal = self
                        .dir
                        .join(format!("{TEMP_PREFIX}{key}.{}.steal", std::process::id()));
                    if fs::rename(&path, &steal).is_err() {
                        // Lost the steal race (or the holder released
                        // meanwhile): compete in create_new once more.
                        continue;
                    }
                    if file_older_than(&steal, stale_age) {
                        // Confirmed crashed holder: discard its lock
                        // (ours alone — the steal name is per-process)
                        // and race for the now-free key.
                        let _ = fs::remove_file(&steal);
                        continue;
                    }
                    // The lock we yanked is fresh — it was re-acquired
                    // between the staleness check and the rename. Put
                    // it back and report the key as held.
                    let _ = fs::rename(&steal, &path);
                    return None;
                }
                Err(_) => return None,
            }
        }
        None
    }

    /// Sweeps temp and lock files older than `max_age` (a crashed
    /// writer's leavings). Returns how many were removed.
    ///
    /// # Errors
    /// [`ArtifactError::Io`] if the directory cannot be listed.
    pub fn gc_stale_temps(&self, max_age: Duration) -> Result<usize, ArtifactError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("read-dir", e))?;
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let is_temp = name.starts_with(TEMP_PREFIX) || name.ends_with(LOCK_SUFFIX);
            if is_temp
                && file_older_than(&entry.path(), max_age)
                && fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Whether the file's mtime is at least `age` in the past (unreadable
/// metadata counts as stale: the file is junk either way).
fn file_older_than(path: &Path, age: Duration) -> bool {
    let Ok(meta) = fs::metadata(path) else {
        return false;
    };
    let Ok(mtime) = meta.modified() else {
        return true;
    };
    match SystemTime::now().duration_since(mtime) {
        Ok(elapsed) => elapsed >= age,
        Err(_) => false, // mtime in the future: a live writer's clock skew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.section(1, b"meta-bytes".to_vec());
        w.section(2, vec![7u8; 300]);
        w.section(3, Vec::new());
        w.finish(0xBEEF).unwrap()
    }

    #[test]
    fn container_round_trips() {
        let bytes = sample();
        let art = Artifact::decode(&bytes).unwrap();
        assert_eq!(art.version, FORMAT_VERSION);
        assert_eq!(art.sections.len(), 3);
        assert_eq!(art.section(1), Some(&b"meta-bytes"[..]));
        assert_eq!(art.section(2).unwrap().len(), 300);
        assert_eq!(art.section(3), Some(&[][..]));
        assert_eq!(art.section(9), None);
        art.verify_chain(0xBEEF).unwrap();
        assert!(matches!(
            art.verify_chain(0xDEAD),
            Err(ArtifactError::IntegrityMismatch { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            for bit in [1u8, 0x80] {
                let mut evil = bytes.clone();
                evil[i] ^= bit;
                let structured = match Artifact::decode(&evil) {
                    Err(_) => true,
                    // A flip that survives container decode must still
                    // be caught by the chain bind.
                    Ok(art) => art.verify_chain(0xBEEF).is_err(),
                };
                assert!(structured, "flip at byte {i} bit {bit:#x} went undetected");
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_structured() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = match Artifact::decode(&bytes[..cut]) {
                Err(e) => e,
                Ok(art) => {
                    panic!("truncated to {cut} bytes decoded: {art:?}");
                }
            };
            assert!(
                matches!(
                    err,
                    ArtifactError::BadMagic
                        | ArtifactError::Truncated { .. }
                        | ArtifactError::Bounds { .. }
                ),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn hostile_headers_hit_exact_variants() {
        let bytes = sample();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Artifact::decode(&bad_magic),
            Err(ArtifactError::BadMagic)
        ));

        let mut skew = bytes.clone();
        skew[8] = 99;
        assert!(matches!(
            Artifact::decode(&skew),
            Err(ArtifactError::VersionSkew {
                found: 99,
                supported: FORMAT_VERSION,
            })
        ));

        let mut oversized = bytes.clone();
        // Section 1 declared length lives at header + 4 (id) + 8 (offset).
        let len_at = HEADER_BYTES + 4 + 8;
        oversized[len_at..len_at + 8].copy_from_slice(&(MAX_SECTION_BYTES + 1).to_le_bytes());
        assert!(matches!(
            Artifact::decode(&oversized),
            Err(ArtifactError::Bounds {
                what: "section length",
                ..
            })
        ));

        let mut many = bytes.clone();
        many[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Artifact::decode(&many),
            Err(ArtifactError::Bounds {
                what: "section count",
                ..
            })
        ));

        let mut flipped_payload = bytes.clone();
        let payload_at = HEADER_BYTES + 3 * TABLE_ENTRY_BYTES;
        flipped_payload[payload_at] ^= 0xFF;
        assert!(matches!(
            Artifact::decode(&flipped_payload),
            Err(ArtifactError::SectionChecksum { section: 1, .. })
        ));
    }

    #[test]
    fn zero_section_artifact_is_valid_but_bindable() {
        let w = ArtifactWriter::new();
        let bytes = w.finish(7).unwrap();
        let art = Artifact::decode(&bytes).unwrap();
        assert!(art.sections.is_empty());
        art.verify_chain(7).unwrap();
        assert!(art.verify_chain(8).is_err());
    }

    #[test]
    fn reader_caps_reject_before_allocation() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX); // declared length far beyond the buffer
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            r.len_bytes("name", 4096),
            Err(ArtifactError::Bounds { what: "name", .. })
        ));
        let mut r2 = ByteReader::new(&buf);
        assert!(matches!(
            r2.u64_capped("count", 10),
            Err(ArtifactError::Truncated { .. }) | Err(ArtifactError::Bounds { .. })
        ));
    }

    #[test]
    fn content_key_frames_parts() {
        let a = ArtifactCache::content_key(&[b"ab", b"c"]);
        let b = ArtifactCache::content_key(&[b"a", b"bc"]);
        assert_ne!(a, b);
        assert_eq!(a, ArtifactCache::content_key(&[b"ab", b"c"]));
    }

    fn temp_cache(tag: &str) -> ArtifactCache {
        let dir =
            std::env::temp_dir().join(format!("gcd2-artifact-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactCache::open(dir).unwrap()
    }

    #[test]
    fn cache_store_load_evict() {
        let cache = temp_cache("sle");
        let key = ArtifactCache::content_key(&[b"graph", b"opts"]);
        assert_eq!(cache.load(&key).unwrap(), None);
        let bytes = sample();
        cache.store(&key, &bytes).unwrap();
        assert_eq!(cache.load(&key).unwrap(), Some(bytes));
        assert!(cache.evict(&key).unwrap());
        assert!(!cache.evict(&key).unwrap());
        assert_eq!(cache.load(&key).unwrap(), None);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stale_temps_are_collected_fresh_ones_kept() {
        let cache = temp_cache("gc");
        let orphan = cache.dir().join(format!("{TEMP_PREFIX}dead.1234"));
        fs::write(&orphan, b"torn").unwrap();
        // Age zero: everything qualifies as stale.
        assert_eq!(cache.gc_stale_temps(Duration::ZERO).unwrap(), 1);
        assert!(!orphan.exists());
        fs::write(&orphan, b"torn").unwrap();
        // A fresh temp under a long age is a live writer's: kept.
        assert_eq!(cache.gc_stale_temps(STALE_TEMP_AGE).unwrap(), 0);
        assert!(orphan.exists());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn advisory_lock_excludes_and_releases() {
        let cache = temp_cache("lock");
        let lock = cache.try_lock("k").unwrap();
        assert!(cache.try_lock("k").is_none(), "second take must fail");
        assert!(cache.try_lock("other").is_some(), "keys are independent");
        drop(lock);
        assert!(cache.try_lock("k").is_some(), "drop releases");
        let _ = fs::remove_dir_all(cache.dir());
    }
}
