//! An offline, dependency-free subset of the
//! [criterion](https://docs.rs/criterion) benchmarking API, used because
//! this workspace builds in environments without access to crates.io.
//!
//! Each benchmark runs `sample_size` timed iterations (after one warm-up)
//! and prints mean and minimum wall-clock time per iteration, plus
//! element throughput when configured. There is no statistical analysis,
//! baseline storage, or plotting.

use std::fmt;
use std::time::Instant;

/// Re-exported for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives timed iterations of one benchmark.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
    min_ns: f64,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            total += ns;
            min = min.min(ns);
        }
        self.mean_ns = total / self.samples as f64;
        self.min_ns = min;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(id: &str, samples: usize, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        mean_ns: 0.0,
        min_ns: 0.0,
    };
    f(&mut b);
    let mut line = format!(
        "{id:<40} mean {:>12}  min {:>12}",
        fmt_ns(b.mean_ns),
        fmt_ns(b.min_ns)
    );
    if let Some(Throughput::Elements(n)) = throughput {
        if b.mean_ns > 0.0 {
            line.push_str(&format!("  {:>12.1} Melem/s", n as f64 / b.mean_ns * 1e3));
        }
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        if b.mean_ns > 0.0 {
            line.push_str(&format!(
                "  {:>12.1} MiB/s",
                n as f64 / b.mean_ns * 1e3 / 1.048_576
            ));
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Annotates benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.samples, self.throughput, f);
        self
    }

    /// Ends the group (kept for API parity; groups hold no deferred state).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Default configuration (10 samples per benchmark).
    pub fn new() -> Self {
        Criterion {
            default_samples: 10,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        run_one(&id.into().id, samples, None, f);
    }
}

/// Declares the function list a `criterion_main!` entry point runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_times() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("sda").id, "sda");
    }
}
