//! `GraphInvariants`: structural soundness of a computational graph —
//! node ids match their positions, every input reference points at an
//! earlier node (which makes the graph a DAG), operator arities are
//! satisfiable, and every node's recorded shape agrees with a
//! non-panicking re-inference from its input shapes.

use crate::diag::Report;
use crate::{Context, Pass};
use gcd2_cgraph::{Graph, Node, OpKind, TShape};

/// Graph structure and shape-propagation invariants.
#[derive(Debug, Default)]
pub struct GraphInvariants;

const NAME: &str = "GraphInvariants";

impl Pass for GraphInvariants {
    fn name(&self) -> &'static str {
        NAME
    }

    fn run(&self, cx: &Context<'_>, report: &mut Report) {
        let Some(graph) = cx.graph else { return };
        for (idx, node) in graph.nodes().iter().enumerate() {
            check_node(graph, idx, node, report);
        }
    }
}

fn node_loc(node: &Node) -> String {
    format!("node {} '{}'", node.id, node.name)
}

fn check_node(graph: &Graph, idx: usize, node: &Node, report: &mut Report) {
    let loc = node_loc(node);

    if node.id.0 != idx {
        report.error(
            NAME,
            &loc,
            format!("id {} stored at position {idx}", node.id),
        );
    }

    // Input references: in-range and strictly earlier. Construction
    // order doubles as a topological order, so a forward (or self)
    // reference is either a dangling node or a cycle.
    let mut structurally_sound = true;
    for &input in &node.inputs {
        if input.0 >= graph.len() {
            report.error(NAME, &loc, format!("input {input} does not exist"));
            structurally_sound = false;
        } else if input.0 >= idx {
            report.error(
                NAME,
                &loc,
                format!("input {input} is not an earlier node (cycle or forward reference)"),
            );
            structurally_sound = false;
        }
    }
    if !structurally_sound {
        return; // shape inference would chase the bad references
    }

    if matches!(node.kind, OpKind::Input | OpKind::Constant) {
        if !node.inputs.is_empty() {
            report.error(NAME, &loc, "source op has inputs");
        }
        if node.shape.elems() == 0 {
            report.error(NAME, &loc, "empty shape");
        }
        return;
    }

    let input_shapes: Vec<&TShape> = node.inputs.iter().map(|i| &graph.node(*i).shape).collect();
    match infer_shape_checked(&node.kind, &input_shapes) {
        Err(msg) => report.error(NAME, &loc, msg),
        Ok(expected) => {
            if expected != node.shape {
                report.error(
                    NAME,
                    &loc,
                    format!("recorded shape {} but inputs imply {expected}", node.shape),
                );
            }
        }
    }
}

/// A total (non-panicking) mirror of [`OpKind::infer_shape`]: the same
/// propagation rules, but arity/rank/arithmetic problems come back as
/// `Err` instead of a panic, so the verifier can diagnose graphs that
/// [`Graph::add`] would never have built.
pub fn infer_shape_checked(kind: &OpKind, inputs: &[&TShape]) -> Result<TShape, String> {
    let arg = |i: usize| -> Result<&TShape, String> {
        inputs
            .get(i)
            .copied()
            .ok_or_else(|| format!("operator needs input {i}, only {} given", inputs.len()))
    };
    let rank4 = |s: &TShape| -> Result<(), String> {
        if s.rank() == 4 {
            Ok(())
        } else {
            Err(format!("expects a rank-4 feature map, input is {s}"))
        }
    };
    // Output extent of a sliding window: (in + 2*pad - k) / stride + 1.
    let window = |input: usize, k: usize, stride: usize, pad: usize| -> Result<usize, String> {
        if k == 0 || stride == 0 {
            return Err("zero kernel or stride".into());
        }
        let padded = input + 2 * pad;
        if padded < k {
            return Err(format!(
                "window {k} does not fit the padded extent {padded}"
            ));
        }
        Ok((padded - k) / stride + 1)
    };

    match kind {
        OpKind::Input | OpKind::Constant => Err("source ops have explicit shapes".into()),
        OpKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
        } => {
            let x = arg(0)?;
            rank4(x)?;
            let h = window(x.dim(2), kernel.0, stride.0, padding.0)?;
            let w = window(x.dim(3), kernel.1, stride.1, padding.1)?;
            Ok(TShape::nchw(x.dim(0), *out_channels, h, w))
        }
        OpKind::DepthwiseConv2d {
            kernel,
            stride,
            padding,
        } => {
            let x = arg(0)?;
            rank4(x)?;
            let h = window(x.dim(2), kernel.0, stride.0, padding.0)?;
            let w = window(x.dim(3), kernel.1, stride.1, padding.1)?;
            Ok(TShape::nchw(x.dim(0), x.dim(1), h, w))
        }
        OpKind::ConvTranspose2d {
            out_channels,
            stride,
            ..
        } => {
            let x = arg(0)?;
            rank4(x)?;
            Ok(TShape::nchw(
                x.dim(0),
                *out_channels,
                x.dim(2) * stride.0,
                x.dim(3) * stride.1,
            ))
        }
        OpKind::MatMul { n } | OpKind::BatchMatMul { n } => {
            let x = arg(0)?;
            if x.rank() == 0 {
                return Err("matmul input has no dimensions".into());
            }
            let mut dims = x.0.clone();
            let last = dims.len() - 1;
            dims[last] = *n;
            Ok(TShape(dims))
        }
        OpKind::Add | OpKind::Mul | OpKind::Div | OpKind::Pow => Ok(arg(0)?.clone()),
        OpKind::Act(_) | OpKind::Sigmoid | OpKind::Softmax | OpKind::LayerNorm | OpKind::Gelu => {
            Ok(arg(0)?.clone())
        }
        OpKind::MaxPool { kernel, stride } | OpKind::AvgPool { kernel, stride } => {
            let x = arg(0)?;
            rank4(x)?;
            let h = window(x.dim(2), kernel.0, stride.0, 0)?;
            let w = window(x.dim(3), kernel.1, stride.1, 0)?;
            Ok(TShape::nchw(x.dim(0), x.dim(1), h, w))
        }
        OpKind::GlobalAvgPool => {
            let x = arg(0)?;
            rank4(x)?;
            Ok(TShape::nchw(x.dim(0), x.dim(1), 1, 1))
        }
        OpKind::Upsample { factor } => {
            let x = arg(0)?;
            rank4(x)?;
            if *factor == 0 {
                return Err("zero upsampling factor".into());
            }
            Ok(TShape::nchw(
                x.dim(0),
                x.dim(1),
                x.dim(2) * factor,
                x.dim(3) * factor,
            ))
        }
        OpKind::Reshape { shape } => Ok(shape.clone()),
        OpKind::Transpose => {
            let x = arg(0)?;
            let mut dims = x.0.clone();
            dims.reverse();
            Ok(TShape(dims))
        }
        OpKind::Concat => {
            let (a, b) = (arg(0)?, arg(1)?);
            if a.rank() != b.rank() {
                return Err(format!("concat ranks differ: {a} vs {b}"));
            }
            if a.rank() < 2 {
                return Err(format!("concat needs a channel dimension, input is {a}"));
            }
            let mut dims = a.0.clone();
            dims[1] += b.dim(1);
            Ok(TShape(dims))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_cgraph::NodeId;

    fn run_on(graph: &Graph) -> Report {
        let cx = Context::new().with_graph(graph);
        let mut report = Report::new();
        GraphInvariants.run(&cx, &mut report);
        report
    }

    fn valid_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", TShape::nchw(1, 8, 16, 16));
        let c = g.add(
            OpKind::Conv2d {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            &[x],
            "conv",
        );
        let _a = g.add(OpKind::Add, &[c, x], "add");
        g
    }

    #[test]
    fn well_formed_graph_is_clean() {
        assert!(run_on(&valid_graph()).is_clean());
    }

    #[test]
    fn mirror_matches_infer_shape() {
        let g = valid_graph();
        for node in g.nodes() {
            if matches!(node.kind, OpKind::Input | OpKind::Constant) {
                continue;
            }
            let inputs: Vec<&TShape> = node.inputs.iter().map(|i| &g.node(*i).shape).collect();
            assert_eq!(
                infer_shape_checked(&node.kind, &inputs).unwrap(),
                node.kind.infer_shape(&inputs)
            );
        }
    }

    #[test]
    fn dangling_input_is_error() {
        let mut nodes: Vec<Node> = valid_graph().nodes().to_vec();
        nodes[2].inputs[0] = NodeId(99);
        let g = Graph::from_nodes_unchecked(nodes);
        let report = run_on(&g);
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics()[0].message.contains("does not exist"));
    }

    #[test]
    fn forward_reference_is_error() {
        let mut nodes: Vec<Node> = valid_graph().nodes().to_vec();
        nodes[1].inputs[0] = NodeId(2); // conv consumes the later add
        let g = Graph::from_nodes_unchecked(nodes);
        let report = run_on(&g);
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.message.contains("cycle or forward reference")));
    }

    #[test]
    fn wrong_shape_is_error() {
        let mut nodes: Vec<Node> = valid_graph().nodes().to_vec();
        nodes[1].shape = TShape::nchw(1, 8, 4, 4);
        let g = Graph::from_nodes_unchecked(nodes);
        let report = run_on(&g);
        // The corrupted conv shape is flagged, and so is the downstream
        // add whose recorded shape no longer follows from its inputs.
        assert_eq!(report.error_count(), 2);
        assert!(report
            .diagnostics()
            .iter()
            .all(|d| d.message.contains("inputs imply")));
    }

    #[test]
    fn oversized_window_is_reported_not_panicking() {
        let pool = OpKind::MaxPool {
            kernel: (32, 32),
            stride: (1, 1),
        };
        let tiny = TShape::nchw(1, 8, 4, 4);
        assert!(infer_shape_checked(&pool, &[&tiny]).is_err());
    }
}
