//! `PlanLegality`: execution plans pair instructions and layouts the way
//! the paper's Table II allows, and a chosen assignment's claimed
//! aggregate cost matches an independent re-evaluation of Equation 1.

use crate::diag::Report;
use crate::{Context, Pass, PlanView};
use gcd2_cgraph::{Graph, Node, OpKind};
use gcd2_globalopt::{edge_tc, ExecutionPlan, PlanKind};
use gcd2_tensor::Layout;

/// Plan/layout pairing and assignment-cost consistency.
#[derive(Debug, Default)]
pub struct PlanLegality;

const NAME: &str = "PlanLegality";

impl Pass for PlanLegality {
    fn name(&self) -> &'static str {
        NAME
    }

    fn run(&self, cx: &Context<'_>, report: &mut Report) {
        let (Some(graph), Some(plans)) = (cx.graph, cx.plans.as_ref()) else {
            return;
        };

        match plans {
            PlanView::Candidates(set) => {
                if set.len() != graph.len() {
                    report.error(
                        NAME,
                        "plan set",
                        format!("covers {} nodes, graph has {}", set.len(), graph.len()),
                    );
                    return;
                }
                for node in graph.nodes() {
                    let candidates = set.of(node.id);
                    if candidates.is_empty() {
                        report.error(NAME, node_loc(node), "no candidate execution plans");
                    }
                    for (pi, plan) in candidates.iter().enumerate() {
                        if let Err(msg) = plan_legal(node, plan) {
                            report.error(NAME, format!("{} plan {pi}", node_loc(node)), msg);
                        }
                    }
                }
            }
            PlanView::Chosen(chosen) => {
                if chosen.len() != graph.len() {
                    report.error(
                        NAME,
                        "chosen plans",
                        format!("cover {} nodes, graph has {}", chosen.len(), graph.len()),
                    );
                    return;
                }
                for node in graph.nodes() {
                    if let Err(msg) = plan_legal(node, &chosen[node.id.0]) {
                        report.error(NAME, node_loc(node), msg);
                    }
                }
            }
            // Inference plans have no Table II layouts; the gcd2-analyze
            // passes own their invariants.
            PlanView::Inference(_) => return,
        }

        if let Some(assignment) = cx.assignment {
            check_assignment_cost(graph, plans, assignment, report);
        }
    }
}

fn node_loc(node: &Node) -> String {
    format!("node {} '{}'", node.id, node.name)
}

/// Whether `plan` is a legal implementation of `node` per Table II:
/// sources pass row-major data through for free, GEMM-like operators use
/// a widening multiply in that multiply's layout (or the dedicated
/// 3-tap `vtmpy` kernel for 3-wide depthwise convolutions, which streams
/// 1-column), and everything else streams through one of the compute
/// layouts.
fn plan_legal(node: &Node, plan: &ExecutionPlan) -> Result<(), String> {
    match &node.kind {
        OpKind::Input | OpKind::Constant => {
            if plan.kind != PlanKind::Passthrough {
                return Err(format!("source op carries a {:?} plan", plan.kind));
            }
            if plan.layout != Layout::RowMajor {
                return Err(format!(
                    "source op must produce the row-major interchange format, not {}",
                    plan.layout
                ));
            }
            if plan.cost != 0 {
                return Err(format!(
                    "source op claims {} cycles; sources are free",
                    plan.cost
                ));
            }
            Ok(())
        }
        kind if kind.is_gemm_like() => match plan.kind {
            PlanKind::Gemm(instr) => {
                if plan.layout != instr.layout() {
                    Err(format!(
                        "{instr:?} kernels consume the {} layout, plan claims {}",
                        instr.layout(),
                        plan.layout
                    ))
                } else {
                    Ok(())
                }
            }
            PlanKind::DepthwiseVtmpy => {
                let three_wide =
                    matches!(node.kind, OpKind::DepthwiseConv2d { kernel: (_, 3), .. });
                if !three_wide {
                    Err(
                        "vtmpy kernel on an operator that is not a 3-wide depthwise \
                         convolution"
                            .into(),
                    )
                } else if plan.layout != Layout::Col1 {
                    Err(format!(
                        "vtmpy streams spatially (1-column), plan claims {}",
                        plan.layout
                    ))
                } else {
                    Ok(())
                }
            }
            PlanKind::Passthrough => Err("GEMM-like operator assigned a passthrough plan".into()),
        },
        _ => match plan.kind {
            PlanKind::Passthrough => {
                if matches!(plan.layout, Layout::Col1 | Layout::Col2 | Layout::Col4) {
                    Ok(())
                } else {
                    Err(format!(
                        "passthrough operators live in a compute layout, not {}",
                        plan.layout
                    ))
                }
            }
            other => Err(format!("non-GEMM operator assigned a {other:?} plan")),
        },
    }
}

/// Re-evaluates Equation 1 — the sum of chosen plan costs plus the
/// layout-transformation cost of every edge — and compares it to the
/// assignment's claimed aggregate cost.
fn check_assignment_cost(
    graph: &Graph,
    plans: &PlanView<'_>,
    assignment: &gcd2_globalopt::Assignment,
    report: &mut Report,
) {
    if assignment.choice.len() != graph.len() {
        report.error(
            NAME,
            "assignment",
            format!(
                "chooses for {} nodes, graph has {}",
                assignment.choice.len(),
                graph.len()
            ),
        );
        return;
    }
    // Resolve the plan each node actually runs under.
    let mut resolved: Vec<ExecutionPlan> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let choice = assignment.choice[node.id.0];
        let plan = match plans {
            PlanView::Candidates(set) => {
                let candidates = set.of(node.id);
                match candidates.get(choice) {
                    Some(p) => *p,
                    None => {
                        report.error(
                            NAME,
                            node_loc(node),
                            format!("assignment picks plan {choice} of {}", candidates.len()),
                        );
                        return;
                    }
                }
            }
            PlanView::Chosen(chosen) => chosen[node.id.0],
            PlanView::Inference(_) => return,
        };
        resolved.push(plan);
    }
    let mut total: u64 = resolved.iter().map(|p| p.cost).sum();
    for (prod, cons) in graph.edges() {
        // Edges into nonexistent nodes are GraphInvariants findings;
        // skip them here rather than indexing out of bounds.
        if prod.0 >= resolved.len() || cons.0 >= resolved.len() {
            continue;
        }
        total += edge_tc(
            graph,
            prod,
            resolved[prod.0].layout,
            resolved[cons.0].layout,
        );
    }
    if total != assignment.cost {
        report.error(
            NAME,
            "assignment",
            format!(
                "claims Agg_Cost {} but plan costs + edge transforms re-evaluate \
                 to {total}",
                assignment.cost
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_cgraph::TShape;
    use gcd2_globalopt::{assignment_cost, enumerate_plans, Assignment};
    use gcd2_kernels::{CostModel, SimdInstr};

    fn conv_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", TShape::nchw(1, 32, 14, 14));
        let c = g.add(
            OpKind::Conv2d {
                out_channels: 32,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
            },
            &[x],
            "conv",
        );
        let _r = g.add(OpKind::Act(gcd2_cgraph::Activation::Relu), &[c], "relu");
        g
    }

    #[test]
    fn enumerated_plans_are_legal() {
        let g = conv_graph();
        let plans = enumerate_plans(&g, &CostModel::new());
        let choice = vec![0, 0, 0];
        let assignment = Assignment {
            cost: assignment_cost(&g, &plans, &choice),
            choice,
        };
        let cx = Context::new()
            .with_graph(&g)
            .with_plans(PlanView::Candidates(&plans))
            .with_assignment(&assignment);
        let mut report = Report::new();
        PlanLegality.run(&cx, &mut report);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn mismatched_instr_layout_is_error() {
        let g = conv_graph();
        let node = g.node(gcd2_cgraph::NodeId(1));
        let bad = ExecutionPlan {
            kind: PlanKind::Gemm(SimdInstr::Vrmpy),
            layout: Layout::Col1, // vrmpy is a 4-column kernel
            cost: 100,
        };
        assert!(plan_legal(node, &bad).is_err());
    }

    #[test]
    fn wrong_claimed_cost_is_error() {
        let g = conv_graph();
        let plans = enumerate_plans(&g, &CostModel::new());
        let choice = vec![0, 0, 0];
        let assignment = Assignment {
            cost: assignment_cost(&g, &plans, &choice) + 1,
            choice,
        };
        let cx = Context::new()
            .with_graph(&g)
            .with_plans(PlanView::Candidates(&plans))
            .with_assignment(&assignment);
        let mut report = Report::new();
        PlanLegality.run(&cx, &mut report);
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics()[0].message.contains("Agg_Cost"));
    }

    #[test]
    fn source_plan_must_be_free_rowmajor() {
        let g = conv_graph();
        let node = g.node(gcd2_cgraph::NodeId(0));
        let bad = ExecutionPlan {
            kind: PlanKind::Passthrough,
            layout: Layout::Col1,
            cost: 0,
        };
        assert!(plan_legal(node, &bad).is_err());
        let good = ExecutionPlan {
            kind: PlanKind::Passthrough,
            layout: Layout::RowMajor,
            cost: 0,
        };
        assert!(plan_legal(node, &good).is_ok());
    }
}
