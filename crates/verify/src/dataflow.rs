//! `RegisterDataflow`: def-before-use and dead-definition analysis over
//! the register operands of each packed block.
//!
//! The analysis runs on the flattened instruction sequence of a block
//! (packets in issue order, program order within a packet — the order
//! the machine commits effects in). Vector pairs are expanded into their
//! two halves by [`Insn::defs`]/[`Insn::uses`], so overlap hazards
//! between a pair and one of its member registers are tracked at single-
//! register granularity.
//!
//! Loop semantics temper both checks:
//!
//! * a register read before any definition is **live-in** when the block
//!   never defines it (or only updates it in place, like an address
//!   bump), and **loop-carried** when the block defines it later but
//!   runs more than once — only a single-trip block reading a value a
//!   later definition replaces wholesale is an error;
//! * a definition is **dead** only when a later definition in the *same*
//!   iteration body overwrites it unread — an unread definition at the
//!   end of the body may feed the next iteration (or be a deliberate
//!   timing artifact), so it is not flagged.

use crate::diag::Report;
use crate::{Context, Pass};
use gcd2_hvx::{Insn, PackedBlock, Reg};
use std::collections::{HashMap, HashSet};

/// Register def/use sanity for every block of a program.
#[derive(Debug, Default)]
pub struct RegisterDataflow;

const NAME: &str = "RegisterDataflow";

impl Pass for RegisterDataflow {
    fn name(&self) -> &'static str {
        NAME
    }

    fn run(&self, cx: &Context<'_>, report: &mut Report) {
        let Some(program) = cx.program else { return };
        for (bi, block) in program.blocks.iter().enumerate() {
            check_block(bi, block, report);
        }
    }
}

fn check_block(bi: usize, block: &PackedBlock, report: &mut Report) {
    let insns: Vec<&Insn> = block.packets.iter().flat_map(|p| p.insns()).collect();
    let loc = format!("block {bi} '{}'", block.label);

    // Positions of every definition of every register.
    let mut def_positions: HashMap<Reg, Vec<usize>> = HashMap::new();
    for (idx, insn) in insns.iter().enumerate() {
        for d in insn.defs() {
            def_positions.entry(d).or_default().push(idx);
        }
    }

    // Def-before-use: reads happen before writes at each position, so an
    // instruction reading a register it also defines (acc multiplies)
    // observes the previous value.
    let mut defined: HashSet<Reg> = HashSet::new();
    for (idx, insn) in insns.iter().enumerate() {
        let mut seen_uses: HashSet<Reg> = HashSet::new();
        for u in insn.uses() {
            if !seen_uses.insert(u) {
                continue; // one diagnostic per register per instruction
            }
            // A read before any definition is fine when the register is
            // live-in. It still looks live-in when the block *does*
            // define it later, as long as that first definition reads
            // the register itself (address bumps: `r0 = add(r0, #128)`)
            // or the block loops (the value arrives around the back
            // edge). Only a single-trip block whose later definition
            // starts a fresh value chain makes the early read dubious.
            if !defined.contains(&u) && block.trip_count <= 1 {
                if let Some(positions) = def_positions.get(&u) {
                    let first_def = positions[0];
                    if !insns[first_def].uses().contains(&u) {
                        report.error(
                            NAME,
                            &loc,
                            format!(
                                "`{insn}` (position {idx}) reads {u} before its \
                                 first definition in a single-trip block"
                            ),
                        );
                    }
                }
            }
        }
        for d in insn.defs() {
            defined.insert(d);
        }
    }

    // Dead definitions: overwritten within the same iteration body
    // without an intervening read.
    for (reg, positions) in &def_positions {
        for pair in positions.windows(2) {
            let (def, redef) = (pair[0], pair[1]);
            let read_between = insns[def + 1..=redef]
                .iter()
                .any(|i| i.uses().contains(reg));
            if !read_between {
                report.warning(
                    NAME,
                    &loc,
                    format!(
                        "{reg} written by `{}` (position {def}) is overwritten by \
                         `{}` (position {redef}) without being read",
                        insns[def], insns[redef]
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcd2_hvx::{Packet, Program, SReg, VPair, VReg};

    fn v(i: u8) -> VReg {
        VReg::new(i)
    }
    fn r(i: u8) -> SReg {
        SReg::new(i)
    }

    fn run_on(insns: Vec<Insn>, trip_count: u64) -> Report {
        let block = PackedBlock {
            packets: insns
                .into_iter()
                .map(|i| Packet::from_insns(vec![i]))
                .collect(),
            trip_count,
            label: "t".into(),
        };
        let program = Program {
            blocks: vec![block],
        };
        let cx = Context::new().with_program(&program);
        let mut report = Report::new();
        RegisterDataflow.run(&cx, &mut report);
        report
    }

    #[test]
    fn straight_line_def_use_is_clean() {
        let report = run_on(
            vec![
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VLoad {
                    dst: v(1),
                    base: r(0),
                    offset: 128,
                },
                Insn::Vadd {
                    lane: gcd2_hvx::Lane::H,
                    dst: v(2),
                    a: v(0),
                    b: v(1),
                },
                Insn::VStore {
                    src: v(2),
                    base: r(1),
                    offset: 0,
                },
            ],
            1,
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn use_before_later_def_is_error() {
        let report = run_on(
            vec![
                Insn::Vadd {
                    lane: gcd2_hvx::Lane::H,
                    dst: v(2),
                    a: v(0),
                    b: v(1),
                },
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
            ],
            1,
        );
        assert_eq!(report.error_count(), 1);
        assert!(report.diagnostics()[0]
            .message
            .contains("before its first definition"));
    }

    #[test]
    fn loop_carried_use_is_fine() {
        // Same shape as above, but the block iterates: v0 flows around
        // the back edge.
        let report = run_on(
            vec![
                Insn::Vadd {
                    lane: gcd2_hvx::Lane::H,
                    dst: v(2),
                    a: v(0),
                    b: v(1),
                },
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
            ],
            16,
        );
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn live_in_use_is_fine() {
        let report = run_on(
            vec![Insn::VStore {
                src: v(5),
                base: r(0),
                offset: 0,
            }],
            1,
        );
        assert!(report.is_clean());
    }

    #[test]
    fn dead_def_warns() {
        let report = run_on(
            vec![
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 0,
                },
                Insn::VLoad {
                    dst: v(0),
                    base: r(0),
                    offset: 128,
                },
                Insn::VStore {
                    src: v(0),
                    base: r(1),
                    offset: 0,
                },
            ],
            1,
        );
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 1);
        assert!(report.diagnostics()[0].message.contains("overwritten"));
    }

    #[test]
    fn acc_multiply_reads_its_destination() {
        // w0 = vmpy(...); w0 += vmpy(...) — the second def reads the
        // first, so it is not dead.
        let report = run_on(
            vec![
                Insn::Vmpy {
                    dst: VPair::new(0),
                    src: v(4),
                    weights: r(0),
                    acc: false,
                },
                Insn::Vmpy {
                    dst: VPair::new(0),
                    src: v(5),
                    weights: r(1),
                    acc: true,
                },
                Insn::VasrHB {
                    dst: v(6),
                    src: VPair::new(0),
                    shift: 4,
                },
            ],
            1,
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn pair_overlap_with_half_is_tracked() {
        // Writing w0 then reading v1 (its high half) is a def-use chain.
        let report = run_on(
            vec![
                Insn::Vadd {
                    lane: gcd2_hvx::Lane::H,
                    dst: v(2),
                    a: v(1),
                    b: v(1),
                },
                Insn::Vmpy {
                    dst: VPair::new(0),
                    src: v(4),
                    weights: r(0),
                    acc: false,
                },
            ],
            1,
        );
        // v1 is read before the pair defines it -> error in a
        // single-trip block.
        assert_eq!(report.error_count(), 1);
    }
}
