//! Shared diagnostics: what every verification pass reports and how the
//! results aggregate into a [`Report`].

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not incorrect (e.g. a value written and never
    /// read). Lowering proceeds.
    Warning,
    /// A broken invariant: the artifact would compute wrong results or
    /// its claimed costs are inconsistent.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of one verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Name of the pass that produced it.
    pub pass: &'static str,
    /// Where in the artifact the problem is (block/packet, node, edge).
    pub location: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.pass, self.location, self.message
        )
    }
}

/// Aggregated diagnostics from one verifier run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report {
            diagnostics: Vec::new(),
        }
    }

    /// Records a diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Records an error.
    pub fn error(
        &mut self,
        pass: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(Diagnostic {
            severity: Severity::Error,
            pass,
            location: location.into(),
            message: message.into(),
        });
    }

    /// Records a warning.
    pub fn warning(
        &mut self,
        pass: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.push(Diagnostic {
            severity: Severity::Warning,
            pass,
            location: location.into(),
            message: message.into(),
        });
    }

    /// All diagnostics, in the order the passes produced them.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when the report holds no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics produced by one pass.
    pub fn of_pass(&self, pass: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.pass == pass).collect()
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "verification clean");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_render() {
        let mut r = Report::new();
        assert!(r.is_clean());
        r.error("PacketLegality", "b0#packet1", "two vmpy slots");
        r.warning("RegisterDataflow", "b0", "dead def of v3");
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        let text = r.to_string();
        assert!(text.contains("error[PacketLegality] b0#packet1: two vmpy slots"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert_eq!(r.of_pass("PacketLegality").len(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.error("A", "x", "m");
        let mut b = Report::new();
        b.warning("B", "y", "n");
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
    }
}
